//! # cellscope
//!
//! Facade crate for the cellscope workspace: a full reproduction of the
//! IMC'20 paper *"A Characterization of the COVID-19 Pandemic Impact on a
//! Mobile Network Operator Traffic"* (Lutu et al.).
//!
//! Re-exports every layer of the stack under one roof so examples and
//! downstream users can depend on a single crate:
//!
//! * [`time`] — calendar, ISO weeks, 4-hour day bins;
//! * [`geo`] — synthetic UK geography and 2011 OAC geodemographics;
//! * [`radio`] — the radio access network and KPI model;
//! * [`epidemic`] — UK policy timeline and case curves;
//! * [`mobility`] — the agent-based mobility model;
//! * [`signaling`] — control-plane event generation and feeds;
//! * [`traffic`] — data/voice traffic demand;
//! * [`analysis`] — the paper's measurement methodology (the core);
//! * [`exec`] — deterministic execution layer (scheduling, panic
//!   capture, per-stage metrics);
//! * [`scenario`] — end-to-end study runner and per-figure builders.

pub use cellscope_core as analysis;
pub use cellscope_epidemic as epidemic;
pub use cellscope_exec as exec;
pub use cellscope_geo as geo;
pub use cellscope_mobility as mobility;
pub use cellscope_radio as radio;
pub use cellscope_scenario as scenario;
pub use cellscope_signaling as signaling;
pub use cellscope_time as time;
pub use cellscope_traffic as traffic;
