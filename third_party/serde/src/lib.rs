//! Minimal, self-contained stand-in for the `serde` crate.
//!
//! The build environment for this repository has no network access and
//! no registry cache, so the real `serde` cannot be resolved. This
//! vendored facade keeps the exact surface the workspace uses —
//! `#[derive(Serialize, Deserialize)]` plus the `serde_json`
//! free functions — while staying a few hundred lines.
//!
//! Instead of serde's visitor-based zero-copy data model, values pass
//! through an owned intermediate [`Content`] tree. That is slower than
//! real serde but behaviourally equivalent for the formats used here
//! (JSON text and `serde_json::Value`), and it round-trips every type
//! in the workspace exactly:
//!
//! * structs serialize to maps keyed by field name (declaration order);
//! * newtype structs are transparent (serialize as their inner value);
//! * unit enum variants serialize as their name string, data variants
//!   as externally tagged single-entry maps — serde's default;
//! * `Option` fields accept a missing key as `None`;
//! * integers preserve full `u64`/`i64` precision (no float detour).

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Owned serialization tree: the data model every `Serialize` impl
/// lowers into and every `Deserialize` impl reads back out of.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F32(f32),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    /// Maps with arbitrary (serialized) keys, e.g. `BTreeMap<County, _>`.
    Map(Vec<(Content, Content)>),
    /// Named-field struct: field names are static, order = declaration.
    Struct(Vec<(&'static str, Content)>),
    UnitVariant(&'static str),
    NewtypeVariant(&'static str, Box<Content>),
    /// Payload is always a `Content::Seq`.
    TupleVariant(&'static str, Box<Content>),
    /// Payload is always a `Content::Struct`.
    StructVariant(&'static str, Box<Content>),
}

/// Deserialization error: a plain message, mirroring `serde::de::Error`.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    pub fn custom(msg: impl fmt::Display) -> DeError {
        DeError { msg: msg.to_string() }
    }

    pub fn expected(what: &str, got: &Content) -> DeError {
        DeError::custom(format!("expected {what}, found {}", de::kind(got)))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types that can lower themselves into a [`Content`] tree.
pub trait Serialize {
    fn to_content(&self) -> Content;
}

/// Types that can rebuild themselves from a [`Content`] tree.
pub trait Deserialize: Sized {
    fn from_content(content: &Content) -> Result<Self, DeError>;

    /// Value to use when a struct field is absent from the input.
    /// `Err` by default; `Option<T>` overrides this to `None`, matching
    /// serde's behaviour of treating missing optional fields as `None`.
    fn absent() -> Result<Self, DeError> {
        Err(DeError::custom("missing field"))
    }
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::U64(*self as u64) }
        }
    )*};
}
macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::I64(*self as i64) }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F32(*self)
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_content(), v.to_content()))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_content(&self) -> Content {
        // Hash iteration order is nondeterministic; sort by the key's
        // serialized form so identical maps serialize identically.
        let mut entries: Vec<(Content, Content)> = self
            .iter()
            .map(|(k, v)| (k.to_content(), v.to_content()))
            .collect();
        entries.sort_by(|a, b| de::content_sort_key(&a.0).cmp(&de::content_sort_key(&b.0)));
        Content::Map(entries)
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v = match c {
                    Content::U64(v) => *v,
                    Content::I64(v) if *v >= 0 => *v as u64,
                    other => return Err(DeError::expected("unsigned integer", other)),
                };
                <$t>::try_from(v)
                    .map_err(|_| DeError::custom(format!("{v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v = match c {
                    Content::I64(v) => *v,
                    Content::U64(v) => i64::try_from(*v)
                        .map_err(|_| DeError::custom(format!("{v} out of range for i64")))?,
                    other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(v)
                    .map_err(|_| DeError::custom(format!("{v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);
de_int!(i8, i16, i32, i64, isize);

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::F64(v) => Ok(*v),
            Content::F32(v) => Ok(*v as f64),
            Content::U64(v) => Ok(*v as f64),
            Content::I64(v) => Ok(*v as f64),
            other => Err(DeError::expected("number", other)),
        }
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        f64::from_content(c).map(|v| v as f32)
    }
}

impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-character string", other)),
        }
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }

    fn absent() -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::expected("sequence", other)),
        }
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let v = Vec::<T>::from_content(c)?;
        let n = v.len();
        <[T; N]>::try_from(v)
            .map_err(|_| DeError::custom(format!("expected array of length {N}, found {n}")))
    }
}

macro_rules! de_tuple {
    ($(($len:expr; $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let items = de::as_seq(c, Some($len))?;
                Ok(($($t::from_content(&items[$n])?,)+))
            }
        }
    )*};
}
de_tuple! {
    (1; 0 A)
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
    (5; 0 A, 1 B, 2 C, 3 D, 4 E)
    (6; 0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (7; 0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (8; 0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
}

fn de_map_entries<K: Deserialize + Ord, V: Deserialize>(
    c: &Content,
) -> Result<Vec<(K, V)>, DeError> {
    let entries = match c {
        Content::Map(entries) => entries,
        other => return Err(DeError::expected("map", other)),
    };
    entries
        .iter()
        .map(|(k, v)| {
            let key = K::from_content(k).or_else(|e| {
                // JSON object keys are always strings; retry integer-keyed
                // maps by parsing the key text (mirrors serde_json's
                // MapKeyDeserializer).
                if let Content::Str(s) = k {
                    if let Ok(u) = s.parse::<u64>() {
                        return K::from_content(&Content::U64(u));
                    }
                    if let Ok(i) = s.parse::<i64>() {
                        return K::from_content(&Content::I64(i));
                    }
                }
                Err(e)
            })?;
            Ok((key, V::from_content(v)?))
        })
        .collect()
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Ok(de_map_entries::<K, V>(c)?.into_iter().collect())
    }
}

impl<K: Deserialize + Ord + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Ok(de_map_entries::<K, V>(c)?.into_iter().collect())
    }
}

// ---------------------------------------------------------------------------
// Helpers used by the generated derive code
// ---------------------------------------------------------------------------

/// Support routines for `#[derive(Deserialize)]` expansions.
pub mod de {
    use super::{Content, DeError, Deserialize};

    /// Human-readable kind of a content node, for error messages.
    pub fn kind(c: &Content) -> &'static str {
        match c {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::I64(_) => "integer",
            Content::F32(_) | Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
            Content::Struct(_) => "struct",
            Content::UnitVariant(_)
            | Content::NewtypeVariant(..)
            | Content::TupleVariant(..)
            | Content::StructVariant(..) => "enum variant",
        }
    }

    /// Deterministic sort key for map-key contents (scalar keys only).
    pub fn content_sort_key(c: &Content) -> String {
        match c {
            Content::Str(s) => s.clone(),
            Content::U64(v) => format!("{v:020}"),
            Content::I64(v) => format!("{v:+020}"),
            Content::Bool(b) => b.to_string(),
            Content::UnitVariant(n) => (*n).to_string(),
            other => format!("{other:?}"),
        }
    }

    /// View a content node as struct fields: accepts both the
    /// `Content::Struct` a `Serialize` impl produces and the
    /// string-keyed `Content::Map` JSON parsing produces.
    pub fn fields(c: &Content) -> Result<Vec<(&str, &Content)>, DeError> {
        match c {
            Content::Struct(entries) => {
                Ok(entries.iter().map(|(k, v)| (*k, v)).collect())
            }
            Content::StructVariant(_, inner) => fields(inner),
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| match k {
                    Content::Str(s) => Ok((s.as_str(), v)),
                    other => Err(DeError::expected("string key", other)),
                })
                .collect(),
            other => Err(DeError::expected("struct", other)),
        }
    }

    /// Extract one struct field by name. Unknown input fields are
    /// ignored (serde's default); a missing field defers to
    /// `T::absent()` so `Option` fields default to `None`.
    pub fn field<T: Deserialize>(
        entries: &[(&str, &Content)],
        name: &'static str,
    ) -> Result<T, DeError> {
        match entries.iter().find(|(k, _)| *k == name) {
            Some((_, v)) => T::from_content(v)
                .map_err(|e| DeError::custom(format!("field `{name}`: {e}"))),
            None => T::absent()
                .map_err(|_| DeError::custom(format!("missing field `{name}`"))),
        }
    }

    /// View a content node as a sequence, optionally of an exact length.
    pub fn as_seq(c: &Content, len: Option<usize>) -> Result<&[Content], DeError> {
        let items = match c {
            Content::Seq(items) => items.as_slice(),
            other => return Err(DeError::expected("sequence", other)),
        };
        if let Some(expect) = len {
            if items.len() != expect {
                return Err(DeError::custom(format!(
                    "expected sequence of length {expect}, found {}",
                    items.len()
                )));
            }
        }
        Ok(items)
    }

    /// Split an enum content node into (variant name, payload).
    ///
    /// Accepts the in-process variant forms and the externally-tagged
    /// JSON forms: a bare string for unit variants, a single-entry map
    /// for data variants.
    pub fn variant(c: &Content) -> Result<(&str, Option<&Content>), DeError> {
        match c {
            Content::UnitVariant(name) => Ok((name, None)),
            Content::NewtypeVariant(name, inner)
            | Content::TupleVariant(name, inner)
            | Content::StructVariant(name, inner) => Ok((name, Some(inner))),
            Content::Str(name) => Ok((name.as_str(), None)),
            Content::Map(entries) if entries.len() == 1 => match &entries[0].0 {
                Content::Str(name) => Ok((name.as_str(), Some(&entries[0].1))),
                other => Err(DeError::expected("variant name", other)),
            },
            other => Err(DeError::expected("enum variant", other)),
        }
    }

    /// Error for a variant name not present in the enum definition.
    pub fn unknown_variant(name: &str, expected: &'static [&'static str]) -> DeError {
        DeError::custom(format!(
            "unknown variant `{name}`, expected one of {expected:?}"
        ))
    }

    /// Error for a unit variant that arrived with a payload, or a data
    /// variant that arrived without one.
    pub fn variant_shape(name: &str, expects_data: bool) -> DeError {
        if expects_data {
            DeError::custom(format!("variant `{name}` expects a payload"))
        } else {
            DeError::custom(format!("variant `{name}` carries no payload"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_precision_roundtrip() {
        let big: u64 = 0xDEAD_BEEF_DEAD_BEEF;
        match big.to_content() {
            Content::U64(v) => assert_eq!(v, big),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(u64::from_content(&Content::U64(big)).unwrap(), big);
        assert!(u16::from_content(&Content::U64(70_000)).is_err());
        assert!(i64::from_content(&Content::U64(u64::MAX)).is_err());
    }

    #[test]
    fn option_absent_defaults_to_none() {
        let entries: Vec<(&str, &Content)> = Vec::new();
        let v: Option<f64> = de::field(&entries, "missing").unwrap();
        assert_eq!(v, None);
        let err = de::field::<f64>(&entries, "missing").unwrap_err();
        assert!(err.to_string().contains("missing field"));
    }

    #[test]
    fn map_keys_parse_back_from_strings() {
        let c = Content::Map(vec![(Content::Str("42".into()), Content::U64(7))]);
        let m: BTreeMap<u64, u64> = Deserialize::from_content(&c).unwrap();
        assert_eq!(m.get(&42), Some(&7));
    }

    #[test]
    fn tuples_and_arrays_roundtrip() {
        let t = (1u32, -2i64, 3.5f64);
        let c = t.to_content();
        let back: (u32, i64, f64) = Deserialize::from_content(&c).unwrap();
        assert_eq!(back, t);
        let a = [1u8, 2, 3];
        let back: [u8; 3] = Deserialize::from_content(&a.to_content()).unwrap();
        assert_eq!(back, a);
    }
}
