//! Minimal, self-contained stand-in for the `serde_json` crate,
//! backing the vendored serde facade (see `third_party/serde`).
//!
//! Surface: [`Value`], [`Number`], [`Error`], and the four free
//! functions the workspace uses (`to_value`, `to_string`,
//! `to_string_pretty`, `from_str`).
//!
//! Fidelity notes, in decreasing order of importance for this repo:
//!
//! * Integers keep full `u64`/`i64` precision — anonymized subscriber
//!   ids are 64-bit and must round-trip exactly through JSONL feeds.
//! * Floats print via Rust's shortest-round-trip `Display` and parse
//!   via `str::parse::<f64>` (correctly rounded), so an `f64` survives
//!   text round-trips bit-for-bit. (`1.0` prints as `1`, unlike real
//!   serde_json's `1.0` — both re-parse identically.)
//! * Non-finite floats serialize as `null`, as in real serde_json.
//! * Objects preserve insertion order (real serde_json sorts map keys
//!   through `BTreeMap`; struct fields keep declaration order either
//!   way, which is what feed-format stability relies on).

use serde::{Content, DeError, Deserialize, Serialize};
use std::fmt;

// ---------------------------------------------------------------------------
// Error
// ---------------------------------------------------------------------------

/// JSON serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error::new(e.to_string())
    }
}

pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------------

/// A JSON number: full-precision `u64`/`i64`, or `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Number(N);

#[derive(Debug, Clone, PartialEq)]
enum N {
    U(u64),
    I(i64),
    F(f64),
}

impl Number {
    pub fn from_f64(v: f64) -> Option<Number> {
        v.is_finite().then_some(Number(N::F(v)))
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            N::U(v) => Some(v),
            N::I(v) => u64::try_from(v).ok(),
            N::F(_) => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self.0 {
            N::I(v) => Some(v),
            N::U(v) => i64::try_from(v).ok(),
            N::F(_) => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self.0 {
            N::F(v) => Some(v),
            N::U(v) => Some(v as f64),
            N::I(v) => Some(v as f64),
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            N::U(v) => write!(f, "{v}"),
            N::I(v) => write!(f, "{v}"),
            N::F(v) => write!(f, "{v}"),
        }
    }
}

/// An owned JSON document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    /// Insertion-ordered object entries.
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => {
                entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_value(&mut out, self, None, 0);
        f.write_str(&out)
    }
}

// ---------------------------------------------------------------------------
// Content <-> Value
// ---------------------------------------------------------------------------

fn key_string(key: &Content) -> Result<String> {
    match key {
        Content::Str(s) => Ok(s.clone()),
        Content::UnitVariant(n) => Ok((*n).to_string()),
        Content::U64(v) => Ok(v.to_string()),
        Content::I64(v) => Ok(v.to_string()),
        Content::Bool(b) => Ok(b.to_string()),
        other => Err(Error::new(format!(
            "map key must be a string or scalar, found {other:?}"
        ))),
    }
}

fn content_to_value(c: &Content) -> Result<Value> {
    Ok(match c {
        Content::Null => Value::Null,
        Content::Bool(b) => Value::Bool(*b),
        Content::U64(v) => Value::Number(Number(N::U(*v))),
        Content::I64(v) => Value::Number(Number(N::I(*v))),
        Content::F32(v) => float_value(*v as f64, Some(*v)),
        Content::F64(v) => float_value(*v, None),
        Content::Str(s) => Value::String(s.clone()),
        Content::Seq(items) => Value::Array(
            items.iter().map(content_to_value).collect::<Result<_>>()?,
        ),
        Content::Map(entries) => Value::Object(
            entries
                .iter()
                .map(|(k, v)| Ok((key_string(k)?, content_to_value(v)?)))
                .collect::<Result<_>>()?,
        ),
        Content::Struct(entries) => Value::Object(
            entries
                .iter()
                .map(|(k, v)| Ok(((*k).to_string(), content_to_value(v)?)))
                .collect::<Result<_>>()?,
        ),
        Content::UnitVariant(name) => Value::String((*name).to_string()),
        Content::NewtypeVariant(name, inner)
        | Content::TupleVariant(name, inner)
        | Content::StructVariant(name, inner) => {
            Value::Object(vec![((*name).to_string(), content_to_value(inner)?)])
        }
    })
}

/// Non-finite floats have no JSON representation; serialize as null
/// (real serde_json behaviour). `f32`-sourced floats remember their
/// width so they print with the shortest f32 representation.
fn float_value(v: f64, as_f32: Option<f32>) -> Value {
    if !v.is_finite() {
        return Value::Null;
    }
    match as_f32 {
        Some(f) => Value::Number(Number(N::F(f as f64))),
        None => Value::Number(Number(N::F(v))),
    }
}

fn value_to_content(v: &Value) -> Content {
    match v {
        Value::Null => Content::Null,
        Value::Bool(b) => Content::Bool(*b),
        Value::Number(Number(N::U(n))) => Content::U64(*n),
        Value::Number(Number(N::I(n))) => Content::I64(*n),
        Value::Number(Number(N::F(n))) => Content::F64(*n),
        Value::String(s) => Content::Str(s.clone()),
        Value::Array(items) => Content::Seq(items.iter().map(value_to_content).collect()),
        Value::Object(entries) => Content::Map(
            entries
                .iter()
                .map(|(k, v)| (Content::Str(k.clone()), value_to_content(v)))
                .collect(),
        ),
    }
}

impl Serialize for Value {
    fn to_content(&self) -> Content {
        value_to_content(self)
    }
}

impl Deserialize for Value {
    fn from_content(c: &Content) -> std::result::Result<Self, DeError> {
        content_to_value(c).map_err(|e| DeError::custom(e.to_string()))
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `indent = None` → compact; `Some(width)` → pretty with that indent.
fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                escape_into(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(width * level));
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser { bytes: s.as_bytes(), pos: 0 }
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at column {}", self.pos + 1))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs: parse the low half too.
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                let rest = &self.bytes[self.pos + 1..];
                                if !rest.starts_with(b"\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let hex2 = rest
                                    .get(2..6)
                                    .ok_or_else(|| self.err("truncated \\u escape"))?;
                                let low = u32::from_str_radix(
                                    std::str::from_utf8(hex2)
                                        .map_err(|_| self.err("bad \\u escape"))?,
                                    16,
                                )
                                .map_err(|_| self.err("bad \\u escape"))?;
                                self.pos += 6;
                                char::from_u32(
                                    0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00),
                                )
                            } else {
                                char::from_u32(code)
                            };
                            out.push(ch.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len()
                        && (self.bytes[self.pos] & 0xC0) == 0x80
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos]).unwrap(),
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number(N::U(u))));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number(N::I(i))));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number(N::F(f))))
            .map_err(|_| self.err("invalid number"))
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

/// Convert any serializable value into a JSON [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value> {
    content_to_value(&value.to_content())
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let v = content_to_value(&value.to_content())?;
    let mut out = String::new();
    write_value(&mut out, &v, None, 0);
    Ok(out)
}

/// Serialize to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let v = content_to_value(&value.to_content())?;
    let mut out = String::new();
    write_value(&mut out, &v, Some(2), 0);
    Ok(out)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut parser = Parser::new(s);
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters"));
    }
    Ok(T::from_content(&value_to_content(&value))?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip_exactly() {
        let big: u64 = 0xDEAD_BEEF_0000_0001;
        assert_eq!(to_string(&big).unwrap(), big.to_string());
        assert_eq!(from_str::<u64>(&big.to_string()).unwrap(), big);
        for &f in &[0.1f64, 1.0, -2.5e-10, f64::MAX, 1.0 / 3.0] {
            let text = to_string(&f).unwrap();
            assert_eq!(from_str::<f64>(&text).unwrap(), f, "{text}");
        }
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "line\n\"quoted\"\tüñíçødé \\ done";
        let text = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&text).unwrap(), s);
        assert_eq!(from_str::<String>(r#""é€""#).unwrap(), "é€");
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "😀");
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![(1u32, Some(2.5f64)), (3, None)];
        let text = to_string(&v).unwrap();
        let back: Vec<(u32, Option<f64>)> = from_str(&text).unwrap();
        assert_eq!(back, v);

        let mut m = std::collections::BTreeMap::new();
        m.insert(7u64, vec![1.0f64, 2.0]);
        let text = to_string(&m).unwrap();
        assert!(text.contains("\"7\""), "{text}");
        let back: std::collections::BTreeMap<u64, Vec<f64>> = from_str(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<f64>("1.2.3").is_err());
        assert!(from_str::<Value>("{not json}").is_err());
        assert!(from_str::<Value>("[1,").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
        assert!(from_str::<u64>("\"str\"").is_err());
        assert!(from_str::<Value>("{\"a\":1}trailing").is_err());
    }

    #[test]
    fn pretty_printer_indents() {
        let v = to_value(vec![1u8, 2]).unwrap();
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }
}
