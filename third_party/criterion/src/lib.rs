//! Minimal, self-contained stand-in for the `criterion` crate.
//!
//! Implements the API surface the workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! `sample_size`, the [`criterion_group!`]/[`criterion_main!`] macros —
//! with a simple measure-and-print harness instead of criterion's
//! statistical machinery: per benchmark it warms up briefly, then takes
//! `sample_size` timed samples (auto-scaled iteration counts) and
//! prints min/median/mean. Good enough to compare hot paths release to
//! release; not a rigorous statistical benchmark.

use std::time::{Duration, Instant};

/// Passed to each benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    sample_size: usize,
    /// Measured per-iteration times, one entry per sample.
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and per-sample iteration scaling: target ~5ms/sample,
        // capped so slow whole-study benches still finish.
        let warmup = Instant::now();
        std::hint::black_box(f());
        let once = warmup.elapsed().max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(5).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }
}

/// Benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Builder-style sample-size override (matches criterion's
    /// by-value signature used in `criterion_group!` config blocks).
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        f: F,
    ) -> &mut Criterion {
        run_bench(name, self.sample_size, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A named group of benchmarks with its own sample-size override.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// In-place sample-size override (matches criterion's `&mut self`
    /// signature used as `group.sample_size(10);`).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(&format!("{}/{name}", self.name), self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher { sample_size, samples: Vec::new() };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{name:<44} (no measurements)");
        return;
    }
    let mut sorted = bencher.samples.clone();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    println!(
        "{name:<44} min {:>12} | median {:>12} | mean {:>12}",
        fmt_duration(sorted[0]),
        fmt_duration(median),
        fmt_duration(mean),
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Re-export for code that uses `criterion::black_box`.
pub use std::hint::black_box;

/// Define a benchmark group function. Both real-criterion forms are
/// accepted: the plain list and the `name/config/targets` block.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("noop_add", |b| {
            let mut acc = 0u64;
            b.iter(|| {
                acc = acc.wrapping_add(1);
                acc
            })
        });
    }

    criterion_group! {
        name = block_form;
        config = Criterion::default().sample_size(3);
        targets = quick
    }

    criterion_group!(list_form, quick);

    #[test]
    fn groups_run_and_measure() {
        block_form();
        list_form();
    }

    #[test]
    fn group_api_matches_usage() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("inner", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
