//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! serde facade.
//!
//! Implemented directly on `proc_macro` token trees (no `syn`/`quote`
//! available offline). The parser covers exactly the shapes this
//! workspace derives on: named-field structs, tuple/newtype structs,
//! unit structs, generic parameters with bounds, and enums whose
//! variants are unit (optionally with discriminants), tuple, or
//! struct-like. Generated code lowers into `serde::Content` — see the
//! facade crate for the data-model contract.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Param {
    /// `'a`-style lifetime params are carried verbatim and get no bound.
    is_lifetime: bool,
    name: String,
    bounds: String,
}

enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Body {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    params: Vec<Param>,
    body: Body,
}

// ---------------------------------------------------------------------------
// Token-tree parsing
// ---------------------------------------------------------------------------

fn is_punct(t: Option<&TokenTree>, ch: char) -> bool {
    matches!(t, Some(TokenTree::Punct(p)) if p.as_char() == ch)
}

fn tokens_to_string(tokens: &[TokenTree]) -> String {
    tokens
        .iter()
        .cloned()
        .collect::<TokenStream>()
        .to_string()
}

/// Skip any number of `#[...]` attributes starting at `i`.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while is_punct(tokens.get(i), '#')
        && matches!(tokens.get(i + 1), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
    {
        i += 2;
    }
    i
}

/// Skip `pub` / `pub(...)` visibility starting at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    i
}

/// Advance past a type (or expression) until a top-level `,`, tracking
/// `<...>` nesting. Returns the index of the `,` or of end-of-stream.
fn skip_to_top_comma(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle: i32 = 0;
    let mut prev_dash = false;
    while let Some(t) = tokens.get(i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' if prev_dash => {} // `->` in fn types
                '>' if angle > 0 => angle -= 1,
                ',' if angle == 0 => return i,
                _ => {}
            }
            prev_dash = p.as_char() == '-';
        } else {
            prev_dash = false;
        }
        i += 1;
    }
    i
}

/// Split a token stream on top-level commas (angle-bracket aware).
fn split_top_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let end = skip_to_top_comma(tokens, i);
        if end > i {
            out.push(tokens[i..end].to_vec());
        }
        i = end + 1;
    }
    out
}

fn parse_param(tokens: &[TokenTree]) -> Param {
    if is_punct(tokens.first(), '\'') {
        return Param {
            is_lifetime: true,
            name: tokens_to_string(tokens),
            bounds: String::new(),
        };
    }
    // `K` or `K: Bound + Bound` (`const N: usize` is not derived on here).
    let name = match tokens.first() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: unsupported generic parameter: {other:?}"),
    };
    let bounds = if is_punct(tokens.get(1), ':') {
        tokens_to_string(&tokens[2..])
    } else {
        String::new()
    };
    Param {
        is_lifetime: false,
        name,
        bounds,
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_vis(&tokens, skip_attrs(&tokens, i));
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected field name, found {other:?}"),
        };
        i += 1;
        assert!(
            is_punct(tokens.get(i), ':'),
            "serde_derive: expected `:` after field `{name}`"
        );
        i = skip_to_top_comma(&tokens, i + 1) + 1;
        names.push(name);
    }
    names
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name, found {other:?}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity =
                    split_top_commas(&g.stream().into_iter().collect::<Vec<_>>()).len();
                i += 1;
                Fields::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let names = parse_named_fields(g.stream());
                i += 1;
                Fields::Named(names)
            }
            _ => Fields::Unit,
        };
        if is_punct(tokens.get(i), '=') {
            // Explicit discriminant: skip the expression.
            i = skip_to_top_comma(&tokens, i + 1);
        }
        if is_punct(tokens.get(i), ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&tokens, skip_attrs(&tokens, 0));
    let kw = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {other:?}"),
    };
    i += 1;

    let mut params = Vec::new();
    if is_punct(tokens.get(i), '<') {
        i += 1;
        let mut depth: i32 = 0;
        let mut current: Vec<TokenTree> = Vec::new();
        loop {
            let t = tokens
                .get(i)
                .unwrap_or_else(|| panic!("serde_derive: unterminated generics on {name}"));
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        if !current.is_empty() {
                            params.push(parse_param(&current));
                            current.clear();
                        }
                        i += 1;
                        continue;
                    }
                    _ => {}
                }
            }
            current.push(t.clone());
            i += 1;
        }
        if !current.is_empty() {
            params.push(parse_param(&current));
        }
    }

    let body = match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity =
                    split_top_commas(&g.stream().into_iter().collect::<Vec<_>>()).len();
                Body::Struct(Fields::Tuple(arity))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Struct(Fields::Unit),
            other => panic!("serde_derive: unsupported struct body for {name}: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: expected enum body for {name}, found {other:?}"),
        },
        other => panic!("serde_derive: cannot derive on `{other}` items"),
    };

    Item { name, params, body }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

/// `(impl generics with the extra bound, type generics)` —
/// e.g. `("<K: Ord + ::serde::Serialize>", "<K>")`.
fn generics(item: &Item, bound: &str) -> (String, String) {
    if item.params.is_empty() {
        return (String::new(), String::new());
    }
    let mut impl_parts = Vec::new();
    let mut ty_parts = Vec::new();
    for p in &item.params {
        if p.is_lifetime {
            impl_parts.push(p.name.clone());
        } else if p.bounds.is_empty() {
            impl_parts.push(format!("{}: {bound}", p.name));
        } else {
            impl_parts.push(format!("{}: {} + {bound}", p.name, p.bounds));
        }
        ty_parts.push(p.name.clone());
    }
    (
        format!("<{}>", impl_parts.join(", ")),
        format!("<{}>", ty_parts.join(", ")),
    )
}

fn struct_entries(fields: &[String], accessor: &str) -> String {
    fields
        .iter()
        .map(|f| format!("(\"{f}\", ::serde::Serialize::to_content(&{accessor}{f}))"))
        .collect::<Vec<_>>()
        .join(", ")
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let (impl_g, ty_g) = generics(&item, "::serde::Serialize");
    let name = &item.name;

    let body = match &item.body {
        Body::Struct(Fields::Unit) => "::serde::Content::Null".to_string(),
        Body::Struct(Fields::Tuple(1)) => {
            "::serde::Serialize::to_content(&self.0)".to_string()
        }
        Body::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!("::serde::Content::Seq(vec![{}])", items.join(", "))
        }
        Body::Struct(Fields::Named(fields)) => format!(
            "::serde::Content::Struct(vec![{}])",
            struct_entries(fields, "self.")
        ),
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => ::serde::Content::UnitVariant(\"{vn}\"),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Content::NewtypeVariant(\
                             \"{vn}\", ::std::boxed::Box::new(::serde::Serialize::to_content(__f0))),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> =
                                (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_content(__f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Content::TupleVariant(\
                                 \"{vn}\", ::std::boxed::Box::new(::serde::Content::Seq(vec![{}]))),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!("(\"{f}\", ::serde::Serialize::to_content({f}))")
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Content::StructVariant(\
                                 \"{vn}\", ::std::boxed::Box::new(::serde::Content::Struct(vec![{}]))),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };

    format!(
        "impl{impl_g} ::serde::Serialize for {name}{ty_g} {{\n\
             fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let (impl_g, ty_g) = generics(&item, "::serde::Deserialize");
    let name = &item.name;

    let body = match &item.body {
        Body::Struct(Fields::Unit) => format!(
            "match __c {{\n\
                 ::serde::Content::Null => ::std::result::Result::Ok({name}),\n\
                 other => ::std::result::Result::Err(::serde::DeError::expected(\"null\", other)),\n\
             }}"
        ),
        Body::Struct(Fields::Tuple(1)) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_content(__c)?))"
        ),
        Body::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_content(&__seq[{i}])?"))
                .collect();
            format!(
                "let __seq = ::serde::de::as_seq(__c, ::std::option::Option::Some({n}))?;\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Body::Struct(Fields::Named(fields)) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de::field(&__fields, \"{f}\")?,"))
                .collect();
            format!(
                "let __fields = ::serde::de::fields(__c)?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(" ")
            )
        }
        Body::Enum(variants) => {
            let names: Vec<String> =
                variants.iter().map(|v| format!("\"{}\"", v.name)).collect();
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "\"{vn}\" => match __data {{\n\
                                 ::std::option::Option::None => ::std::result::Result::Ok({name}::{vn}),\n\
                                 ::std::option::Option::Some(_) =>\n\
                                     ::std::result::Result::Err(::serde::de::variant_shape(\"{vn}\", false)),\n\
                             }},"
                        ),
                        Fields::Tuple(1) => format!(
                            "\"{vn}\" => match __data {{\n\
                                 ::std::option::Option::Some(__d) => ::std::result::Result::Ok(\
                                     {name}::{vn}(::serde::Deserialize::from_content(__d)?)),\n\
                                 ::std::option::Option::None =>\n\
                                     ::std::result::Result::Err(::serde::de::variant_shape(\"{vn}\", true)),\n\
                             }},"
                        ),
                        Fields::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_content(&__seq[{i}])?")
                                })
                                .collect();
                            format!(
                                "\"{vn}\" => match __data {{\n\
                                     ::std::option::Option::Some(__d) => {{\n\
                                         let __seq = ::serde::de::as_seq(__d, ::std::option::Option::Some({n}))?;\n\
                                         ::std::result::Result::Ok({name}::{vn}({}))\n\
                                     }}\n\
                                     ::std::option::Option::None =>\n\
                                         ::std::result::Result::Err(::serde::de::variant_shape(\"{vn}\", true)),\n\
                                 }},",
                                items.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!("{f}: ::serde::de::field(&__fields, \"{f}\")?,")
                                })
                                .collect();
                            format!(
                                "\"{vn}\" => match __data {{\n\
                                     ::std::option::Option::Some(__d) => {{\n\
                                         let __fields = ::serde::de::fields(__d)?;\n\
                                         ::std::result::Result::Ok({name}::{vn} {{ {} }})\n\
                                     }}\n\
                                     ::std::option::Option::None =>\n\
                                         ::std::result::Result::Err(::serde::de::variant_shape(\"{vn}\", true)),\n\
                                 }},",
                                inits.join(" ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "let (__name, __data) = ::serde::de::variant(__c)?;\n\
                 match __name {{\n\
                     {}\n\
                     __other => ::std::result::Result::Err(\
                         ::serde::de::unknown_variant(__other, &[{}])),\n\
                 }}",
                arms.join("\n"),
                names.join(", ")
            )
        }
    };

    format!(
        "impl{impl_g} ::serde::Deserialize for {name}{ty_g} {{\n\
             fn from_content(__c: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive: generated Deserialize impl failed to parse")
}
