//! Minimal, self-contained stand-in for the `crossbeam` crate.
//!
//! Covers the two pieces this workspace uses:
//!
//! * [`thread::scope`] — crossbeam-style scoped threads (closure
//!   receives the scope, `scope()` returns `Err` if any child
//!   panicked), implemented over `std::thread::scope`;
//! * [`channel::bounded`] — a blocking, bounded MPMC channel with
//!   disconnect semantics, implemented with `Mutex` + `Condvar`. The
//!   replay pipeline uses it for backpressure: `send` blocks while the
//!   queue is full, so a fast producer can never balloon memory.

pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Result of a scope or a join: `Err` carries the panic payload.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// Handle passed to the scope closure; children may spawn siblings.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Owned handle to one spawned thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a child thread. As in crossbeam, the closure receives
        /// the scope itself (for nested spawns).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Run `f` with a scope that joins all spawned threads on exit.
    /// Returns `Err` when the closure or an unjoined child panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        cap: usize,
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Sending half; clone for multiple producers.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half; clone for multiple consumers.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// The message could not be delivered: all receivers are gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// The channel is empty and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Create a bounded channel holding at most `cap` queued messages.
    /// `cap` must be positive (a rendezvous channel is not needed here).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap > 0, "bounded channel capacity must be positive");
        let inner = Arc::new(Inner {
            cap,
            state: Mutex::new(State {
                queue: VecDeque::with_capacity(cap),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender { inner: inner.clone() },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Block until the queue has room, then enqueue. Fails only when
        /// every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.inner.state.lock().unwrap();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                if state.queue.len() < self.inner.cap {
                    state.queue.push_back(value);
                    drop(state);
                    self.inner.not_empty.notify_one();
                    return Ok(());
                }
                state = self.inner.not_full.wait(state).unwrap();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives. Fails once the queue is empty
        /// and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.inner.state.lock().unwrap();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    drop(state);
                    self.inner.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.inner.not_empty.wait(state).unwrap();
            }
        }

        /// Blocking iterator that ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.inner.state.lock().unwrap().senders += 1;
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.inner.state.lock().unwrap().receivers += 1;
            Receiver { inner: self.inner.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.inner.state.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.inner.state.lock().unwrap();
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                self.inner.not_full.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{channel, thread};

    #[test]
    fn scope_joins_and_returns() {
        let data = vec![1u64, 2, 3, 4];
        let total: u64 = thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn scope_reports_child_panic() {
        let result = thread::scope(|s| {
            let h = s.spawn(|_| panic!("child failure"));
            h.join()
        })
        .unwrap();
        assert!(result.is_err());
    }

    #[test]
    fn channel_delivers_in_order_with_backpressure() {
        let (tx, rx) = channel::bounded::<u32>(2);
        let got: Vec<u32> = thread::scope(|s| {
            s.spawn(move |_| {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
                // tx drops here; receiver sees disconnect.
            });
            rx.iter().collect()
        })
        .unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn multi_producer_multi_consumer_conserves_messages() {
        let (tx, rx) = channel::bounded::<u64>(4);
        let total: u64 = thread::scope(|s| {
            for p in 0..3u64 {
                let tx = tx.clone();
                s.spawn(move |_| {
                    for i in 0..50 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                });
            }
            drop(tx);
            let consumers: Vec<_> = (0..2)
                .map(|_| {
                    let rx = rx.clone();
                    s.spawn(move |_| rx.iter().map(|_| 1u64).sum::<u64>())
                })
                .collect();
            drop(rx);
            consumers.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 150);
    }

    #[test]
    fn send_fails_after_receivers_drop() {
        let (tx, rx) = channel::bounded::<u8>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
