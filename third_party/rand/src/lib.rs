//! Minimal, self-contained stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the real `rand`
//! cannot be resolved. This vendored version covers the surface the
//! workspace uses — `StdRng::seed_from_u64`, `gen_range` over integer
//! and float `Range`s, `gen_bool`, and `gen::<u64>()`/`gen::<f64>()` —
//! with a deterministic generator.
//!
//! [`rngs::StdRng`] is xoshiro256++ seeded through SplitMix64 (the
//! reference seeding scheme for the xoshiro family). It is *not* the
//! same stream as upstream rand's ChaCha12-based `StdRng`; everything
//! in this repository derives its randomness from seeds it controls, so
//! self-consistency — identical streams for identical seeds, forever —
//! is the property that matters, and it holds by construction. Range
//! sampling is unbiased (Lemire rejection for integers).

use std::ops::Range;

/// Seedable generators (only the `seed_from_u64` entry point is used).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling interface, method-compatible with `rand::Rng` for the calls
/// this workspace makes.
pub trait Rng {
    /// The raw 64-bit source every other method derives from.
    fn next_u64(&mut self) -> u64;

    /// Uniform value in `[range.start, range.end)`.
    ///
    /// # Panics
    /// Panics on an empty range, like upstream rand.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        unit_f64(self.next_u64()) < p
    }

    /// A value of a type with a canonical uniform distribution
    /// (`u64`/`u32` over their full range, `f64`/`f32` in `[0, 1)`).
    fn gen<T: FromRng>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }
}

/// Mantissa-width uniform float in `[0, 1)`.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types `Rng::gen` can produce (stand-in for rand's `Standard`
/// distribution).
pub trait FromRng {
    fn from_rng<R: Rng>(rng: &mut R) -> Self;
}

impl FromRng for u64 {
    fn from_rng<R: Rng>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl FromRng for u32 {
    fn from_rng<R: Rng>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl FromRng for f64 {
    fn from_rng<R: Rng>(rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl FromRng for f32 {
    fn from_rng<R: Rng>(rng: &mut R) -> f32 {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl FromRng for bool {
    fn from_rng<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a uniform value can be drawn from. A single generic impl
/// covers `Range<T>` so integer-literal ranges unify with the use
/// site's type (`arr[rng.gen_range(0..3)]` infers `usize`), exactly as
/// upstream rand's `SampleRange`/`SampleUniform` split behaves.
pub trait SampleRange<T> {
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

/// Types `gen_range` can produce.
pub trait SampleUniform: Sized + PartialOrd {
    fn sample_between<R: Rng>(rng: &mut R, start: Self, end: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: Rng>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_between(rng, self.start, self.end)
    }
}

/// Unbiased integer in `[0, span)` via Lemire's multiply-shift with
/// rejection.
#[inline]
fn uniform_below<R: Rng>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let mut m = (rng.next_u64() as u128) * (span as u128);
    if (m as u64) < span {
        let threshold = span.wrapping_neg() % span;
        while (m as u64) < threshold {
            m = (rng.next_u64() as u128) * (span as u128);
        }
    }
    (m >> 64) as u64
}

macro_rules! int_uniform {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: Rng>(rng: &mut R, start: $t, end: $t) -> $t {
                let span = (end as $u).wrapping_sub(start as $u) as u64;
                start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}
int_uniform!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: Rng>(rng: &mut R, start: $t, end: $t) -> $t {
                let unit = unit_f64(rng.next_u64()) as $t;
                let v = start + unit * (end - start);
                // Rounding can push the product onto the (excluded)
                // upper bound; step back inside the range.
                if v >= end {
                    <$t>::from_bits(end.to_bits() - 1).max(start)
                } else {
                    v.max(start)
                }
            }
        }
    )*};
}
float_uniform!(f32, f64);

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut state = seed;
            StdRng {
                s: [
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                ],
            }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic_and_sensitive() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
            let n = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn integer_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "{hits}");
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_produces_unit_floats_and_full_u64() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
        let mut distinct = std::collections::BTreeSet::new();
        for _ in 0..64 {
            distinct.insert(rng.gen::<u64>());
        }
        assert_eq!(distinct.len(), 64);
    }
}
