//! Minimal, self-contained stand-in for the `memmap2` crate.
//!
//! Covers the one shape this workspace uses: a **read-only, private**
//! mapping of a whole file ([`Mmap::map`]), dereferencing to `&[u8]`.
//! On Unix it is a direct wrapper over `mmap(2)`/`munmap(2)` declared
//! via `extern "C"` (libc is always linked on the supported targets,
//! so no crate dependency is needed for the no-network build); on
//! other platforms it degrades to reading the file into a heap buffer,
//! keeping the API total.
//!
//! Fidelity notes vs the real crate:
//!
//! * Only `Mmap::map` is provided (no mutable, anonymous, or
//!   offset/len-restricted mappings);
//! * `map` is `unsafe` for the same reason as upstream: the underlying
//!   file must not be truncated while the mapping is alive, or reads
//!   through the returned slice can fault (`SIGBUS`). Callers are
//!   expected to treat mapped feed files as immutable for the life of
//!   the view;
//! * the `offset` argument of `mmap(2)` is always 0, so the raw
//!   declaration sidesteps the 32-bit `off_t`/`mmap64` split; the
//!   wrapper targets the 64-bit Linux build environment.

use std::fs::File;
use std::io;
use std::ops::Deref;

/// A read-only memory map of an entire file.
pub struct Mmap {
    inner: imp::Inner,
}

impl Mmap {
    /// Map `file` read-only in its entirety. An empty file maps to an
    /// empty slice (mapping zero bytes is an `EINVAL`, not a feature).
    ///
    /// # Safety
    ///
    /// The caller must ensure the file is not truncated while the
    /// mapping is alive; accesses beyond a shrunken file raise
    /// `SIGBUS`. (Appends and in-place writes do not fault — they make
    /// the mapped bytes stale, which integrity checks must catch.)
    pub unsafe fn map(file: &File) -> io::Result<Mmap> {
        Ok(Mmap { inner: imp::Inner::map(file)? })
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.inner.as_slice()
    }
}

impl AsRef<[u8]> for Mmap {
    fn as_ref(&self) -> &[u8] {
        self.inner.as_slice()
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap").field("len", &self.inner.as_slice().len()).finish()
    }
}

#[cfg(unix)]
mod imp {
    use core::ffi::c_void;
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    // The two `mmap(2)` flags this crate ever passes.
    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    /// The platform mapping: page-backed on Unix. A zero-length file is
    /// represented by a null pointer (never handed to `munmap`).
    pub(crate) struct Inner {
        ptr: *mut c_void,
        len: usize,
    }

    // SAFETY: the mapping is read-only and owned; concurrent reads of
    // immutable pages from any thread are fine.
    unsafe impl Send for Inner {}
    unsafe impl Sync for Inner {}

    impl Inner {
        pub(crate) unsafe fn map(file: &File) -> io::Result<Inner> {
            let len = file.metadata()?.len();
            let len = usize::try_from(len).map_err(|_| {
                io::Error::new(io::ErrorKind::InvalidInput, "file too large to map")
            })?;
            if len == 0 {
                return Ok(Inner { ptr: core::ptr::null_mut(), len: 0 });
            }
            let ptr = mmap(
                core::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            );
            if ptr as isize == -1 {
                Err(io::Error::last_os_error())
            } else {
                Ok(Inner { ptr, len })
            }
        }

        pub(crate) fn as_slice(&self) -> &[u8] {
            if self.ptr.is_null() {
                &[]
            } else {
                // SAFETY: ptr/len came from a successful mmap and stay
                // valid until Drop; the mapping is never written.
                unsafe { core::slice::from_raw_parts(self.ptr as *const u8, self.len) }
            }
        }
    }

    impl Drop for Inner {
        fn drop(&mut self) {
            if !self.ptr.is_null() {
                // SAFETY: exactly the region a successful mmap returned.
                unsafe {
                    munmap(self.ptr, self.len);
                }
            }
        }
    }
}

#[cfg(not(unix))]
mod imp {
    use std::fs::File;
    use std::io::{self, Read};

    /// Heap fallback: no page cache sharing, but the same API, so
    /// callers need no platform gates of their own.
    pub(crate) struct Inner {
        buf: Vec<u8>,
    }

    impl Inner {
        pub(crate) unsafe fn map(file: &File) -> io::Result<Inner> {
            let mut buf = Vec::new();
            (&*file).read_to_end(&mut buf)?;
            Ok(Inner { buf })
        }

        pub(crate) fn as_slice(&self) -> &[u8] {
            &self.buf
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(tag: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir()
            .join(format!("memmap2_test_{tag}_{}", std::process::id()));
        let mut f = File::create(&path).unwrap();
        f.write_all(bytes).unwrap();
        path
    }

    #[test]
    fn maps_whole_file() {
        let payload: Vec<u8> = (0..8192u32).flat_map(|i| i.to_le_bytes()).collect();
        let path = temp_file("whole", &payload);
        let file = File::open(&path).unwrap();
        let map = unsafe { Mmap::map(&file) }.unwrap();
        assert_eq!(&*map, payload.as_slice());
        drop(map);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = temp_file("empty", &[]);
        let file = File::open(&path).unwrap();
        let map = unsafe { Mmap::map(&file) }.unwrap();
        assert!(map.is_empty());
        drop(map);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapping_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Mmap>();
    }
}
