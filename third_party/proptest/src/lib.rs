//! Minimal, self-contained stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(...)]`
//! header), [`Strategy`] over numeric ranges / tuples /
//! `prop::collection::vec` / `prop_map`, and the `prop_assert!` family.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with its inputs printed
//!   (every strategy value is `Debug`), but is not minimized.
//! * **Deterministic cases.** Case `i` of a test derives its RNG from
//!   (test name, `i`), so failures reproduce without a persistence
//!   file. Set `PROPTEST_CASES` to change the per-test case count
//!   (default 32, chosen for single-core CI budgets).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Debug;
use std::ops::Range;

/// Number of cases each property runs (overridable per test via
/// `#![proptest_config(ProptestConfig::with_cases(n))]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(32);
        ProptestConfig { cases }
    }
}

/// Deterministic per-case RNG. Public because the `proptest!` expansion
/// references it; not part of the mimicked proptest API.
pub struct TestRng(StdRng);

impl TestRng {
    pub fn for_case(test_name: &str, case: u32) -> TestRng {
        // FNV-1a over the test path, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }

    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// A generator of test values. Real proptest separates strategies from
/// value trees (for shrinking); without shrinking, a strategy is just a
/// seeded sampler.
pub trait Strategy {
    type Value: Debug;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy yielding one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I, 9 J)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Acceptable size arguments for [`vec`]: a fixed length or a
    /// half-open range.
    pub trait SizeRange {
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.rng().gen_range(self.clone())
        }
    }

    /// Strategy for `Vec`s of `element` values with `size` elements.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property test module needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig,
        Strategy,
    };
    /// `prop::collection::vec(...)` paths resolve through this alias.
    pub use crate as prop;
}

/// Without shrinking, a failed property assertion simply panics; the
/// `proptest!` runner prints the generated inputs first.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The test-definition macro. Each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` (the attribute is written explicitly in this
/// workspace's tests, as in real proptest) that samples `config.cases`
/// inputs and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (@funcs ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let __strategy = ($($strategy,)+);
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                let __values = $crate::Strategy::sample(&__strategy, &mut __rng);
                let __debug_values = format!("{:?}", __values);
                let ($($arg,)+) = __values;
                // Bodies run in a Result-returning closure, as in real
                // proptest, so `return Ok(())` works as an early exit.
                let __result = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        || -> ::std::result::Result<(), ::std::string::String> {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        },
                    ),
                );
                match __result {
                    ::std::result::Result::Ok(::std::result::Result::Ok(())) => {}
                    ::std::result::Result::Ok(::std::result::Result::Err(__msg)) => {
                        panic!(
                            "proptest case {}/{} failed for {}:\n  inputs: {}\n  {}",
                            __case + 1,
                            __config.cases,
                            stringify!($name),
                            __debug_values,
                            __msg,
                        );
                    }
                    ::std::result::Result::Err(__panic) => {
                        eprintln!(
                            "proptest case {}/{} failed for {}:\n  inputs: {}",
                            __case + 1,
                            __config.cases,
                            stringify!($name),
                            __debug_values,
                        );
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        }
        $crate::proptest!(@funcs ($config) $($rest)*);
    };

    (@funcs ($config:expr)) => {};

    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@funcs ($config) $($rest)*);
    };

    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Ranges respect their bounds.
        #[test]
        fn ranges_in_bounds(x in 3u32..17, f in 0.25f64..0.75, n in -9i64..-2) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
            prop_assert!((-9..-2).contains(&n));
        }

        /// Vec strategy honours its size range and element strategy,
        /// and prop_map transforms values.
        #[test]
        fn vec_and_map_compose(
            v in prop::collection::vec((0u16..10, 0u32..5), 1..20),
            doubled in (1u8..100).prop_map(|x| x as u16 * 2),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&(a, b)| a < 10 && b < 5));
            prop_assert_eq!(doubled % 2, 0);
            prop_assert!(doubled >= 2);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        /// The config header controls the case count (observable via
        /// determinism: same name + case index = same sample).
        #[test]
        fn config_header_accepted(x in 0u64..1000) {
            prop_assert!(x < 1000);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::TestRng::for_case("some::test", 3);
        let mut b = crate::TestRng::for_case("some::test", 3);
        let mut c = crate::TestRng::for_case("some::test", 4);
        let s = 0u64..u64::MAX;
        assert_eq!(Strategy::sample(&s, &mut a), Strategy::sample(&s, &mut b));
        assert_ne!(Strategy::sample(&s, &mut a), Strategy::sample(&s, &mut c));
    }
}
