//! Network-performance deep-dive: Sections 4 and 5 (Figs. 8–12).
//!
//! ```sh
//! cargo run --release --example network_performance
//! ```
//!
//! Prints the KPI panels — downlink/uplink volume, active users,
//! throughput, radio load — for the UK and its regions, the
//! geodemographic clusters, and the Inner-London postal districts.

use cellscope::analysis::KpiField;
use cellscope::scenario::figures::{self, KpiPanel};
use cellscope::scenario::{run_study, ScenarioConfig};

fn print_panel(panel: &KpiPanel) {
    println!("  [{}]", panel.title);
    for line in &panel.lines {
        let row: String = line
            .weekly_pct
            .iter()
            .map(|(w, v)| match v {
                Some(v) => format!("w{w}:{v:+.0} "),
                None => format!("w{w}:- "),
            })
            .collect();
        println!("    {:<28} {row}", line.label);
    }
}

fn main() {
    let dataset = run_study(&ScenarioConfig::small(2020)).expect("study");

    println!("== Fig 8: all-traffic KPIs, weekly Δ% vs own week-9 median ==");
    for panel in figures::fig8(&dataset) {
        print_panel(&panel);
    }

    println!("\n== Fig 10: KPIs per geodemographic cluster ==");
    let f10 = figures::fig10(&dataset);
    for panel in f10
        .panels
        .iter()
        .filter(|p| matches!(p.field, KpiField::DlVolume | KpiField::ConnectedUsers))
    {
        print_panel(panel);
    }
    println!("  correlation between total users and DL volume (Section 4.4):");
    for (cluster, r) in &f10.user_volume_correlation {
        println!(
            "    {:<28} r = {}",
            cluster,
            r.map(|r| format!("{r:+.3}")).unwrap_or_else(|| "-".into())
        );
    }

    println!("\n== Fig 11: Inner-London postal districts ==");
    for panel in figures::fig11(&dataset)
        .iter()
        .filter(|p| matches!(p.field, KpiField::DlVolume | KpiField::ConnectedUsers))
    {
        print_panel(panel);
    }

    println!("\n== Fig 12: the three London clusters ==");
    for panel in figures::fig12(&dataset)
        .iter()
        .filter(|p| matches!(p.field, KpiField::DlVolume | KpiField::UlVolume))
    {
        print_panel(panel);
    }

    // Section 4.3's takeaway in one line.
    let f8 = figures::fig8(&dataset);
    let dl = f8.iter().find(|p| p.field == KpiField::DlVolume).unwrap();
    let wk17 = |label: &str| {
        dl.lines
            .iter()
            .find(|l| l.label == label)
            .and_then(|l| l.weekly_pct.iter().find(|(w, _)| *w == 17).and_then(|(_, v)| *v))
            .unwrap_or(f64::NAN)
    };
    println!(
        "\nweek-17 DL volume: UK {:+.0}%, Inner London {:+.0}%, Outer London {:+.0}% \
         (paper: -24%, -41%, -15%)",
        wk17("UK - all regions"),
        wk17("Inner London"),
        wk17("Outer London"),
    );
}
