//! Mobility deep-dive: the paper's Section 3 on one terminal screen.
//!
//! ```sh
//! cargo run --release --example lockdown_mobility
//! ```
//!
//! Renders the national gyration/entropy time series (Fig. 3) as ASCII
//! sparklines, the regional and geodemographic breakdowns (Figs. 5–6),
//! and the Inner-London relocation matrix (Fig. 7).

use cellscope::scenario::{figures, run_study, ScenarioConfig};
use cellscope::time::IsoWeek;

/// Render a daily Δ% series as a sparkline between -100% and +50%.
fn sparkline(series: &[Option<f64>]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    series
        .iter()
        .map(|v| match v {
            None => ' ',
            Some(v) => {
                let t = ((v + 100.0) / 150.0).clamp(0.0, 1.0);
                GLYPHS[((t * 7.0).round()) as usize]
            }
        })
        .collect()
}

fn main() {
    let dataset = run_study(&ScenarioConfig::small(2020)).expect("study");
    let clock = dataset.clock;

    let f3 = figures::fig3(&dataset);
    println!("== Fig 3: national mobility, daily Δ% vs week 9 ==");
    println!("           {}", day_axis(&clock));
    println!("gyration   {}", sparkline(&f3.gyration_daily_pct));
    println!("entropy    {}", sparkline(&f3.entropy_daily_pct));
    let trough = f3
        .gyration_daily_pct
        .iter()
        .flatten()
        .fold(f64::MAX, |a, &b| a.min(b));
    println!("gyration trough: {trough:+.1}% (paper: ≈ -50%)\n");

    println!("== Fig 5: regions (weekly gyration Δ% vs national wk9) ==");
    for region in figures::fig5(&dataset) {
        let row: String = region
            .weekly
            .iter()
            .map(|(w, g, _)| format!("w{w}:{:+.0} ", g.unwrap_or(f64::NAN)))
            .collect();
        println!("  {:<22} {row}", region.group);
    }

    println!("\n== Fig 6: geodemographic clusters (weekly gyration Δ%) ==");
    for cluster in figures::fig6(&dataset) {
        let row: String = cluster
            .weekly
            .iter()
            .map(|(w, g, _)| format!("w{w}:{:+.0} ", g.unwrap_or(f64::NAN)))
            .collect();
        println!("  {:<28} {row}", cluster.group);
    }

    println!("\n== Fig 7: Inner-London residents present per county ==");
    println!("   (daily Δ% vs week-9 median, sparklines)");
    let f7 = figures::fig7(&dataset);
    for (county, row) in &f7.rows {
        println!("  {:<20} {}", county, sparkline(row));
    }

    // The takeaway numbers of Section 3.4.
    let inner = &f7.rows[0].1;
    let lockdown_start = clock
        .days_in_week(IsoWeek { year: 2020, week: 13 })
        .next()
        .unwrap() as usize;
    let after: Vec<f64> = inner[lockdown_start..].iter().flatten().copied().collect();
    println!(
        "\nInner London residents present after lockdown: {:+.1}% (paper: ≈ -10%)",
        after.iter().sum::<f64>() / after.len() as f64
    );
}

/// Week markers aligned with the daily series (one char per day).
fn day_axis(clock: &cellscope::time::SimClock) -> String {
    let mut axis = vec![b' '; clock.num_days()];
    for day in clock.days() {
        let date = clock.date(day);
        if date.weekday() == cellscope::time::Weekday::Monday {
            let w = date.iso_week().week;
            let label = format!("{w}");
            for (i, ch) in label.bytes().enumerate() {
                let idx = day as usize + i;
                if idx < axis.len() {
                    axis[idx] = ch;
                }
            }
        }
    }
    String::from_utf8(axis).expect("ascii")
}
