//! The downstream-user story, end to end: export raw feeds to disk,
//! forget the simulator exists, and run the paper's methodology on the
//! files alone.
//!
//! ```sh
//! cargo run --release --example feed_analysis
//! ```
//!
//! Steps:
//! 1. generate a few study days of signaling events and write them as
//!    JSONL (what `feedgen` produces);
//! 2. read them back and join against the topology feed (cell → tower
//!    location), exactly the join an analyst does on operator exports;
//! 3. drive [`cellscope::analysis::MobilityStudy`] with the joined
//!    dwell and report the mobility change — using nothing but files.

use cellscope::analysis::study::{MobilityStudy, StudyConfig, UserDayDwell};
use cellscope::analysis::TowerDwell;
use cellscope::mobility::TrajectoryGenerator;
use cellscope::scenario::{ScenarioConfig, World};
use cellscope::signaling::{
    read_events_jsonl, reconstruct_dwell, write_events_jsonl, EventGenerator, SignalingEvent,
};
use std::collections::BTreeMap;
use std::io::BufReader;

fn main() {
    let config = ScenarioConfig::tiny(7);
    let world = World::build(&config);
    let tmp = std::env::temp_dir().join("cellscope_feed_analysis");
    std::fs::create_dir_all(&tmp).expect("temp dir");

    // ---- 1. Export: a baseline day and a lockdown day ------------------
    let baseline_day = world.clock.day_of(cellscope::time::Date::ymd(2020, 2, 25)).unwrap();
    let lockdown_day = world.clock.day_of(cellscope::time::Date::ymd(2020, 4, 7)).unwrap();
    let trajgen =
        TrajectoryGenerator::new(&world.geo, &world.behavior, world.clock, config.seed);
    let eventgen = EventGenerator::new(
        &world.topo,
        &world.catalog,
        world.anonymizer,
        config.events,
    );
    for &day in &[baseline_day, lockdown_day] {
        let path = tmp.join(format!("events_d{day:03}.jsonl"));
        let file = std::fs::File::create(&path).expect("create feed file");
        let mut writer = std::io::BufWriter::new(file);
        for sub in world.population.subscribers() {
            let traj = trajgen.generate(sub, day);
            let events = eventgen.generate(sub, &traj);
            write_events_jsonl(&mut writer, &events).expect("write feed");
        }
        println!("exported {}", path.display());
    }

    // The topology "feed": cell id → tower (site) id and location.
    // An analyst gets this as a CSV; we build the same lookup here.
    let cell_to_tower: Vec<(u32, f64, f64)> = world
        .topo
        .cells()
        .iter()
        .map(|c| {
            let site = world.topo.site(c.site);
            (site.id.0, site.location.x, site.location.y)
        })
        .collect();

    // ---- 2 + 3. Read back and analyze — files only from here ----------
    let mut study: MobilityStudy<&str> =
        MobilityStudy::new(StudyConfig::default(), world.clock.num_days());
    let mut per_day_mean = Vec::new();
    for &day in &[baseline_day, lockdown_day] {
        let path = tmp.join(format!("events_d{day:03}.jsonl"));
        let file = std::fs::File::open(&path).expect("open feed file");
        let events = read_events_jsonl(BufReader::new(file)).expect("parse feed");
        println!("day {day}: {} events read back", events.len());

        // Group the stream by user (it is already day-pure).
        let mut by_user: BTreeMap<u64, Vec<SignalingEvent>> = BTreeMap::new();
        for ev in events {
            by_user.entry(ev.anon_id).or_default().push(ev);
        }
        for (user, mut user_events) in by_user {
            user_events.sort_by_key(|e| e.minute);
            // Event stream → per-cell dwell → tower dwell (the topology
            // join).
            let dwell: Vec<TowerDwell> = reconstruct_dwell(&user_events)
                .into_iter()
                .map(|rec| {
                    let (tower, x, y) = cell_to_tower[rec.cell.0 as usize];
                    TowerDwell {
                        tower,
                        location: cellscope::geo::Point::new(x, y),
                        seconds: rec.minutes as f64 * 60.0,
                    }
                })
                .collect();
            study.ingest(
                UserDayDwell { user, day, dwell: &dwell, night_minutes: &[] },
                &["national"],
            );
        }
        per_day_mean.push(study.gyration().mean(&"national", day).unwrap());
    }
    study.finish();

    let (baseline, lockdown) = (per_day_mean[0], per_day_mean[1]);
    let delta = (lockdown / baseline - 1.0) * 100.0;
    println!(
        "\nmean radius of gyration: baseline {baseline:.2} km -> lockdown {lockdown:.2} km ({delta:+.1}%)"
    );
    println!("(computed purely from on-disk feeds — no simulator state was consulted)");
    assert!(delta < -30.0, "lockdown must show in the feeds: {delta}");
}
