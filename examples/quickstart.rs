//! Quickstart: build a synthetic country, run the study, print the
//! headline findings.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! This runs the whole pipeline end-to-end at a small scale: synthetic
//! UK geography → radio deployment → subscriber population → 100
//! simulated days of trajectories, signaling and traffic → the paper's
//! analysis. Expect a few seconds in release mode.

use cellscope::scenario::{figures, run_study, ScenarioConfig};

fn main() {
    // Everything derives from one seed; change it and the whole study
    // reproduces differently (but deterministically).
    let config = ScenarioConfig::small(2020);
    println!(
        "simulating {} subscribers over {} days…",
        config.population.num_subscribers, 100
    );
    let dataset = run_study(&config).expect("study");

    println!(
        "study population: {} subscribers ({} with detected homes)\n",
        dataset.study_population, dataset.homes_detected
    );

    // The abstract's headline numbers, paper vs this run.
    let h = figures::headline(&dataset);
    let pct = |v: Option<f64>| v.map(|x| format!("{x:+.1}%")).unwrap_or_else(|| "-".into());
    println!("{:<44}{:>12}{:>12}", "finding", "paper", "this run");
    println!("{:-<68}", "");
    for (name, paper, measured) in [
        ("mobility (gyration) trough", "-50%", pct(h.gyration_trough_pct)),
        ("mobility entropy trough (smaller)", "-40%*", pct(h.entropy_trough_pct)),
        ("downlink volume, week 10", "+8%", pct(h.dl_volume_week10_pct)),
        ("downlink volume, week 17", "-24%", pct(h.dl_volume_week17_pct)),
        ("radio load, week 16", "-15.1%", pct(h.radio_load_week16_pct)),
        ("voice volume peak", "+140%", pct(h.voice_volume_peak_pct)),
        ("voice DL loss peak", ">+100%", pct(h.voice_dl_loss_peak_pct)),
        ("Inner London residents absent", "~10%", pct(h.london_absent_pct)),
        (
            "time on 4G",
            "75%",
            format!("{:.0}%", h.rat_4g_share * 100.0),
        ),
        (
            "home detection r² vs census",
            "0.955",
            h.home_validation_r2
                .map(|r| format!("{r:.3}"))
                .unwrap_or_else(|| "-".into()),
        ),
    ] {
        println!("{name:<44}{paper:>12}{measured:>12}");
    }
    println!("\n(*) the paper reports the entropy drop qualitatively: smaller than gyration's.");
}
