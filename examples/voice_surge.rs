//! The voice surge and the interconnect incident (Section 4.2, Fig. 9).
//!
//! ```sh
//! cargo run --release --example voice_surge
//! ```
//!
//! Also demonstrates a *what-if* use of the library: rerunning the same
//! study with a faster network-operations response shows the loss spike
//! shrinking — the counterfactual the paper's operators lived through.

use cellscope::analysis::KpiField;
use cellscope::scenario::{figures, run_study, ScenarioConfig};

fn print_voice(dataset: &cellscope::scenario::StudyDataset, label: &str) {
    let f9 = figures::fig9(dataset);
    let series = |field: KpiField| -> String {
        f9.panels
            .iter()
            .find(|p| p.field == field)
            .unwrap()
            .lines[0]
            .weekly_pct
            .iter()
            .map(|(w, v)| match v {
                Some(v) => format!("w{w}:{v:+.0} "),
                None => format!("w{w}:- "),
            })
            .collect()
    };
    println!("-- {label} --");
    println!("  volume      {}", series(KpiField::VoiceVolume));
    println!("  DL loss     {}", series(KpiField::VoiceDlLoss));
    println!("  UL loss     {}", series(KpiField::VoiceUlLoss));

    // Interconnect life cycle.
    let upgrade = dataset
        .interconnect_daily
        .iter()
        .position(|o| o.upgraded_today);
    let congested_days = dataset
        .interconnect_daily
        .iter()
        .filter(|o| o.congested)
        .count();
    match upgrade {
        Some(day) => println!(
            "  interconnect: {} congested days; capacity upgraded on {} (week {})",
            congested_days,
            dataset.clock.date(day as u16),
            dataset.clock.date(day as u16).iso_week().week
        ),
        None => println!("  interconnect: {congested_days} congested days; no upgrade needed"),
    }
    let peak_util = dataset
        .interconnect_daily
        .iter()
        .map(|o| o.utilization)
        .fold(0.0f64, f64::max);
    println!("  peak interconnect utilization: {:.0}%\n", peak_util * 100.0);
}

fn main() {
    // The study as the paper's operators experienced it: the surge hits
    // a link dimensioned with normal growth headroom, and provisioning
    // more capacity takes nearly three weeks.
    let config = ScenarioConfig::small(2020);
    let dataset = run_study(&config).expect("study");
    println!("== as measured (ops response ≈ 3 weeks) ==\n");
    print_voice(&dataset, "voice KPIs, weekly Δ% vs week 9");

    // What-if: a one-week provisioning turnaround.
    let mut fast = ScenarioConfig::small(2020);
    fast.interconnect.response_delay_days = 7;
    let fast_ds = run_study(&fast).expect("study");
    println!("== what-if: ops responds within a week ==\n");
    print_voice(&fast_ds, "voice KPIs, weekly Δ% vs week 9");

    // Compare the loss peaks.
    let peak = |ds: &cellscope::scenario::StudyDataset| -> f64 {
        figures::fig9(ds)
            .panels
            .iter()
            .find(|p| p.field == KpiField::VoiceDlLoss)
            .unwrap()
            .lines[0]
            .weekly_pct
            .iter()
            .filter_map(|(_, v)| *v)
            .fold(f64::MIN, f64::max)
    };
    println!(
        "DL loss peak: measured {:+.0}% vs fast-response {:+.0}% — the cost of slow provisioning",
        peak(&dataset),
        peak(&fast_ds)
    );
}
