//! Counterfactual: the same spring without a lockdown.
//!
//! ```sh
//! cargo run --release --example counterfactual
//! ```
//!
//! Runs the study twice — once under the UK's 2020 intervention
//! schedule, once under [`PhaseSchedule::no_intervention`] — with identical
//! seeds, so every difference between the two runs is attributable to
//! policy. This is the cleanest demonstration that the reproduction's
//! effects are *caused* by the modelled interventions rather than baked
//! into the data: remove the policy and the paper's findings vanish.

use cellscope::analysis::KpiField;
use cellscope::epidemic::PhaseSchedule;
use cellscope::scenario::{figures, run_study, ScenarioConfig};

fn main() {
    let mut factual_cfg = ScenarioConfig::small(2020);
    factual_cfg.population.num_subscribers = 4_000;
    let mut counter_cfg = factual_cfg.clone();
    counter_cfg.schedule = PhaseSchedule::no_intervention();

    println!("simulating the factual (lockdown) arm…");
    let factual = run_study(&factual_cfg).expect("study");
    println!("simulating the counterfactual (no intervention) arm…\n");
    let counterfactual = run_study(&counter_cfg).expect("study");

    let summarize = |ds: &cellscope::scenario::StudyDataset| -> (f64, f64, f64, f64) {
        let f3 = figures::fig3(ds);
        let gyr17 = f3
            .weekly
            .iter()
            .find(|(w, _, _)| *w == 17)
            .and_then(|(_, g, _)| *g)
            .unwrap_or(f64::NAN);
        let dl = figures::fig8(ds)
            .into_iter()
            .find(|p| p.field == KpiField::DlVolume)
            .unwrap();
        let dl17 = dl.lines[0]
            .weekly_pct
            .iter()
            .find(|(w, _)| *w == 17)
            .and_then(|(_, v)| *v)
            .unwrap_or(f64::NAN);
        let voice = figures::fig9(ds).panels[0].lines[0]
            .weekly_pct
            .iter()
            .filter_map(|(_, v)| *v)
            .fold(f64::MIN, f64::max);
        let f7 = figures::fig7(ds);
        let london = {
            let row = &f7.rows[0].1;
            let start = ds.clock.num_days() / 2;
            let vals: Vec<f64> = row[start..].iter().flatten().copied().collect();
            vals.iter().sum::<f64>() / vals.len().max(1) as f64
        };
        (gyr17, dl17, voice, london)
    };

    let (f_gyr, f_dl, f_voice, f_london) = summarize(&factual);
    let (c_gyr, c_dl, c_voice, c_london) = summarize(&counterfactual);

    println!("{:<40}{:>12}{:>16}", "metric (week 17 / peak)", "lockdown", "no intervention");
    println!("{:-<68}", "");
    println!("{:<40}{:>11.1}%{:>15.1}%", "mobility (gyration) Δ", f_gyr, c_gyr);
    println!("{:<40}{:>11.1}%{:>15.1}%", "downlink volume Δ", f_dl, c_dl);
    println!("{:<40}{:>11.1}%{:>15.1}%", "voice volume peak Δ", f_voice, c_voice);
    println!("{:<40}{:>11.1}%{:>15.1}%", "Inner London residents present Δ", f_london, c_london);

    assert!(f_gyr < c_gyr - 20.0, "lockdown must depress mobility");
    assert!(
        c_gyr.abs() < 15.0,
        "without intervention mobility should stay near baseline"
    );
    println!("\nwithout the interventions, every effect disappears — the study's signals are causal in the model.");
}
