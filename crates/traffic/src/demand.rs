//! Per-subscriber daily data demand.
//!
//! Produces, for one subscriber-day, the total *device* demand (what the
//! user wants to transfer) plus the coefficients that decide how much of
//! it rides the cellular network: the blended UL:DL ratio and WiFi
//! affinity from the app mix, and the location-dependent offload
//! fractions. The split between cellular and WiFi is what turns "people
//! stay home and watch more video" into *less* mobile traffic — the
//! central mechanism of the paper's Section 4.1.

use crate::apps::AppMix;
use cellscope_epidemic::PhaseSchedule;
use cellscope_geo::OacCluster;
use cellscope_mobility::{DeviceClass, Segment, Subscriber, VisitKind};
use cellscope_time::Date;
use serde::{Deserialize, Serialize};

/// Diurnal weights: fraction of a day's demand falling in each hour.
/// Mobile traffic is evening-heavy with a deep night trough.
pub const HOURLY_WEIGHTS: [f64; 24] = [
    0.010, 0.006, 0.004, 0.003, 0.003, 0.005, 0.012, 0.025, 0.040, 0.048, 0.052, 0.055, //
    0.058, 0.055, 0.052, 0.052, 0.055, 0.062, 0.072, 0.080, 0.082, 0.075, 0.058, 0.036,
];

/// Diurnal weights for voice minutes: daytime-heavy, evening peak.
pub const VOICE_HOURLY_WEIGHTS: [f64; 24] = [
    0.004, 0.002, 0.002, 0.002, 0.002, 0.004, 0.012, 0.030, 0.055, 0.068, 0.070, 0.072, //
    0.070, 0.065, 0.062, 0.060, 0.062, 0.072, 0.082, 0.080, 0.062, 0.038, 0.016, 0.008,
];

/// Demand-model parameters.
///
/// The `*_cellular` rates fold three real effects into one multiplier on
/// the diurnal demand profile: WiFi offload where WiFi exists,
/// cross-device substitution (at home the phone loses screen time to
/// TVs and laptops — more so when people are confined with them all
/// day), and context-dependent phone engagement (on the move the phone
/// is the only screen and it is cellular-only).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DemandConfig {
    /// Baseline daily DL device demand of a worker's smartphone, MB.
    pub base_dl_mb: f64,
    /// Cellular share of demand generated while at home, normal times.
    pub home_cellular_base: f64,
    /// How much of the at-home cellular share confinement erodes (WiFi
    /// settling + substitution toward the household's big screens).
    pub home_cellular_lockdown_cut: f64,
    /// How much of the at-home *uplink* cellular share confinement
    /// erodes. Smaller than the DL cut: the big screens that absorb
    /// video downlink at home do not absorb the phone's uplink
    /// (messaging, voice notes, photo uploads stay on the handset).
    pub home_ul_cellular_lockdown_cut: f64,
    /// Cellular share at the workplace (office WiFi, work focus).
    pub work_cellular: f64,
    /// Demand-rate multiplier on the move between places and at leisure
    /// destinations: on-the-go usage is cellular-only and concentrated
    /// (commutes, waiting, navigation, feeds).
    pub away_cellular: f64,
    /// Demand-rate multiplier during local wandering (walks, errands,
    /// the lockdown exercise hour): the phone is pocketed most of the
    /// time, so usage is far lighter than transit/leisure time.
    pub wander_cellular: f64,
    /// Daily demand of an M2M module, MB.
    pub m2m_daily_mb: f64,
}

impl Default for DemandConfig {
    fn default() -> Self {
        DemandConfig {
            base_dl_mb: 550.0,
            home_cellular_base: 0.22,
            home_cellular_lockdown_cut: 0.155,
            home_ul_cellular_lockdown_cut: 0.15,
            work_cellular: 0.27,
            away_cellular: 1.70,
            wander_cellular: 0.45,
            m2m_daily_mb: 0.4,
        }
    }
}

/// Resolved demand for one subscriber-day.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DayDemand {
    /// Total device DL demand, MB (pre-offload).
    pub dl_mb: f64,
    /// UL bytes per DL byte of today's blended mix.
    pub ul_ratio: f64,
    /// Fraction of traffic that moves to WiFi where available.
    pub wifi_affinity: f64,
}

/// The demand model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DemandModel {
    /// Tuning.
    pub config: DemandConfig,
    /// App mix (stateless blender).
    pub mix: AppMix,
    /// The behavioural schedule the news bump reacts to.
    pub schedule: PhaseSchedule,
}

impl Default for DemandModel {
    fn default() -> Self {
        DemandModel {
            config: DemandConfig::default(),
            mix: AppMix,
            schedule: PhaseSchedule::uk_2020(),
        }
    }
}

impl DemandModel {
    /// The week-10–11 news bump: anxiety-driven consumption as the
    /// pandemic dominated headlines, before mobility collapsed. This is
    /// what lifts downlink volume +8% in week 10 (Fig. 8) while
    /// everything else still looks normal. Driven by the schedule's
    /// news windows, so counterfactual schedules produce no bump.
    pub fn news_bump(&self, date: Date) -> f64 {
        self.schedule.news_multiplier(date)
    }

    /// Segment scaling of data appetite.
    fn segment_factor(segment: Segment) -> f64 {
        match segment {
            Segment::Worker { .. } => 1.0,
            Segment::Student => 1.35,
            Segment::Retiree => 0.45,
            Segment::HomeMaker => 0.75,
            Segment::Tourist => 1.25,
        }
    }

    /// Home-broadband quality by geodemographic cluster:
    /// `(extra cellular share at home, scaling of the confinement cut)`.
    ///
    /// Rural areas and deprived urban clusters have markedly worse fixed
    /// broadband (the UK's well-documented connectivity gap), so their
    /// phones keep carrying traffic at home and confinement cannot move
    /// it to WiFi — which is exactly why the paper finds rural downlink
    /// "largely stable" and Multicultural-Metropolitan London cells
    /// *gaining* traffic while Cosmopolitan cells collapse (Sections
    /// 4.4, 5.2).
    pub fn home_broadband_gap(cluster: OacCluster) -> (f64, f64) {
        match cluster {
            OacCluster::RuralResidents => (0.05, 0.55),
            OacCluster::HardPressedLiving => (0.04, 0.65),
            OacCluster::ConstrainedCityDwellers => (0.04, 0.65),
            OacCluster::MulticulturalMetropolitans => (0.05, 0.55),
            OacCluster::EthnicityCentral => (0.02, 0.85),
            _ => (0.0, 1.0),
        }
    }

    /// Resolve one subscriber-day's demand at restriction intensity `e`.
    pub fn for_subscriber(&self, sub: &Subscriber, date: Date, e: f64) -> DayDemand {
        if sub.device == DeviceClass::M2m {
            return DayDemand {
                dl_mb: self.config.m2m_daily_mb,
                ul_ratio: 1.0, // telemetry is mostly uplink-symmetric
                wifi_affinity: 0.0,
            };
        }
        let agg = self.mix.aggregate(e);
        let dl_mb = self.config.base_dl_mb
            * Self::segment_factor(sub.segment)
            * agg.dl_demand_multiplier
            * self.news_bump(date);
        DayDemand {
            dl_mb,
            ul_ratio: agg.ul_ratio,
            wifi_affinity: agg.wifi_affinity,
        }
    }

    /// Cellular demand-rate multiplier for a visit context.
    ///
    /// `confinement` is the ratcheted restriction level: once households
    /// settled onto their broadband during lockdown they did not come
    /// back even as mobility crept up — which is why the paper's DL
    /// volume stays low through weeks 18–19 despite mobility recovering.
    pub fn cellular_rate(&self, kind: VisitKind, cluster: OacCluster, confinement: f64) -> f64 {
        match kind {
            VisitKind::Home | VisitKind::SecondHome => {
                let (gap, cut_scale) = Self::home_broadband_gap(cluster);
                (self.config.home_cellular_base + gap
                    - self.config.home_cellular_lockdown_cut * cut_scale * confinement)
                    .max(0.02)
            }
            VisitKind::Work => self.config.work_cellular,
            VisitKind::Wander => self.config.wander_cellular,
            VisitKind::Leisure | VisitKind::Trip => self.config.away_cellular,
        }
    }

    /// Like [`DemandModel::cellular_rate`] but for the uplink, whose
    /// at-home share erodes less under confinement.
    pub fn cellular_ul_rate(&self, kind: VisitKind, cluster: OacCluster, confinement: f64) -> f64 {
        match kind {
            VisitKind::Home | VisitKind::SecondHome => {
                let (gap, cut_scale) = Self::home_broadband_gap(cluster);
                (self.config.home_cellular_base + gap
                    - self.config.home_ul_cellular_lockdown_cut * cut_scale * confinement)
                    .max(0.02)
            }
            other => self.cellular_rate(other, cluster, confinement),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellscope_geo::{OacCluster, ZoneId};
    use cellscope_mobility::{AnchorSet, SubscriberId};

    fn sub(device: DeviceClass, segment: Segment) -> Subscriber {
        Subscriber {
            id: SubscriberId(0),
            home_zone: ZoneId(0),
            home_cluster: OacCluster::Urbanites,
            device,
            native: true,
            segment,
            compliance: 0.9,
            anchors: AnchorSet::default(),
            relocation: None,
        }
    }

    #[test]
    fn hourly_weights_are_distributions() {
        for weights in [HOURLY_WEIGHTS, VOICE_HOURLY_WEIGHTS] {
            let total: f64 = weights.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "sum {total}");
            assert!(weights.iter().all(|&w| w > 0.0));
        }
        // Evening peak for data.
        assert!(HOURLY_WEIGHTS[20] > HOURLY_WEIGHTS[3] * 10.0);
    }

    #[test]
    fn m2m_demand_is_tiny_and_constant() {
        let m = DemandModel::default();
        let d1 = m.for_subscriber(
            &sub(DeviceClass::M2m, Segment::HomeMaker),
            Date::ymd(2020, 2, 25),
            0.0,
        );
        let d2 = m.for_subscriber(
            &sub(DeviceClass::M2m, Segment::HomeMaker),
            Date::ymd(2020, 4, 1),
            1.0,
        );
        assert_eq!(d1.dl_mb, d2.dl_mb);
        assert!(d1.dl_mb < 1.0);
        assert_eq!(d1.wifi_affinity, 0.0);
    }

    #[test]
    fn lockdown_raises_device_demand() {
        let m = DemandModel::default();
        let s = sub(DeviceClass::Smartphone, Segment::Worker { essential: false });
        let base = m.for_subscriber(&s, Date::ymd(2020, 2, 25), 0.0);
        let locked = m.for_subscriber(&s, Date::ymd(2020, 4, 1), 1.0);
        assert!(locked.dl_mb > base.dl_mb);
        assert!(locked.ul_ratio > base.ul_ratio);
    }

    #[test]
    fn news_bump_in_week_10() {
        let m = DemandModel::default();
        assert_eq!(m.news_bump(Date::ymd(2020, 3, 4)), 1.08); // wk 10
        assert_eq!(m.news_bump(Date::ymd(2020, 3, 11)), 1.05); // wk 11
        assert_eq!(m.news_bump(Date::ymd(2020, 2, 25)), 1.0); // wk 9
        assert_eq!(m.news_bump(Date::ymd(2020, 4, 1)), 1.0); // wk 14
        // Counterfactual schedule: no bump at all.
        let quiet = DemandModel {
            schedule: PhaseSchedule::no_intervention(),
            ..DemandModel::default()
        };
        assert_eq!(quiet.news_bump(Date::ymd(2020, 3, 4)), 1.0);
    }

    #[test]
    fn cellular_rate_hierarchy_and_confinement_cut() {
        let m = DemandModel::default();
        let urb = OacCluster::Urbanites;
        let home0 = m.cellular_rate(VisitKind::Home, urb, 0.0);
        let home1 = m.cellular_rate(VisitKind::Home, urb, 1.0);
        let work = m.cellular_rate(VisitKind::Work, urb, 0.0);
        let away = m.cellular_rate(VisitKind::Leisure, urb, 1.0);
        let wander = m.cellular_rate(VisitKind::Wander, urb, 1.0);
        assert!(home1 < home0, "confinement erodes at-home cellular use");
        assert!(home0 < work, "office WiFi is weaker than home WiFi");
        assert!(away > 1.0, "on-the-go usage is cellular-intensive");
        assert!(
            wander < 1.0 && wander > home1,
            "a pocketed phone on a walk sits between home and transit"
        );
        assert!(home1 > 0.0);
        // Second home behaves like home; trips like leisure.
        assert_eq!(
            m.cellular_rate(VisitKind::SecondHome, urb, 0.5),
            m.cellular_rate(VisitKind::Home, urb, 0.5)
        );
        assert_eq!(m.cellular_rate(VisitKind::Trip, urb, 0.0), away);
        // The uplink keeps more of its at-home cellular share.
        let ul_home1 = m.cellular_ul_rate(VisitKind::Home, urb, 1.0);
        assert!(ul_home1 > home1, "UL erodes less than DL at home");
        assert_eq!(m.cellular_ul_rate(VisitKind::Work, urb, 0.5), work);
    }

    #[test]
    fn broadband_gap_keeps_rural_homes_on_cellular() {
        let m = DemandModel::default();
        let rural1 = m.cellular_rate(VisitKind::Home, OacCluster::RuralResidents, 1.0);
        let urb1 = m.cellular_rate(VisitKind::Home, OacCluster::Urbanites, 1.0);
        let cosmo1 = m.cellular_rate(VisitKind::Home, OacCluster::Cosmopolitans, 1.0);
        // Rural homes keep far more traffic on cellular under lockdown.
        assert!(rural1 > 2.0 * urb1, "rural {rural1} vs urbanites {urb1}");
        // Well-connected city cores offload the most.
        assert!(cosmo1 <= urb1 + 1e-12);
        // Deprived urban clusters sit in between.
        let multi1 =
            m.cellular_rate(VisitKind::Home, OacCluster::MulticulturalMetropolitans, 1.0);
        assert!(multi1 > urb1 && multi1 <= rural1);
    }

    #[test]
    fn students_stream_more_than_retirees() {
        let m = DemandModel::default();
        let date = Date::ymd(2020, 2, 25);
        let student = m.for_subscriber(
            &sub(DeviceClass::Smartphone, Segment::Student),
            date,
            0.0,
        );
        let retiree = m.for_subscriber(
            &sub(DeviceClass::Smartphone, Segment::Retiree),
            date,
            0.0,
        );
        assert!(student.dl_mb > 2.0 * retiree.dl_mb);
    }
}
