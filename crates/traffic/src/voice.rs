//! The conversational-voice model.
//!
//! Section 4.2: voice traffic spiked ~140% in week 12 — "a predicted
//! seven years of growth … accommodated in the space of few days" —
//! with a surge in simultaneous voice users, and enough off-net volume
//! to congest the inter-MNO interconnect. [`VoiceModel`] provides the
//! per-subscriber call minutes over time and the VoLTE volume they
//! translate to.

use cellscope_epidemic::PhaseSchedule;
use cellscope_mobility::Segment;
use cellscope_time::Date;
use serde::{Deserialize, Serialize};

/// Voice demand parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VoiceModel {
    /// Baseline call minutes per subscriber per day (blended).
    pub baseline_minutes_per_day: f64,
    /// VoLTE volume per call minute, MB (AMR-WB + RTP/IP overhead).
    pub mb_per_minute: f64,
    /// Fraction of voice minutes that terminate off-net (crossing the
    /// inter-MNO interconnect).
    pub off_net_share: f64,
    /// The behavioural schedule the surge reacts to — the surge is a
    /// response to the scheduled events, not to the calendar, so a
    /// counterfactual schedule produces no surge.
    pub schedule: PhaseSchedule,
}

impl Default for VoiceModel {
    fn default() -> Self {
        VoiceModel {
            baseline_minutes_per_day: 10.0,
            mb_per_minute: 0.16,
            off_net_share: 0.55,
            schedule: PhaseSchedule::uk_2020(),
        }
    }
}

impl VoiceModel {
    /// The national voice surge multiplier on `date`, relative to the
    /// pre-pandemic baseline. The UK schedule calibrates it to Fig. 9:
    /// flat through week 10, climbing with the declaration (week 11),
    /// peaking ≈2.4× in week 12 (+140%), then settling on a high
    /// plateau that slowly decays — the paper reports the surge "peaked
    /// at 150% after lockdown" and stayed far above baseline throughout.
    pub fn surge(&self, date: Date) -> f64 {
        self.schedule.voice_surge(date)
    }

    /// Call minutes of one subscriber on `date`.
    ///
    /// Segments differ: retirees call more, tourists less; everything
    /// scales with the national surge.
    pub fn minutes_for(&self, segment: Segment, date: Date) -> f64 {
        let segment_factor = match segment {
            Segment::Worker { .. } => 1.0,
            Segment::Student => 0.7,
            Segment::Retiree => 1.5,
            Segment::HomeMaker => 1.2,
            Segment::Tourist => 0.5,
        };
        self.baseline_minutes_per_day * segment_factor * self.surge(date)
    }

    /// VoLTE volume (per direction, MB) for a number of call minutes.
    pub fn volume_mb(&self, minutes: f64) -> f64 {
        minutes * self.mb_per_minute
    }

    /// The share of a volume that crosses the interconnect.
    pub fn off_net_volume_mb(&self, volume_mb: f64) -> f64 {
        volume_mb * self.off_net_share
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> VoiceModel {
        VoiceModel::default()
    }

    #[test]
    fn baseline_weeks_are_flat() {
        let m = model();
        assert_eq!(m.surge(Date::ymd(2020, 2, 25)), 1.0); // week 9
        assert_eq!(m.surge(Date::ymd(2020, 3, 4)), 1.06); // week 10: first stir
    }

    #[test]
    fn week_12_peak_matches_paper() {
        let m = model();
        let peak = m.surge(Date::ymd(2020, 3, 18)); // week 12
        // +140% = 2.4x
        assert!((2.3..=2.5).contains(&peak), "peak {peak}");
        // Peak is the global maximum.
        let mut d = Date::ymd(2020, 2, 24);
        while d <= Date::ymd(2020, 5, 10) {
            assert!(m.surge(d) <= peak + 1e-9, "surge exceeds peak on {d}");
            d = d.add_days(1);
        }
    }

    #[test]
    fn surge_stays_elevated_through_the_study() {
        let m = model();
        let mut d = Date::ymd(2020, 3, 23);
        while d <= Date::ymd(2020, 5, 10) {
            assert!(m.surge(d) >= 1.6, "surge {} on {d}", m.surge(d));
            d = d.add_days(1);
        }
    }

    #[test]
    fn ramp_is_monotone_through_week_11() {
        let m = model();
        let mut prev = 0.0;
        let mut d = Date::ymd(2020, 3, 2);
        while d <= Date::ymd(2020, 3, 18) {
            let s = m.surge(d);
            assert!(s >= prev, "dip on {d}");
            prev = s;
            d = d.add_days(1);
        }
    }

    #[test]
    fn no_intervention_no_surge() {
        let m = VoiceModel {
            schedule: PhaseSchedule::no_intervention(),
            ..VoiceModel::default()
        };
        let mut d = Date::ymd(2020, 2, 1);
        while d <= Date::ymd(2020, 5, 10) {
            assert_eq!(m.surge(d), 1.0, "surge on {d}");
            d = d.add_days(1);
        }
    }

    #[test]
    fn segment_factors_order() {
        let m = model();
        let d = Date::ymd(2020, 2, 25);
        let worker = m.minutes_for(Segment::Worker { essential: false }, d);
        let retiree = m.minutes_for(Segment::Retiree, d);
        let tourist = m.minutes_for(Segment::Tourist, d);
        assert!(retiree > worker && worker > tourist);
    }

    #[test]
    fn volume_conversion() {
        let m = model();
        assert!((m.volume_mb(10.0) - 1.6).abs() < 1e-12);
        assert!((m.off_net_volume_mb(2.0) - 1.1).abs() < 1e-12);
    }
}
