//! QoS Class Identifiers.
//!
//! LTE bearers carry a QCI. The paper's KPI definitions hinge on two
//! groupings: "all bearers corresponding to QCI from 1 to 8" for data
//! volume, and "QCI value 1" alone for conversational voice (VoLTE).

use serde::{Deserialize, Serialize};

/// A QoS Class Identifier (1–9 standardized values modeled).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Qci(pub u8);

impl Qci {
    /// Conversational voice (VoLTE).
    pub const CONVERSATIONAL_VOICE: Qci = Qci(1);
    /// Default best-effort internet bearer.
    pub const DEFAULT_INTERNET: Qci = Qci(9);

    /// Whether the paper's data-volume KPIs include this bearer
    /// ("the sum of all data transferred on all cell bearers
    /// corresponding to QCI from 1 to 8").
    pub fn in_volume_aggregate(self) -> bool {
        (1..=8).contains(&self.0)
    }

    /// Whether this is the conversational-voice bearer.
    pub fn is_voice(self) -> bool {
        self == Qci::CONVERSATIONAL_VOICE
    }

    /// Whether this is a guaranteed-bit-rate QCI (1–4 per 3GPP).
    pub fn is_gbr(self) -> bool {
        (1..=4).contains(&self.0)
    }
}

impl std::fmt::Display for Qci {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "QCI{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn voice_is_qci1_and_gbr() {
        assert!(Qci::CONVERSATIONAL_VOICE.is_voice());
        assert!(Qci::CONVERSATIONAL_VOICE.is_gbr());
        assert!(Qci::CONVERSATIONAL_VOICE.in_volume_aggregate());
        assert_eq!(Qci::CONVERSATIONAL_VOICE.to_string(), "QCI1");
    }

    #[test]
    fn aggregate_covers_1_to_8_only() {
        for q in 1..=8 {
            assert!(Qci(q).in_volume_aggregate(), "QCI{q}");
        }
        assert!(!Qci(9).in_volume_aggregate());
        assert!(!Qci(0).in_volume_aggregate());
    }

    #[test]
    fn gbr_range() {
        assert!(Qci(4).is_gbr());
        assert!(!Qci(5).is_gbr());
        assert!(!Qci(9).is_gbr());
    }
}
