//! Presence × demand → per-(4G cell, hour) offered load.
//!
//! Walks each subscriber-day trajectory, splits the day's demand across
//! the hours of presence, applies location-dependent WiFi offload, adds
//! conversational voice, and accumulates everything into a per-cell
//! hourly grid ready for the radio scheduler. Traffic always rides the
//! site's 4G cell (the paper's KPI analysis covers 4G, where "users spend
//! on average 75% of the time" and which carries the overwhelming load).

use crate::demand::{DemandModel, HOURLY_WEIGHTS, VOICE_HOURLY_WEIGHTS};
use crate::throttle::ThrottlePolicy;
use crate::voice::VoiceModel;
use cellscope_mobility::{DayTrajectory, DeviceClass, Subscriber};
use cellscope_radio::{HourLoad, Topology};
use cellscope_time::Date;
use serde::{Deserialize, Serialize};

/// Offered load of one cell-hour (re-exported alias of the radio-side
/// input type: the generator writes exactly what the scheduler reads).
pub type CellHourLoad = HourLoad;

/// A day's accumulated offered load for every cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DayLoadGrid {
    loads: Vec<[HourLoad; 24]>,
    total_voice_mb: f64,
}

impl DayLoadGrid {
    /// An empty grid for `num_cells` cells.
    pub fn new(num_cells: usize) -> DayLoadGrid {
        DayLoadGrid {
            loads: vec![[HourLoad::default(); 24]; num_cells],
            total_voice_mb: 0.0,
        }
    }

    /// Reset in place for the next day (avoids reallocating ~MBs).
    pub fn clear(&mut self) {
        for cell in &mut self.loads {
            *cell = [HourLoad::default(); 24];
        }
        self.total_voice_mb = 0.0;
    }

    /// The accumulated load of one cell-hour.
    pub fn get(&self, cell: usize, hour: usize) -> &HourLoad {
        &self.loads[cell][hour]
    }

    /// National voice volume accumulated today (per direction, MB) —
    /// the interconnect's offered load is derived from this.
    pub fn total_voice_mb(&self) -> f64 {
        self.total_voice_mb
    }

    /// Iterate (cell index, hour, load) over non-empty cell-hours.
    pub fn iter_loaded(&self) -> impl Iterator<Item = (usize, usize, &HourLoad)> {
        self.loads.iter().enumerate().flat_map(|(ci, hours)| {
            hours
                .iter()
                .enumerate()
                .filter(|(_, l)| l.connected_users > 0.0 || l.offered_dl_mb > 0.0)
                .map(move |(h, l)| (ci, h, l))
        })
    }

    /// Number of cells the grid covers.
    pub fn num_cells(&self) -> usize {
        self.loads.len()
    }
}

/// The load generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadGenerator {
    /// Data-demand model.
    pub demand: DemandModel,
    /// Voice model.
    pub voice: VoiceModel,
    /// Content-provider throttling policy.
    pub throttle: ThrottlePolicy,
    /// Population scale factor: how many real subscribers one synthetic
    /// subscriber stands for. Calibrated by the runner so the median
    /// cell reaches a realistic utilization (every per-user quantity —
    /// volumes, user counts, voice — is multiplied by it).
    pub scale: f64,
}

impl Default for LoadGenerator {
    fn default() -> Self {
        LoadGenerator {
            demand: DemandModel::default(),
            voice: VoiceModel::default(),
            throttle: ThrottlePolicy::default(),
            scale: 1.0,
        }
    }
}

impl LoadGenerator {
    /// Accumulate one subscriber-day into the grid.
    ///
    /// `intensity` is the national restriction intensity of the date
    /// (the demand mix responds to it). `confinement` is the *ratcheted*
    /// restriction level driving at-home WiFi settling: households that
    /// moved onto broadband during lockdown stayed there even as
    /// restrictions eased. Presence itself already reflects behaviour
    /// via the trajectory.
    pub fn accumulate(
        &self,
        sub: &Subscriber,
        trajectory: &DayTrajectory,
        date: Date,
        intensity: f64,
        confinement: f64,
        topo: &Topology,
        grid: &mut DayLoadGrid,
    ) {
        if trajectory.visits.is_empty() {
            return;
        }
        let day = trajectory.day;
        let demand = self.demand.for_subscriber(sub, date, intensity);
        let voice_minutes = if sub.device == DeviceClass::Smartphone {
            self.voice.minutes_for(sub.segment, date)
        } else {
            0.0
        };
        let app_limit = self.throttle.app_limit_mbps(date);

        for visit in &trajectory.visits {
            // The visit's site must expose an active 4G cell to carry
            // KPI-visible traffic.
            let Some(cell) = topo
                .serving_cell(topo.site(visit.site).location, cellscope_radio::Rat::G4, day)
            else {
                continue;
            };
            let cell_idx = cell.index();

            let cellular_rate =
                self.demand.cellular_rate(visit.kind, sub.home_cluster, confinement);
            let cellular_ul_rate =
                self.demand.cellular_ul_rate(visit.kind, sub.home_cluster, confinement);

            // Spread the visit evenly over its bin's four hours.
            let per_hour_minutes = visit.minutes as f64 / 4.0;
            for hour in visit.bin.hours() {
                let h = hour as usize;
                let presence = per_hour_minutes / 60.0;
                // HOURLY_WEIGHTS describe a fully-present hour; a visit
                // covering `per_hour_minutes` of it generates the
                // proportional slice, so co-located visits of one hour
                // sum to exactly one hour of demand.
                let dl_device = demand.dl_mb * HOURLY_WEIGHTS[h] * presence;
                let dl_cellular = dl_device * cellular_rate * self.scale;
                let ul_cellular = dl_device * demand.ul_ratio * cellular_ul_rate * self.scale;

                let load = &mut grid.loads[cell_idx][h];
                load.offered_dl_mb += dl_cellular;
                load.offered_ul_mb += ul_cellular;
                load.connected_users += presence * self.scale;
                // Average concurrent active DL users contributed: the
                // fraction of the hour this user keeps the DL buffer
                // busy when served at the app-limited rate (Erlangs).
                let mb_per_hour_at_limit = app_limit * 450.0; // Mbps → MB/h
                load.active_dl_users += dl_cellular / mb_per_hour_at_limit;
                load.app_limit_mbps = app_limit;

                // Voice.
                if voice_minutes > 0.0 {
                    let minutes_here = voice_minutes
                        * VOICE_HOURLY_WEIGHTS[h]
                        * (per_hour_minutes / 60.0)
                        * self.scale;
                    let vol = self.voice.volume_mb(minutes_here);
                    load.voice.volume_mb += vol;
                    load.voice.simultaneous_users += minutes_here / 60.0;
                    grid.total_voice_mb += vol;
                }
            }
        }
    }

    /// The interconnect's offered load for a day, from the grid's
    /// accumulated voice volume.
    pub fn off_net_voice_mb(&self, grid: &DayLoadGrid) -> f64 {
        self.voice.off_net_volume_mb(grid.total_voice_mb())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellscope_epidemic::PhaseSchedule;
    use cellscope_geo::{Geography, SynthConfig};
    use cellscope_mobility::{
        BehaviorModel, Population, PopulationConfig, TrajectoryGenerator,
    };
    use cellscope_radio::DeployConfig;
    use cellscope_time::SimClock;

    struct World {
        geo: Geography,
        topo: Topology,
        pop: Population,
        behavior: BehaviorModel,
    }

    fn world() -> World {
        let geo = SynthConfig::small(6).build();
        let topo = DeployConfig::small(6).build(&geo);
        let pop = Population::synthesize(
            &PopulationConfig {
                num_subscribers: 1_500,
                seed: 6,
                ..PopulationConfig::default()
            },
            &PhaseSchedule::uk_2020().relocation_waves,
            &geo,
            &topo,
        );
        World {
            geo,
            topo,
            pop,
            behavior: BehaviorModel::new(PhaseSchedule::uk_2020()),
        }
    }

    fn day_grid(w: &World, day: u16) -> (DayLoadGrid, Date) {
        let clock = SimClock::study();
        let date = clock.date(day);
        let generator = TrajectoryGenerator::new(&w.geo, &w.behavior, clock, 6);
        let lg = LoadGenerator::default();
        let intensity = w.behavior.schedule().intensity(date);
        let mut grid = DayLoadGrid::new(w.topo.cells().len());
        for sub in w.pop.subscribers() {
            let traj = generator.generate(sub, day);
            lg.accumulate(sub, &traj, date, intensity, intensity, &w.topo, &mut grid);
        }
        (grid, date)
    }

    fn national(grid: &DayLoadGrid) -> (f64, f64, f64, f64) {
        let mut dl = 0.0;
        let mut ul = 0.0;
        let mut voice = 0.0;
        let mut users = 0.0;
        for (_, _, load) in grid.iter_loaded() {
            dl += load.offered_dl_mb;
            ul += load.offered_ul_mb;
            voice += load.voice.volume_mb;
            users += load.connected_users;
        }
        (dl, ul, voice, users)
    }

    #[test]
    fn baseline_day_volume_is_sane() {
        let w = world();
        // Study day 24 = Tue Feb 25 (week 9).
        let (grid, _) = day_grid(&w, 24);
        let (dl, ul, voice, _) = national(&grid);
        let smartphones = w
            .pop
            .subscribers()
            .iter()
            .filter(|s| s.device == DeviceClass::Smartphone)
            .count() as f64;
        // Per-smartphone cellular DL lands in a plausible band
        // (device demand ~550 MB, most offloaded to WiFi).
        let per_user = dl / smartphones;
        assert!(
            (60.0..320.0).contains(&per_user),
            "per-user cellular DL {per_user} MB"
        );
        // DL an order of magnitude above UL (paper Section 4.1).
        assert!(dl / ul > 5.0 && dl / ul < 25.0, "DL/UL {}", dl / ul);
        assert!(voice > 0.0);
    }

    #[test]
    fn lockdown_reduces_dl_but_grows_voice() {
        let w = world();
        let (base, _) = day_grid(&w, 24); // Tue week 9
        let (lock, _) = day_grid(&w, 59); // Tue Mar 31, week 14
        let (dl_b, ul_b, v_b, u_b) = national(&base);
        let (dl_l, ul_l, v_l, u_l) = national(&lock);
        assert!(dl_l < 0.92 * dl_b, "DL {dl_b} -> {dl_l}");
        // Voice roughly doubles or more.
        assert!(v_l > 1.8 * v_b, "voice {v_b} -> {v_l}");
        // Uplink falls much less than downlink.
        let dl_drop = 1.0 - dl_l / dl_b;
        let ul_drop = 1.0 - ul_l / ul_b;
        assert!(ul_drop < dl_drop, "UL drop {ul_drop} vs DL drop {dl_drop}");
        // Connected users stay near-constant nationally (phones still on),
        // modulo departed tourists/relocators.
        assert!(u_l > 0.85 * u_b, "users {u_b} -> {u_l}");
    }

    #[test]
    fn grid_clear_resets_everything() {
        let w = world();
        let (mut grid, _) = day_grid(&w, 24);
        assert!(grid.total_voice_mb() > 0.0);
        grid.clear();
        assert_eq!(grid.total_voice_mb(), 0.0);
        assert_eq!(grid.iter_loaded().count(), 0);
    }

    #[test]
    fn off_net_share_applied() {
        let w = world();
        let (grid, _) = day_grid(&w, 24);
        let lg = LoadGenerator::default();
        let off_net = lg.off_net_voice_mb(&grid);
        assert!((off_net / grid.total_voice_mb() - 0.55).abs() < 1e-9);
    }

    #[test]
    fn empty_trajectory_contributes_nothing() {
        let w = world();
        let lg = LoadGenerator::default();
        let mut grid = DayLoadGrid::new(w.topo.cells().len());
        let sub = &w.pop.subscribers()[0];
        let empty = DayTrajectory {
            subscriber: sub.id,
            day: 0,
            visits: Vec::new(),
        };
        lg.accumulate(sub, &empty, Date::ymd(2020, 2, 1), 0.0, 0.0, &w.topo, &mut grid);
        assert_eq!(grid.iter_loaded().count(), 0);
    }

    #[test]
    fn m2m_volume_is_negligible() {
        let w = world();
        let clock = SimClock::study();
        let generator = TrajectoryGenerator::new(&w.geo, &w.behavior, clock, 6);
        let lg = LoadGenerator::default();
        let mut grid = DayLoadGrid::new(w.topo.cells().len());
        let date = clock.date(24);
        for sub in w.pop.subscribers() {
            if sub.device == DeviceClass::M2m {
                let traj = generator.generate(sub, 24);
                lg.accumulate(sub, &traj, date, 0.0, 0.0, &w.topo, &mut grid);
            }
        }
        let (dl, _, voice, _) = national(&grid);
        let m2m_count = w
            .pop
            .subscribers()
            .iter()
            .filter(|s| s.device == DeviceClass::M2m)
            .count() as f64;
        assert!(dl / m2m_count < 1.0, "per-M2M DL {}", dl / m2m_count);
        assert_eq!(voice, 0.0, "M2M devices make no calls");
    }
}
