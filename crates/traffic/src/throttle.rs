//! Content-provider throttling.
//!
//! From Mar 19–20, 2020, major streaming platforms reduced video quality
//! in Europe at the EU's request (the paper cites YouTube's reduction).
//! The consequence Section 4.1 measures: per-user throughput *fell* ~10%
//! even though the radio network got emptier — throughput was
//! application-limited, not network-limited.

use cellscope_time::Date;
use serde::{Deserialize, Serialize};

/// The per-user application throughput ceiling over time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThrottlePolicy {
    /// Ceiling before the quality reduction, Mbit/s.
    pub baseline_mbps: f64,
    /// Ceiling after it, Mbit/s.
    pub throttled_mbps: f64,
    /// Date the reduction takes effect.
    pub effective_from: Date,
}

impl Default for ThrottlePolicy {
    fn default() -> Self {
        ThrottlePolicy {
            baseline_mbps: 8.0,
            // ≈9% below baseline: the paper bounds the throughput drop
            // at ~10%.
            throttled_mbps: 7.3,
            effective_from: Date::ymd(2020, 3, 19),
        }
    }
}

impl ThrottlePolicy {
    /// The application-limited per-user ceiling on `date`.
    pub fn app_limit_mbps(&self, date: Date) -> f64 {
        if date >= self.effective_from {
            self.throttled_mbps
        } else {
            self.baseline_mbps
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceiling_switches_on_the_effective_date() {
        let p = ThrottlePolicy::default();
        assert_eq!(p.app_limit_mbps(Date::ymd(2020, 3, 18)), 8.0);
        assert_eq!(p.app_limit_mbps(Date::ymd(2020, 3, 19)), 7.3);
        assert_eq!(p.app_limit_mbps(Date::ymd(2020, 5, 1)), 7.3);
    }

    #[test]
    fn reduction_is_at_most_ten_percent() {
        let p = ThrottlePolicy::default();
        let drop = 1.0 - p.throttled_mbps / p.baseline_mbps;
        assert!(drop > 0.0 && drop <= 0.10, "drop {drop}");
    }
}
