//! The application mix and its pandemic response.
//!
//! Related work the paper cites reports the application-level shifts:
//! +215–285% VoIP/videoconferencing, +30–40% VPN, +20–40% streaming and
//! web video (Comcast), with the *fixed* network absorbing most of the
//! growth while *mobile* LTE traffic fell. [`AppMix`] encodes a class
//! mix whose aggregate DL:UL asymmetry, WiFi-offloadability and
//! restriction response produce exactly that split when combined with
//! the offload model in [`crate::demand`].

use crate::qci::Qci;
use serde::{Deserialize, Serialize};

/// Application class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AppClass {
    /// Long-form video streaming — heavily DL, loves WiFi.
    VideoStreaming,
    /// Web browsing and apps.
    Web,
    /// Social feeds (scroll + upload).
    Social,
    /// Chat/messaging.
    Messaging,
    /// Video conferencing — symmetric, exploded under lockdown.
    VideoConferencing,
    /// Over-the-top VoIP (non-QCI1).
    VoipOtt,
    /// Online gaming.
    Gaming,
    /// Background software updates.
    SoftwareUpdates,
}

/// Per-class traffic characteristics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppProfile {
    /// Share of baseline *downlink* demand attributable to the class.
    pub dl_share: f64,
    /// UL bytes per DL byte for the class.
    pub ul_ratio: f64,
    /// Fraction of the class's traffic that moves to WiFi when the user
    /// is somewhere with WiFi (home, office).
    pub wifi_affinity: f64,
    /// Demand multiplier at full restriction intensity (1 = unchanged;
    /// 3 = triples under lockdown).
    pub lockdown_multiplier: f64,
    /// Bearer the class rides on.
    pub qci: Qci,
}

impl AppClass {
    /// All classes.
    pub const ALL: [AppClass; 8] = [
        AppClass::VideoStreaming,
        AppClass::Web,
        AppClass::Social,
        AppClass::Messaging,
        AppClass::VideoConferencing,
        AppClass::VoipOtt,
        AppClass::Gaming,
        AppClass::SoftwareUpdates,
    ];

    /// The class profile.
    pub fn profile(self) -> AppProfile {
        match self {
            AppClass::VideoStreaming => AppProfile {
                dl_share: 0.42,
                ul_ratio: 0.03,
                wifi_affinity: 0.92,
                lockdown_multiplier: 1.15,
                qci: Qci(8),
            },
            AppClass::Web => AppProfile {
                dl_share: 0.20,
                ul_ratio: 0.08,
                wifi_affinity: 0.70,
                lockdown_multiplier: 1.10,
                qci: Qci(8),
            },
            AppClass::Social => AppProfile {
                dl_share: 0.16,
                ul_ratio: 0.15,
                wifi_affinity: 0.65,
                lockdown_multiplier: 1.15,
                qci: Qci(8),
            },
            AppClass::Messaging => AppProfile {
                dl_share: 0.05,
                ul_ratio: 0.60,
                wifi_affinity: 0.50,
                lockdown_multiplier: 1.20,
                qci: Qci(7),
            },
            AppClass::VideoConferencing => AppProfile {
                dl_share: 0.04,
                ul_ratio: 0.85,
                wifi_affinity: 0.93,
                lockdown_multiplier: 1.6,
                qci: Qci(2),
            },
            AppClass::VoipOtt => AppProfile {
                dl_share: 0.03,
                ul_ratio: 0.95,
                wifi_affinity: 0.75,
                lockdown_multiplier: 1.9,
                qci: Qci(7),
            },
            AppClass::Gaming => AppProfile {
                dl_share: 0.05,
                ul_ratio: 0.12,
                wifi_affinity: 0.85,
                lockdown_multiplier: 1.20,
                qci: Qci(3),
            },
            AppClass::SoftwareUpdates => AppProfile {
                dl_share: 0.05,
                ul_ratio: 0.01,
                wifi_affinity: 0.95,
                lockdown_multiplier: 1.0,
                qci: Qci(8),
            },
        }
    }
}

/// The aggregate mix: weighted combination of all classes under a given
/// restriction intensity.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AppMix;

/// Aggregate traffic coefficients derived from the mix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MixAggregate {
    /// Total DL demand multiplier vs. baseline.
    pub dl_demand_multiplier: f64,
    /// UL bytes per DL byte of the blended mix.
    pub ul_ratio: f64,
    /// Fraction of blended traffic that prefers WiFi when available.
    pub wifi_affinity: f64,
}

impl AppMix {
    /// Blend the class profiles at restriction intensity `e` (0–1).
    ///
    /// Class demand scales as `dl_share × (1 + (multiplier−1) × e)`;
    /// ratios re-weight accordingly, so the blended UL:DL asymmetry
    /// *rises* under lockdown (conferencing grows fastest), exactly why
    /// the paper sees uplink hold steady while downlink falls.
    pub fn aggregate(self, e: f64) -> MixAggregate {
        let e = e.clamp(0.0, 1.0);
        let mut dl_total = 0.0;
        let mut ul_total = 0.0;
        let mut wifi_weighted = 0.0;
        for class in AppClass::ALL {
            let p = class.profile();
            let dl = p.dl_share * (1.0 + (p.lockdown_multiplier - 1.0) * e);
            dl_total += dl;
            ul_total += dl * p.ul_ratio;
            wifi_weighted += dl * p.wifi_affinity;
        }
        MixAggregate {
            dl_demand_multiplier: dl_total, // baseline shares sum to 1
            ul_ratio: ul_total / dl_total,
            wifi_affinity: wifi_weighted / dl_total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_shares_sum_to_one() {
        let total: f64 = AppClass::ALL.iter().map(|c| c.profile().dl_share).sum();
        assert!((total - 1.0).abs() < 1e-9, "shares sum to {total}");
    }

    #[test]
    fn baseline_aggregate_is_identity_demand() {
        let agg = AppMix.aggregate(0.0);
        assert!((agg.dl_demand_multiplier - 1.0).abs() < 1e-9);
        // Blended mobile mix is strongly DL-skewed (order of magnitude).
        assert!(agg.ul_ratio > 0.05 && agg.ul_ratio < 0.20, "{}", agg.ul_ratio);
    }

    #[test]
    fn lockdown_grows_demand_and_ul_share() {
        let base = AppMix.aggregate(0.0);
        let locked = AppMix.aggregate(1.0);
        // Total demand grows (more screen time)…
        assert!(locked.dl_demand_multiplier > 1.10);
        // …and the mix gets more symmetric (conferencing/VoIP).
        assert!(locked.ul_ratio > base.ul_ratio);
        // …while staying about as WiFi-friendly (conferencing and
        // streaming both love WiFi).
        assert!((locked.wifi_affinity - base.wifi_affinity).abs() < 0.05);
    }

    #[test]
    fn aggregate_monotone_in_intensity() {
        let mut prev = 0.0;
        for i in 0..=10 {
            let agg = AppMix.aggregate(i as f64 / 10.0);
            assert!(agg.dl_demand_multiplier >= prev);
            prev = agg.dl_demand_multiplier;
        }
    }

    #[test]
    fn realtime_classes_are_the_fastest_growers() {
        // Conferencing and OTT voice explode; everything else grows
        // mildly at most (Comcast: +215-285% VoIP/videoconferencing).
        let conf = AppClass::VideoConferencing.profile().lockdown_multiplier;
        let voip = AppClass::VoipOtt.profile().lockdown_multiplier;
        for c in AppClass::ALL {
            if !matches!(c, AppClass::VideoConferencing | AppClass::VoipOtt) {
                assert!(c.profile().lockdown_multiplier <= conf.min(voip));
            }
        }
        assert!(conf >= 1.5 && voip >= 1.5);
    }

    #[test]
    fn every_class_rides_a_volume_aggregate_bearer() {
        for c in AppClass::ALL {
            assert!(c.profile().qci.in_volume_aggregate(), "{c:?}");
        }
    }
}
