//! Traffic demand: what subscribers push through the network and where.
//!
//! Converts presence (trajectories) into offered load per cell and hour,
//! the input of the radio KPI model. The structure follows the paper's
//! bearer taxonomy — everything is a QCI 1–8 bearer, with conversational
//! voice isolated as QCI 1 (Section 2.4) — and its behavioural findings:
//!
//! * [`qci`] — QoS Class Identifiers and the QCI-1 voice split;
//! * [`apps`] — an application mix (streaming, web, conferencing, …)
//!   with per-class DL:UL asymmetry, WiFi-offloadability and pandemic
//!   response, matching the shifts reported by Comcast/CTIA (related
//!   work) and the paper's own conjectures;
//! * [`throttle`] — the content-provider quality reduction of late March
//!   2020 that made per-user throughput *application-limited*;
//! * [`demand`] — per-subscriber daily data demand: diurnal profile,
//!   home-WiFi offload (rising under lockdown), demand growth while
//!   confined, the weeks 10–11 news bump;
//! * [`voice`] — the conversational-voice model: minutes per user, the
//!   lockdown surge ("seven years of growth in days"), off-net share
//!   crossing the inter-MNO interconnect;
//! * [`loadgen`] — presence × demand → per-(4G cell, hour) offered load.

pub mod apps;
pub mod demand;
pub mod loadgen;
pub mod qci;
pub mod throttle;
pub mod voice;

pub use apps::{AppClass, AppMix};
pub use demand::{DemandConfig, DemandModel};
pub use loadgen::{CellHourLoad, DayLoadGrid, LoadGenerator};
pub use qci::Qci;
pub use throttle::ThrottlePolicy;
pub use voice::VoiceModel;
