//! Deterministic synthetic-country generator.
//!
//! Builds the whole map from county specifications: for each county we
//! generate postcode-level zones (count proportional to population),
//! scatter them around the county centre with a density-dependent spread,
//! label each with a 2011 OAC cluster sampled from the county's cluster
//! mix, group zones into LADs, and derive census tables.
//!
//! Default county specs approximate real UK populations and the paper's
//! structural facts (e.g. Inner London splits into postal districts with
//! EC/WC almost empty of residents; ~45% of Inner-London postcodes are
//! Cosmopolitans and ~50% Ethnicity Central, Section 4.4).

use crate::admin::{County, CountyClass, Lad, LadId};
use crate::coords::Point;
use crate::geography::Geography;
use crate::oac::OacCluster;
use crate::postcode::LondonDistrict;
use crate::zone::{Zone, ZoneId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Specification of one county for the generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CountySpec {
    /// Which county this spec describes.
    pub county: County,
    /// Centre of the county on the synthetic map (km).
    pub center: Point,
    /// Standard deviation of zone scatter around the centre (km).
    pub spread_km: f64,
    /// Total resident population of the county.
    pub population: u64,
    /// Cluster mix: (cluster, weight) pairs; weights need not sum to 1.
    pub cluster_mix: Vec<(OacCluster, f64)>,
}

impl CountySpec {
    /// The default specification set: 18 counties approximating the UK
    /// areas the paper reports on.
    pub fn default_uk() -> Vec<CountySpec> {
        use County::*;
        use OacCluster::*;
        let spec = |county: County,
                    center: (f64, f64),
                    spread_km: f64,
                    population: u64,
                    cluster_mix: &[(OacCluster, f64)]| CountySpec {
            county,
            center: Point::new(center.0, center.1),
            spread_km,
            population,
            cluster_mix: cluster_mix.to_vec(),
        };
        vec![
            // Inner London's mix matches Section 4.4: ≈45% Cosmopolitans,
            // ≈50% Ethnicity Central (plus a sliver of Multicultural
            // Metropolitans). District structure is added on top.
            spec(
                InnerLondon,
                (530.0, 180.0),
                4.0,
                3_300_000,
                &[
                    (Cosmopolitans, 0.45),
                    (EthnicityCentral, 0.50),
                    (MulticulturalMetropolitans, 0.05),
                ],
            ),
            spec(
                OuterLondon,
                (530.0, 180.0),
                14.0,
                5_200_000,
                &[
                    (MulticulturalMetropolitans, 0.45),
                    (Urbanites, 0.25),
                    (Suburbanites, 0.20),
                    (ConstrainedCityDwellers, 0.07),
                    (Cosmopolitans, 0.03),
                ],
            ),
            spec(
                GreaterManchester,
                (385.0, 400.0),
                11.0,
                2_800_000,
                &[
                    (MulticulturalMetropolitans, 0.30),
                    (HardPressedLiving, 0.25),
                    (ConstrainedCityDwellers, 0.15),
                    (Suburbanites, 0.15),
                    (Urbanites, 0.10),
                    (Cosmopolitans, 0.05),
                ],
            ),
            spec(
                WestMidlands,
                (405.0, 290.0),
                11.0,
                2_900_000,
                &[
                    (MulticulturalMetropolitans, 0.35),
                    (HardPressedLiving, 0.22),
                    (ConstrainedCityDwellers, 0.13),
                    (Suburbanites, 0.15),
                    (Urbanites, 0.10),
                    (Cosmopolitans, 0.05),
                ],
            ),
            spec(
                WestYorkshire,
                (430.0, 435.0),
                10.0,
                2_300_000,
                &[
                    (MulticulturalMetropolitans, 0.25),
                    (HardPressedLiving, 0.30),
                    (Suburbanites, 0.20),
                    (Urbanites, 0.10),
                    (ConstrainedCityDwellers, 0.10),
                    (Cosmopolitans, 0.05),
                ],
            ),
            spec(
                Hampshire,
                (450.0, 130.0),
                22.0,
                1_400_000,
                &[
                    (Urbanites, 0.35),
                    (Suburbanites, 0.30),
                    (RuralResidents, 0.25),
                    (ConstrainedCityDwellers, 0.05),
                    (HardPressedLiving, 0.05),
                ],
            ),
            spec(
                Kent,
                (590.0, 160.0),
                22.0,
                1_600_000,
                &[
                    (Urbanites, 0.30),
                    (Suburbanites, 0.30),
                    (RuralResidents, 0.25),
                    (HardPressedLiving, 0.10),
                    (ConstrainedCityDwellers, 0.05),
                ],
            ),
            spec(
                EastSussex,
                (555.0, 110.0),
                16.0,
                550_000,
                &[
                    (Urbanites, 0.30),
                    (Suburbanites, 0.25),
                    (RuralResidents, 0.35),
                    (ConstrainedCityDwellers, 0.10),
                ],
            ),
            spec(
                WestSussex,
                (510.0, 110.0),
                16.0,
                870_000,
                &[
                    (Urbanites, 0.30),
                    (Suburbanites, 0.30),
                    (RuralResidents, 0.32),
                    (HardPressedLiving, 0.08),
                ],
            ),
            spec(
                Essex,
                (580.0, 220.0),
                20.0,
                1_500_000,
                &[
                    (Suburbanites, 0.35),
                    (Urbanites, 0.30),
                    (RuralResidents, 0.20),
                    (HardPressedLiving, 0.10),
                    (ConstrainedCityDwellers, 0.05),
                ],
            ),
            spec(
                Surrey,
                (510.0, 155.0),
                14.0,
                1_200_000,
                &[
                    (Suburbanites, 0.40),
                    (Urbanites, 0.35),
                    (RuralResidents, 0.25),
                ],
            ),
            spec(
                Hertfordshire,
                (520.0, 215.0),
                14.0,
                1_200_000,
                &[
                    (Suburbanites, 0.40),
                    (Urbanites, 0.35),
                    (RuralResidents, 0.25),
                ],
            ),
            spec(
                Berkshire,
                (475.0, 170.0),
                13.0,
                900_000,
                &[
                    (Urbanites, 0.40),
                    (Suburbanites, 0.35),
                    (RuralResidents, 0.25),
                ],
            ),
            spec(
                Oxfordshire,
                (450.0, 205.0),
                16.0,
                700_000,
                &[
                    (Urbanites, 0.35),
                    (Suburbanites, 0.25),
                    (RuralResidents, 0.40),
                ],
            ),
            spec(
                Buckinghamshire,
                (480.0, 200.0),
                14.0,
                550_000,
                &[
                    (Suburbanites, 0.35),
                    (Urbanites, 0.30),
                    (RuralResidents, 0.35),
                ],
            ),
            spec(
                RuralNorth,
                (340.0, 540.0),
                35.0,
                500_000,
                &[
                    (RuralResidents, 0.75),
                    (HardPressedLiving, 0.15),
                    (Suburbanites, 0.10),
                ],
            ),
            spec(
                RuralSouthWest,
                (290.0, 90.0),
                35.0,
                800_000,
                &[
                    (RuralResidents, 0.70),
                    (Suburbanites, 0.15),
                    (Urbanites, 0.10),
                    (HardPressedLiving, 0.05),
                ],
            ),
            spec(
                RuralWales,
                (300.0, 250.0),
                30.0,
                130_000,
                &[(RuralResidents, 0.80), (HardPressedLiving, 0.20)],
            ),
        ]
    }
}

/// Configuration of the synthetic-country generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SynthConfig {
    /// RNG seed; identical seeds produce identical countries.
    pub seed: u64,
    /// Target residents per zone — controls zone (postcode) granularity.
    pub residents_per_zone: u32,
    /// Target zones per LAD.
    pub zones_per_lad: usize,
    /// County specifications.
    pub counties: Vec<CountySpec>,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            seed: 0xC0FFEE,
            residents_per_zone: 40_000,
            zones_per_lad: 6,
            counties: CountySpec::default_uk(),
        }
    }
}

impl SynthConfig {
    /// A small country for fast tests: same structure, ~10x fewer zones.
    pub fn small(seed: u64) -> SynthConfig {
        SynthConfig {
            seed,
            residents_per_zone: 400_000,
            zones_per_lad: 3,
            counties: CountySpec::default_uk(),
        }
    }

    /// Generate the country.
    pub fn build(&self) -> Geography {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut zones: Vec<Zone> = Vec::new();
        let mut lads: Vec<Lad> = Vec::new();

        for spec in &self.counties {
            self.build_county(spec, &mut rng, &mut zones, &mut lads);
        }
        Geography::from_parts(zones, lads)
    }

    fn build_county(
        &self,
        spec: &CountySpec,
        rng: &mut StdRng,
        zones: &mut Vec<Zone>,
        lads: &mut Vec<Lad>,
    ) {
        let n_zones = ((spec.population / self.residents_per_zone as u64).max(2)) as usize;
        // Inner London gets its postal-district structure; everywhere else
        // zones scatter around the county centre directly.
        let district_plan: Vec<(Option<LondonDistrict>, usize, f64)> =
            if spec.county == County::InnerLondon {
                LondonDistrict::ALL
                    .iter()
                    .map(|&d| {
                        // At least 2 zones per district so per-district medians
                        // are meaningful even in small test countries.
                        let n = ((n_zones as f64 * d.resident_share()).round() as usize).max(2);
                        (Some(d), n, d.resident_share())
                    })
                    .collect()
            } else {
                vec![(None, n_zones, 1.0)]
            };

        let mut county_zones: Vec<usize> = Vec::new();
        for (district, n, pop_share) in district_plan {
            let district_pop = (spec.population as f64 * pop_share) as u64;
            let center = match district {
                Some(d) => {
                    let (dx, dy) = d.offset_km();
                    spec.center.offset(dx, dy)
                }
                None => spec.center,
            };
            let spread = match district {
                Some(_) => 1.6, // districts are compact
                None => spec.spread_km,
            };
            for i in 0..n {
                let cluster = sample_cluster(&spec.cluster_mix, district, rng);
                // Log-normal-ish population jitter around the even split.
                let base = district_pop as f64 / n as f64;
                let jitter: f64 = rng.gen_range(0.6..1.4);
                let population = (base * jitter).max(50.0) as u32;
                let centroid = center.offset(
                    gaussian(rng) * spread,
                    gaussian(rng) * spread,
                );
                let area_km2 =
                    (population as f64 / cluster.residential_density_per_km2()).max(0.05);
                let mut work_attraction =
                    population as f64 * cluster.daytime_attraction();
                let mut leisure_attraction =
                    population as f64 * (0.5 + 0.5 * cluster.daytime_attraction());
                if let Some(d) = district {
                    work_attraction *= d.daytime_attraction();
                    leisure_attraction *= d.daytime_attraction();
                }
                // Shire/rural leisure pull: second homes and holiday areas
                // make the countryside attractive for *overnight* leisure,
                // which the relocation model draws on.
                if matches!(spec.county.class(), CountyClass::Shire | CountyClass::Rural) {
                    leisure_attraction *= 1.5;
                }
                let id = ZoneId(zones.len() as u32);
                county_zones.push(zones.len());
                zones.push(Zone {
                    id,
                    county: spec.county,
                    lad: LadId(0), // assigned below
                    district,
                    cluster,
                    centroid,
                    population,
                    area_km2,
                    work_attraction,
                    leisure_attraction,
                });
                let _ = i;
            }
        }

        // Group this county's zones into LADs of ~zones_per_lad, in spatial
        // (x, then y) order so LADs are geographically coherent.
        county_zones.sort_by(|&a, &b| {
            let za = &zones[a].centroid;
            let zb = &zones[b].centroid;
            za.x.total_cmp(&zb.x).then(za.y.total_cmp(&zb.y))
        });
        for chunk in county_zones.chunks(self.zones_per_lad.max(1)) {
            let lad_id = LadId(lads.len() as u16);
            let mut census = 0u64;
            for &zi in chunk {
                zones[zi].lad = lad_id;
                census += zones[zi].population as u64;
            }
            lads.push(Lad {
                id: lad_id,
                county: spec.county,
                census_population: census,
            });
        }
    }
}

/// Sample a cluster from the county mix. Inside Inner London, the postal
/// district biases the draw: central districts (EC/WC) are Cosmopolitans-
/// dominated, the N district leans Multicultural Metropolitans (the paper
/// observes exactly these two deviating in Section 5).
fn sample_cluster(
    mix: &[(OacCluster, f64)],
    district: Option<LondonDistrict>,
    rng: &mut StdRng,
) -> OacCluster {
    let reweight = |c: OacCluster, w: f64| -> f64 {
        match district {
            Some(d) if d.is_central() => match c {
                OacCluster::Cosmopolitans => w * 8.0,
                _ => w * 0.3,
            },
            Some(LondonDistrict::N) => match c {
                OacCluster::MulticulturalMetropolitans => w * 12.0,
                _ => w,
            },
            Some(LondonDistrict::W) => match c {
                OacCluster::Cosmopolitans => w * 2.0,
                _ => w,
            },
            _ => w,
        }
    };
    let weights: Vec<f64> = mix.iter().map(|&(c, w)| reweight(c, w)).collect();
    let total: f64 = weights.iter().sum();
    debug_assert!(total > 0.0, "cluster mix must have positive weight");
    let mut draw = rng.gen_range(0.0..total);
    for (&(c, _), &w) in mix.iter().zip(&weights) {
        if draw < w {
            return c;
        }
        draw -= w;
    }
    mix.last().expect("non-empty mix").0
}

/// Standard-normal sample via Box–Muller (keeps us off distribution
/// crates; two uniforms per call, second discarded for simplicity).
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_uk_has_all_counties_once() {
        let specs = CountySpec::default_uk();
        assert_eq!(specs.len(), County::ALL.len());
        let mut seen: Vec<County> = specs.iter().map(|s| s.county).collect();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), County::ALL.len());
    }

    #[test]
    fn build_is_deterministic() {
        let a = SynthConfig::small(7).build();
        let b = SynthConfig::small(7).build();
        assert_eq!(a.zones().len(), b.zones().len());
        for (za, zb) in a.zones().iter().zip(b.zones()) {
            assert_eq!(za, zb);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = SynthConfig::small(1).build();
        let b = SynthConfig::small(2).build();
        let same = a
            .zones()
            .iter()
            .zip(b.zones())
            .all(|(x, y)| x.centroid == y.centroid);
        assert!(!same, "different seeds should move zones");
    }

    #[test]
    fn inner_london_structure() {
        let geo = SynthConfig::default().build();
        let inner: Vec<_> = geo
            .zones()
            .iter()
            .filter(|z| z.county == County::InnerLondon)
            .collect();
        assert!(!inner.is_empty());
        // Every Inner-London zone has a district; nothing else does.
        assert!(inner.iter().all(|z| z.district.is_some()));
        assert!(geo
            .zones()
            .iter()
            .filter(|z| z.county != County::InnerLondon)
            .all(|z| z.district.is_none()));
        // All eight districts are present.
        for d in LondonDistrict::ALL {
            assert!(
                inner.iter().any(|z| z.district == Some(d)),
                "missing district {d}"
            );
        }
        // Only the three London clusters appear (paper Section 5.2 finds
        // exactly three clusters map to London).
        for z in &inner {
            assert!(matches!(
                z.cluster,
                OacCluster::Cosmopolitans
                    | OacCluster::EthnicityCentral
                    | OacCluster::MulticulturalMetropolitans
            ));
        }
    }

    #[test]
    fn central_districts_have_high_attraction_low_population() {
        let geo = SynthConfig::default().build();
        let attraction_per_resident = |d: LondonDistrict| -> f64 {
            let (work, pop) = geo
                .zones()
                .iter()
                .filter(|z| z.district == Some(d))
                .fold((0.0, 0u64), |(w, p), z| {
                    (w + z.work_attraction, p + z.population as u64)
                });
            work / pop.max(1) as f64
        };
        assert!(attraction_per_resident(LondonDistrict::EC) > 5.0 * attraction_per_resident(LondonDistrict::SE));
    }

    #[test]
    fn populations_approximately_match_spec() {
        let geo = SynthConfig::default().build();
        for spec in CountySpec::default_uk() {
            let total: u64 = geo
                .zones()
                .iter()
                .filter(|z| z.county == spec.county)
                .map(|z| z.population as u64)
                .sum();
            let ratio = total as f64 / spec.population as f64;
            assert!(
                (0.7..1.3).contains(&ratio),
                "{}: synthesized {} vs spec {}",
                spec.county,
                total,
                spec.population
            );
        }
    }

    #[test]
    fn lads_partition_zones() {
        let geo = SynthConfig::default().build();
        // Every zone's LAD exists and belongs to the same county.
        for z in geo.zones() {
            let lad = geo.lad(z.lad).expect("zone LAD exists");
            assert_eq!(lad.county, z.county, "zone {} LAD county mismatch", z.id);
        }
        // LAD census = sum of member zone populations.
        for lad in geo.lads() {
            let sum: u64 = geo
                .zones()
                .iter()
                .filter(|z| z.lad == lad.id)
                .map(|z| z.population as u64)
                .sum();
            assert_eq!(sum, lad.census_population);
        }
    }
}
