//! London postal districts and postcode-style zone labels.
//!
//! Section 5.1 of the paper breaks Inner London down by **postal
//! district** (EC, WC, N, E, SE, SW, W, NW) and finds the central
//! districts (EC, WC) collapse under lockdown — they have few residents
//! (≈30k in EC vs ≈400k in SW) but huge daytime populations — while the
//! Northern (N) district *gains* active users.

use serde::{Deserialize, Serialize};

/// Inner-London postal districts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LondonDistrict {
    /// Eastern Central — the City and its fringe. Tiny residential
    /// population, extreme daytime attraction.
    EC,
    /// Western Central — West End / Holborn. Like EC: offices, retail,
    /// theatres, tourists.
    WC,
    /// Northern.
    N,
    /// Eastern.
    E,
    /// South Eastern.
    SE,
    /// South Western — the most populous Inner-London district
    /// (≈400k residents per the paper).
    SW,
    /// Western.
    W,
    /// North Western.
    NW,
}

impl LondonDistrict {
    /// All districts, stable order.
    pub const ALL: [LondonDistrict; 8] = [
        LondonDistrict::EC,
        LondonDistrict::WC,
        LondonDistrict::N,
        LondonDistrict::E,
        LondonDistrict::SE,
        LondonDistrict::SW,
        LondonDistrict::W,
        LondonDistrict::NW,
    ];

    /// District code as used on London postcodes ("EC", "WC", …).
    pub fn code(self) -> &'static str {
        match self {
            LondonDistrict::EC => "EC",
            LondonDistrict::WC => "WC",
            LondonDistrict::N => "N",
            LondonDistrict::E => "E",
            LondonDistrict::SE => "SE",
            LondonDistrict::SW => "SW",
            LondonDistrict::W => "W",
            LondonDistrict::NW => "NW",
        }
    }

    /// The two central districts whose daytime population dwarfs their
    /// resident population.
    pub fn is_central(self) -> bool {
        matches!(self, LondonDistrict::EC | LondonDistrict::WC)
    }

    /// Approximate resident population share within Inner London.
    ///
    /// Calibrated to the paper's figures: EC ≈ 30k residents, SW ≈ 400k;
    /// the remaining districts sit between. Shares sum to 1.
    pub fn resident_share(self) -> f64 {
        match self {
            LondonDistrict::EC => 0.015,
            LondonDistrict::WC => 0.018,
            LondonDistrict::N => 0.140,
            LondonDistrict::E => 0.160,
            LondonDistrict::SE => 0.175,
            LondonDistrict::SW => 0.200,
            LondonDistrict::W => 0.140,
            LondonDistrict::NW => 0.152,
        }
    }

    /// Daytime attraction multiplier on top of the zone-cluster level
    /// attraction: EC/WC concentrate the commercial/business/tourist
    /// hotspots of the capital.
    pub fn daytime_attraction(self) -> f64 {
        match self {
            LondonDistrict::EC => 14.0,
            LondonDistrict::WC => 12.0,
            LondonDistrict::W => 2.5,
            LondonDistrict::N => 0.5,
            LondonDistrict::E => 0.9,
            LondonDistrict::SE => 0.8,
            LondonDistrict::SW => 0.9,
            LondonDistrict::NW => 0.8,
        }
    }

    /// Approximate offset of the district centre from the Inner-London
    /// centroid, in kilometres (east, north).
    pub fn offset_km(self) -> (f64, f64) {
        match self {
            LondonDistrict::EC => (1.5, 0.5),
            LondonDistrict::WC => (-0.5, 0.5),
            LondonDistrict::N => (0.0, 5.0),
            LondonDistrict::E => (6.0, 1.0),
            LondonDistrict::SE => (4.0, -4.5),
            LondonDistrict::SW => (-4.0, -4.0),
            LondonDistrict::W => (-5.5, 0.5),
            LondonDistrict::NW => (-4.0, 4.5),
        }
    }
}

impl std::fmt::Display for LondonDistrict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resident_shares_sum_to_one() {
        let total: f64 = LondonDistrict::ALL.iter().map(|d| d.resident_share()).sum();
        assert!((total - 1.0).abs() < 1e-9, "shares sum to {total}");
    }

    #[test]
    fn central_districts_small_but_attractive() {
        for d in [LondonDistrict::EC, LondonDistrict::WC] {
            assert!(d.is_central());
            // Few residents…
            assert!(d.resident_share() < 0.05);
            // …but the strongest daytime pull.
            for other in LondonDistrict::ALL {
                if !other.is_central() {
                    assert!(d.daytime_attraction() > other.daytime_attraction());
                }
            }
        }
        // SW is the most populous, matching the paper's ~400k figure.
        let max = LondonDistrict::ALL
            .iter()
            .max_by(|a, b| a.resident_share().total_cmp(&b.resident_share()))
            .unwrap();
        assert_eq!(*max, LondonDistrict::SW);
    }

    #[test]
    fn ec_to_sw_population_ratio_matches_paper_order_of_magnitude() {
        // Paper: ≈30k residents in EC vs ≈400k in SW — a ratio near 13x.
        let ratio =
            LondonDistrict::SW.resident_share() / LondonDistrict::EC.resident_share();
        assert!(ratio > 10.0 && ratio < 16.0, "ratio {ratio}");
    }

    #[test]
    fn codes_are_unique() {
        let mut codes: Vec<_> = LondonDistrict::ALL.iter().map(|d| d.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), 8);
    }
}
