//! Synthetic UK geography for the COVID-19 MNO study.
//!
//! The paper grounds every result in UK geography datasets that are either
//! public (NSPL postcode lookup, 2011 OAC geodemographic classification,
//! ONS census populations) or operator-internal (cell-site locations).
//! This crate provides a deterministic synthetic equivalent with the same
//! *structure*:
//!
//! * a planar coordinate system with distances in kilometres
//!   ([`coords`]);
//! * the eight **2011 OAC geodemographic clusters** of the paper's
//!   Table 1, verbatim ([`oac`]);
//! * an administrative hierarchy: postcode-level [`zone::Zone`]s grouped
//!   into **Local Authority Districts** (LADs) and **counties**, five of
//!   which are the paper's high-density study regions ([`admin`]);
//! * Inner-London **postal districts** (EC, WC, N, …) used by the
//!   London-centric analysis of Section 5 ([`postcode`]);
//! * a deterministic generator that lays the whole country out from a
//!   seed ([`synth`]), and the resulting queryable [`Geography`]
//!   container with NSPL-style lookups and census tables
//!   ([`geography`]).
//!
//! Everything is pure data + deterministic construction: the same seed
//! always yields the same country.

pub mod admin;
pub mod coords;
pub mod geography;
pub mod oac;
pub mod postcode;
pub mod synth;
pub mod zone;

pub use admin::{County, CountyClass, LadId};
pub use coords::{BoundingBox, Point};
pub use geography::{CensusTable, Geography};
pub use oac::OacCluster;
pub use postcode::LondonDistrict;
pub use synth::{CountySpec, SynthConfig};
pub use zone::{Zone, ZoneId};
