//! Administrative geography: counties and Local Authority Districts.
//!
//! The paper aggregates at several administrative levels:
//!
//! * **counties / UTLAs** — the five high-density study regions of
//!   Sections 3.2 and 4.3 (Inner London, Outer London, Greater
//!   Manchester, West Midlands, West Yorkshire), and the destination
//!   counties of the Inner-London mobility matrix (Fig. 7: Hampshire,
//!   Kent, East Sussex, …);
//! * **LADs** — used to validate home detection against ONS census
//!   populations (Fig. 2).
//!
//! The synthetic country covers the five study regions plus the South-East
//! commuter-belt counties that actually appear in the paper's mobility
//! matrix, plus rural filler regions so the national aggregate includes a
//! genuine rural component.

use serde::{Deserialize, Serialize};

/// County-level areas of the synthetic UK.
///
/// This single enum plays the role of both "region" (Section 3.2) and
/// "county" (Section 3.4) in the paper: the five study regions are
/// counties flagged by [`County::is_study_region`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum County {
    InnerLondon,
    OuterLondon,
    GreaterManchester,
    WestMidlands,
    WestYorkshire,
    Hampshire,
    Kent,
    EastSussex,
    WestSussex,
    Essex,
    Surrey,
    Hertfordshire,
    Berkshire,
    Oxfordshire,
    Buckinghamshire,
    RuralNorth,
    RuralSouthWest,
    RuralWales,
}

/// Broad character of a county, used by the world generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CountyClass {
    /// Dense metropolitan core (Inner London).
    MetropolitanCore,
    /// Large conurbation (Outer London, Manchester, Birmingham, Leeds).
    Conurbation,
    /// Mixed shire county: towns plus countryside.
    Shire,
    /// Predominantly rural.
    Rural,
}

impl County {
    /// Every county, in a stable order.
    pub const ALL: [County; 18] = [
        County::InnerLondon,
        County::OuterLondon,
        County::GreaterManchester,
        County::WestMidlands,
        County::WestYorkshire,
        County::Hampshire,
        County::Kent,
        County::EastSussex,
        County::WestSussex,
        County::Essex,
        County::Surrey,
        County::Hertfordshire,
        County::Berkshire,
        County::Oxfordshire,
        County::Buckinghamshire,
        County::RuralNorth,
        County::RuralSouthWest,
        County::RuralWales,
    ];

    /// The five regions Sections 3.2/4.3 single out (each has > 500k
    /// users in the paper's dataset).
    pub const STUDY_REGIONS: [County; 5] = [
        County::InnerLondon,
        County::OuterLondon,
        County::GreaterManchester,
        County::WestMidlands,
        County::WestYorkshire,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            County::InnerLondon => "Inner London",
            County::OuterLondon => "Outer London",
            County::GreaterManchester => "Greater Manchester",
            County::WestMidlands => "West Midlands",
            County::WestYorkshire => "West Yorkshire",
            County::Hampshire => "Hampshire",
            County::Kent => "Kent",
            County::EastSussex => "East Sussex",
            County::WestSussex => "West Sussex",
            County::Essex => "Essex",
            County::Surrey => "Surrey",
            County::Hertfordshire => "Hertfordshire",
            County::Berkshire => "Berkshire",
            County::Oxfordshire => "Oxfordshire",
            County::Buckinghamshire => "Buckinghamshire",
            County::RuralNorth => "Rural North",
            County::RuralSouthWest => "Rural South West",
            County::RuralWales => "Rural Wales",
        }
    }

    /// Whether this county is one of the five high-density study regions.
    pub fn is_study_region(self) -> bool {
        County::STUDY_REGIONS.contains(&self)
    }

    /// Structural class.
    pub fn class(self) -> CountyClass {
        match self {
            County::InnerLondon => CountyClass::MetropolitanCore,
            County::OuterLondon
            | County::GreaterManchester
            | County::WestMidlands
            | County::WestYorkshire => CountyClass::Conurbation,
            County::Hampshire
            | County::Kent
            | County::EastSussex
            | County::WestSussex
            | County::Essex
            | County::Surrey
            | County::Hertfordshire
            | County::Berkshire
            | County::Oxfordshire
            | County::Buckinghamshire => CountyClass::Shire,
            County::RuralNorth | County::RuralSouthWest | County::RuralWales => CountyClass::Rural,
        }
    }

    /// Stable small integer id (index into [`County::ALL`]).
    pub fn index(self) -> usize {
        County::ALL
            .iter()
            .position(|&c| c == self)
            .expect("county present in ALL")
    }

    /// Inverse of [`County::index`].
    pub fn from_index(idx: usize) -> Option<County> {
        County::ALL.get(idx).copied()
    }
}

impl std::fmt::Display for County {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Identifier of a synthetic Local Authority District.
///
/// LADs partition zones within a county; they are the granularity at
/// which home detection is validated against census data (paper Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LadId(pub u16);

impl std::fmt::Display for LadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LAD{:03}", self.0)
    }
}

/// A synthetic LAD: name-code, parent county and census population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lad {
    /// Identifier, unique country-wide.
    pub id: LadId,
    /// Parent county.
    pub county: County,
    /// ONS-style census resident population (synthetic).
    pub census_population: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_counties_distinct_and_indexed() {
        for (i, c) in County::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(County::from_index(i), Some(*c));
        }
        assert_eq!(County::from_index(County::ALL.len()), None);
    }

    #[test]
    fn study_regions_match_paper() {
        assert_eq!(County::STUDY_REGIONS.len(), 5);
        for r in County::STUDY_REGIONS {
            assert!(r.is_study_region());
        }
        assert!(!County::Hampshire.is_study_region());
        assert!(County::InnerLondon.is_study_region());
    }

    #[test]
    fn classes_are_sensible() {
        assert_eq!(County::InnerLondon.class(), CountyClass::MetropolitanCore);
        assert_eq!(County::GreaterManchester.class(), CountyClass::Conurbation);
        assert_eq!(County::Hampshire.class(), CountyClass::Shire);
        assert_eq!(County::RuralWales.class(), CountyClass::Rural);
    }

    #[test]
    fn lad_display() {
        assert_eq!(LadId(7).to_string(), "LAD007");
    }
}
