//! Planar coordinates in kilometres.
//!
//! The synthetic country lives on a plane loosely shaped like the British
//! National Grid (x grows east, y grows north, units are kilometres).
//! At country scale a planar metric is what operator tooling uses anyway
//! (cell-site coordinates are projected), so we avoid spherical
//! trigonometry entirely.

use serde::{Deserialize, Serialize};

/// A point on the synthetic map, kilometres east / north of the origin.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Kilometres east of the grid origin.
    pub x: f64,
    /// Kilometres north of the grid origin.
    pub y: f64,
}

impl Point {
    /// Construct a point from east/north kilometre offsets.
    pub const fn new(x: f64, y: f64) -> Point {
        Point { x, y }
    }

    /// Euclidean distance to another point, in kilometres.
    pub fn distance_km(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Squared distance — cheaper when only comparing.
    pub fn distance_sq(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Component-wise addition.
    pub fn offset(self, dx: f64, dy: f64) -> Point {
        Point {
            x: self.x + dx,
            y: self.y + dy,
        }
    }
}

/// Time-weighted centre of mass of a trajectory, as used by the paper's
/// radius-of-gyration definition (Section 2.3):
/// `l_cm = (1/T) * sum_j t_j * l_j` where `T = sum_j t_j`.
///
/// Returns `None` when the total weight is zero (no dwell time at all).
pub fn center_of_mass<I>(weighted_points: I) -> Option<Point>
where
    I: IntoIterator<Item = (Point, f64)>,
{
    let mut sx = 0.0;
    let mut sy = 0.0;
    let mut total = 0.0;
    for (p, w) in weighted_points {
        debug_assert!(w >= 0.0, "negative dwell weight");
        sx += p.x * w;
        sy += p.y * w;
        total += w;
    }
    if total <= 0.0 {
        None
    } else {
        Some(Point::new(sx / total, sy / total))
    }
}

/// Axis-aligned bounding box, used by the spatial index in the radio
/// crate and by map sanity checks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    /// South-west corner.
    pub min: Point,
    /// North-east corner.
    pub max: Point,
}

impl BoundingBox {
    /// A degenerate box containing only `p`.
    pub fn at(p: Point) -> BoundingBox {
        BoundingBox { min: p, max: p }
    }

    /// Smallest box containing all points; `None` for an empty iterator.
    pub fn containing<I: IntoIterator<Item = Point>>(points: I) -> Option<BoundingBox> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut b = BoundingBox::at(first);
        for p in it {
            b.expand(p);
        }
        Some(b)
    }

    /// Grow the box to contain `p`.
    pub fn expand(&mut self, p: Point) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// Whether `p` lies inside (inclusive of the boundary).
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// East-west extent in kilometres.
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// North-south extent in kilometres.
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance_km(b), 5.0);
        assert_eq!(a.distance_sq(b), 25.0);
        assert_eq!(b.distance_km(a), 5.0);
    }

    #[test]
    fn center_of_mass_weighted() {
        let cm = center_of_mass([
            (Point::new(0.0, 0.0), 3.0),
            (Point::new(4.0, 0.0), 1.0),
        ])
        .unwrap();
        assert!((cm.x - 1.0).abs() < 1e-12);
        assert_eq!(cm.y, 0.0);
    }

    #[test]
    fn center_of_mass_empty_or_zero_weight() {
        assert_eq!(center_of_mass(std::iter::empty()), None);
        assert_eq!(center_of_mass([(Point::new(1.0, 1.0), 0.0)]), None);
    }

    #[test]
    fn center_of_mass_single_point_is_itself() {
        let p = Point::new(7.5, -2.0);
        let cm = center_of_mass([(p, 42.0)]).unwrap();
        assert_eq!(cm, p);
    }

    #[test]
    fn bbox_contains_and_extents() {
        let b = BoundingBox::containing([
            Point::new(1.0, 2.0),
            Point::new(-1.0, 5.0),
            Point::new(0.0, 0.0),
        ])
        .unwrap();
        assert_eq!(b.min, Point::new(-1.0, 0.0));
        assert_eq!(b.max, Point::new(1.0, 5.0));
        assert_eq!(b.width(), 2.0);
        assert_eq!(b.height(), 5.0);
        assert!(b.contains(Point::new(0.0, 3.0)));
        assert!(!b.contains(Point::new(2.0, 3.0)));
        assert_eq!(BoundingBox::containing(std::iter::empty()), None);
    }
}
