//! The queryable country: zones, LADs, and NSPL-style lookup tables.
//!
//! [`Geography`] is the analog of the paper's "UK Administrative and
//! Geo-demographic Datasets" (Section 2.2): given a postcode-level zone
//! it answers which LAD, county/UTLA, postal district and OAC cluster it
//! belongs to, and provides ONS-style census tables for validation
//! (Fig. 2 compares inferred residential populations per LAD against
//! census values).

use crate::admin::{County, Lad, LadId};
use crate::coords::{BoundingBox, Point};
use crate::oac::OacCluster;
use crate::postcode::LondonDistrict;
use crate::zone::{Zone, ZoneId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Census populations aggregated at each administrative level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CensusTable {
    lad: BTreeMap<LadId, u64>,
    county: BTreeMap<County, u64>,
    total: u64,
}

impl CensusTable {
    /// Census population of a LAD (0 for unknown ids).
    pub fn lad_population(&self, lad: LadId) -> u64 {
        self.lad.get(&lad).copied().unwrap_or(0)
    }

    /// Census population of a county.
    pub fn county_population(&self, county: County) -> u64 {
        self.county.get(&county).copied().unwrap_or(0)
    }

    /// National census population.
    pub fn total_population(&self) -> u64 {
        self.total
    }

    /// All (LAD, population) pairs, ordered by id.
    pub fn lads(&self) -> impl Iterator<Item = (LadId, u64)> + '_ {
        self.lad.iter().map(|(&id, &p)| (id, p))
    }
}

/// The synthetic country: all zones plus lookup tables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Geography {
    zones: Vec<Zone>,
    lads: Vec<Lad>,
    census: CensusTable,
    by_county: BTreeMap<County, Vec<ZoneId>>,
    by_cluster: BTreeMap<OacCluster, Vec<ZoneId>>,
    by_district: BTreeMap<LondonDistrict, Vec<ZoneId>>,
    bounds: BoundingBox,
}

impl Geography {
    /// Assemble a geography from generated parts (see [`crate::synth`]).
    ///
    /// # Panics
    /// Panics if `zones` is empty or zone ids are not dense indices.
    pub fn from_parts(zones: Vec<Zone>, lads: Vec<Lad>) -> Geography {
        assert!(!zones.is_empty(), "geography needs at least one zone");
        for (i, z) in zones.iter().enumerate() {
            assert_eq!(z.id.index(), i, "zone ids must be dense indices");
        }
        let mut by_county: BTreeMap<County, Vec<ZoneId>> = BTreeMap::new();
        let mut by_cluster: BTreeMap<OacCluster, Vec<ZoneId>> = BTreeMap::new();
        let mut by_district: BTreeMap<LondonDistrict, Vec<ZoneId>> = BTreeMap::new();
        let mut lad_pop: BTreeMap<LadId, u64> = BTreeMap::new();
        let mut county_pop: BTreeMap<County, u64> = BTreeMap::new();
        let mut total = 0u64;
        for z in &zones {
            by_county.entry(z.county).or_default().push(z.id);
            by_cluster.entry(z.cluster).or_default().push(z.id);
            if let Some(d) = z.district {
                by_district.entry(d).or_default().push(z.id);
            }
            *lad_pop.entry(z.lad).or_default() += z.population as u64;
            *county_pop.entry(z.county).or_default() += z.population as u64;
            total += z.population as u64;
        }
        let bounds = BoundingBox::containing(zones.iter().map(|z| z.centroid))
            .expect("non-empty zones");
        Geography {
            zones,
            lads,
            census: CensusTable {
                lad: lad_pop,
                county: county_pop,
                total,
            },
            by_county,
            by_cluster,
            by_district,
            bounds,
        }
    }

    /// All zones, indexed by [`ZoneId`].
    pub fn zones(&self) -> &[Zone] {
        &self.zones
    }

    /// Look up one zone.
    pub fn zone(&self, id: ZoneId) -> &Zone {
        &self.zones[id.index()]
    }

    /// All LADs.
    pub fn lads(&self) -> &[Lad] {
        &self.lads
    }

    /// Look up one LAD.
    pub fn lad(&self, id: LadId) -> Option<&Lad> {
        self.lads.get(id.0 as usize)
    }

    /// Census tables (the ONS ground truth of the synthetic world).
    pub fn census(&self) -> &CensusTable {
        &self.census
    }

    /// Zones of a county (empty slice if the county was not generated).
    pub fn zones_in_county(&self, county: County) -> &[ZoneId] {
        self.by_county.get(&county).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Zones labelled with a given OAC cluster.
    pub fn zones_in_cluster(&self, cluster: OacCluster) -> &[ZoneId] {
        self.by_cluster
            .get(&cluster)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Zones of an Inner-London postal district.
    pub fn zones_in_district(&self, district: LondonDistrict) -> &[ZoneId] {
        self.by_district
            .get(&district)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Bounding box of all zone centroids.
    pub fn bounds(&self) -> BoundingBox {
        self.bounds
    }

    /// The zone whose centroid is nearest to `p` (linear scan — use the
    /// radio crate's spatial index for hot paths).
    pub fn nearest_zone(&self, p: Point) -> &Zone {
        self.zones
            .iter()
            .min_by(|a, b| {
                a.centroid
                    .distance_sq(p)
                    .total_cmp(&b.centroid.distance_sq(p))
            })
            .expect("non-empty zones")
    }

    /// Number of zones.
    pub fn num_zones(&self) -> usize {
        self.zones.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthConfig;

    fn geo() -> Geography {
        SynthConfig::small(11).build()
    }

    #[test]
    fn census_totals_are_consistent() {
        let g = geo();
        let county_sum: u64 = County::ALL
            .iter()
            .map(|&c| g.census().county_population(c))
            .sum();
        assert_eq!(county_sum, g.census().total_population());
        let lad_sum: u64 = g.census().lads().map(|(_, p)| p).sum();
        assert_eq!(lad_sum, g.census().total_population());
    }

    #[test]
    fn lad_census_matches_lad_records() {
        let g = geo();
        for lad in g.lads() {
            assert_eq!(g.census().lad_population(lad.id), lad.census_population);
        }
    }

    #[test]
    fn county_index_covers_all_zones() {
        let g = geo();
        let indexed: usize = County::ALL
            .iter()
            .map(|&c| g.zones_in_county(c).len())
            .sum();
        assert_eq!(indexed, g.num_zones());
    }

    #[test]
    fn cluster_index_covers_all_zones() {
        let g = geo();
        let indexed: usize = OacCluster::ALL
            .iter()
            .map(|&c| g.zones_in_cluster(c).len())
            .sum();
        assert_eq!(indexed, g.num_zones());
    }

    #[test]
    fn nearest_zone_is_self_at_centroid() {
        let g = geo();
        for z in g.zones().iter().step_by(7) {
            let found = g.nearest_zone(z.centroid);
            // Another zone could coincide, but distance must be 0-ish.
            assert!(found.centroid.distance_km(z.centroid) < 1e-9);
        }
    }

    #[test]
    fn bounds_contain_everything() {
        let g = geo();
        let b = g.bounds();
        for z in g.zones() {
            assert!(b.contains(z.centroid));
        }
    }

    #[test]
    #[should_panic(expected = "at least one zone")]
    fn empty_geography_rejected() {
        Geography::from_parts(Vec::new(), Vec::new());
    }
}
