//! Zones: the postcode-level unit of aggregation.
//!
//! The paper aggregates every feed "at postcode level or larger
//! granularity". A [`Zone`] is our postcode-level unit: a small
//! contiguous area with a centroid, a resident population, a 2011 OAC
//! cluster label, and administrative parents (LAD, county, and — inside
//! Inner London — a postal district).

use crate::admin::{County, LadId};
use crate::coords::Point;
use crate::oac::OacCluster;
use crate::postcode::LondonDistrict;
use serde::{Deserialize, Serialize};

/// Zone identifier: dense index into [`crate::Geography::zones`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ZoneId(pub u32);

impl ZoneId {
    /// Index into the geography's zone table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ZoneId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Z{:05}", self.0)
    }
}

/// A postcode-level area of the synthetic country.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Zone {
    /// Identifier (equals its index in the geography's zone table).
    pub id: ZoneId,
    /// Parent county.
    pub county: County,
    /// Parent Local Authority District.
    pub lad: LadId,
    /// Postal district, for Inner-London zones only.
    pub district: Option<LondonDistrict>,
    /// 2011 OAC geodemographic cluster label.
    pub cluster: OacCluster,
    /// Zone centroid on the synthetic map.
    pub centroid: Point,
    /// Resident population (census-style ground truth).
    pub population: u32,
    /// Area in km², consistent with the cluster's typical density.
    pub area_km2: f64,
    /// Relative pull for work trips: how many jobs/commercial floorspace
    /// the zone hosts compared to its residents.
    pub work_attraction: f64,
    /// Relative pull for leisure/shopping/tourism trips.
    pub leisure_attraction: f64,
}

impl Zone {
    /// Residential density in people per km².
    pub fn density_per_km2(&self) -> f64 {
        if self.area_km2 <= 0.0 {
            0.0
        } else {
            self.population as f64 / self.area_km2
        }
    }

    /// Postcode-style label, e.g. `"EC-00042"` for a zone in London's
    /// Eastern Central district or `"HAM-00107"` for Hampshire.
    pub fn postcode_label(&self) -> String {
        let prefix = match self.district {
            Some(d) => d.code().to_string(),
            None => {
                let name = self.county.name();
                name.split_whitespace()
                    .map(|w| &w[..1])
                    .collect::<String>()
                    .to_uppercase()
                    + &name.chars().skip(1).take(2).collect::<String>().to_uppercase()
            }
        };
        format!("{}-{:05}", prefix, self.id.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_zone() -> Zone {
        Zone {
            id: ZoneId(42),
            county: County::InnerLondon,
            lad: LadId(3),
            district: Some(LondonDistrict::EC),
            cluster: OacCluster::Cosmopolitans,
            centroid: Point::new(530.0, 180.0),
            population: 9_000,
            area_km2: 1.0,
            work_attraction: 12.0,
            leisure_attraction: 8.0,
        }
    }

    #[test]
    fn density_and_labels() {
        let z = sample_zone();
        assert_eq!(z.density_per_km2(), 9_000.0);
        assert_eq!(z.postcode_label(), "EC-00042");
    }

    #[test]
    fn zero_area_zone_has_zero_density() {
        let mut z = sample_zone();
        z.area_km2 = 0.0;
        assert_eq!(z.density_per_km2(), 0.0);
    }

    #[test]
    fn non_london_label_uses_county_prefix() {
        let mut z = sample_zone();
        z.district = None;
        z.county = County::Hampshire;
        assert!(z.postcode_label().starts_with('H'));
        assert!(z.postcode_label().ends_with("00042"));
    }
}
