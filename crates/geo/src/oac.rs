//! The 2011 Area Classification for Output Areas (2011 OAC) supergroups.
//!
//! This is the paper's Table 1, reproduced verbatim: eight geodemographic
//! clusters that summarize "the social and physical structure of postcode
//! areas using data from the 2011 UK Census". The paper breaks both
//! mobility (Fig. 6) and network performance (Fig. 10, Fig. 12) down by
//! these clusters, so they are first-class citizens here.
//!
//! Besides the names/definitions we also attach coarse *structural*
//! attributes (urban density class, daytime attraction) that the
//! synthetic world generator uses to place zones; these encode nothing
//! about lockdown behaviour (behavioural response lives in the mobility
//! crate).

use serde::{Deserialize, Serialize};

/// The eight 2011 OAC supergroups (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OacCluster {
    /// Rural areas, low density, older and educated population.
    RuralResidents,
    /// Densely populated urban areas, high ethnic integration, young
    /// adults and students.
    Cosmopolitans,
    /// Denser central areas of London, non-white ethnic groups, young
    /// adults.
    EthnicityCentral,
    /// Urban areas in transition between centres and suburbia, high
    /// ethnic mix.
    MulticulturalMetropolitans,
    /// Urban areas mainly in southern England, average ethnic mix, low
    /// unemployment.
    Urbanites,
    /// Population above retirement age and parents with school age
    /// children, low unemployment.
    Suburbanites,
    /// Densely populated areas, single/divorced population, higher level
    /// of unemployment.
    ConstrainedCityDwellers,
    /// Urban surroundings (northern England / southern Wales), higher
    /// rates of unemployment.
    HardPressedLiving,
}

/// Broad density class of a cluster's typical areas; drives cell-site
/// deployment density and anchor-place distances in the synthetic world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DensityClass {
    /// Sparse countryside: few, far-apart cell sites; long trips.
    Rural,
    /// Towns and outer suburbs.
    Suburban,
    /// Dense city fabric.
    Urban,
    /// The densest central-city cores.
    UrbanCore,
}

impl OacCluster {
    /// All clusters in the paper's Table 1 order.
    pub const ALL: [OacCluster; 8] = [
        OacCluster::RuralResidents,
        OacCluster::Cosmopolitans,
        OacCluster::EthnicityCentral,
        OacCluster::MulticulturalMetropolitans,
        OacCluster::Urbanites,
        OacCluster::Suburbanites,
        OacCluster::ConstrainedCityDwellers,
        OacCluster::HardPressedLiving,
    ];

    /// Human-readable name as printed in Table 1.
    pub fn name(self) -> &'static str {
        match self {
            OacCluster::RuralResidents => "Rural Residents",
            OacCluster::Cosmopolitans => "Cosmopolitans",
            OacCluster::EthnicityCentral => "Ethnicity Central",
            OacCluster::MulticulturalMetropolitans => "Multicultural Metropolitans",
            OacCluster::Urbanites => "Urbanites",
            OacCluster::Suburbanites => "Suburbanites",
            OacCluster::ConstrainedCityDwellers => "Constrained City Dwellers",
            OacCluster::HardPressedLiving => "Hard-pressed Living",
        }
    }

    /// Definition as printed in Table 1.
    pub fn definition(self) -> &'static str {
        match self {
            OacCluster::RuralResidents => {
                "Rural areas, low density, older and educated population"
            }
            OacCluster::Cosmopolitans => {
                "Densely populated urban areas, high ethnic integration, young adults and students"
            }
            OacCluster::EthnicityCentral => {
                "Denser central areas of London, non-white ethnic groups, young adults"
            }
            OacCluster::MulticulturalMetropolitans => {
                "Urban areas in transition between centres and suburbia, high ethnic mix"
            }
            OacCluster::Urbanites => {
                "Urban areas mainly in southern England, average ethnic mix, low unemployment"
            }
            OacCluster::Suburbanites => {
                "Population above retirement age and parents with school age children, low unemployment"
            }
            OacCluster::ConstrainedCityDwellers => {
                "Densely populated areas, single/divorced population, higher level of unemployment"
            }
            OacCluster::HardPressedLiving => {
                "Urban surroundings (northern England/southern Wales), higher rates of unemployment"
            }
        }
    }

    /// Typical density class of areas in this cluster.
    pub fn density_class(self) -> DensityClass {
        match self {
            OacCluster::RuralResidents => DensityClass::Rural,
            OacCluster::Cosmopolitans | OacCluster::EthnicityCentral => DensityClass::UrbanCore,
            OacCluster::MulticulturalMetropolitans | OacCluster::ConstrainedCityDwellers => {
                DensityClass::Urban
            }
            OacCluster::Urbanites
            | OacCluster::Suburbanites
            | OacCluster::HardPressedLiving => DensityClass::Suburban,
        }
    }

    /// How strongly areas of this cluster attract non-resident daytime
    /// visitors (work, commerce, education, recreation) relative to their
    /// resident population. Central-London clusters host "many seasonal
    /// residents (e.g. tourists), business and commercial areas"
    /// (Section 5.1), which is why EC/WC empty out under lockdown.
    pub fn daytime_attraction(self) -> f64 {
        match self {
            OacCluster::Cosmopolitans => 6.0,
            OacCluster::EthnicityCentral => 3.0,
            OacCluster::MulticulturalMetropolitans => 0.9,
            OacCluster::Urbanites => 1.0,
            OacCluster::ConstrainedCityDwellers => 0.8,
            OacCluster::Suburbanites => 0.6,
            OacCluster::HardPressedLiving => 0.7,
            OacCluster::RuralResidents => 0.4,
        }
    }

    /// Residential density (people per km²) typical of this cluster's
    /// areas; used to size zones and place cell sites.
    pub fn residential_density_per_km2(self) -> f64 {
        match self.density_class() {
            DensityClass::Rural => 60.0,
            DensityClass::Suburban => 1_500.0,
            DensityClass::Urban => 4_500.0,
            DensityClass::UrbanCore => 9_000.0,
        }
    }
}

impl std::fmt::Display for OacCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_eight_distinct_clusters() {
        let mut names: Vec<_> = OacCluster::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn definitions_match_paper_keywords() {
        assert!(OacCluster::RuralResidents.definition().contains("Rural"));
        assert!(OacCluster::Cosmopolitans
            .definition()
            .contains("young adults and students"));
        assert!(OacCluster::EthnicityCentral
            .definition()
            .contains("central areas of London"));
        assert!(OacCluster::HardPressedLiving
            .definition()
            .contains("unemployment"));
    }

    #[test]
    fn central_london_clusters_attract_most_visitors() {
        let cosmo = OacCluster::Cosmopolitans.daytime_attraction();
        for c in OacCluster::ALL {
            if c != OacCluster::Cosmopolitans {
                assert!(c.daytime_attraction() < cosmo, "{c} should attract less");
            }
        }
        assert!(
            OacCluster::RuralResidents.daytime_attraction()
                < OacCluster::Urbanites.daytime_attraction()
        );
    }

    #[test]
    fn density_ordering_is_sane() {
        assert!(
            OacCluster::Cosmopolitans.residential_density_per_km2()
                > OacCluster::Suburbanites.residential_density_per_km2()
        );
        assert!(
            OacCluster::Suburbanites.residential_density_per_km2()
                > OacCluster::RuralResidents.residential_density_per_km2()
        );
    }
}
