//! Property tests for the geography layer: coordinate math and the
//! invariants every synthesized country must satisfy.

use cellscope_geo::coords::center_of_mass;
use cellscope_geo::{BoundingBox, County, OacCluster, Point, SynthConfig};
use proptest::prelude::*;

proptest! {
    /// Distance is a metric: symmetric, zero iff equal points (up to
    /// floats), and satisfies the triangle inequality.
    #[test]
    fn distance_is_a_metric(
        ax in -1e4f64..1e4, ay in -1e4f64..1e4,
        bx in -1e4f64..1e4, by in -1e4f64..1e4,
        cx in -1e4f64..1e4, cy in -1e4f64..1e4,
    ) {
        let a = Point::new(ax, ay);
        let b = Point::new(bx, by);
        let c = Point::new(cx, cy);
        prop_assert!((a.distance_km(b) - b.distance_km(a)).abs() < 1e-9);
        prop_assert_eq!(a.distance_km(a), 0.0);
        prop_assert!(a.distance_km(c) <= a.distance_km(b) + b.distance_km(c) + 1e-9);
        prop_assert!((a.distance_km(b).powi(2) - a.distance_sq(b)).abs() < 1e-6);
    }

    /// The centre of mass lies inside the bounding box of its inputs.
    #[test]
    fn center_of_mass_inside_hull(
        points in prop::collection::vec(((-1e3f64..1e3), (-1e3f64..1e3), (0.001f64..1e4)), 1..50)
    ) {
        let weighted: Vec<(Point, f64)> = points
            .iter()
            .map(|&(x, y, w)| (Point::new(x, y), w))
            .collect();
        let cm = center_of_mass(weighted.iter().copied()).unwrap();
        let bbox = BoundingBox::containing(weighted.iter().map(|(p, _)| *p)).unwrap();
        prop_assert!(bbox.min.x - 1e-9 <= cm.x && cm.x <= bbox.max.x + 1e-9);
        prop_assert!(bbox.min.y - 1e-9 <= cm.y && cm.y <= bbox.max.y + 1e-9);
    }

    /// Every synthesized country satisfies the structural invariants the
    /// rest of the stack relies on, for any seed and granularity.
    #[test]
    fn synthesized_country_invariants(seed in 0u64..50, residents_per_zone in 150_000u32..500_000) {
        let geo = SynthConfig {
            seed,
            residents_per_zone,
            zones_per_lad: 4,
            ..SynthConfig::default()
        }
        .build();
        // Dense ids.
        for (i, z) in geo.zones().iter().enumerate() {
            prop_assert_eq!(z.id.index(), i);
            prop_assert!(z.population > 0);
            prop_assert!(z.area_km2 > 0.0);
            prop_assert!(z.work_attraction >= 0.0);
        }
        // Every county exists and owns at least one zone.
        for county in County::ALL {
            prop_assert!(
                !geo.zones_in_county(county).is_empty(),
                "county {county} empty"
            );
        }
        // Census tables are consistent at every level.
        let county_sum: u64 = County::ALL
            .iter()
            .map(|&c| geo.census().county_population(c))
            .sum();
        prop_assert_eq!(county_sum, geo.census().total_population());
        for lad in geo.lads() {
            let zone_sum: u64 = geo
                .zones()
                .iter()
                .filter(|z| z.lad == lad.id)
                .map(|z| z.population as u64)
                .sum();
            prop_assert_eq!(zone_sum, lad.census_population);
        }
        // LADs never span counties.
        for z in geo.zones() {
            prop_assert_eq!(geo.lad(z.lad).unwrap().county, z.county);
        }
        // London districts appear exactly inside Inner London, and only
        // the three London clusters appear there.
        for z in geo.zones() {
            prop_assert_eq!(z.district.is_some(), z.county == County::InnerLondon);
            if z.county == County::InnerLondon {
                prop_assert!(matches!(
                    z.cluster,
                    OacCluster::Cosmopolitans
                        | OacCluster::EthnicityCentral
                        | OacCluster::MulticulturalMetropolitans
                ));
            }
        }
    }
}
