//! Property tests for dwell reconstruction over arbitrary well-formed
//! event streams: every minute of the day is attributed exactly once,
//! to a cell the stream actually mentioned.

use cellscope_radio::CellId;
use cellscope_signaling::event::{EventType, SignalingEvent, HOME_MNC, UK_MCC};
use cellscope_signaling::{reconstruct_dwell, TacCode};
use proptest::prelude::*;

fn event(minute: u16, cell: u32) -> SignalingEvent {
    SignalingEvent {
        anon_id: 42,
        mcc: UK_MCC,
        mnc: HOME_MNC,
        tac: TacCode(35_000_000),
        cell: CellId(cell),
        day: 1,
        minute,
        event: EventType::ServiceRequest,
        success: true,
    }
}

fn event_stream() -> impl Strategy<Value = Vec<SignalingEvent>> {
    prop::collection::vec((0u16..1440, 0u32..12), 1..120).prop_map(|mut raw| {
        raw.sort_by_key(|&(minute, _)| minute);
        raw.into_iter().map(|(m, c)| event(m, c)).collect()
    })
}

proptest! {
    /// Reconstruction always accounts for exactly 1440 minutes.
    #[test]
    fn full_day_attributed(events in event_stream()) {
        let dwell = reconstruct_dwell(&events);
        let total: u32 = dwell.iter().map(|d| d.minutes as u32).sum();
        prop_assert_eq!(total, 1440);
    }

    /// Every attributed cell appears in the event stream, and each
    /// (cell, bin) pair appears at most once in the output.
    #[test]
    fn attribution_is_grounded_and_deduplicated(events in event_stream()) {
        let dwell = reconstruct_dwell(&events);
        let cells: std::collections::BTreeSet<u32> =
            events.iter().map(|e| e.cell.0).collect();
        let mut seen = std::collections::BTreeSet::new();
        for d in &dwell {
            prop_assert!(cells.contains(&d.cell.0), "unknown cell {}", d.cell);
            prop_assert!(seen.insert((d.cell.0, d.bin)), "duplicate (cell, bin)");
            prop_assert!(d.minutes > 0, "zero-minute record");
            prop_assert!(d.minutes <= 240, "bin overflow: {}", d.minutes);
        }
    }

    /// Per-bin totals are exactly 240 minutes.
    #[test]
    fn bins_account_to_240(events in event_stream()) {
        let dwell = reconstruct_dwell(&events);
        let mut per_bin = std::collections::BTreeMap::new();
        for d in &dwell {
            *per_bin.entry(d.bin).or_insert(0u32) += d.minutes as u32;
        }
        for (bin, total) in per_bin {
            prop_assert_eq!(total, 240, "bin {:?}", bin);
        }
    }

    /// A single-cell stream attributes the whole day to that cell
    /// regardless of how many events it contains.
    #[test]
    fn single_cell_gets_everything(minutes in prop::collection::vec(0u16..1440, 1..50)) {
        let mut sorted = minutes;
        sorted.sort_unstable();
        let events: Vec<_> = sorted.into_iter().map(|m| event(m, 7)).collect();
        let dwell = reconstruct_dwell(&events);
        prop_assert!(dwell.iter().all(|d| d.cell == CellId(7)));
        let total: u32 = dwell.iter().map(|d| d.minutes as u32).sum();
        prop_assert_eq!(total, 1440);
    }

    /// Reconstruction is idempotent in event density: adding extra
    /// events on the *same* cell between two existing events of that
    /// cell never changes the attribution.
    #[test]
    fn extra_same_cell_events_change_nothing(
        base in event_stream(),
        extra_minute in 0u16..1440,
    ) {
        let dwell_before = reconstruct_dwell(&base);
        // Find which cell "owns" extra_minute and inject an event there.
        let owner = base
            .iter()
            .take_while(|e| e.minute <= extra_minute)
            .last()
            .map(|e| e.cell.0)
            .unwrap_or(base[0].cell.0);
        let mut augmented = base.clone();
        augmented.push(event(extra_minute, owner));
        augmented.sort_by_key(|e| e.minute);
        let dwell_after = reconstruct_dwell(&augmented);
        prop_assert_eq!(dwell_before, dwell_after);
    }
}
