//! Property tests for the JSONL feed format: writing arbitrary
//! signaling events and reading them back is the identity, including
//! through blank-line interleavings, and the reader's accounting always
//! balances.

use cellscope_radio::CellId;
use cellscope_signaling::event::EventType;
use cellscope_signaling::{
    read_events_jsonl, write_events_jsonl, EventReader, MalformedPolicy,
    SignalingEvent, TacCode,
};
use proptest::prelude::*;

/// Arbitrary event over the full field ranges (not just values the
/// generator emits): any u64 id, any PLMN, any of the ten event types,
/// success and failure results.
fn arb_event() -> impl Strategy<Value = SignalingEvent> {
    (
        0u64..u64::MAX,
        0u16..1000,
        0u8..100,
        (0u32..100_000_000, 0u32..10_000, 0u16..400, 0u16..1440),
        0usize..EventType::ALL.len(),
        0u8..2,
    )
        .prop_map(|(anon_id, mcc, mnc, (tac, cell, day, minute), ev, success)| {
            SignalingEvent {
                anon_id,
                mcc,
                mnc,
                tac: TacCode(tac),
                cell: CellId(cell),
                day,
                minute,
                event: EventType::ALL[ev],
                success: success == 1,
            }
        })
}

proptest! {
    /// write → read is the identity for any event vector.
    #[test]
    fn jsonl_roundtrip_is_identity(events in prop::collection::vec(arb_event(), 0..50)) {
        let mut buf = Vec::new();
        write_events_jsonl(&mut buf, &events).expect("write");
        let back = read_events_jsonl(buf.as_slice()).expect("read");
        prop_assert_eq!(back, events);
    }

    /// Blank lines interleaved anywhere are separators, not records:
    /// the events still round-trip and the accounting still balances.
    #[test]
    fn blank_interleavings_are_tolerated(
        events in prop::collection::vec(arb_event(), 1..30),
        blanks in prop::collection::vec(0usize..30, 0..10),
    ) {
        let mut buf = Vec::new();
        write_events_jsonl(&mut buf, &events).expect("write");
        let mut lines: Vec<String> = String::from_utf8(buf)
            .expect("utf8")
            .lines()
            .map(str::to_string)
            .collect();
        let mut inserted = 0u64;
        for b in blanks {
            let at = b % (lines.len() + 1);
            // Mix pure-empty and whitespace-only separators.
            let filler = if at % 2 == 0 { "" } else { "   \t" };
            lines.insert(at, filler.to_string());
            inserted += 1;
        }
        let text = lines.join("\n") + "\n";

        let mut reader = EventReader::new(text.as_bytes());
        let back: Result<Vec<SignalingEvent>, _> = (&mut reader).collect();
        prop_assert_eq!(back.expect("blank lines are not errors"), events);
        let stats = reader.stats();
        prop_assert_eq!(stats.blank, inserted);
        prop_assert_eq!(stats.parsed, events.len() as u64);
        prop_assert_eq!(stats.malformed, 0);
        prop_assert_eq!(
            stats.parsed + stats.blank + stats.malformed,
            stats.lines_read
        );
    }

    /// Concatenating two serialized feeds parses to the concatenation
    /// of their events — the property day-file streaming relies on.
    #[test]
    fn feeds_concatenate(
        a in prop::collection::vec(arb_event(), 0..20),
        b in prop::collection::vec(arb_event(), 0..20),
    ) {
        let mut buf = Vec::new();
        write_events_jsonl(&mut buf, &a).expect("write a");
        write_events_jsonl(&mut buf, &b).expect("write b");
        let back = read_events_jsonl(buf.as_slice()).expect("read");
        let mut expect = a;
        expect.extend(b);
        prop_assert_eq!(back, expect);
    }

    /// Under skip-and-count, splicing one garbage line into a valid
    /// feed drops exactly that line.
    #[test]
    fn single_corruption_costs_one_record(
        events in prop::collection::vec(arb_event(), 1..30),
        at in 0usize..30,
        garbage_pick in 0usize..5,
    ) {
        const GARBAGE: [&str; 5] = [
            "#!corrupt",
            "{\"anon_id\":",          // truncated record
            "{}",                      // valid JSON, wrong shape
            "[1,2,3]",                 // valid JSON, not an object
            "{\"anon_id\":1,\"mcc\":\"not a number\"}",
        ];
        let garbage = GARBAGE[garbage_pick].to_string();
        let mut buf = Vec::new();
        write_events_jsonl(&mut buf, &events).expect("write");
        let mut lines: Vec<String> = String::from_utf8(buf)
            .expect("utf8")
            .lines()
            .map(str::to_string)
            .collect();
        let at = at % (lines.len() + 1);
        lines.insert(at, garbage);
        let text = lines.join("\n") + "\n";

        let mut reader = EventReader::new(text.as_bytes())
            .with_policy(MalformedPolicy::SkipAndCount);
        let back: Vec<SignalingEvent> =
            (&mut reader).map(|r| r.expect("skip policy")).collect();
        prop_assert_eq!(back, events);
        prop_assert_eq!(reader.stats().malformed, 1);
    }
}
