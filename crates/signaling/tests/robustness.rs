//! Fault-tolerance of the feed reader over deliberately damaged feeds:
//! truncated lines, invalid JSON, and out-of-range ids. Skip-and-count
//! must drop *exactly* the bad records and keep every good one;
//! fail-fast must locate the first bad line by its 1-based number.

use cellscope_radio::CellId;
use cellscope_signaling::event::{EventType, HOME_MNC, UK_MCC};
use cellscope_signaling::{
    read_events_jsonl, write_events_jsonl, EventReader, FeedBounds, FeedError,
    MalformedPolicy, SignalingEvent, TacCode,
};

fn event(anon_id: u64, minute: u16, cell: u32, day: u16) -> SignalingEvent {
    SignalingEvent {
        anon_id,
        mcc: UK_MCC,
        mnc: HOME_MNC,
        tac: TacCode(35_123_400),
        cell: CellId(cell),
        day,
        minute,
        event: EventType::ServiceRequest,
        success: true,
    }
}

fn feed_text(events: &[SignalingEvent]) -> String {
    let mut buf = Vec::new();
    write_events_jsonl(&mut buf, events).expect("serialize");
    String::from_utf8(buf).expect("utf8")
}

/// A ten-event feed with damage spliced into known lines:
/// line 3 truncated mid-record, line 6 is not JSON at all, line 8 blank.
/// Returns (text, surviving events).
fn damaged_feed() -> (String, Vec<SignalingEvent>) {
    let events: Vec<SignalingEvent> =
        (0..10u32).map(|i| event(i as u64, i as u16 * 7, i, 3)).collect();
    let mut lines: Vec<String> =
        feed_text(&events).lines().map(str::to_string).collect();
    assert_eq!(lines.len(), 10);
    // Truncate line 3 (index 2) as if the writer died mid-record.
    let l = lines[2].clone();
    lines[2] = l[..l.len() / 2].to_string();
    // Replace line 6 (index 5) with non-JSON garbage.
    lines[5] = "#!corrupt probe output!!".to_string();
    // Blank separator at line 8 (index 7) — tolerated, not an error.
    lines[7] = String::new();
    let survivors: Vec<SignalingEvent> = events
        .iter()
        .enumerate()
        .filter(|(i, _)| ![2usize, 5, 7].contains(i))
        .map(|(_, e)| *e)
        .collect();
    (lines.join("\n") + "\n", survivors)
}

#[test]
fn skip_and_count_drops_exactly_the_bad_records() {
    let (text, survivors) = damaged_feed();
    let mut reader = EventReader::new(text.as_bytes())
        .with_policy(MalformedPolicy::SkipAndCount);
    let got: Vec<SignalingEvent> =
        (&mut reader).map(|r| r.expect("skip policy never errors")).collect();
    assert_eq!(got, survivors, "every good record survives, in order");
    let stats = reader.stats();
    assert_eq!(stats.lines_read, 10);
    assert_eq!(stats.parsed, 7);
    assert_eq!(stats.malformed, 2);
    assert_eq!(stats.blank, 1);
    assert_eq!(stats.parsed + stats.blank + stats.malformed, stats.lines_read);
}

#[test]
fn fail_fast_reports_first_bad_line_one_based() {
    let (text, _) = damaged_feed();
    let mut reader = EventReader::new(text.as_bytes()); // fail-fast default
    let mut parsed = 0usize;
    let err = loop {
        match reader.next() {
            Some(Ok(_)) => parsed += 1,
            Some(Err(e)) => break e,
            None => panic!("reader must hit the truncated line"),
        }
    };
    assert_eq!(parsed, 2, "lines 1–2 parse before line 3 aborts");
    match err {
        FeedError::Malformed { line, reason } => {
            assert_eq!(line, 3, "1-based line number of the truncation");
            assert!(!reason.is_empty());
        }
        FeedError::Io(e) => panic!("unexpected I/O error: {e}"),
        FeedError::Segment(e) => panic!("unexpected segment error: {e}"),
    }
    assert!(reader.next().is_none(), "reader fuses after a fatal error");

    // The Vec-collecting wrapper surfaces the same location.
    let io_err = read_events_jsonl(text.as_bytes()).unwrap_err();
    assert!(
        io_err.to_string().contains("line 3"),
        "error should carry the line: {io_err}"
    );
}

#[test]
fn bounds_reject_out_of_range_day_and_cell() {
    let events = vec![
        event(1, 10, 5, 3),   // fine
        event(2, 20, 5, 120), // day out of range
        event(3, 30, 99, 3),  // cell out of range
        event(4, 40, 0, 3),   // fine
    ];
    let text = feed_text(&events);
    let bounds = FeedBounds { num_days: 100, num_cells: 50 };

    // Skip-and-count: exactly the two out-of-range records drop.
    let mut reader = EventReader::new(text.as_bytes())
        .with_policy(MalformedPolicy::SkipAndCount)
        .with_bounds(bounds);
    let got: Vec<u64> =
        (&mut reader).map(|r| r.expect("skip policy").anon_id).collect();
    assert_eq!(got, vec![1, 4]);
    let stats = reader.stats();
    assert_eq!(stats.parsed, 2);
    assert_eq!(stats.malformed, 2);

    // Fail-fast: aborts at line 2 with a reason naming the bad day.
    let mut reader = EventReader::new(text.as_bytes()).with_bounds(bounds);
    assert!(reader.next().unwrap().is_ok());
    match reader.next().unwrap() {
        Err(FeedError::Malformed { line, reason }) => {
            assert_eq!(line, 2);
            assert!(reason.contains("day 120"), "reason: {reason}");
        }
        other => panic!("expected bounds failure, got {other:?}"),
    }

    // Without bounds the same feed is structurally fine.
    let unchecked = read_events_jsonl(text.as_bytes()).expect("no bounds");
    assert_eq!(unchecked.len(), 4);
}

#[test]
fn truncation_at_end_of_feed_is_located() {
    // A feed cut off mid-write: the final line has no closing brace.
    let events: Vec<SignalingEvent> =
        (0..5u32).map(|i| event(i as u64, i as u16 * 3, i, 0)).collect();
    let text = feed_text(&events);
    let cut = text.trim_end().len() - 10;
    let truncated = &text[..cut];

    let err = read_events_jsonl(truncated.as_bytes()).unwrap_err();
    assert!(err.to_string().contains("line 5"), "error: {err}");

    let mut reader = EventReader::new(truncated.as_bytes())
        .with_policy(MalformedPolicy::SkipAndCount);
    let got = (&mut reader).filter_map(Result::ok).count();
    assert_eq!(got, 4, "all complete records survive");
    assert_eq!(reader.stats().malformed, 1);
}
