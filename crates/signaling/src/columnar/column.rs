//! Little-endian column primitives shared by every segment codec.
//!
//! A payload is a sequence of fixed-width columns, each `n` records
//! long, plus one optional dictionary block for id columns with few
//! distinct values. Writers append to a `Vec<u8>`; readers walk a
//! bounds-checked [`Cursor`] over the payload slice and then index the
//! returned column slices directly — decoding pivots columns back into
//! row structs without any intermediate per-column `Vec`, which is what
//! lets the replay decode path hit zero steady-state allocations.
//!
//! Every read failure is a typed, `Copy` [`SegmentError`] naming the
//! column, so a crafted or damaged payload can never make a decoder
//! panic, wrap, or slice out of bounds.

use super::format::SegmentError;

// ---------------------------------------------------------------------
// Writers
// ---------------------------------------------------------------------

/// Append a `u16` little-endian.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u32` little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64` little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append an `f64` as its little-endian bit pattern — encoding is a
/// bijection on bits, so NaN payloads and signed zeros survive exactly.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

// ---------------------------------------------------------------------
// Column slice accessors (caller guarantees `i < n`; the slice length
// was bounds-checked once by `Cursor::take`)
// ---------------------------------------------------------------------

/// `i`-th `u8` of a 1-byte-wide column.
pub fn u8_at(col: &[u8], i: usize) -> u8 {
    col[i]
}

/// `i`-th `u16` of a 2-byte-wide column.
pub fn u16_at(col: &[u8], i: usize) -> u16 {
    u16::from_le_bytes([col[2 * i], col[2 * i + 1]])
}

/// `i`-th `u32` of a 4-byte-wide column.
pub fn u32_at(col: &[u8], i: usize) -> u32 {
    u32::from_le_bytes([col[4 * i], col[4 * i + 1], col[4 * i + 2], col[4 * i + 3]])
}

/// `i`-th `u64` of an 8-byte-wide column.
pub fn u64_at(col: &[u8], i: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&col[8 * i..8 * i + 8]);
    u64::from_le_bytes(b)
}

/// `i`-th `f64` of an 8-byte-wide column, reconstructed from bits.
pub fn f64_at(col: &[u8], i: usize) -> f64 {
    f64::from_bits(u64_at(col, i))
}

// ---------------------------------------------------------------------
// Reader cursor
// ---------------------------------------------------------------------

/// Bounds-checked forward cursor over a payload slice.
pub struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Cursor at the start of a payload.
    pub fn new(bytes: &'a [u8]) -> Cursor<'a> {
        Cursor { bytes, pos: 0 }
    }

    /// Unread bytes.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Take the next `len` bytes as `column`'s storage, or fail with a
    /// [`SegmentError::ColumnOverrun`] naming it.
    pub fn take(
        &mut self,
        len: usize,
        column: &'static str,
    ) -> Result<&'a [u8], SegmentError> {
        if self.remaining() < len {
            return Err(SegmentError::ColumnOverrun {
                column,
                needed: len,
                have: self.remaining(),
            });
        }
        let slice = &self.bytes[self.pos..self.pos + len];
        self.pos += len;
        Ok(slice)
    }

    /// Take a single byte (width markers, flags).
    pub fn take_u8(&mut self, column: &'static str) -> Result<u8, SegmentError> {
        Ok(self.take(1, column)?[0])
    }

    /// Take a single little-endian `u32` (lengths, counts).
    pub fn take_u32(&mut self, column: &'static str) -> Result<u32, SegmentError> {
        let b = self.take(4, column)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Assert the payload is fully consumed: leftover bytes mean the
    /// record count and the columns disagree.
    pub fn finish(&self) -> Result<(), SegmentError> {
        if self.remaining() != 0 {
            return Err(SegmentError::ColumnUnderrun { extra: self.remaining() });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Dictionary-coded u32 column
// ---------------------------------------------------------------------

/// On-wire layout of a dictionary-coded `u32` column:
///
/// ```text
/// dict_len  u32
/// dict      [u32; dict_len]      distinct values, first-appearance order
/// width     u8                   2 or 4 (index byte width)
/// indices   [u16|u32; records]   positions into dict
/// ```
///
/// Cell/tower ids are the textbook case: a day shard references a few
/// thousand distinct cells across millions of events, so each reference
/// shrinks from 4 bytes to 2 while staying losslessly `u32`-valued.
/// First-appearance order makes the encoding a pure function of the
/// record sequence — byte-identical output for byte-identical input,
/// which the equivalence proptests rely on.
pub fn encode_dict_u32<I>(values: I, records: usize, out: &mut Vec<u8>)
where
    I: Iterator<Item = u32> + Clone,
{
    // First pass: the dictionary, in first-appearance order.
    let mut dict: Vec<u32> = Vec::new();
    let mut map: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    for v in values.clone() {
        map.entry(v).or_insert_with(|| {
            dict.push(v);
            dict.len() as u32 - 1
        });
    }
    put_u32(out, dict.len() as u32);
    for &v in &dict {
        put_u32(out, v);
    }
    // Second pass: indices, at the narrowest width that fits.
    let width: u8 = if dict.len() <= u16::MAX as usize + 1 { 2 } else { 4 };
    out.push(width);
    let mut n = 0usize;
    for v in values {
        let idx = map[&v];
        if width == 2 {
            put_u16(out, idx as u16);
        } else {
            put_u32(out, idx);
        }
        n += 1;
    }
    debug_assert_eq!(n, records);
}

/// Decoded dictionary column: the dictionary lives in caller scratch,
/// the index column stays a borrowed payload slice.
pub struct DictColumn<'a> {
    width: u8,
    indices: &'a [u8],
    dict_len: u32,
}

impl DictColumn<'_> {
    /// Dictionary-decode the `i`-th value via the scratch dictionary
    /// filled by [`read_dict_u32`]. Fails typed on an index past the
    /// dictionary (only possible on crafted/corrupt payloads — the CRC
    /// already vouched for transport integrity, not for semantics).
    pub fn get(&self, dict: &[u32], i: usize) -> Result<u32, SegmentError> {
        let idx = if self.width == 2 {
            u16_at(self.indices, i) as u32
        } else {
            u32_at(self.indices, i)
        };
        dict.get(idx as usize).copied().ok_or(SegmentError::BadDictIndex {
            index: idx,
            dict_len: self.dict_len,
        })
    }
}

/// Read a dictionary-coded `u32` column written by [`encode_dict_u32`]:
/// fills `dict` (reused scratch — cleared, then extended in place) and
/// returns the index column view.
pub fn read_dict_u32<'a>(
    cur: &mut Cursor<'a>,
    records: usize,
    dict: &mut Vec<u32>,
    column: &'static str,
) -> Result<DictColumn<'a>, SegmentError> {
    let dict_len = cur.take_u32(column)?;
    let dict_bytes = cur.take(dict_len as usize * 4, column)?;
    dict.clear();
    dict.reserve(dict_len as usize);
    for i in 0..dict_len as usize {
        dict.push(u32_at(dict_bytes, i));
    }
    let width = cur.take_u8(column)?;
    if width != 2 && width != 4 {
        return Err(SegmentError::BadIndexWidth { found: width });
    }
    let indices = cur.take(records * width as usize, column)?;
    Ok(DictColumn { width, indices, dict_len })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dict_column_roundtrips() {
        let values = [7u32, 7, 900_000, 7, 3, 900_000, 3, 3];
        let mut buf = Vec::new();
        encode_dict_u32(values.iter().copied(), values.len(), &mut buf);

        let mut cur = Cursor::new(&buf);
        let mut dict = vec![0xDEAD_BEEF]; // dirty scratch
        let col = read_dict_u32(&mut cur, values.len(), &mut dict, "cell").unwrap();
        cur.finish().unwrap();
        assert_eq!(dict, vec![7, 900_000, 3], "first-appearance order");
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(col.get(&dict, i).unwrap(), v);
        }
    }

    #[test]
    fn cursor_overrun_names_the_column() {
        let mut cur = Cursor::new(&[1, 2, 3]);
        let err = cur.take(8, "anon_id").unwrap_err();
        assert_eq!(
            err,
            SegmentError::ColumnOverrun { column: "anon_id", needed: 8, have: 3 }
        );
    }

    #[test]
    fn cursor_finish_rejects_leftovers() {
        let bytes = [0u8; 6];
        let mut cur = Cursor::new(&bytes);
        cur.take(4, "x").unwrap();
        assert_eq!(cur.finish(), Err(SegmentError::ColumnUnderrun { extra: 2 }));
        cur.take(2, "y").unwrap();
        assert_eq!(cur.finish(), Ok(()));
    }

    #[test]
    fn f64_columns_are_bit_exact() {
        let values = [0.1 + 0.2, -0.0, f64::INFINITY, f64::from_bits(0x7FF8_0000_0000_0001)];
        let mut buf = Vec::new();
        for v in values {
            put_f64(&mut buf, v);
        }
        for (i, v) in values.iter().enumerate() {
            assert_eq!(f64_at(&buf, i).to_bits(), v.to_bits());
        }
    }
}
