//! Binary columnar feed segments: the compact on-disk twin of the
//! JSONL feeds.
//!
//! JSONL stays the interchange/debug format — greppable, pipeable into
//! jq/pandas/DuckDB — but parsing a JSON object per record is what
//! dominates replay at scale: the paper's substrate was ~22M
//! subscribers, and at even 1M the exported feeds run to tens of GB of
//! text. This module defines the replacement the replay engine decodes
//! at memory speed: little-endian, day-sharded *segments* with
//! per-field columns, dictionary-coded cell ids, a fixed versioned
//! header and a CRC32 over the payload.
//!
//! * [`format`] — the segment envelope: magic/version/kind header,
//!   CRC32, and the typed, allocation-free [`SegmentError`];
//! * [`column`] — fixed-width little-endian column primitives and the
//!   dictionary-coded u32 column, shared by every segment codec;
//! * [`events`] — the [`crate::SignalingEvent`] segment codec (the KPI
//!   and voice codecs live in `cellscope-scenario`, next to the record
//!   types they serialize);
//! * [`view`] — [`SegmentView`], the mmap-backed zero-copy read path:
//!   decoders borrow column bytes straight from the mapped pages.
//!
//! Three properties the test layer holds the format to:
//!
//! 1. **Losslessness** — encode∘decode is the identity on any record
//!    sequence, and converting an exported JSONL feed to binary and
//!    back reproduces the original files byte for byte;
//! 2. **Equivalence** — replaying binary segments is bit-identical to
//!    replaying the JSONL feeds they were converted from;
//! 3. **Typed failure** — truncation, bit flips, version skew and
//!    crafted counts each surface as a specific [`SegmentError`], never
//!    as a panic, a wrong record, or a silent drop.

pub mod column;
pub mod events;
pub mod format;
pub mod view;

pub use events::{
    decode_events_into, encode_events, encode_events_into, encode_events_segmented,
    DecodeScratch,
};
pub use format::{
    check_segment, crc32, looks_like_segment, peek_records, peek_total_records,
    split_segments, SegmentBlockReader, SegmentError, SegmentHeader, SegmentKind,
    SegmentStreamError, ALL_DAYS, HEADER_LEN, SEGMENT_MAGIC, SEGMENT_VERSION,
};
pub use view::SegmentView;
