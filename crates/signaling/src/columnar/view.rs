//! Memory-mapped segment files: the zero-copy read path.
//!
//! [`SegmentView`] maps a whole `.csb` file read-only and hands its
//! segments out as borrows of the mapped pages, so the decoders
//! ([`super::events::decode_events_into`] and the KPI/voice codecs in
//! `cellscope-scenario`) read column bytes straight from the page
//! cache — no chunk buffer, no copy between the kernel and the column
//! cursors. The streaming twin ([`super::format::SegmentBlockReader`])
//! stays the right tool for pipes and non-seekable sources; the view
//! is the right tool for on-disk feeds, where the OS pages data in on
//! demand and evicts it under pressure, keeping resident memory
//! file-backed instead of anonymous.
//!
//! **Truncation safety.** Every length the format trusts is validated
//! against the mapped length (captured at map time):
//! [`super::format::check_segment`] refuses a payload that runs past
//! the mapping with a typed [`super::format::SegmentError`], exactly
//! as it does for an in-memory byte run — a file truncated *before*
//! mapping can never fault. The one hazard mmap adds is a file
//! truncated *while* mapped (reads past the new EOF raise `SIGBUS`);
//! feed files are write-once artifacts, so the view documents rather
//! than defends against that, matching the vendored `memmap2`
//! contract.

use memmap2::Mmap;
use std::fs::File;
use std::io;
use std::path::Path;

use super::format::{SegmentSplitter, split_segments};

/// A read-only memory map of one segment file.
pub struct SegmentView {
    map: Mmap,
}

impl SegmentView {
    /// Map the file at `path` in its entirety.
    pub fn open(path: &Path) -> io::Result<SegmentView> {
        SegmentView::map(&File::open(path)?)
    }

    /// Map an already-open file.
    pub fn map(file: &File) -> io::Result<SegmentView> {
        // SAFETY: feed files are write-once; the replay contract (and
        // module docs) require them untruncated while a view is alive.
        let map = unsafe { Mmap::map(file) }?;
        Ok(SegmentView { map })
    }

    /// The whole mapped file.
    pub fn bytes(&self) -> &[u8] {
        &self.map
    }

    /// Mapped length in bytes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the mapped file is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Walk the file's back-to-back segments, borrowing each from the
    /// mapped pages (the same iterator an in-memory byte run gets).
    pub fn segments(&self) -> SegmentSplitter<'_> {
        split_segments(&self.map)
    }
}

impl std::fmt::Debug for SegmentView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentView").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::columnar::{self, DecodeScratch, SegmentError};
    use crate::event::{EventType, SignalingEvent};
    use crate::tac::TacCode;
    use cellscope_radio::CellId;
    use std::io::Write;

    fn sample_events(n: u16) -> Vec<SignalingEvent> {
        (0..n)
            .map(|i| SignalingEvent {
                anon_id: 0x1000 + i as u64,
                cell: CellId(7 + (i as u32 % 3)),
                mcc: 234,
                mnc: 15,
                tac: TacCode(86_000_000 + i as u32),
                day: 3,
                minute: i * 2,
                event: EventType::Attach,
                success: true,
            })
            .collect()
    }

    fn temp_segment_file(tag: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir()
            .join(format!("cellscope_view_{tag}_{}.csb", std::process::id()));
        let mut f = File::create(&path).unwrap();
        f.write_all(bytes).unwrap();
        path
    }

    #[test]
    fn mapped_segments_decode_like_in_memory_bytes() {
        let events = sample_events(200);
        let mut bytes = Vec::new();
        // Two back-to-back segments, like the oversize splitter writes.
        columnar::encode_events_segmented(3, &events, 77, &mut bytes).unwrap();
        let path = temp_segment_file("decode", &bytes);

        let view = SegmentView::open(&path).unwrap();
        assert_eq!(view.bytes(), bytes.as_slice());
        let mut scratch = DecodeScratch::default();
        let mut out = Vec::new();
        let mut decoded = Vec::new();
        for seg in view.segments() {
            columnar::decode_events_into(seg.unwrap(), &mut scratch, &mut out).unwrap();
            decoded.extend_from_slice(&out);
        }
        assert_eq!(decoded, events);
        drop(view);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_mapping_surfaces_typed_error_not_fault() {
        let events = sample_events(64);
        let bytes = columnar::encode_events(3, &events);
        let cut = bytes.len() - 9; // mid-payload
        let path = temp_segment_file("trunc", &bytes[..cut]);

        let view = SegmentView::open(&path).unwrap();
        let err = view.segments().next().unwrap().unwrap_err();
        assert!(matches!(err, SegmentError::Truncated { .. }), "got {err:?}");
        drop(view);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_yields_no_segments() {
        let path = temp_segment_file("empty", &[]);
        let view = SegmentView::open(&path).unwrap();
        assert!(view.is_empty());
        assert!(view.segments().next().is_none());
        drop(view);
        std::fs::remove_file(&path).ok();
    }
}
