//! Events segment codec: [`SignalingEvent`] slices ⇄ one binary
//! columnar segment.
//!
//! Payload layout (after the [`super::format`] header), all columns
//! `records` long:
//!
//! ```text
//! cell     dictionary-coded u32 (see `column::encode_dict_u32`)
//! anon_id  [u64; n]
//! mcc      [u16; n]
//! mnc      [u8;  n]
//! tac      [u32; n]
//! day      [u16; n]    per record — lossless even for stray days
//! minute   [u16; n]
//! event    [u8;  n]    index into `EventType::ALL`
//! success  [u8;  n]    0 or 1
//! ```
//!
//! Encoding is a pure function of the event sequence (dictionary in
//! first-appearance order, no timestamps, no padding entropy), so equal
//! inputs produce byte-identical segments — the property the
//! JSONL⇄binary losslessness proptests pin down. Decoding fills a
//! caller-owned `Vec` and a reused [`DecodeScratch`], allocating
//! nothing once both have reached their high-water capacity: the
//! replay hot path decodes day after day with zero steady-state
//! allocations, the same `_into` discipline as the rest of the
//! pipeline.

use super::column::{self, Cursor};
use super::format::{
    check_segment, seal_segment, SegmentError, SegmentHeader, SegmentKind,
    HEADER_LEN,
};
use crate::event::{EventType, SignalingEvent};
use crate::tac::TacCode;
use cellscope_radio::CellId;

/// Reused decode-side scratch (today: the cell-id dictionary). One per
/// worker, cleared and refilled in place each segment.
#[derive(Default)]
pub struct DecodeScratch {
    /// Dictionary of the segment being decoded.
    pub dict: Vec<u32>,
}

/// Append one events segment to `out` (not cleared — the multi-segment
/// writer's building block).
fn append_events_segment(
    day: u16,
    events: &[SignalingEvent],
    out: &mut Vec<u8>,
) -> Result<(), SegmentError> {
    let start = out.len();
    out.resize(start + HEADER_LEN, 0);
    let n = events.len();
    column::encode_dict_u32(events.iter().map(|e| e.cell.0), n, out);
    for e in events {
        column::put_u64(out, e.anon_id);
    }
    for e in events {
        column::put_u16(out, e.mcc);
    }
    for e in events {
        out.push(e.mnc);
    }
    for e in events {
        column::put_u32(out, e.tac.0);
    }
    for e in events {
        column::put_u16(out, e.day);
    }
    for e in events {
        column::put_u16(out, e.minute);
    }
    for e in events {
        out.push(e.event as u8);
    }
    for e in events {
        out.push(e.success as u8);
    }
    seal_segment(&mut out[start..], SegmentKind::Events, day, n)
}

/// Encode one day shard of events into `out` (cleared first) as a
/// single segment. The segment records `day` in its header; each
/// event's own `day` field is stored too, so the encoding is lossless
/// for any event sequence, not only well-formed shards. Fails with
/// [`SegmentError::SegmentTooLarge`] past the format's `u32` ceilings —
/// use [`encode_events_segmented`] for days that may exceed them.
pub fn encode_events_into(
    day: u16,
    events: &[SignalingEvent],
    out: &mut Vec<u8>,
) -> Result<(), SegmentError> {
    out.clear();
    append_events_segment(day, events, out)
}

/// Encode one day shard as back-to-back segments of at most
/// `max_records` events each (cleared first; at least one segment, so
/// an empty day still produces a well-formed file). Returns the
/// segment count. Splitting keeps arbitrarily large days encodable
/// under the header's `u32` payload/record ceilings.
pub fn encode_events_segmented(
    day: u16,
    events: &[SignalingEvent],
    max_records: usize,
    out: &mut Vec<u8>,
) -> Result<usize, SegmentError> {
    assert!(max_records > 0, "segment capacity must be positive");
    out.clear();
    if events.is_empty() {
        append_events_segment(day, events, out)?;
        return Ok(1);
    }
    let mut segments = 0;
    for chunk in events.chunks(max_records) {
        append_events_segment(day, chunk, out)?;
        segments += 1;
    }
    Ok(segments)
}

/// [`encode_events_into`] into a fresh buffer.
pub fn encode_events(day: u16, events: &[SignalingEvent]) -> Vec<u8> {
    let mut out = Vec::new();
    encode_events_into(day, events, &mut out)
        .expect("in-memory event segment under the u32 ceiling");
    out
}

/// Decode an events segment into `out` (cleared first), returning the
/// validated header. Envelope damage (truncation, bad magic or
/// version, checksum mismatch) and payload inconsistencies (mid-column
/// EOF, out-of-domain enum bytes, bad dictionary indices) all surface
/// as typed [`SegmentError`]s; on error `out` is left cleared, never
/// half-filled.
pub fn decode_events_into(
    bytes: &[u8],
    scratch: &mut DecodeScratch,
    out: &mut Vec<SignalingEvent>,
) -> Result<SegmentHeader, SegmentError> {
    out.clear();
    let (header, payload) = check_segment(bytes, SegmentKind::Events)?;
    let n = header.records as usize;
    let mut cur = Cursor::new(payload);
    let cells = column::read_dict_u32(&mut cur, n, &mut scratch.dict, "cell")?;
    let anon = cur.take(8 * n, "anon_id")?;
    let mcc = cur.take(2 * n, "mcc")?;
    let mnc = cur.take(n, "mnc")?;
    let tac = cur.take(4 * n, "tac")?;
    let day = cur.take(2 * n, "day")?;
    let minute = cur.take(2 * n, "minute")?;
    let event = cur.take(n, "event")?;
    let success = cur.take(n, "success")?;
    cur.finish()?;

    out.reserve(n);
    let fill = |out: &mut Vec<SignalingEvent>| -> Result<(), SegmentError> {
        for i in 0..n {
            let ev_code = column::u8_at(event, i);
            let ev = *EventType::ALL
                .get(ev_code as usize)
                .ok_or(SegmentError::BadEnum { column: "event", value: ev_code })?;
            let ok = match column::u8_at(success, i) {
                0 => false,
                1 => true,
                v => return Err(SegmentError::BadEnum { column: "success", value: v }),
            };
            out.push(SignalingEvent {
                anon_id: column::u64_at(anon, i),
                mcc: column::u16_at(mcc, i),
                mnc: column::u8_at(mnc, i),
                tac: TacCode(column::u32_at(tac, i)),
                cell: CellId(cells.get(&scratch.dict, i)?),
                day: column::u16_at(day, i),
                minute: column::u16_at(minute, i),
                event: ev,
                success: ok,
            });
        }
        Ok(())
    };
    if let Err(e) = fill(out) {
        out.clear(); // never hand back a half-filled decode
        return Err(e);
    }
    Ok(header)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{HOME_MNC, UK_MCC};

    fn sample(n: usize) -> Vec<SignalingEvent> {
        (0..n)
            .map(|i| SignalingEvent {
                anon_id: 0xFEED_0000 + i as u64,
                mcc: UK_MCC,
                mnc: HOME_MNC,
                tac: TacCode(35_000_000 + (i as u32 % 5)),
                cell: CellId((i as u32 * 7) % 13),
                day: 21,
                minute: (i * 31 % 1440) as u16,
                event: EventType::ALL[i % EventType::ALL.len()],
                success: i % 4 != 0,
            })
            .collect()
    }

    #[test]
    fn encode_decode_is_identity() {
        let events = sample(200);
        let bytes = encode_events(21, &events);
        let mut scratch = DecodeScratch::default();
        let mut out = Vec::new();
        let header = decode_events_into(&bytes, &mut scratch, &mut out).unwrap();
        assert_eq!(header.day, 21);
        assert_eq!(header.records, 200);
        assert_eq!(out, events);
    }

    #[test]
    fn empty_segment_roundtrips() {
        let bytes = encode_events(3, &[]);
        let mut out = vec![sample(1)[0]]; // dirty
        let header =
            decode_events_into(&bytes, &mut DecodeScratch::default(), &mut out).unwrap();
        assert_eq!(header.records, 0);
        assert!(out.is_empty());
    }

    #[test]
    fn encoding_is_deterministic() {
        let events = sample(64);
        assert_eq!(encode_events(5, &events), encode_events(5, &events));
    }

    #[test]
    fn segmented_encoding_splits_and_concatenates_losslessly() {
        use super::super::format::split_segments;
        let events = sample(100);
        let mut bytes = Vec::new();
        let segments = encode_events_segmented(9, &events, 30, &mut bytes).unwrap();
        assert_eq!(segments, 4); // 30+30+30+10
        let mut scratch = DecodeScratch::default();
        let mut seg_out = Vec::new();
        let mut all = Vec::new();
        for seg in split_segments(&bytes) {
            let header = decode_events_into(seg.unwrap(), &mut scratch, &mut seg_out).unwrap();
            assert_eq!(header.day, 9);
            all.extend(seg_out.iter().copied());
        }
        assert_eq!(all, events);
    }

    #[test]
    fn segmented_encoding_with_one_chunk_matches_single_segment() {
        let events = sample(40);
        let mut single = Vec::new();
        encode_events_into(3, &events, &mut single).unwrap();
        let mut multi = Vec::new();
        assert_eq!(encode_events_segmented(3, &events, 1000, &mut multi).unwrap(), 1);
        assert_eq!(single, multi, "legacy one-segment files stay byte-identical");
    }

    #[test]
    fn dirty_scratch_and_output_do_not_leak() {
        let a = sample(50);
        let b: Vec<SignalingEvent> =
            sample(20).into_iter().map(|mut e| { e.cell = CellId(999); e }).collect();
        let bytes_a = encode_events(0, &a);
        let bytes_b = encode_events(0, &b);

        let mut scratch = DecodeScratch::default();
        let mut out = Vec::new();
        decode_events_into(&bytes_a, &mut scratch, &mut out).unwrap();
        decode_events_into(&bytes_b, &mut scratch, &mut out).unwrap();
        assert_eq!(out, b, "second decode sees no residue of the first");
    }

    #[test]
    fn crafted_record_count_hits_mid_column_eof() {
        let events = sample(30);
        let mut bytes = encode_events(0, &events);
        // Inflate the declared record count; the payload CRC stays
        // valid (it covers the payload, not the header), so the decoder
        // must catch the disagreement at column-read time.
        bytes[12..16].copy_from_slice(&31u32.to_le_bytes());
        let err = decode_events_into(
            &bytes,
            &mut DecodeScratch::default(),
            &mut Vec::new(),
        )
        .unwrap_err();
        assert!(
            matches!(err, SegmentError::ColumnOverrun { .. }),
            "expected mid-column EOF, got {err}"
        );
    }

    #[test]
    fn out_of_domain_enum_bytes_are_typed() {
        let events = sample(4);
        let mut bytes = encode_events(0, &events);
        // The event column is the 2nd-to-last n bytes of the payload.
        let len = bytes.len();
        bytes[len - 2 * 4] = 250; // first event byte
        // Re-seal so the CRC passes and the decoder reaches the column.
        let records = 4;
        seal_segment(&mut bytes, SegmentKind::Events, 0, records).unwrap();
        let err = decode_events_into(
            &bytes,
            &mut DecodeScratch::default(),
            &mut Vec::new(),
        )
        .unwrap_err();
        assert_eq!(err, SegmentError::BadEnum { column: "event", value: 250 });
    }
}
