//! Segment envelope: magic, version, kind, record count, CRC32.
//!
//! Every binary feed file is exactly one *segment*: a fixed
//! [`HEADER_LEN`]-byte little-endian header followed by a columnar
//! payload. The header carries everything a reader needs to decide
//! whether the payload is worth touching — format magic, version,
//! segment kind, the day shard, the record count, the payload length
//! and a CRC32 of the payload — so damage of any kind surfaces as a
//! typed [`SegmentError`] *before* the decoder dereferences a single
//! column, and surfaces identically whether the file was truncated,
//! bit-flipped, or written by a future incompatible version.
//!
//! ```text
//! offset  size  field
//!      0     4  magic        "CSCF"
//!      4     2  version      u16 LE (readers reject != SEGMENT_VERSION)
//!      6     1  kind         1 = events, 2 = kpi, 3 = voice
//!      7     1  reserved     0
//!      8     2  day          u16 LE day shard (ALL_DAYS for voice)
//!     10     2  reserved     0
//!     12     4  records      u32 LE record count
//!     16     4  payload_len  u32 LE bytes after the header
//!     20     4  payload_crc  u32 LE CRC32 (IEEE) of the payload
//!     24     …  payload      columns, see `events`/the scenario codecs
//! ```
//!
//! All multi-byte values in header and payload are little-endian;
//! [`SegmentError`] is `Copy` and carries raw values only, so the
//! replay hot path can reject a damaged segment without allocating —
//! the same discipline as [`crate::export::BoundsViolation`].
//!
//! A feed *file* holds one or more segments back to back. Writers that
//! might exceed the header's `u32` ceilings split a day into multiple
//! segments ([`seal_segment`] refuses oversize payloads with
//! [`SegmentError::SegmentTooLarge`] instead of silently truncating);
//! readers either slice an in-memory byte run with [`split_segments`]
//! or stream a file segment-at-a-time through [`SegmentBlockReader`],
//! whose peak memory is one segment, not one file.

use std::fmt;
use std::io::Read;

/// File magic of a columnar feed segment ("CellScope Columnar Feed").
pub const SEGMENT_MAGIC: [u8; 4] = *b"CSCF";

/// Format version this build writes and accepts. Bump on any layout
/// change; readers reject every other version rather than guess.
pub const SEGMENT_VERSION: u16 = 1;

/// Fixed header size in bytes; the payload starts here.
pub const HEADER_LEN: usize = 24;

/// `day` value of segments that are not day-sharded (the voice feed
/// spans the whole study).
pub const ALL_DAYS: u16 = u16::MAX;

/// What a segment holds. The kind byte keeps a KPI file from being
/// decoded with the events schema even when both have valid checksums.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SegmentKind {
    /// Per-day signaling events ([`crate::SignalingEvent`]).
    Events = 1,
    /// Per-day hourly cell KPI samples.
    Kpi = 2,
    /// Whole-study daily voice volumes.
    Voice = 3,
}

impl SegmentKind {
    fn from_u8(v: u8) -> Option<SegmentKind> {
        match v {
            1 => Some(SegmentKind::Events),
            2 => Some(SegmentKind::Kpi),
            3 => Some(SegmentKind::Voice),
            _ => None,
        }
    }
}

impl fmt::Display for SegmentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            SegmentKind::Events => "events",
            SegmentKind::Kpi => "kpi",
            SegmentKind::Voice => "voice",
        };
        f.write_str(name)
    }
}

/// Parsed segment header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentHeader {
    /// Segment kind.
    pub kind: SegmentKind,
    /// Day shard ([`ALL_DAYS`] when not day-sharded).
    pub day: u16,
    /// Records in the payload.
    pub records: u32,
    /// Payload bytes after the header.
    pub payload_len: u32,
    /// CRC32 (IEEE) of the payload bytes.
    pub payload_crc: u32,
}

/// Why a segment could not be decoded. `Copy`, carries raw values
/// only: rejecting a damaged multi-million-record segment costs no
/// allocation, and the message is rendered only when the error is
/// actually surfaced (fail-fast), mirroring `BoundsViolation`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentError {
    /// Fewer than [`HEADER_LEN`] bytes: not even a header survives.
    HeaderTruncated {
        /// Bytes present.
        len: usize,
    },
    /// The first four bytes are not [`SEGMENT_MAGIC`].
    BadMagic {
        /// Bytes found.
        found: [u8; 4],
    },
    /// A version this build does not read.
    UnsupportedVersion {
        /// Version found in the header.
        found: u16,
    },
    /// The kind byte names no known segment kind.
    BadKind {
        /// Kind byte found.
        found: u8,
    },
    /// A valid segment of the wrong kind for this decoder.
    WrongKind {
        /// Kind found in the header.
        found: SegmentKind,
        /// Kind the decoder expected.
        expected: SegmentKind,
    },
    /// The file ends before the payload the header declares.
    Truncated {
        /// Payload bytes the header promises.
        needed: usize,
        /// Payload bytes actually present.
        have: usize,
    },
    /// Bytes beyond the declared payload (a concatenation or overwrite
    /// artifact — one file is one segment, nothing may follow).
    TrailingBytes {
        /// Surplus byte count.
        extra: usize,
    },
    /// The payload does not hash to the checksum the header stored.
    ChecksumMismatch {
        /// CRC32 stored in the header.
        stored: u32,
        /// CRC32 computed over the payload.
        computed: u32,
    },
    /// A column needs more payload bytes than remain — the record
    /// count and the payload disagree (mid-column EOF).
    ColumnOverrun {
        /// Column being read.
        column: &'static str,
        /// Bytes the column needs.
        needed: usize,
        /// Bytes remaining in the payload.
        have: usize,
    },
    /// Payload bytes left over after the last column — the record
    /// count and the payload disagree in the other direction.
    ColumnUnderrun {
        /// Unconsumed payload bytes.
        extra: usize,
    },
    /// An enum-coded column holds a value outside its domain.
    BadEnum {
        /// Column with the bad value.
        column: &'static str,
        /// Value found.
        value: u8,
    },
    /// A dictionary index points past the dictionary.
    BadDictIndex {
        /// Index found.
        index: u32,
        /// Dictionary length.
        dict_len: u32,
    },
    /// The dictionary index-width byte is neither 2 nor 4.
    BadIndexWidth {
        /// Width byte found.
        found: u8,
    },
    /// The payload or record count exceeds the header's `u32` ceiling —
    /// the segment must be split, never silently truncated.
    SegmentTooLarge {
        /// Payload bytes the encoder produced.
        payload_len: u64,
        /// Records the encoder produced.
        records: u64,
    },
}

impl fmt::Display for SegmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SegmentError::HeaderTruncated { len } => {
                write!(f, "segment truncated inside the header ({len} of {HEADER_LEN} bytes)")
            }
            SegmentError::BadMagic { found } => {
                write!(f, "bad segment magic {found:02x?} (expected {SEGMENT_MAGIC:02x?})")
            }
            SegmentError::UnsupportedVersion { found } => {
                write!(f, "unsupported segment version {found} (this build reads {SEGMENT_VERSION})")
            }
            SegmentError::BadKind { found } => {
                write!(f, "unknown segment kind byte {found}")
            }
            SegmentError::WrongKind { found, expected } => {
                write!(f, "segment holds {found} records, decoder expected {expected}")
            }
            SegmentError::Truncated { needed, have } => {
                write!(f, "segment truncated: header declares {needed} payload bytes, {have} present")
            }
            SegmentError::TrailingBytes { extra } => {
                write!(f, "{extra} bytes beyond the declared payload")
            }
            SegmentError::ChecksumMismatch { stored, computed } => {
                write!(f, "payload checksum mismatch: stored {stored:#010x}, computed {computed:#010x}")
            }
            SegmentError::ColumnOverrun { column, needed, have } => {
                write!(f, "column `{column}` overruns the payload ({needed} bytes needed, {have} left)")
            }
            SegmentError::ColumnUnderrun { extra } => {
                write!(f, "{extra} payload bytes left after the last column")
            }
            SegmentError::BadEnum { column, value } => {
                write!(f, "column `{column}` holds out-of-domain value {value}")
            }
            SegmentError::BadDictIndex { index, dict_len } => {
                write!(f, "dictionary index {index} out of range (dictionary has {dict_len} entries)")
            }
            SegmentError::BadIndexWidth { found } => {
                write!(f, "dictionary index width {found} (must be 2 or 4)")
            }
            SegmentError::SegmentTooLarge { payload_len, records } => {
                write!(
                    f,
                    "segment exceeds the format's u32 ceiling ({payload_len} payload bytes, {records} records) — split it into multiple segments"
                )
            }
        }
    }
}

impl std::error::Error for SegmentError {}

// CRC32 (IEEE 802.3, the zlib/PNG polynomial), table-driven. Vendored
// rather than pulled in: the build is registry-free, and the whole
// algorithm is smaller than a dependency line.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

fn u16_le(b: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([b[at], b[at + 1]])
}

fn u32_le(b: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([b[at], b[at + 1], b[at + 2], b[at + 3]])
}

impl SegmentHeader {
    /// Parse the fixed header. Checks structure only (length, magic,
    /// version, kind); payload length and checksum are the job of
    /// [`check_segment`], which needs the full byte run.
    pub fn parse(bytes: &[u8]) -> Result<SegmentHeader, SegmentError> {
        if bytes.len() < HEADER_LEN {
            return Err(SegmentError::HeaderTruncated { len: bytes.len() });
        }
        let mut magic = [0u8; 4];
        magic.copy_from_slice(&bytes[..4]);
        if magic != SEGMENT_MAGIC {
            return Err(SegmentError::BadMagic { found: magic });
        }
        let version = u16_le(bytes, 4);
        if version != SEGMENT_VERSION {
            return Err(SegmentError::UnsupportedVersion { found: version });
        }
        let kind = SegmentKind::from_u8(bytes[6])
            .ok_or(SegmentError::BadKind { found: bytes[6] })?;
        Ok(SegmentHeader {
            kind,
            day: u16_le(bytes, 8),
            records: u32_le(bytes, 12),
            payload_len: u32_le(bytes, 16),
            payload_crc: u32_le(bytes, 20),
        })
    }
}

/// Whether a byte run even claims to be a segment — the sniff the
/// dual-format replay reader uses to pick its decode path. Deliberately
/// magic-only: a truncated or corrupt segment must still be *routed* to
/// the binary decoder so its damage surfaces as a typed
/// [`SegmentError`], not as a JSON parse error.
pub fn looks_like_segment(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && bytes[..4] == SEGMENT_MAGIC
}

/// Record count a damaged segment *claims*, when the header is intact
/// enough to say. Lenient replay uses this to account a corrupt
/// segment's records as malformed instead of silently dropping an
/// unknown number of them.
pub fn peek_records(bytes: &[u8]) -> Option<u32> {
    SegmentHeader::parse(bytes).ok().map(|h| h.records)
}

/// Validate the envelope and return the parsed header plus the payload
/// slice: header structure, exact payload length (no truncation, no
/// trailing bytes) and checksum, in that order — so the caller learns
/// the *first* structural problem, stated in its own terms.
pub fn check_segment(
    bytes: &[u8],
    expected: SegmentKind,
) -> Result<(SegmentHeader, &[u8]), SegmentError> {
    let header = SegmentHeader::parse(bytes)?;
    if header.kind != expected {
        return Err(SegmentError::WrongKind { found: header.kind, expected });
    }
    let have = bytes.len() - HEADER_LEN;
    let needed = header.payload_len as usize;
    if have < needed {
        return Err(SegmentError::Truncated { needed, have });
    }
    if have > needed {
        return Err(SegmentError::TrailingBytes { extra: have - needed });
    }
    let payload = &bytes[HEADER_LEN..];
    let computed = crc32(payload);
    if computed != header.payload_crc {
        return Err(SegmentError::ChecksumMismatch {
            stored: header.payload_crc,
            computed,
        });
    }
    Ok((header, payload))
}

/// Open a segment being encoded: reserve the header bytes at the front
/// of `out` (the payload is appended after them; [`seal_segment`]
/// backpatches the header once the payload is complete).
pub fn begin_segment(out: &mut Vec<u8>) {
    out.clear();
    out.resize(HEADER_LEN, 0);
}

/// Finish a segment started with [`begin_segment`]: compute the payload
/// length and CRC over everything appended since, and write the header.
///
/// Both the payload length and the record count are checked against the
/// header's `u32` fields; an oversize segment returns
/// [`SegmentError::SegmentTooLarge`] (with the header left unwritten)
/// instead of silently truncating past 4 GiB — encoders split such days
/// into multiple segments.
pub fn seal_segment(
    out: &mut [u8],
    kind: SegmentKind,
    day: u16,
    records: usize,
) -> Result<(), SegmentError> {
    debug_assert!(out.len() >= HEADER_LEN);
    let payload = out.len() - HEADER_LEN;
    let (Ok(payload_len), Ok(records_u32)) =
        (u32::try_from(payload), u32::try_from(records))
    else {
        return Err(SegmentError::SegmentTooLarge {
            payload_len: payload as u64,
            records: records as u64,
        });
    };
    let crc = crc32(&out[HEADER_LEN..]);
    out[..4].copy_from_slice(&SEGMENT_MAGIC);
    out[4..6].copy_from_slice(&SEGMENT_VERSION.to_le_bytes());
    out[6] = kind as u8;
    out[7] = 0;
    out[8..10].copy_from_slice(&day.to_le_bytes());
    out[10..12].copy_from_slice(&0u16.to_le_bytes());
    out[12..16].copy_from_slice(&records_u32.to_le_bytes());
    out[16..20].copy_from_slice(&payload_len.to_le_bytes());
    out[20..24].copy_from_slice(&crc.to_le_bytes());
    Ok(())
}

// ---------------------------------------------------------------------
// Multi-segment files
// ---------------------------------------------------------------------

/// Iterator over the back-to-back segments of an in-memory byte run.
/// Each item is the exact byte slice of one segment (header included),
/// ready for a `decode_*_into` call; a malformed header or a trailing
/// partial segment surfaces as one final `Err`.
pub struct SegmentSplitter<'a> {
    rest: &'a [u8],
    failed: bool,
}

impl<'a> Iterator for SegmentSplitter<'a> {
    type Item = Result<&'a [u8], SegmentError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || self.rest.is_empty() {
            return None;
        }
        let header = match SegmentHeader::parse(self.rest) {
            Ok(h) => h,
            Err(e) => {
                self.failed = true;
                return Some(Err(e));
            }
        };
        let total = HEADER_LEN + header.payload_len as usize;
        if self.rest.len() < total {
            self.failed = true;
            return Some(Err(SegmentError::Truncated {
                needed: header.payload_len as usize,
                have: self.rest.len() - HEADER_LEN,
            }));
        }
        let (seg, rest) = self.rest.split_at(total);
        self.rest = rest;
        Some(Ok(seg))
    }
}

/// Split an in-memory byte run into its back-to-back segments. A file
/// holding one segment yields exactly one slice — the legacy
/// one-segment-per-file layout is the 1-iteration case.
pub fn split_segments(bytes: &[u8]) -> SegmentSplitter<'_> {
    SegmentSplitter { rest: bytes, failed: false }
}

/// Total records a (possibly multi-segment) byte run *claims* across
/// every header that can still be parsed. Lenient replay uses this to
/// account a corrupt file's records as malformed instead of silently
/// dropping an unknown number of them. `None` when not even the first
/// header survives.
pub fn peek_total_records(bytes: &[u8]) -> Option<u64> {
    let mut rest = bytes;
    let mut total = 0u64;
    let mut any = false;
    while !rest.is_empty() {
        // A truncated tail still claims its header's records.
        let Ok(h) = SegmentHeader::parse(rest) else { break };
        total += u64::from(h.records);
        any = true;
        let seg_len = HEADER_LEN + h.payload_len as usize;
        if rest.len() < seg_len {
            break;
        }
        rest = &rest[seg_len..];
    }
    any.then_some(total)
}

/// A streaming-read failure: either the underlying I/O or the segment
/// structure.
#[derive(Debug)]
pub enum SegmentStreamError {
    /// The reader failed.
    Io(std::io::Error),
    /// The byte stream is not a well-formed segment sequence.
    Format(SegmentError),
}

impl fmt::Display for SegmentStreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SegmentStreamError::Io(e) => write!(f, "segment stream I/O error: {e}"),
            SegmentStreamError::Format(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for SegmentStreamError {}

impl From<std::io::Error> for SegmentStreamError {
    fn from(e: std::io::Error) -> Self {
        SegmentStreamError::Io(e)
    }
}

impl From<SegmentError> for SegmentStreamError {
    fn from(e: SegmentError) -> Self {
        SegmentStreamError::Format(e)
    }
}

/// Bounded block reader over a segment stream: reads one segment at a
/// time into a reused internal buffer, so peak memory is the largest
/// *segment*, not the file. The buffer grows in bounded chunks while
/// real bytes arrive — a corrupt header claiming a 4 GiB payload on a
/// 1 KiB file fails with [`SegmentError::Truncated`] after one chunk
/// instead of attempting a 4 GiB allocation.
pub struct SegmentBlockReader<R> {
    inner: R,
    buf: Vec<u8>,
    bytes_read: u64,
    done: bool,
}

/// Growth step of the streaming read buffer.
const READ_CHUNK: usize = 8 << 20;

/// Read until `out` is full or EOF; returns the bytes filled.
fn read_full<R: Read>(inner: &mut R, out: &mut [u8]) -> std::io::Result<usize> {
    let mut filled = 0;
    while filled < out.len() {
        match inner.read(&mut out[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

impl<R: Read> SegmentBlockReader<R> {
    /// Wrap a reader positioned at the first segment.
    pub fn new(inner: R) -> SegmentBlockReader<R> {
        SegmentBlockReader { inner, buf: Vec::new(), bytes_read: 0, done: false }
    }

    /// Bytes consumed from the underlying reader so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Read the next segment into the internal buffer and return its
    /// exact byte slice (header included), or `None` at a clean EOF.
    /// The slice is valid until the next call.
    pub fn next_segment(&mut self) -> Result<Option<&[u8]>, SegmentStreamError> {
        if self.done {
            return Ok(None);
        }
        self.buf.clear();
        self.buf.resize(HEADER_LEN, 0);
        let got = read_full(&mut self.inner, &mut self.buf[..HEADER_LEN])?;
        self.bytes_read += got as u64;
        if got == 0 {
            self.done = true;
            return Ok(None);
        }
        if got < HEADER_LEN {
            self.done = true;
            return Err(SegmentError::HeaderTruncated { len: got }.into());
        }
        let header = match SegmentHeader::parse(&self.buf) {
            Ok(h) => h,
            Err(e) => {
                self.done = true;
                return Err(e.into());
            }
        };
        let needed = header.payload_len as usize;
        let mut have = 0;
        while have < needed {
            let chunk = (needed - have).min(READ_CHUNK);
            let old = self.buf.len();
            self.buf.resize(old + chunk, 0);
            let got = read_full(&mut self.inner, &mut self.buf[old..])?;
            self.bytes_read += got as u64;
            have += got;
            if got < chunk {
                self.buf.truncate(HEADER_LEN + have);
                self.done = true;
                return Err(SegmentError::Truncated { needed, have }.into());
            }
        }
        Ok(Some(&self.buf))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The IEEE CRC32 check value ("123456789" -> 0xCBF43926).
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"\x00"), 0xD202_EF8D);
    }

    #[test]
    fn seal_then_check_roundtrips() {
        let mut buf = Vec::new();
        begin_segment(&mut buf);
        buf.extend_from_slice(b"payload bytes");
        seal_segment(&mut buf, SegmentKind::Events, 7, 3).unwrap();
        let (header, payload) =
            check_segment(&buf, SegmentKind::Events).expect("valid segment");
        assert_eq!(header.kind, SegmentKind::Events);
        assert_eq!(header.day, 7);
        assert_eq!(header.records, 3);
        assert_eq!(payload, b"payload bytes");
        assert!(looks_like_segment(&buf));
        assert_eq!(peek_records(&buf), Some(3));
    }

    #[test]
    fn envelope_damage_is_typed() {
        let mut buf = Vec::new();
        begin_segment(&mut buf);
        buf.extend_from_slice(&[1, 2, 3, 4, 5, 6, 7, 8]);
        seal_segment(&mut buf, SegmentKind::Kpi, 0, 2).unwrap();

        // Header truncation.
        assert!(matches!(
            check_segment(&buf[..10], SegmentKind::Kpi),
            Err(SegmentError::HeaderTruncated { len: 10 })
        ));
        // Payload truncation.
        assert!(matches!(
            check_segment(&buf[..buf.len() - 3], SegmentKind::Kpi),
            Err(SegmentError::Truncated { needed: 8, have: 5 })
        ));
        // Trailing bytes.
        let mut long = buf.clone();
        long.push(0xAB);
        assert!(matches!(
            check_segment(&long, SegmentKind::Kpi),
            Err(SegmentError::TrailingBytes { extra: 1 })
        ));
        // Bit flip in the payload.
        let mut flipped = buf.clone();
        *flipped.last_mut().unwrap() ^= 0x40;
        assert!(matches!(
            check_segment(&flipped, SegmentKind::Kpi),
            Err(SegmentError::ChecksumMismatch { .. })
        ));
        // Bad magic.
        let mut magic = buf.clone();
        magic[0] ^= 0xFF;
        assert!(matches!(
            check_segment(&magic, SegmentKind::Kpi),
            Err(SegmentError::BadMagic { .. })
        ));
        assert!(!looks_like_segment(&magic));
        // Future version.
        let mut vers = buf.clone();
        vers[4..6].copy_from_slice(&99u16.to_le_bytes());
        assert!(matches!(
            check_segment(&vers, SegmentKind::Kpi),
            Err(SegmentError::UnsupportedVersion { found: 99 })
        ));
        // Unknown kind byte.
        let mut kind = buf.clone();
        kind[6] = 200;
        assert!(matches!(
            check_segment(&kind, SegmentKind::Kpi),
            Err(SegmentError::BadKind { found: 200 })
        ));
        // Valid segment, wrong decoder.
        assert!(matches!(
            check_segment(&buf, SegmentKind::Events),
            Err(SegmentError::WrongKind {
                found: SegmentKind::Kpi,
                expected: SegmentKind::Events
            })
        ));
    }

    #[test]
    fn errors_render_without_panicking() {
        let errors: [SegmentError; 6] = [
            SegmentError::BadMagic { found: [0, 1, 2, 3] },
            SegmentError::ChecksumMismatch { stored: 1, computed: 2 },
            SegmentError::ColumnOverrun { column: "anon_id", needed: 80, have: 3 },
            SegmentError::BadDictIndex { index: 9, dict_len: 2 },
            SegmentError::BadEnum { column: "event", value: 77 },
            SegmentError::SegmentTooLarge { payload_len: 5_000_000_000, records: 7 },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    /// An oversize *record count* already trips the checked seal — the
    /// cheapest way to exercise the u32-ceiling path without building a
    /// 4 GiB payload.
    #[test]
    fn seal_rejects_oversize_record_counts() {
        let mut buf = Vec::new();
        begin_segment(&mut buf);
        buf.extend_from_slice(b"xy");
        let err = seal_segment(&mut buf, SegmentKind::Events, 0, u32::MAX as usize + 1)
            .unwrap_err();
        assert!(matches!(
            err,
            SegmentError::SegmentTooLarge { payload_len: 2, records } if records == u32::MAX as u64 + 1
        ));
    }

    fn two_segments() -> (Vec<u8>, usize) {
        let mut a = Vec::new();
        begin_segment(&mut a);
        a.extend_from_slice(b"first");
        seal_segment(&mut a, SegmentKind::Events, 1, 2).unwrap();
        let first_len = a.len();
        let mut b = Vec::new();
        begin_segment(&mut b);
        b.extend_from_slice(b"second-payload");
        seal_segment(&mut b, SegmentKind::Events, 1, 5).unwrap();
        a.extend_from_slice(&b);
        (a, first_len)
    }

    #[test]
    fn splitter_yields_back_to_back_segments() {
        let (bytes, first_len) = two_segments();
        let segs: Vec<_> = split_segments(&bytes).collect::<Result<_, _>>().unwrap();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].len(), first_len);
        check_segment(segs[0], SegmentKind::Events).unwrap();
        check_segment(segs[1], SegmentKind::Events).unwrap();
        assert_eq!(peek_total_records(&bytes), Some(7));
    }

    #[test]
    fn splitter_reports_truncated_tail() {
        let (bytes, first_len) = two_segments();
        let cut = &bytes[..bytes.len() - 4];
        let mut it = split_segments(cut);
        assert_eq!(it.next().unwrap().unwrap().len(), first_len);
        assert!(matches!(it.next(), Some(Err(SegmentError::Truncated { .. }))));
        assert!(it.next().is_none());
        // Both headers parse, so both claims count.
        assert_eq!(peek_total_records(cut), Some(7));
    }

    #[test]
    fn block_reader_streams_segments_and_counts_bytes() {
        let (bytes, first_len) = two_segments();
        let mut reader = SegmentBlockReader::new(&bytes[..]);
        let seg = reader.next_segment().unwrap().unwrap();
        assert_eq!(seg.len(), first_len);
        let (h, payload) = check_segment(seg, SegmentKind::Events).unwrap();
        assert_eq!((h.records, payload), (2, &b"first"[..]));
        let seg = reader.next_segment().unwrap().unwrap();
        check_segment(seg, SegmentKind::Events).unwrap();
        assert!(reader.next_segment().unwrap().is_none());
        assert_eq!(reader.bytes_read(), bytes.len() as u64);
    }

    #[test]
    fn block_reader_types_truncation_and_garbage() {
        let (bytes, _) = two_segments();
        let mut reader = SegmentBlockReader::new(&bytes[..bytes.len() - 4]);
        reader.next_segment().unwrap().unwrap();
        assert!(matches!(
            reader.next_segment(),
            Err(SegmentStreamError::Format(SegmentError::Truncated { .. }))
        ));
        // After an error the stream is done, not looping.
        assert!(reader.next_segment().unwrap().is_none());

        // A full header's worth of garbage is a magic failure; anything
        // shorter is typed as header truncation instead.
        let mut reader = SegmentBlockReader::new(&b"definitely not a segment at all"[..]);
        assert!(matches!(
            reader.next_segment(),
            Err(SegmentStreamError::Format(SegmentError::BadMagic { .. }))
        ));
        let mut reader = SegmentBlockReader::new(&b"short garbage"[..]);
        assert!(matches!(
            reader.next_segment(),
            Err(SegmentStreamError::Format(SegmentError::HeaderTruncated { len: 13 }))
        ));
    }
}
