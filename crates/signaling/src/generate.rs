//! Trajectory → control-plane event stream.
//!
//! Turns one subscriber-day of ground-truth dwell into the event
//! sequence a passive probe at the MME/SGSN/MSC would log: attach and
//! session setup when the device appears, service requests and idle
//! transitions while it is used, tracking-area updates and handovers as
//! it moves, dedicated-bearer churn for voice, detach at day end. RAT
//! selection per camping period is calibrated so ~75% of dwell lands on
//! 4G cells (Section 2.4), and a small fraction of events carries a
//! failure result code.

use crate::anonymize::Anonymizer;
use crate::event::{EventType, SignalingEvent, HOME_MNC, UK_MCC};
use crate::tac::{TacCatalog, TacCode};
use cellscope_mobility::rng as simrng;
use cellscope_mobility::{DayTrajectory, DeviceClass, Subscriber};
use cellscope_radio::{CellId, Rat, Topology};
use cellscope_time::DayBin;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Event generation tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EventGenConfig {
    /// RNG seed (domain-separated from trajectory seeds).
    pub seed: u64,
    /// Mean minutes between service requests while camped.
    pub service_request_interval_min: f64,
    /// Probability an event carries a failure result code.
    pub failure_rate: f64,
    /// Mean voice dedicated-bearer setups per hour of dwell.
    pub voice_bearers_per_hour: f64,
}

impl Default for EventGenConfig {
    fn default() -> Self {
        EventGenConfig {
            seed: 0x516_7A1,
            service_request_interval_min: 45.0,
            failure_rate: 0.01,
            voice_bearers_per_hour: 0.20,
        }
    }
}

/// The generator: stateless per (subscriber, day), like the trajectory
/// generator it mirrors.
pub struct EventGenerator<'a> {
    topo: &'a Topology,
    catalog: &'a TacCatalog,
    anonymizer: Anonymizer,
    config: EventGenConfig,
    /// Reusable candidate-cell buffer for [`pick_cell`](Self::pick_cell)
    /// — the only per-visit allocation the generator used to make.
    cells_buf: Vec<(CellId, Rat)>,
}

impl<'a> EventGenerator<'a> {
    /// Build a generator.
    pub fn new(
        topo: &'a Topology,
        catalog: &'a TacCatalog,
        anonymizer: Anonymizer,
        config: EventGenConfig,
    ) -> EventGenerator<'a> {
        EventGenerator {
            topo,
            catalog,
            anonymizer,
            config,
            cells_buf: Vec::new(),
        }
    }

    /// The TAC this subscriber's device reports.
    pub fn tac_of(&self, sub: &Subscriber) -> TacCode {
        self.catalog.assign(sub.device, sub.id.0 as u64)
    }

    /// SIM (MCC, MNC): native subscribers use the home PLMN; inbound
    /// roamers a foreign one (deterministic per subscriber).
    pub fn plmn_of(&self, sub: &Subscriber) -> (u16, u8) {
        if sub.native {
            (UK_MCC, HOME_MNC)
        } else {
            const FOREIGN_MCCS: [u16; 5] = [208, 262, 214, 222, 310];
            let pick = (sub.id.0 as usize) % FOREIGN_MCCS.len();
            (FOREIGN_MCCS[pick], 1)
        }
    }

    /// Generate the day's event stream, chronologically ordered.
    pub fn generate(&self, sub: &Subscriber, trajectory: &DayTrajectory) -> Vec<SignalingEvent> {
        let mut events = Vec::new();
        let mut cells = Vec::new();
        self.generate_with(sub, trajectory, &mut cells, &mut events);
        events
    }

    /// [`generate`](Self::generate) into a caller-owned buffer, reusing
    /// the generator's internal candidate-cell scratch — the hot-loop
    /// form: after warm-up, no allocation happens per subscriber-day.
    /// `out` is cleared first, so a dirty buffer is fine. Bit-identical
    /// to the allocating path.
    pub fn generate_into(
        &mut self,
        sub: &Subscriber,
        trajectory: &DayTrajectory,
        out: &mut Vec<SignalingEvent>,
    ) {
        let mut cells = std::mem::take(&mut self.cells_buf);
        self.generate_with(sub, trajectory, &mut cells, out);
        self.cells_buf = cells;
    }

    fn generate_with(
        &self,
        sub: &Subscriber,
        trajectory: &DayTrajectory,
        cells: &mut Vec<(CellId, Rat)>,
        events: &mut Vec<SignalingEvent>,
    ) {
        events.clear();
        if trajectory.visits.is_empty() {
            return; // device unreachable (abroad / powered off)
        }
        let mut rng = simrng::rng_for(self.config.seed, sub.id.0, trajectory.day, 0xE7E);
        let anon_id = self.anonymizer.anon_id(sub.id.0);
        let tac = self.tac_of(sub);
        let (mcc, mnc) = self.plmn_of(sub);
        let day = trajectory.day;

        let push = |events: &mut Vec<SignalingEvent>,
                        rng: &mut StdRng,
                        minute: u16,
                        cell: CellId,
                        event: EventType| {
            events.push(SignalingEvent {
                anon_id,
                mcc,
                mnc,
                tac,
                cell,
                day,
                minute: minute.min(1439),
                event,
                success: !rng.gen_bool(self.config.failure_rate),
            });
        };

        // Lay the visits out on the day's minute line, bin by bin.
        let mut prev_cell: Option<CellId> = None;
        let mut first = true;
        for bin in DayBin::ALL {
            let mut cursor = bin.start_hour() as u16 * 60;
            for visit in trajectory.visits.iter().filter(|v| v.bin == bin) {
                let start = cursor;
                cursor += visit.minutes;
                let Some(cell) = self.pick_cell(visit.site, sub.device, day, &mut rng, cells)
                else {
                    continue;
                };

                if first {
                    push(&mut *events, &mut rng, start, cell, EventType::Attach);
                    push(&mut *events, &mut rng, start, cell, EventType::Authentication);
                    push(
                        &mut *events,
                        &mut rng,
                        start,
                        cell,
                        EventType::SessionEstablishment,
                    );
                    first = false;
                } else if prev_cell != Some(cell) {
                    // Cell change: handover when mid-transfer, otherwise a
                    // tracking-area update out of idle.
                    let ev = if rng.gen_bool(0.4) {
                        EventType::Handover
                    } else {
                        EventType::TrackingAreaUpdate
                    };
                    push(&mut *events, &mut rng, start, cell, ev);
                }
                prev_cell = Some(cell);

                // Data activity: service request / idle pairs.
                if sub.device == DeviceClass::Smartphone {
                    // All in-visit events must stay strictly inside the
                    // visit window: an event timestamped after the next
                    // visit began would re-attribute that visit's dwell
                    // during reconstruction.
                    let last = start + visit.minutes.saturating_sub(1);
                    let expected = visit.minutes as f64 / self.config.service_request_interval_min;
                    let n = poisson(&mut rng, expected).max(1);
                    for i in 0..n {
                        let offset =
                            (visit.minutes as u64 * (2 * i as u64 + 1) / (2 * n as u64)) as u16;
                        push(
                            &mut *events,
                            &mut rng,
                            (start + offset).min(last),
                            cell,
                            EventType::ServiceRequest,
                        );
                        push(
                            &mut *events,
                            &mut rng,
                            (start + offset + 2).min(last),
                            cell,
                            EventType::IdleTransition,
                        );
                    }
                    // Voice bearers.
                    let calls =
                        poisson(&mut rng, visit.minutes as f64 / 60.0 * self.config.voice_bearers_per_hour);
                    for _ in 0..calls {
                        let at = start + rng.gen_range(0..visit.minutes.max(1));
                        push(
                            &mut *events,
                            &mut rng,
                            at.min(last),
                            cell,
                            EventType::DedicatedBearerEstablish,
                        );
                        push(
                            &mut *events,
                            &mut rng,
                            at.saturating_add(3).min(last),
                            cell,
                            EventType::DedicatedBearerDelete,
                        );
                    }
                } else {
                    // M2M: sparse keep-alive traffic.
                    let last = start + visit.minutes.saturating_sub(1);
                    push(&mut *events, &mut rng, (start + 5).min(last), cell, EventType::ServiceRequest);
                    push(&mut *events, &mut rng, (start + 7).min(last), cell, EventType::IdleTransition);
                }
            }
        }

        if let Some(cell) = prev_cell {
            push(&mut *events, &mut rng, 1439, cell, EventType::Detach);
        }
        // Events are emitted almost in order (only intra-visit activity
        // interleaves), so a stable insertion sort finishes in O(n +
        // inversions) without the temp buffer `slice::sort_by_key`
        // takes — and, being stable, yields the identical permutation.
        insertion_sort_by_minute(events);
    }

    /// Pick the serving cell at a site: RAT by dwell share among the
    /// RATs the site actually hosts (and that are active on `day`);
    /// M2M modules prefer 2G where available (real deployments do).
    /// `available` is caller scratch (cleared and refilled here).
    fn pick_cell(
        &self,
        site: cellscope_radio::SiteId,
        device: DeviceClass,
        day: u16,
        rng: &mut StdRng,
        available: &mut Vec<(CellId, Rat)>,
    ) -> Option<CellId> {
        let site = self.topo.site(site);
        available.clear();
        available.extend(
            site.cells
                .iter()
                .map(|&c| (c, self.topo.cell(c).rat))
                .filter(|&(c, _)| self.topo.cell(c).is_active(day)),
        );
        if available.is_empty() {
            return None;
        }
        if device == DeviceClass::M2m {
            // Stable insertion sort by RAT (G2 first) — a site hosts a
            // handful of cells, and stability keeps the pick identical
            // to the old stable `sort_by_key`.
            for i in 1..available.len() {
                let x = available[i];
                let mut j = i;
                while j > 0 && available[j - 1].1 > x.1 {
                    available[j] = available[j - 1];
                    j -= 1;
                }
                available[j] = x;
            }
            return Some(available[0].0);
        }
        let total: f64 = available
            .iter()
            .map(|&(_, rat)| rat.typical_dwell_share())
            .sum();
        let mut draw = rng.gen_range(0.0..total);
        for &(cell, rat) in available.iter() {
            let w = rat.typical_dwell_share();
            if draw < w {
                return Some(cell);
            }
            draw -= w;
        }
        Some(available.last().expect("non-empty").0)
    }
}

/// Stable insertion sort by minute: equal minutes keep emission order,
/// matching `slice::sort_by_key` bit-for-bit, with zero allocation.
fn insertion_sort_by_minute(events: &mut [SignalingEvent]) {
    for i in 1..events.len() {
        let x = events[i];
        let mut j = i;
        while j > 0 && events[j - 1].minute > x.minute {
            events[j] = events[j - 1];
            j -= 1;
        }
        events[j] = x;
    }
}

fn poisson(rng: &mut StdRng, mean: f64) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    let l = (-mean).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.gen_range(0.0..1.0f64);
        if p < l || k > 200 {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellscope_epidemic::PhaseSchedule;
    use cellscope_geo::SynthConfig;
    use cellscope_mobility::{BehaviorModel, Population, PopulationConfig, TrajectoryGenerator};
    use cellscope_radio::DeployConfig;
    use cellscope_time::SimClock;

    struct World {
        topo: Topology,
        pop: Population,
        trajectories: Vec<DayTrajectory>,
    }

    fn world() -> World {
        let geo = SynthConfig::small(8).build();
        let topo = DeployConfig::small(8).build(&geo);
        let pop = Population::synthesize(
            &PopulationConfig {
                num_subscribers: 800,
                seed: 8,
                ..PopulationConfig::default()
            },
            &PhaseSchedule::uk_2020().relocation_waves,
            &geo,
            &topo,
        );
        let behavior = BehaviorModel::new(PhaseSchedule::uk_2020());
        let generator = TrajectoryGenerator::new(&geo, &behavior, SimClock::study(), 8);
        let trajectories: Vec<_> = pop
            .subscribers()
            .iter()
            .map(|s| generator.generate(s, 10))
            .collect();
        World {
            topo,
            pop,
            trajectories,
        }
    }

    fn generator(w: &World) -> EventGenerator<'_> {
        // Leak a catalog for the test lifetime — cheap and simple.
        let catalog: &'static TacCatalog = Box::leak(Box::new(TacCatalog::synthetic()));
        EventGenerator::new(w.topo_ref(), catalog, Anonymizer::new(1), EventGenConfig::default())
    }

    impl World {
        fn topo_ref(&self) -> &Topology {
            &self.topo
        }
    }

    #[test]
    fn day_starts_with_attach_and_ends_with_detach() {
        let w = world();
        let g = generator(&w);
        for (sub, traj) in w.pop.subscribers().iter().zip(&w.trajectories).take(200) {
            let events = g.generate(sub, traj);
            if traj.visits.is_empty() {
                assert!(events.is_empty());
                continue;
            }
            assert_eq!(events.first().unwrap().event, EventType::Attach);
            assert_eq!(events.last().unwrap().event, EventType::Detach);
            // Chronological order.
            for pair in events.windows(2) {
                assert!(pair[0].minute <= pair[1].minute);
            }
        }
    }

    #[test]
    fn events_carry_correct_identity_fields() {
        let w = world();
        let g = generator(&w);
        let anonymizer = Anonymizer::new(1);
        for (sub, traj) in w.pop.subscribers().iter().zip(&w.trajectories).take(100) {
            for ev in g.generate(sub, traj) {
                assert_eq!(ev.anon_id, anonymizer.anon_id(sub.id.0));
                assert_eq!(ev.is_native(), sub.native);
                assert_eq!(ev.day, traj.day);
                assert!(ev.minute <= 1439);
            }
        }
    }

    #[test]
    fn smartphone_dwell_is_mostly_4g() {
        let w = world();
        let g = generator(&w);
        let mut by_rat = [0u64; 3];
        for (sub, traj) in w.pop.subscribers().iter().zip(&w.trajectories) {
            if sub.device != DeviceClass::Smartphone {
                continue;
            }
            for ev in g.generate(sub, traj) {
                let rat = w.topo.cell(ev.cell).rat;
                by_rat[rat as usize] += 1;
            }
        }
        let total: u64 = by_rat.iter().sum();
        let g4_share = by_rat[Rat::G4 as usize] as f64 / total as f64;
        assert!(
            (0.65..0.85).contains(&g4_share),
            "4G event share {g4_share}"
        );
    }

    #[test]
    fn failure_rate_is_small_but_nonzero() {
        let w = world();
        let g = generator(&w);
        let mut failures = 0u64;
        let mut total = 0u64;
        for (sub, traj) in w.pop.subscribers().iter().zip(&w.trajectories) {
            for ev in g.generate(sub, traj) {
                total += 1;
                if !ev.success {
                    failures += 1;
                }
            }
        }
        let rate = failures as f64 / total as f64;
        assert!((0.003..0.03).contains(&rate), "failure rate {rate}");
    }

    #[test]
    fn generation_is_deterministic() {
        let w = world();
        let g = generator(&w);
        let sub = &w.pop.subscribers()[0];
        let traj = &w.trajectories[0];
        assert_eq!(g.generate(sub, traj), g.generate(sub, traj));
    }
}
