//! Signaling event records.
//!
//! Matches the schema of Section 2.2: "Each event we capture carries the
//! anonymized user ID, SIM MCC and MNC, TAC, the radio sector ID handling
//! the communication, timestamp, and event result code (success /
//! failure)."

use crate::tac::TacCode;
use cellscope_radio::CellId;
use serde::{Deserialize, Serialize};

/// Mobile Country Code of the studied (UK) network.
pub const UK_MCC: u16 = 234;
/// Mobile Network Code of the synthetic MNO.
pub const HOME_MNC: u8 = 10;

/// The control-plane event types listed in Section 2.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EventType {
    /// Initial network attachment.
    Attach,
    /// Authentication exchange.
    Authentication,
    /// PDN session establishment.
    SessionEstablishment,
    /// Dedicated bearer set up (e.g. a VoLTE QCI-1 bearer for a call).
    DedicatedBearerEstablish,
    /// Dedicated bearer teardown.
    DedicatedBearerDelete,
    /// Tracking Area Update on mobility.
    TrackingAreaUpdate,
    /// Transition to ECM-IDLE.
    IdleTransition,
    /// UE-initiated service request (leaving idle for data).
    ServiceRequest,
    /// Inter-cell handover.
    Handover,
    /// Network detach.
    Detach,
}

impl EventType {
    /// All event types.
    pub const ALL: [EventType; 10] = [
        EventType::Attach,
        EventType::Authentication,
        EventType::SessionEstablishment,
        EventType::DedicatedBearerEstablish,
        EventType::DedicatedBearerDelete,
        EventType::TrackingAreaUpdate,
        EventType::IdleTransition,
        EventType::ServiceRequest,
        EventType::Handover,
        EventType::Detach,
    ];

    /// Whether this event implies the UE changed serving cell.
    pub fn is_mobility_event(self) -> bool {
        matches!(self, EventType::TrackingAreaUpdate | EventType::Handover)
    }
}

/// One captured control-plane event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignalingEvent {
    /// Anonymized, study-stable user identifier.
    pub anon_id: u64,
    /// SIM Mobile Country Code (non-UK ⇒ inbound roamer).
    pub mcc: u16,
    /// SIM Mobile Network Code.
    pub mnc: u8,
    /// Device Type Allocation Code.
    pub tac: TacCode,
    /// Radio sector (cell) handling the communication.
    pub cell: CellId,
    /// Study day.
    pub day: u16,
    /// Minute of the day, 0–1439.
    pub minute: u16,
    /// Event type.
    pub event: EventType,
    /// Result code: `true` = success.
    pub success: bool,
}

impl SignalingEvent {
    /// Whether the SIM is native to the studied MNO.
    pub fn is_native(&self) -> bool {
        self.mcc == UK_MCC && self.mnc == HOME_MNC
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nativity_check() {
        let mut ev = SignalingEvent {
            anon_id: 1,
            mcc: UK_MCC,
            mnc: HOME_MNC,
            tac: TacCode(35_000_000),
            cell: CellId(0),
            day: 0,
            minute: 0,
            event: EventType::Attach,
            success: true,
        };
        assert!(ev.is_native());
        ev.mcc = 208; // France
        assert!(!ev.is_native());
        ev.mcc = UK_MCC;
        ev.mnc = 15; // different UK operator roaming in
        assert!(!ev.is_native());
    }

    #[test]
    fn mobility_event_classification() {
        assert!(EventType::Handover.is_mobility_event());
        assert!(EventType::TrackingAreaUpdate.is_mobility_event());
        assert!(!EventType::ServiceRequest.is_mobility_event());
        assert!(!EventType::Attach.is_mobility_event());
    }
}
