//! Salted, stable anonymization of subscriber identity.
//!
//! The paper's ethical framework (Appendix A) requires that "no
//! identifier can be associated to \[a\] person": events carry an
//! anonymized user ID that is stable across the study (so longitudinal
//! aggregation works) but not invertible without the salt.

use serde::{Deserialize, Serialize};

/// One-way, salted 64-bit identifier mapper (FNV-1a over salt ‖ id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Anonymizer {
    salt: u64,
}

impl Anonymizer {
    /// Create with a study-wide secret salt.
    pub fn new(salt: u64) -> Anonymizer {
        Anonymizer { salt }
    }

    /// Anonymize one subscriber index.
    pub fn anon_id(&self, subscriber_index: u32) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x1000_0000_01b3;
        let mut h = FNV_OFFSET;
        for byte in self
            .salt
            .to_le_bytes()
            .into_iter()
            .chain(subscriber_index.to_le_bytes())
        {
            h ^= byte as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn stable_within_a_salt() {
        let a = Anonymizer::new(42);
        assert_eq!(a.anon_id(7), a.anon_id(7));
    }

    #[test]
    fn different_salts_decorrelate() {
        let a = Anonymizer::new(1);
        let b = Anonymizer::new(2);
        assert_ne!(a.anon_id(7), b.anon_id(7));
    }

    #[test]
    fn no_collisions_over_a_large_population() {
        let a = Anonymizer::new(0xFEED);
        let mut seen = HashSet::new();
        for i in 0..200_000u32 {
            assert!(seen.insert(a.anon_id(i)), "collision at {i}");
        }
    }

    #[test]
    fn ids_are_not_the_raw_index() {
        let a = Anonymizer::new(9);
        for i in 0..1000u32 {
            assert_ne!(a.anon_id(i), i as u64);
        }
    }
}
