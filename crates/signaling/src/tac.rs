//! Type Allocation Code catalog.
//!
//! The TAC is the first 8 digits of a device IMEI, statically allocated
//! to vendors. The paper joins signaling events against a commercial GSMA
//! database to map TAC → device properties and keep only smartphones
//! "likely used as primary devices", dropping M2M hardware (Section 2.2,
//! "Devices Catalog"). This module synthesizes such a catalog.

use cellscope_mobility::DeviceClass;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A Type Allocation Code (8 decimal digits in real IMEIs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TacCode(pub u32);

impl std::fmt::Display for TacCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:08}", self.0)
    }
}

/// Catalog entry: what the GSMA database knows about a TAC.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceInfo {
    /// Device manufacturer.
    pub manufacturer: String,
    /// Marketing model name.
    pub model: String,
    /// Operating system (smartphones) or firmware family (M2M).
    pub os: String,
    /// Smartphone vs M2M classification.
    pub class: DeviceClass,
}

/// The synthetic GSMA-style catalog.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TacCatalog {
    entries: BTreeMap<TacCode, DeviceInfo>,
    smartphone_tacs: Vec<TacCode>,
    m2m_tacs: Vec<TacCode>,
}

const SMARTPHONE_VENDORS: [(&str, &str, &[&str]); 5] = [
    ("Apple", "iOS", &["iPhone 8", "iPhone X", "iPhone 11", "iPhone SE"]),
    ("Samsung", "Android", &["Galaxy S9", "Galaxy S10", "Galaxy A40", "Galaxy Note 10"]),
    ("Huawei", "Android", &["P20", "P30 Lite", "Mate 20"]),
    ("Xiaomi", "Android", &["Mi 9", "Redmi Note 8"]),
    ("OnePlus", "Android", &["OnePlus 6T", "OnePlus 7"]),
];

const M2M_VENDORS: [(&str, &str, &[&str]); 3] = [
    ("Telit", "ThreadX", &["LE910", "HE910"]),
    ("Quectel", "RTOS", &["EC25", "BG96"]),
    ("Sierra Wireless", "Legato", &["HL7800", "WP7702"]),
];

impl TacCatalog {
    /// Build the synthetic catalog (deterministic, no RNG needed: TACs
    /// are static vendor allocations).
    pub fn synthetic() -> TacCatalog {
        let mut entries = BTreeMap::new();
        let mut smartphone_tacs = Vec::new();
        let mut m2m_tacs = Vec::new();
        let mut next_tac = 35_000_000u32;
        for (manufacturer, os, models) in SMARTPHONE_VENDORS {
            for model in models {
                let tac = TacCode(next_tac);
                next_tac += 101;
                entries.insert(
                    tac,
                    DeviceInfo {
                        manufacturer: manufacturer.to_string(),
                        model: model.to_string(),
                        os: os.to_string(),
                        class: DeviceClass::Smartphone,
                    },
                );
                smartphone_tacs.push(tac);
            }
        }
        for (manufacturer, os, models) in M2M_VENDORS {
            for model in models {
                let tac = TacCode(next_tac);
                next_tac += 101;
                entries.insert(
                    tac,
                    DeviceInfo {
                        manufacturer: manufacturer.to_string(),
                        model: model.to_string(),
                        os: os.to_string(),
                        class: DeviceClass::M2m,
                    },
                );
                m2m_tacs.push(tac);
            }
        }
        TacCatalog {
            entries,
            smartphone_tacs,
            m2m_tacs,
        }
    }

    /// Look a TAC up — `None` for unknown codes, exactly like a real
    /// catalog miss (the pipeline must treat those conservatively).
    pub fn lookup(&self, tac: TacCode) -> Option<&DeviceInfo> {
        self.entries.get(&tac)
    }

    /// Whether the TAC is a known smartphone.
    pub fn is_smartphone(&self, tac: TacCode) -> bool {
        self.lookup(tac)
            .is_some_and(|d| d.class == DeviceClass::Smartphone)
    }

    /// Assign a market-share-weighted TAC for a device of `class`.
    /// Deterministic in `key` (use the subscriber id).
    pub fn assign(&self, class: DeviceClass, key: u64) -> TacCode {
        let pool = match class {
            DeviceClass::Smartphone => &self.smartphone_tacs,
            DeviceClass::M2m => &self.m2m_tacs,
        };
        let mut rng = StdRng::seed_from_u64(key ^ 0xDEC0DE);
        pool[rng.gen_range(0..pool.len())]
    }

    /// Number of catalogued TACs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_both_classes() {
        let c = TacCatalog::synthetic();
        assert!(c.len() > 15);
        assert!(!c.smartphone_tacs.is_empty());
        assert!(!c.m2m_tacs.is_empty());
    }

    #[test]
    fn assignment_is_deterministic_and_class_consistent() {
        let c = TacCatalog::synthetic();
        for key in 0..200u64 {
            let tac = c.assign(DeviceClass::Smartphone, key);
            assert_eq!(tac, c.assign(DeviceClass::Smartphone, key));
            assert!(c.is_smartphone(tac));
            let m2m = c.assign(DeviceClass::M2m, key);
            assert!(!c.is_smartphone(m2m));
            assert_eq!(c.lookup(m2m).unwrap().class, DeviceClass::M2m);
        }
    }

    #[test]
    fn unknown_tac_misses() {
        let c = TacCatalog::synthetic();
        assert!(c.lookup(TacCode(1)).is_none());
        assert!(!c.is_smartphone(TacCode(1)));
    }

    #[test]
    fn tac_display_is_8_digits() {
        assert_eq!(TacCode(35_000_000).to_string(), "35000000");
        assert_eq!(TacCode(42).to_string(), "00000042");
    }
}
