//! Event stream → dwell reconstruction.
//!
//! The paper never sees trajectories: Section 2.3 "associate\[s\] each
//! (anonymized) user to a radio tower throughout the time they are
//! connected" from signaling alone. [`reconstruct_dwell`] implements
//! that association: a device is attributed to the cell of its latest
//! event until the next event moves it, and dwell is split across the
//! six 4-hour bins. Every mobility metric downstream consumes these
//! records, so the synthetic study exercises the same inference step the
//! real one did.

use crate::event::SignalingEvent;
use cellscope_radio::{CellId, Rat, Topology};
use cellscope_time::DayBin;
use serde::{Deserialize, Serialize};

/// Reconstructed dwell of one user on one cell within one 4-hour bin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DwellRecord {
    /// Anonymized user.
    pub anon_id: u64,
    /// Study day.
    pub day: u16,
    /// Cell camped on.
    pub cell: CellId,
    /// 4-hour bin.
    pub bin: DayBin,
    /// Minutes of dwell attributed.
    pub minutes: u16,
}

/// Reconstruct per-cell dwell from one user's events of one day.
///
/// `events` must belong to a single (user, day) and be sorted by minute
/// (the generator emits them that way; real probes timestamp in order).
/// Rules, mirroring common practice on operator data:
///
/// * the user camps on the cell of the latest event until the next event;
/// * the stretch before the first event is attributed to the first
///   event's cell (the device was there before the probe saw it attach);
/// * the stretch after the last event runs to midnight;
/// * failed events still prove presence (the probe logged them at that
///   sector), so they count for dwell.
///
/// Returns an empty vector for an empty event list (device unreachable).
pub fn reconstruct_dwell(events: &[SignalingEvent]) -> Vec<DwellRecord> {
    let mut out = Vec::new();
    reconstruct_dwell_into(events, &mut out);
    out
}

/// [`reconstruct_dwell`] into a caller-owned buffer: zero allocation
/// once `out`'s capacity covers a user-day's records. `out` is cleared
/// first, so a dirty buffer from the previous user-day is fine.
///
/// Bit-identical to the map-based path: records land sorted by
/// (cell, bin) with unique keys — exactly a `BTreeMap<(CellId, DayBin),
/// u16>`'s ascending iteration order — because the `u16` minute sums
/// commute, so sorting the per-chunk records unstably before the
/// adjacent merge reproduces the map's accumulation.
pub fn reconstruct_dwell_into(events: &[SignalingEvent], out: &mut Vec<DwellRecord>) {
    out.clear();
    let Some(first) = events.first() else {
        return;
    };
    debug_assert!(
        events.windows(2).all(|w| w[0].minute <= w[1].minute),
        "events must be sorted by minute"
    );
    debug_assert!(
        events
            .iter()
            .all(|e| e.anon_id == first.anon_id && e.day == first.day),
        "events must belong to one (user, day)"
    );

    // Walk camping intervals [start, end) on the minute line, pushing
    // one record per (interval, bin) chunk — no interval Vec, no map.
    let mut push_interval = |cell: CellId, s: u16, e: u16| {
        let mut cursor = s;
        while cursor < e {
            let bin = DayBin::of_hour((cursor / 60) as u8);
            let bin_end = (bin.start_hour() as u16 + 4) * 60;
            let chunk_end = e.min(bin_end);
            out.push(DwellRecord {
                anon_id: first.anon_id,
                day: first.day,
                cell,
                bin,
                minutes: chunk_end - cursor,
            });
            cursor = chunk_end;
        }
    };
    let mut current_cell = first.cell;
    let mut start = 0u16;
    for ev in events {
        if ev.cell != current_cell {
            if ev.minute > start {
                push_interval(current_cell, start, ev.minute);
            }
            current_cell = ev.cell;
            start = ev.minute;
        }
    }
    push_interval(current_cell, start, 1440);

    // Group chunks by (cell, bin) and merge adjacent duplicates in
    // place, summing minutes.
    out.sort_unstable_by_key(|r| (r.cell, r.bin));
    let mut w = 0usize;
    for i in 0..out.len() {
        let r = out[i];
        if w > 0 && out[w - 1].cell == r.cell && out[w - 1].bin == r.bin {
            out[w - 1].minutes += r.minutes;
        } else {
            out[w] = r;
            w += 1;
        }
    }
    out.truncate(w);
}

/// Share of dwell minutes spent on each RAT — the Section 2.4 statistic
/// ("users spend on average 75% of the time per day connected to 4G").
pub fn rat_dwell_shares(dwell: &[DwellRecord], topo: &Topology) -> [f64; 3] {
    let mut minutes = [0u64; 3];
    for d in dwell {
        minutes[topo.cell(d.cell).rat as usize] += d.minutes as u64;
    }
    let total: u64 = minutes.iter().sum();
    if total == 0 {
        return [0.0; 3];
    }
    [
        minutes[Rat::G2 as usize] as f64 / total as f64,
        minutes[Rat::G3 as usize] as f64 / total as f64,
        minutes[Rat::G4 as usize] as f64 / total as f64,
    ]
}

/// Count events by type — the first sanity check on any probe export
/// (an attach storm, a missing detach stream, or a TAU flood all show
/// up here before anything subtler does).
pub fn event_type_histogram(
    events: &[SignalingEvent],
) -> std::collections::BTreeMap<crate::event::EventType, u64> {
    let mut histogram = std::collections::BTreeMap::new();
    for e in events {
        *histogram.entry(e.event).or_default() += 1;
    }
    histogram
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventType, HOME_MNC, UK_MCC};
    use crate::tac::TacCode;

    fn ev(minute: u16, cell: u32, event: EventType) -> SignalingEvent {
        SignalingEvent {
            anon_id: 77,
            mcc: UK_MCC,
            mnc: HOME_MNC,
            tac: TacCode(35_000_000),
            cell: CellId(cell),
            day: 3,
            minute,
            event,
            success: true,
        }
    }

    #[test]
    fn histogram_counts_by_type() {
        let events = vec![
            ev(0, 1, EventType::Attach),
            ev(5, 1, EventType::ServiceRequest),
            ev(9, 1, EventType::ServiceRequest),
            ev(20, 2, EventType::Handover),
        ];
        let h = event_type_histogram(&events);
        assert_eq!(h[&EventType::Attach], 1);
        assert_eq!(h[&EventType::ServiceRequest], 2);
        assert_eq!(h[&EventType::Handover], 1);
        assert_eq!(h.values().sum::<u64>(), 4);
        assert!(event_type_histogram(&[]).is_empty());
    }

    #[test]
    fn empty_events_empty_dwell() {
        assert!(reconstruct_dwell(&[]).is_empty());
    }

    #[test]
    fn single_cell_day_accounts_1440_minutes() {
        let events = vec![
            ev(480, 5, EventType::Attach),
            ev(600, 5, EventType::ServiceRequest),
            ev(1439, 5, EventType::Detach),
        ];
        let dwell = reconstruct_dwell(&events);
        let total: u32 = dwell.iter().map(|d| d.minutes as u32).sum();
        assert_eq!(total, 1440);
        assert!(dwell.iter().all(|d| d.cell == CellId(5)));
        // All six bins present (pre-attach time backfilled).
        assert_eq!(dwell.len(), 6);
    }

    #[test]
    fn cell_change_splits_dwell_at_event_minute() {
        let events = vec![
            ev(0, 1, EventType::Attach),
            ev(720, 2, EventType::Handover), // noon
            ev(1439, 2, EventType::Detach),
        ];
        let dwell = reconstruct_dwell(&events);
        let cell1: u32 = dwell
            .iter()
            .filter(|d| d.cell == CellId(1))
            .map(|d| d.minutes as u32)
            .sum();
        let cell2: u32 = dwell
            .iter()
            .filter(|d| d.cell == CellId(2))
            .map(|d| d.minutes as u32)
            .sum();
        assert_eq!(cell1, 720);
        assert_eq!(cell2, 720);
    }

    #[test]
    fn bin_boundaries_respected() {
        // One cell 00:00–06:00, another 06:00–24:00.
        let events = vec![
            ev(0, 1, EventType::Attach),
            ev(360, 2, EventType::TrackingAreaUpdate),
        ];
        let dwell = reconstruct_dwell(&events);
        // Cell 1: full Night bin (240) + 120 of EarlyMorning.
        let night: u16 = dwell
            .iter()
            .filter(|d| d.cell == CellId(1) && d.bin == DayBin::Night)
            .map(|d| d.minutes)
            .sum();
        let early1: u16 = dwell
            .iter()
            .filter(|d| d.cell == CellId(1) && d.bin == DayBin::EarlyMorning)
            .map(|d| d.minutes)
            .sum();
        let early2: u16 = dwell
            .iter()
            .filter(|d| d.cell == CellId(2) && d.bin == DayBin::EarlyMorning)
            .map(|d| d.minutes)
            .sum();
        assert_eq!(night, 240);
        assert_eq!(early1, 120);
        assert_eq!(early2, 120);
    }

    #[test]
    fn repeated_same_cell_events_merge() {
        let events = vec![
            ev(0, 9, EventType::Attach),
            ev(100, 9, EventType::ServiceRequest),
            ev(200, 9, EventType::IdleTransition),
            ev(300, 9, EventType::ServiceRequest),
        ];
        let dwell = reconstruct_dwell(&events);
        assert!(dwell.iter().all(|d| d.cell == CellId(9)));
        let total: u32 = dwell.iter().map(|d| d.minutes as u32).sum();
        assert_eq!(total, 1440);
    }

    #[test]
    fn ping_pong_between_cells() {
        let events = vec![
            ev(0, 1, EventType::Attach),
            ev(240, 2, EventType::Handover),
            ev(480, 1, EventType::Handover),
            ev(720, 2, EventType::Handover),
        ];
        let dwell = reconstruct_dwell(&events);
        let cell1: u32 = dwell
            .iter()
            .filter(|d| d.cell == CellId(1))
            .map(|d| d.minutes as u32)
            .sum();
        let cell2: u32 = dwell
            .iter()
            .filter(|d| d.cell == CellId(2))
            .map(|d| d.minutes as u32)
            .sum();
        assert_eq!(cell1, 480);
        assert_eq!(cell2, 960);
    }
}
