//! Control-plane signaling: events, device catalog, anonymization, feeds.
//!
//! The paper's "General Signaling Dataset" (Section 2.2) captures, for
//! every RAT, the control-plane events subscribers trigger — Attach,
//! Authentication, Session establishment, bearer management, Tracking
//! Area Updates, idle transitions, Service requests, Handovers, Detach —
//! each carrying an anonymized user ID, SIM MCC/MNC, device TAC, the
//! radio sector handling the communication, a timestamp and a result
//! code. This crate produces exactly those records from ground-truth
//! trajectories, and provides the reconstruction logic that turns the
//! event stream back into per-user dwell — the paper's pipeline never
//! sees trajectories, only events.
//!
//! * [`tac`] — a GSMA-style Type Allocation Code catalog distinguishing
//!   smartphones from M2M modules;
//! * [`anonymize`] — salted stable hashing of subscriber identity;
//! * [`event`] — the event records and types;
//! * [`generate`] — trajectory → event stream (with RAT selection
//!   calibrated to the 75%-of-time-on-4G observation, and a small
//!   failure rate on result codes);
//! * [`feed`] — event stream → per-user per-day dwell (site, minutes,
//!   4-hour bin), the input of every mobility metric;
//! * [`columnar`] — the binary columnar segment format the replay
//!   engine decodes at memory speed (JSONL stays the interchange form).

pub mod anonymize;
pub mod columnar;
pub mod event;
pub mod export;
pub mod feed;
pub mod generate;
pub mod tac;

pub use anonymize::Anonymizer;
pub use columnar::{SegmentError, SegmentKind};
pub use event::{EventType, SignalingEvent};
pub use export::{
    read_events_jsonl, write_events_jsonl, BoundsViolation, EventReader, FeedBounds,
    FeedError, FeedStats, MalformedPolicy, MAX_MALFORMED_LINES,
};
pub use feed::{event_type_histogram, reconstruct_dwell, reconstruct_dwell_into, DwellRecord};
pub use generate::{EventGenerator, EventGenConfig};
pub use tac::{DeviceInfo, TacCatalog, TacCode};
