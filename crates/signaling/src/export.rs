//! Feed serialization: JSON-lines writers/readers for the signaling
//! event stream.
//!
//! The paper's raw feeds could never leave the operator (NDA, GDPR).
//! The synthetic equivalents can: this module gives the event stream a
//! stable on-disk representation so external tooling (pandas, DuckDB,
//! jq) can consume the same records the in-process pipeline does. One
//! JSON object per line, schema = [`SignalingEvent`]'s serde form.

use crate::event::SignalingEvent;
use std::io::{self, BufRead, Write};

/// Write events as JSON lines.
pub fn write_events_jsonl<W: Write>(
    mut writer: W,
    events: &[SignalingEvent],
) -> io::Result<()> {
    for event in events {
        let line = serde_json::to_string(event)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        writer.write_all(line.as_bytes())?;
        writer.write_all(b"\n")?;
    }
    Ok(())
}

/// Read events back from JSON lines.
///
/// Malformed lines are returned as errors with their line number — a
/// feed consumer must know *where* a probe export broke, not just that
/// it did.
pub fn read_events_jsonl<R: BufRead>(reader: R) -> io::Result<Vec<SignalingEvent>> {
    let mut events = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let event: SignalingEvent = serde_json::from_str(&line).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: {e}", idx + 1),
            )
        })?;
        events.push(event);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventType, HOME_MNC, UK_MCC};
    use crate::tac::TacCode;
    use cellscope_radio::CellId;

    fn sample(n: usize) -> Vec<SignalingEvent> {
        (0..n)
            .map(|i| SignalingEvent {
                anon_id: 0xDEAD_0000 + i as u64,
                mcc: UK_MCC,
                mnc: HOME_MNC,
                tac: TacCode(35_000_000),
                cell: CellId(i as u32 % 7),
                day: 12,
                minute: (i * 13 % 1440) as u16,
                event: EventType::ALL[i % EventType::ALL.len()],
                success: i % 11 != 0,
            })
            .collect()
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        let events = sample(50);
        let mut buffer = Vec::new();
        write_events_jsonl(&mut buffer, &events).unwrap();
        let back = read_events_jsonl(buffer.as_slice()).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn empty_stream_roundtrips() {
        let mut buffer = Vec::new();
        write_events_jsonl(&mut buffer, &[]).unwrap();
        assert!(read_events_jsonl(buffer.as_slice()).unwrap().is_empty());
    }

    #[test]
    fn blank_lines_are_skipped() {
        let events = sample(3);
        let mut buffer = Vec::new();
        write_events_jsonl(&mut buffer, &events).unwrap();
        buffer.extend_from_slice(b"\n\n");
        let back = read_events_jsonl(buffer.as_slice()).unwrap();
        assert_eq!(back.len(), 3);
    }

    #[test]
    fn malformed_line_reports_its_position() {
        let events = sample(2);
        let mut buffer = Vec::new();
        write_events_jsonl(&mut buffer, &events).unwrap();
        buffer.extend_from_slice(b"{not json}\n");
        let err = read_events_jsonl(buffer.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 3"), "{err}");
    }

    #[test]
    fn one_object_per_line() {
        let events = sample(4);
        let mut buffer = Vec::new();
        write_events_jsonl(&mut buffer, &events).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        assert_eq!(text.lines().count(), 4);
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }
}
