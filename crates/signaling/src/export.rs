//! Feed serialization: JSON-lines writers/readers for the signaling
//! event stream.
//!
//! The paper's raw feeds could never leave the operator (NDA, GDPR).
//! The synthetic equivalents can: this module gives the event stream a
//! stable on-disk representation so external tooling (pandas, DuckDB,
//! jq) can consume the same records the in-process pipeline does. One
//! JSON object per line, schema = [`SignalingEvent`]'s serde form.
//!
//! # Streaming vs collecting
//!
//! [`EventReader`] is the primary API: an iterator that yields one
//! `Result<SignalingEvent, FeedError>` per feed line while reusing a
//! single line buffer, so reading an N-event feed allocates O(1)
//! scratch instead of O(N) lines. It also carries the fault-tolerance
//! knobs the replay engine needs: a [`MalformedPolicy`] deciding
//! whether a bad line aborts the stream or is counted and skipped, an
//! optional [`FeedBounds`] for semantic validation (day/cell ids in
//! range), and running [`FeedStats`] that account for every line read
//! (`parsed + blank + malformed == lines_read`, always).
//!
//! [`read_events_jsonl`] is a thin fail-fast wrapper that collects the
//! iterator into a `Vec` — convenient for tests and small feeds.

use crate::event::SignalingEvent;
use std::fmt;
use std::io::{self, BufRead, Write};

/// Write events as JSON lines.
pub fn write_events_jsonl<W: Write>(
    mut writer: W,
    events: &[SignalingEvent],
) -> io::Result<()> {
    for event in events {
        let line = serde_json::to_string(event)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        writer.write_all(line.as_bytes())?;
        writer.write_all(b"\n")?;
    }
    Ok(())
}

/// What a reader does when it hits a line it cannot turn into a valid
/// event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MalformedPolicy {
    /// Stop at the first bad line and report it (the default; right for
    /// feeds we produced ourselves, where any damage is a bug).
    FailFast,
    /// Drop bad lines, keep counts in [`FeedStats::malformed`], and
    /// keep going (right for replaying feeds of unknown provenance —
    /// the paper's probes drop records too; the analysis must degrade,
    /// not abort).
    SkipAndCount,
}

/// A feed-read failure, locating the problem when it is per-line.
#[derive(Debug)]
pub enum FeedError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A specific line could not be parsed or failed validation.
    /// `line` is 1-based, matching what `sed -n '<line>p'` shows.
    Malformed { line: u64, reason: String },
    /// A binary columnar segment failed envelope or column validation
    /// (truncation, bad magic/version, checksum mismatch, mid-column
    /// EOF…). Carries the typed, `Copy` cause — no allocation happens
    /// until the error is actually rendered.
    Segment(crate::columnar::SegmentError),
}

impl fmt::Display for FeedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeedError::Io(e) => write!(f, "feed I/O error: {e}"),
            FeedError::Malformed { line, reason } => {
                write!(f, "line {line}: {reason}")
            }
            FeedError::Segment(cause) => write!(f, "binary segment: {cause}"),
        }
    }
}

impl std::error::Error for FeedError {}

impl From<FeedError> for io::Error {
    fn from(e: FeedError) -> io::Error {
        match e {
            FeedError::Io(io_err) => io_err,
            FeedError::Malformed { .. } | FeedError::Segment(_) => {
                io::Error::new(io::ErrorKind::InvalidData, e.to_string())
            }
        }
    }
}

/// Per-stream accounting. Every line read lands in exactly one of the
/// last three buckets: `parsed + blank + malformed == lines_read`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FeedStats {
    /// Total lines consumed from the reader.
    pub lines_read: u64,
    /// Lines that produced a valid event.
    pub parsed: u64,
    /// Whitespace-only lines (tolerated separators).
    pub blank: u64,
    /// Lines rejected as unparseable or out of bounds. Under
    /// [`MalformedPolicy::FailFast`] at most 1 (the line that aborted).
    pub malformed: u64,
}

/// Semantic bounds for validation beyond JSON well-formedness: a feed
/// event referring to a day or cell outside the study universe is as
/// malformed as broken JSON — downstream code indexes arrays with
/// these ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeedBounds {
    /// Number of study days; `event.day` must be `< num_days`.
    pub num_days: u16,
    /// Number of cells; `event.cell.0` must be `< num_cells`.
    pub num_cells: u32,
}

impl FeedBounds {
    /// Validate an event against the bounds.
    ///
    /// Returns a [`BoundsViolation`] — a `Copy` value, no allocation —
    /// so the replay hot path can reject millions of events without
    /// formatting a `String` per rejection. Format (via `Display`) only
    /// when the error is actually surfaced.
    pub fn check(&self, event: &SignalingEvent) -> Result<(), BoundsViolation> {
        if event.day >= self.num_days {
            return Err(BoundsViolation::DayOutOfRange {
                day: event.day,
                num_days: self.num_days,
            });
        }
        if event.cell.0 >= self.num_cells {
            return Err(BoundsViolation::CellOutOfRange {
                cell: event.cell.0,
                num_cells: self.num_cells,
            });
        }
        Ok(())
    }
}

/// Why an event failed [`FeedBounds::check`]. Carries the raw ids so
/// the message can be produced lazily; `Display` renders exactly the
/// strings the old `Result<(), String>` API formatted eagerly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundsViolation {
    /// `event.day` is not `< num_days`.
    DayOutOfRange {
        /// Offending day.
        day: u16,
        /// Study length in days.
        num_days: u16,
    },
    /// `event.cell.0` is not `< num_cells`.
    CellOutOfRange {
        /// Offending cell id.
        cell: u32,
        /// Topology cell count.
        num_cells: u32,
    },
}

impl fmt::Display for BoundsViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoundsViolation::DayOutOfRange { day, num_days } => {
                write!(f, "day {day} out of range (study has {num_days} days)")
            }
            BoundsViolation::CellOutOfRange { cell, num_cells } => {
                write!(f, "cell {cell} out of range (topology has {num_cells} cells)")
            }
        }
    }
}

impl std::error::Error for BoundsViolation {}

/// Most malformed-line positions an [`EventReader`] records. A damaged
/// multi-million-line feed must not turn the reader's accounting into
/// an unbounded allocation; the *count* in [`FeedStats::malformed`] is
/// always exact, the recorded positions are the first few witnesses.
pub const MAX_MALFORMED_LINES: usize = 16;

/// Streaming JSONL event reader: an iterator over
/// `Result<SignalingEvent, FeedError>`.
///
/// One internal `String` is reused across lines, so iteration performs
/// no per-line buffer allocation (the per-event work is just the JSON
/// parse). Configure with [`with_policy`](EventReader::with_policy) and
/// [`with_bounds`](EventReader::with_bounds); inspect accounting at any
/// point with [`stats`](EventReader::stats) and the positions of the
/// first rejected lines with
/// [`malformed_lines`](EventReader::malformed_lines) — under
/// [`MalformedPolicy::SkipAndCount`] those numbers are the only record
/// of *where* a feed was damaged.
pub struct EventReader<R: BufRead> {
    reader: R,
    buf: String,
    policy: MalformedPolicy,
    bounds: Option<FeedBounds>,
    stats: FeedStats,
    /// 1-based positions of the first [`MAX_MALFORMED_LINES`] rejected
    /// lines. Empty on a clean feed, so the happy path never allocates.
    malformed_lines: Vec<u64>,
    /// Set after a fatal error (I/O, or malformed under fail-fast) so
    /// the iterator fuses instead of re-reading a broken stream.
    done: bool,
}

impl<R: BufRead> EventReader<R> {
    /// Reader with the default fail-fast policy and no bounds checks.
    pub fn new(reader: R) -> EventReader<R> {
        EventReader {
            reader,
            buf: String::new(),
            policy: MalformedPolicy::FailFast,
            bounds: None,
            stats: FeedStats::default(),
            malformed_lines: Vec::new(),
            done: false,
        }
    }

    /// Set the malformed-line policy.
    pub fn with_policy(mut self, policy: MalformedPolicy) -> EventReader<R> {
        self.policy = policy;
        self
    }

    /// Enable semantic validation against study bounds.
    pub fn with_bounds(mut self, bounds: FeedBounds) -> EventReader<R> {
        self.bounds = Some(bounds);
        self
    }

    /// Accounting so far (final once the iterator returns `None`).
    pub fn stats(&self) -> FeedStats {
        self.stats
    }

    /// 1-based line numbers of the first [`MAX_MALFORMED_LINES`]
    /// rejected lines, in feed order. Under skip-and-count these are
    /// the only trace of where the damage sat; under fail-fast the
    /// single entry matches the error's line.
    pub fn malformed_lines(&self) -> &[u64] {
        &self.malformed_lines
    }

    /// Classify the current buffer; `None` means "skip, keep reading".
    ///
    /// Error *formatting* is deferred until the error is surfaced:
    /// under [`MalformedPolicy::SkipAndCount`] a bad line costs one
    /// counter bump, not a `String` render — on a replay of a damaged
    /// multi-million-line feed that difference is the hot path.
    fn take_line(&mut self) -> Option<Result<SignalingEvent, FeedError>> {
        let line = self.buf.trim();
        if line.is_empty() {
            self.stats.blank += 1;
            return None;
        }
        // Unformatted rejection cause, rendered only under FailFast.
        enum Reject {
            Parse(serde_json::Error),
            Bounds(BoundsViolation),
        }
        let checked = serde_json::from_str::<SignalingEvent>(line)
            .map_err(Reject::Parse)
            .and_then(|ev| match &self.bounds {
                Some(b) => b.check(&ev).map(|()| ev).map_err(Reject::Bounds),
                None => Ok(ev),
            });
        match checked {
            Ok(ev) => {
                self.stats.parsed += 1;
                Some(Ok(ev))
            }
            Err(reject) => {
                self.stats.malformed += 1;
                if self.malformed_lines.len() < MAX_MALFORMED_LINES {
                    self.malformed_lines.push(self.stats.lines_read);
                }
                match self.policy {
                    MalformedPolicy::SkipAndCount => None,
                    MalformedPolicy::FailFast => {
                        self.done = true;
                        let reason = match reject {
                            Reject::Parse(e) => e.to_string(),
                            Reject::Bounds(v) => v.to_string(),
                        };
                        Some(Err(FeedError::Malformed {
                            line: self.stats.lines_read,
                            reason,
                        }))
                    }
                }
            }
        }
    }
}

impl<R: BufRead> Iterator for EventReader<R> {
    type Item = Result<SignalingEvent, FeedError>;

    fn next(&mut self) -> Option<Result<SignalingEvent, FeedError>> {
        while !self.done {
            self.buf.clear();
            match self.reader.read_line(&mut self.buf) {
                Ok(0) => return None,
                Ok(_) => {}
                Err(e) => {
                    self.done = true;
                    return Some(Err(FeedError::Io(e)));
                }
            }
            self.stats.lines_read += 1;
            if let Some(item) = self.take_line() {
                return Some(item);
            }
        }
        None
    }
}

/// Read events back from JSON lines, collecting into a `Vec`.
///
/// Thin wrapper over a fail-fast [`EventReader`]: malformed lines are
/// returned as `InvalidData` errors carrying their 1-based line number
/// — a feed consumer must know *where* a probe export broke, not just
/// that it did.
pub fn read_events_jsonl<R: BufRead>(reader: R) -> io::Result<Vec<SignalingEvent>> {
    let mut events = Vec::new();
    for item in EventReader::new(reader) {
        events.push(item.map_err(io::Error::from)?);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventType, HOME_MNC, UK_MCC};
    use crate::tac::TacCode;
    use cellscope_radio::CellId;

    fn sample(n: usize) -> Vec<SignalingEvent> {
        (0..n)
            .map(|i| SignalingEvent {
                anon_id: 0xDEAD_0000 + i as u64,
                mcc: UK_MCC,
                mnc: HOME_MNC,
                tac: TacCode(35_000_000),
                cell: CellId(i as u32 % 7),
                day: 12,
                minute: (i * 13 % 1440) as u16,
                event: EventType::ALL[i % EventType::ALL.len()],
                success: i % 11 != 0,
            })
            .collect()
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        let events = sample(50);
        let mut buffer = Vec::new();
        write_events_jsonl(&mut buffer, &events).unwrap();
        let back = read_events_jsonl(buffer.as_slice()).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn empty_stream_roundtrips() {
        let mut buffer = Vec::new();
        write_events_jsonl(&mut buffer, &[]).unwrap();
        assert!(read_events_jsonl(buffer.as_slice()).unwrap().is_empty());
    }

    #[test]
    fn blank_lines_are_skipped() {
        let events = sample(3);
        let mut buffer = Vec::new();
        write_events_jsonl(&mut buffer, &events).unwrap();
        buffer.extend_from_slice(b"\n\n");
        let back = read_events_jsonl(buffer.as_slice()).unwrap();
        assert_eq!(back.len(), 3);
    }

    #[test]
    fn malformed_line_reports_its_position() {
        let events = sample(2);
        let mut buffer = Vec::new();
        write_events_jsonl(&mut buffer, &events).unwrap();
        buffer.extend_from_slice(b"{not json}\n");
        let err = read_events_jsonl(buffer.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 3"), "{err}");
    }

    #[test]
    fn one_object_per_line() {
        let events = sample(4);
        let mut buffer = Vec::new();
        write_events_jsonl(&mut buffer, &events).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        assert_eq!(text.lines().count(), 4);
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn streaming_reader_counts_every_line() {
        let events = sample(5);
        let mut buffer = Vec::new();
        write_events_jsonl(&mut buffer, &events).unwrap();
        buffer.extend_from_slice(b"\n{bad}\n   \n");
        write_events_jsonl(&mut buffer, &events[..2]).unwrap();

        let mut reader = EventReader::new(buffer.as_slice())
            .with_policy(MalformedPolicy::SkipAndCount);
        let back: Vec<SignalingEvent> =
            (&mut reader).map(|r| r.unwrap()).collect();
        assert_eq!(back.len(), 7);

        let stats = reader.stats();
        assert_eq!(stats.lines_read, 10);
        assert_eq!(stats.parsed, 7);
        assert_eq!(stats.blank, 2);
        assert_eq!(stats.malformed, 1);
        assert_eq!(
            stats.parsed + stats.blank + stats.malformed,
            stats.lines_read
        );
    }

    #[test]
    fn malformed_line_positions_are_recorded() {
        let mut buffer = Vec::new();
        write_events_jsonl(&mut buffer, &sample(2)).unwrap();
        buffer.extend_from_slice(b"{bad}\n");
        write_events_jsonl(&mut buffer, &sample(1)).unwrap();
        buffer.extend_from_slice(b"also bad\n");

        let mut reader = EventReader::new(buffer.as_slice())
            .with_policy(MalformedPolicy::SkipAndCount);
        assert_eq!((&mut reader).filter_map(Result::ok).count(), 3);
        assert_eq!(reader.stats().malformed, 2);
        assert_eq!(reader.malformed_lines(), &[3, 5]);
    }

    #[test]
    fn malformed_line_recording_is_capped() {
        let mut buffer = Vec::new();
        for _ in 0..(MAX_MALFORMED_LINES + 10) {
            buffer.extend_from_slice(b"{nope}\n");
        }
        let mut reader = EventReader::new(buffer.as_slice())
            .with_policy(MalformedPolicy::SkipAndCount);
        assert_eq!((&mut reader).count(), 0);
        assert_eq!(
            reader.stats().malformed,
            (MAX_MALFORMED_LINES + 10) as u64,
            "the count stays exact past the cap"
        );
        assert_eq!(reader.malformed_lines().len(), MAX_MALFORMED_LINES);
        assert_eq!(reader.malformed_lines()[0], 1);
    }

    #[test]
    fn fail_fast_reader_fuses_after_error() {
        let mut buffer = Vec::new();
        write_events_jsonl(&mut buffer, &sample(1)).unwrap();
        buffer.extend_from_slice(b"garbage\n");
        write_events_jsonl(&mut buffer, &sample(1)).unwrap();

        let mut reader = EventReader::new(buffer.as_slice());
        assert!(reader.next().unwrap().is_ok());
        let err = reader.next().unwrap().unwrap_err();
        assert!(matches!(err, FeedError::Malformed { line: 2, .. }), "{err}");
        assert!(reader.next().is_none(), "fused after fail-fast error");
    }

    #[test]
    fn bounds_reject_out_of_range_ids() {
        let bounds = FeedBounds { num_days: 20, num_cells: 7 };
        let mut ev = sample(1)[0];
        assert!(bounds.check(&ev).is_ok());
        ev.day = 20;
        assert_eq!(
            bounds.check(&ev).unwrap_err().to_string(),
            "day 20 out of range (study has 20 days)"
        );
        ev.day = 5;
        ev.cell = CellId(7);
        assert_eq!(
            bounds.check(&ev).unwrap_err().to_string(),
            "cell 7 out of range (topology has 7 cells)"
        );
    }
}
