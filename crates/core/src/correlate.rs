//! Correlation and regression.
//!
//! Three of the paper's claims are correlation statements: the inferred
//! LAD populations fit census linearly with r² = 0.955 (Fig. 2);
//! mobility does *not* correlate with case counts (Fig. 4); per-cluster
//! connected users correlate with downlink volume (+0.973 for
//! Cosmopolitans … −0.466 for Suburbanites, Section 4.4).

use serde::{Deserialize, Serialize};

/// Pearson correlation coefficient of paired samples.
///
/// Returns `None` for fewer than 2 pairs or zero variance on either
/// side.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    assert_eq!(xs.len(), ys.len(), "paired samples required");
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let mx = xs.iter().sum::<f64>() / n as f64;
    let my = ys.iter().sum::<f64>() / n as f64;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Ordinary-least-squares line fit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Slope.
    pub slope: f64,
    /// Intercept.
    pub intercept: f64,
    /// Coefficient of determination.
    pub r2: f64,
}

/// Fit `y = slope·x + intercept`; `None` under the same degeneracies as
/// [`pearson`].
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Option<LinearFit> {
    assert_eq!(xs.len(), ys.len(), "paired samples required");
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let mx = xs.iter().sum::<f64>() / n as f64;
    let my = ys.iter().sum::<f64>() / n as f64;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r = pearson(xs, ys)?;
    Some(LinearFit {
        slope,
        intercept,
        r2: r * r,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive_and_negative() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let up: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        let down: Vec<f64> = xs.iter().map(|x| -3.0 * x).collect();
        assert!((pearson(&xs, &up).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &down).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_noise_is_weak() {
        // Deterministic pseudo-noise, decorrelated by construction.
        let xs: Vec<f64> = (0..200).map(|i| (i as f64 * 0.7).sin()).collect();
        let ys: Vec<f64> = (0..200).map(|i| (i as f64 * 1.3 + 2.0).cos()).collect();
        let r = pearson(&xs, &ys).unwrap();
        assert!(r.abs() < 0.2, "r = {r}");
    }

    #[test]
    fn degenerate_cases_are_none() {
        assert_eq!(pearson(&[1.0], &[2.0]), None);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), None); // zero x variance
        assert_eq!(pearson(&[1.0, 2.0], &[3.0, 3.0]), None); // zero y variance
        assert_eq!(linear_fit(&[], &[]), None);
    }

    #[test]
    fn fit_recovers_line() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let ys: Vec<f64> = xs.iter().map(|x| 5.0 * x - 2.0).collect();
        let fit = linear_fit(&xs, &ys).unwrap();
        assert!((fit.slope - 5.0).abs() < 1e-12);
        assert!((fit.intercept + 2.0).abs() < 1e-12);
        assert!((fit.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fit_r2_degrades_with_noise() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let clean: Vec<f64> = xs.iter().map(|x| x * 2.0).collect();
        let noisy: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| x * 2.0 + 30.0 * ((i as f64 * 2.1).sin()))
            .collect();
        let r2_clean = linear_fit(&xs, &clean).unwrap().r2;
        let r2_noisy = linear_fit(&xs, &noisy).unwrap().r2;
        assert!(r2_clean > r2_noisy);
        assert!(r2_noisy > 0.8); // still dominated by the trend
    }

    #[test]
    #[should_panic(expected = "paired samples")]
    fn unpaired_inputs_panic() {
        let _ = pearson(&[1.0, 2.0], &[1.0]);
    }
}
