//! The residents-abroad mobility matrix (Fig. 7).
//!
//! Section 3.4: for each Inner-London resident, check the counties
//! visited each day; a resident whose day includes no visit to their
//! home county has relocated (at least for that day). The matrix rows
//! are destination counties, columns are days, and values are the
//! variation vs. the week-9 median of residents present there.

use crate::baseline::delta_pct;
use cellscope_time::{IsoWeek, SimClock};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Counts of tracked residents seen per (place, day).
///
/// `P` is the place key (county in the paper's usage).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MobilityMatrix<P: Ord> {
    num_days: usize,
    counts: BTreeMap<P, Vec<u32>>,
}

impl<P: Ord + Clone> MobilityMatrix<P> {
    /// Empty matrix over `num_days` days.
    pub fn new(num_days: usize) -> MobilityMatrix<P> {
        MobilityMatrix {
            num_days,
            counts: BTreeMap::new(),
        }
    }

    /// Record that one tracked resident was seen at `place` on `day`.
    /// Call once per (resident, place, day) — i.e. with the resident's
    /// *set* of visited places that day.
    pub fn record(&mut self, place: P, day: u16) {
        debug_assert!((day as usize) < self.num_days);
        let row = self
            .counts
            .entry(place)
            .or_insert_with(|| vec![0; self.num_days]);
        row[day as usize] += 1;
    }

    /// Residents seen at `place` on `day`.
    pub fn count(&self, place: &P, day: u16) -> u32 {
        self.counts
            .get(place)
            .and_then(|r| r.get(day as usize).copied())
            .unwrap_or(0)
    }

    /// Median count over the baseline week for a place.
    pub fn baseline_median(&self, place: &P, clock: &SimClock, week: IsoWeek) -> Option<f64> {
        let row = self.counts.get(place)?;
        let days: Vec<f64> = clock
            .days_in_week(week)
            .map(|d| row[d as usize] as f64)
            .collect();
        crate::stats::median(&days)
    }

    /// Mean count over the baseline week for a place — used for the
    /// top-10 ranking ("according to the average in week 9") and as the
    /// delta baseline for sparse rows whose median is zero (occasional
    /// weekend destinations are visited on 1–2 days of the week).
    pub fn baseline_mean(&self, place: &P, clock: &SimClock, week: IsoWeek) -> Option<f64> {
        let row = self.counts.get(place)?;
        let days: Vec<f64> = clock
            .days_in_week(week)
            .map(|d| row[d as usize] as f64)
            .collect();
        crate::stats::mean(&days)
    }

    /// One row of the figure: daily Δ% vs the baseline-week median
    /// (falling back to the mean when the median is zero, see
    /// [`MobilityMatrix::baseline_mean`]).
    pub fn delta_row(&self, place: &P, clock: &SimClock, week: IsoWeek) -> Vec<Option<f64>> {
        let base = match self.baseline_median(place, clock, week) {
            Some(m) if m > 0.0 => Some(m),
            _ => self.baseline_mean(place, clock, week).filter(|&m| m > 0.0),
        };
        let Some(base) = base else {
            return vec![None; self.num_days];
        };
        (0..self.num_days as u16)
            .map(|d| delta_pct(self.count(place, d) as f64, base))
            .collect()
    }

    /// Places ranked by baseline-week median inbound count, descending —
    /// the paper keeps "the top 10 counties in terms of receiving
    /// inbound residents … according to the average in week 9".
    pub fn top_places(
        &self,
        clock: &SimClock,
        week: IsoWeek,
        n: usize,
        exclude: Option<&P>,
    ) -> Vec<P> {
        let mut ranked: Vec<(P, f64)> = self
            .counts
            .keys()
            .filter(|p| exclude != Some(*p))
            .filter_map(|p| {
                self.baseline_mean(p, clock, week)
                    .filter(|&m| m > 0.0)
                    .map(|m| (p.clone(), m))
            })
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
        ranked.truncate(n);
        ranked.into_iter().map(|(p, _)| p).collect()
    }

    /// All places observed.
    pub fn places(&self) -> impl Iterator<Item = &P> {
        self.counts.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clock() -> SimClock {
        SimClock::study()
    }

    fn wk9() -> IsoWeek {
        IsoWeek { year: 2020, week: 9 }
    }

    #[test]
    fn counts_accumulate() {
        let mut m: MobilityMatrix<&str> = MobilityMatrix::new(100);
        m.record("kent", 3);
        m.record("kent", 3);
        m.record("kent", 4);
        assert_eq!(m.count(&"kent", 3), 2);
        assert_eq!(m.count(&"kent", 4), 1);
        assert_eq!(m.count(&"kent", 5), 0);
        assert_eq!(m.count(&"essex", 3), 0);
    }

    #[test]
    fn delta_row_vs_baseline() {
        let c = clock();
        let mut m: MobilityMatrix<&str> = MobilityMatrix::new(c.num_days());
        // 10 residents present on every week-9 day, 9 afterwards.
        let week9_days: Vec<u16> = c.days_in_week(wk9()).collect();
        for d in c.days() {
            let count = if week9_days.contains(&d) { 10 } else { 9 };
            for _ in 0..count {
                m.record("inner", d);
            }
        }
        assert_eq!(m.baseline_median(&"inner", &c, wk9()), Some(10.0));
        let row = m.delta_row(&"inner", &c, wk9());
        let after = week9_days.last().unwrap() + 1;
        assert!((row[after as usize].unwrap() + 10.0).abs() < 1e-9);
    }

    #[test]
    fn top_places_ranked_and_excluding_home() {
        let c = clock();
        let mut m: MobilityMatrix<&str> = MobilityMatrix::new(c.num_days());
        for d in c.days_in_week(wk9()) {
            for _ in 0..50 {
                m.record("inner", d);
            }
            for _ in 0..8 {
                m.record("hampshire", d);
            }
            for _ in 0..5 {
                m.record("kent", d);
            }
            m.record("essex", d);
        }
        let top = m.top_places(&c, wk9(), 2, Some(&"inner"));
        assert_eq!(top, vec!["hampshire", "kent"]);
    }

    #[test]
    fn place_with_zero_baseline_yields_none_deltas() {
        let c = clock();
        let mut m: MobilityMatrix<&str> = MobilityMatrix::new(c.num_days());
        m.record("sussex", 60); // only appears long after week 9
        let row = m.delta_row(&"sussex", &c, wk9());
        assert!(row.iter().all(|v| v.is_none()));
    }
}
