//! Home detection.
//!
//! Section 2.3: "We use the cell tower to which the user connects more
//! time during nighttime hours (12:00 PM through 8:00 AM) for at least
//! 14 days (not necessarily consecutive) during February 2020." The
//! paper resolves ≈16M homes this way and validates the inferred LAD
//! populations against census (Fig. 2, r² = 0.955).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Accumulates night-time dwell over the observation window.
///
/// Feed it one record per (user, night, tower) with the night-window
/// dwell minutes; it tracks, per user, on how many distinct nights each
/// tower was that night's maximum.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NightDwellLog {
    /// user → (night, best tower so far, best minutes so far)
    current_night: HashMap<u64, (u16, u32, u16)>,
    /// user → tower → nights won
    wins: HashMap<u64, HashMap<u32, u16>>,
}

impl NightDwellLog {
    /// Create an empty log.
    pub fn new() -> NightDwellLog {
        NightDwellLog::default()
    }

    /// Record `minutes` of night-window dwell of `user` at `tower` on
    /// `night`. Records may arrive in any per-user order across towers,
    /// but nights must be fed in non-decreasing order per user (the
    /// natural feed order).
    ///
    /// Same-night dwell ties break toward the **lower tower id** (the
    /// same rule as [`crate::top_n_towers`]), so the night's winner is
    /// independent of the order tower records arrive in — in-memory
    /// runs and feed replays that interleave records differently must
    /// detect identical homes.
    pub fn record(&mut self, user: u64, night: u16, tower: u32, minutes: u16) {
        if minutes == 0 {
            return;
        }
        match self.current_night.get_mut(&user) {
            Some((cur_night, best_tower, best_minutes)) if *cur_night == night => {
                if minutes > *best_minutes
                    || (minutes == *best_minutes && tower < *best_tower)
                {
                    *best_tower = tower;
                    *best_minutes = minutes;
                }
            }
            Some(entry) => {
                debug_assert!(entry.0 < night, "nights must arrive in order per user");
                // Close the previous night.
                let (_, won_tower, _) = *entry;
                *self
                    .wins
                    .entry(user)
                    .or_default()
                    .entry(won_tower)
                    .or_default() += 1;
                *entry = (night, tower, minutes);
            }
            None => {
                self.current_night.insert(user, (night, tower, minutes));
            }
        }
    }

    /// Close all open nights (call once after the last record).
    pub fn finish(&mut self) {
        for (user, (_, tower, _)) in self.current_night.drain() {
            *self.wins.entry(user).or_default().entry(tower).or_default() += 1;
        }
    }

    /// Merge another **finished** log (disjoint or overlapping users).
    ///
    /// # Panics
    /// Panics if either log has unfinished nights (call
    /// [`NightDwellLog::finish`] first).
    pub fn merge(&mut self, other: NightDwellLog) {
        assert!(
            self.current_night.is_empty() && other.current_night.is_empty(),
            "merge requires finished logs"
        );
        for (user, towers) in other.wins {
            let entry = self.wins.entry(user).or_default();
            for (tower, nights) in towers {
                *entry.entry(tower).or_default() += nights;
            }
        }
    }

    /// Nights won per tower for one user.
    pub fn wins_of(&self, user: u64) -> Option<&HashMap<u32, u16>> {
        self.wins.get(&user)
    }

    /// Users observed.
    pub fn users(&self) -> impl Iterator<Item = u64> + '_ {
        self.wins.keys().copied()
    }
}

/// The home-detection rule.
///
/// ```
/// use cellscope_core::{HomeDetector, NightDwellLog};
///
/// let mut log = NightDwellLog::new();
/// for night in 0..20 {
///     log.record(7, night, 42, 420); // user 7 sleeps near tower 42
///     log.record(7, night, 9, 60);   // briefly seen on a neighbour
/// }
/// log.finish();
/// assert_eq!(HomeDetector::default().detect(&log, 7), Some(42));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HomeDetector {
    /// Minimum nights a tower must win to qualify as home (paper: 14).
    pub min_nights: u16,
}

impl Default for HomeDetector {
    fn default() -> Self {
        HomeDetector { min_nights: 14 }
    }
}

impl HomeDetector {
    /// Resolve one user's home tower, if the rule is satisfied.
    pub fn detect(&self, log: &NightDwellLog, user: u64) -> Option<u32> {
        let wins = log.wins_of(user)?;
        let (&tower, &nights) = wins
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))?; // ties → lower id
        if nights >= self.min_nights {
            Some(tower)
        } else {
            None
        }
    }

    /// Resolve every detectable user.
    pub fn detect_all(&self, log: &NightDwellLog) -> HashMap<u64, u32> {
        log.users()
            .filter_map(|u| self.detect(log, u).map(|t| (u, t)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a log where `user` wins `tower` on the given nights with
    /// the given minutes (single tower per night unless stated).
    fn feed(log: &mut NightDwellLog, user: u64, nights: &[(u16, u32, u16)]) {
        for &(night, tower, minutes) in nights {
            log.record(user, night, tower, minutes);
        }
    }

    #[test]
    fn detects_dominant_night_tower() {
        let mut log = NightDwellLog::new();
        // 20 nights at tower 5, with tower 9 briefly seen each night.
        for night in 0..20 {
            feed(&mut log, 1, &[(night, 5, 400), (night, 9, 60)]);
        }
        log.finish();
        assert_eq!(HomeDetector::default().detect(&log, 1), Some(5));
    }

    #[test]
    fn under_threshold_is_undetected() {
        let mut log = NightDwellLog::new();
        for night in 0..13 {
            feed(&mut log, 1, &[(night, 5, 400)]);
        }
        log.finish();
        assert_eq!(HomeDetector::default().detect(&log, 1), None);
        // 14 nights flips it.
        let mut log = NightDwellLog::new();
        for night in 0..14 {
            feed(&mut log, 1, &[(night, 5, 400)]);
        }
        log.finish();
        assert_eq!(HomeDetector::default().detect(&log, 1), Some(5));
    }

    #[test]
    fn nights_need_not_be_consecutive() {
        let mut log = NightDwellLog::new();
        for i in 0..14 {
            feed(&mut log, 1, &[(i * 2, 5, 300)]); // every other night
        }
        log.finish();
        assert_eq!(HomeDetector::default().detect(&log, 1), Some(5));
    }

    #[test]
    fn per_night_maximum_wins_not_total() {
        let mut log = NightDwellLog::new();
        // Tower 7 wins every night narrowly; tower 3 seen nightly too.
        for night in 0..20 {
            feed(&mut log, 1, &[(night, 3, 200), (night, 7, 280)]);
        }
        log.finish();
        assert_eq!(HomeDetector::default().detect(&log, 1), Some(7));
    }

    #[test]
    fn split_residences_pick_the_majority() {
        let mut log = NightDwellLog::new();
        for night in 0..18 {
            feed(&mut log, 1, &[(night, 1, 300)]);
        }
        for night in 18..29 {
            feed(&mut log, 1, &[(night, 2, 300)]);
        }
        log.finish();
        // 18 nights at tower 1, 11 at tower 2.
        assert_eq!(HomeDetector::default().detect(&log, 1), Some(1));
    }

    #[test]
    fn unknown_user_is_none() {
        let log = NightDwellLog::new();
        assert_eq!(HomeDetector::default().detect(&log, 99), None);
    }

    #[test]
    fn detect_all_covers_only_qualified_users() {
        let mut log = NightDwellLog::new();
        for night in 0..20 {
            feed(&mut log, 1, &[(night, 5, 300)]);
        }
        for night in 0..5 {
            feed(&mut log, 2, &[(night, 6, 300)]);
        }
        log.finish();
        let homes = HomeDetector::default().detect_all(&log);
        assert_eq!(homes.len(), 1);
        assert_eq!(homes.get(&1), Some(&5));
    }

    /// Regression: same-night dwell ties must resolve to the lower
    /// tower id regardless of arrival order. Before the fix, the first
    /// arrival kept the night, so interleaving records differently
    /// (e.g. feed replay vs in-memory) flipped detected homes.
    #[test]
    fn same_night_ties_ignore_arrival_order() {
        // Towers 5 and 9 tie every night; one run always feeds 9
        // first, the other always feeds 5 first. Before the fix the
        // first arrival won every night, so the two runs inferred
        // different homes (9 vs 5).
        let mut homes = Vec::new();
        for order in [[9u32, 5], [5, 9]] {
            let mut log = NightDwellLog::new();
            for night in 0..20u16 {
                for tower in order {
                    log.record(1, night, tower, 300);
                }
            }
            log.finish();
            homes.push(HomeDetector::default().detect(&log, 1));
        }
        assert_eq!(homes[0], homes[1], "home depends on arrival order");
        assert_eq!(homes[0], Some(5), "tie must break to the lower id");
    }

    /// A strictly longer dwell still beats a lower tower id.
    #[test]
    fn longer_dwell_beats_lower_id() {
        let mut log = NightDwellLog::new();
        for night in 0..20 {
            log.record(1, night, 2, 200);
            log.record(1, night, 7, 201);
        }
        log.finish();
        assert_eq!(HomeDetector::default().detect(&log, 1), Some(7));
    }

    #[test]
    fn zero_minute_records_are_ignored() {
        let mut log = NightDwellLog::new();
        for night in 0..20 {
            log.record(1, night, 5, 0);
        }
        log.finish();
        assert_eq!(HomeDetector::default().detect(&log, 1), None);
    }
}
