//! Radius of gyration — Eq. (2) of the paper.
//!
//! `g = sqrt( (1/T) Σ_j t_j · |l_j − l_cm|² )` with
//! `l_cm = (1/T) Σ_j t_j · l_j`: the time-weighted RMS distance of the
//! visited towers from the trajectory's centre of mass — "a key
//! characteristic to model travelled distance" (Section 2.3, after
//! González et al.).
//!
//! Note on the formula: the paper prints `(1/N) Σ (t_j l_j − l_cm)²`
//! with `l_cm = (1/N) Σ t_j l_j`, which is dimensionally inconsistent
//! unless `t_j` are *normalized* dwell fractions; with normalized
//! weights it reduces to the standard time-weighted definition
//! implemented here (and used by the mobility literature it cites).

use crate::dwell::TowerDwell;
use cellscope_geo::coords::center_of_mass;

/// Compute the radius of gyration of one user-day's dwell, in km.
///
/// Returns `None` when total dwell is zero. A single-tower day (or any
/// day spent at one location) has gyration 0.
///
/// ```
/// use cellscope_core::{radius_of_gyration, TowerDwell};
/// use cellscope_geo::Point;
///
/// // Half the day at home, half at a workplace 10 km away: every
/// // second sits 5 km from the centre of mass.
/// let day = vec![
///     TowerDwell { tower: 1, location: Point::new(0.0, 0.0), seconds: 43_200.0 },
///     TowerDwell { tower: 2, location: Point::new(10.0, 0.0), seconds: 43_200.0 },
/// ];
/// assert!((radius_of_gyration(&day).unwrap() - 5.0).abs() < 1e-12);
/// ```
pub fn radius_of_gyration(dwell: &[TowerDwell]) -> Option<f64> {
    let total: f64 = dwell.iter().map(|d| d.seconds.max(0.0)).sum();
    if total <= 0.0 {
        return None;
    }
    let cm = center_of_mass(
        dwell
            .iter()
            .filter(|d| d.seconds > 0.0)
            .map(|d| (d.location, d.seconds)),
    )?;
    let mut acc = 0.0;
    for d in dwell {
        if d.seconds > 0.0 {
            acc += d.seconds * d.location.distance_sq(cm);
        }
    }
    Some((acc / total).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellscope_geo::Point;

    fn d(tower: u32, x: f64, y: f64, seconds: f64) -> TowerDwell {
        TowerDwell {
            tower,
            location: Point::new(x, y),
            seconds,
        }
    }

    #[test]
    fn empty_or_zero_dwell_is_none() {
        assert_eq!(radius_of_gyration(&[]), None);
        assert_eq!(radius_of_gyration(&[d(1, 5.0, 5.0, 0.0)]), None);
    }

    #[test]
    fn single_location_is_zero() {
        assert_eq!(radius_of_gyration(&[d(1, 3.0, 4.0, 100.0)]), Some(0.0));
        // Two towers at the same point: still zero.
        assert_eq!(
            radius_of_gyration(&[d(1, 3.0, 4.0, 50.0), d(2, 3.0, 4.0, 70.0)]),
            Some(0.0)
        );
    }

    #[test]
    fn symmetric_two_point_day() {
        // Equal time at x=0 and x=10: cm at 5, every second is 5 km out.
        let g = radius_of_gyration(&[d(1, 0.0, 0.0, 100.0), d(2, 10.0, 0.0, 100.0)])
            .unwrap();
        assert!((g - 5.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_two_point_day() {
        // 3/4 of time at x=0, 1/4 at x=8: cm at 2.
        // g = sqrt(0.75·4 + 0.25·36) = sqrt(12) ≈ 3.464.
        let g = radius_of_gyration(&[d(1, 0.0, 0.0, 300.0), d(2, 8.0, 0.0, 100.0)])
            .unwrap();
        assert!((g - 12.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn translation_invariant() {
        let base = [d(1, 0.0, 0.0, 10.0), d(2, 6.0, 8.0, 30.0)];
        let shifted = [d(1, 100.0, -50.0, 10.0), d(2, 106.0, -42.0, 30.0)];
        assert!(
            (radius_of_gyration(&base).unwrap()
                - radius_of_gyration(&shifted).unwrap())
            .abs()
                < 1e-9
        );
    }

    #[test]
    fn spending_more_time_at_home_shrinks_gyration() {
        let commuter = [d(1, 0.0, 0.0, 16.0), d(2, 10.0, 0.0, 8.0)];
        let confined = [d(1, 0.0, 0.0, 23.0), d(2, 10.0, 0.0, 1.0)];
        assert!(
            radius_of_gyration(&confined).unwrap()
                < radius_of_gyration(&commuter).unwrap()
        );
    }
}
