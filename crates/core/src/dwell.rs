//! Per-user-day tower dwell.
//!
//! Section 2.3: "For each user, we determine the total duration of time
//! they spend connected to every cell tower and select the top 20
//! towers" — the filter that isolates a person's relevant places before
//! computing mobility metrics.

use cellscope_geo::Point;
use serde::{Deserialize, Serialize};

/// Time spent at one tower during one user-day.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TowerDwell {
    /// Opaque tower key (site id in the synthetic world).
    pub tower: u32,
    /// Tower location (for gyration).
    pub location: Point,
    /// Seconds of dwell.
    pub seconds: f64,
}

/// Dwell tagged with the 4-hour bin it happened in — Section 2.3 also
/// computes the mobility metrics "over six disjoint 4-hour bins of the
/// day", not only over the 24-hour window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BinnedTowerDwell {
    /// The 4-hour bin.
    pub bin: cellscope_time::DayBin,
    /// The dwell record.
    pub dwell: TowerDwell,
}

/// Project binned dwell onto one 4-hour bin, ready for the metric
/// functions (which are bin-agnostic).
pub fn dwell_in_bin(
    binned: &[BinnedTowerDwell],
    bin: cellscope_time::DayBin,
) -> Vec<TowerDwell> {
    binned
        .iter()
        .filter(|b| b.bin == bin)
        .map(|b| b.dwell)
        .collect()
}

/// Collapse binned dwell to the 24-hour window (summing per tower).
///
/// One stable sort by tower id, then an adjacent merge — no rank sort:
/// callers of the whole-day collapse (entropy, gyration) don't care
/// about dwell-duration order, so the second sort the old
/// `top_n_towers(…, usize::MAX)` round-trip paid was pure waste.
/// Output is in ascending tower-id order; per-tower sums accumulate in
/// input order (stable sort), matching the old path bit-for-bit.
pub fn dwell_whole_day(binned: &[BinnedTowerDwell]) -> Vec<TowerDwell> {
    let mut sorted: Vec<TowerDwell> = binned.iter().map(|b| b.dwell).collect();
    sorted.sort_by_key(|d| d.tower);
    let mut merged: Vec<TowerDwell> = Vec::with_capacity(sorted.len());
    for d in sorted {
        if d.seconds <= 0.0 {
            continue;
        }
        match merged.last_mut() {
            Some(last) if last.tower == d.tower => last.seconds += d.seconds,
            _ => merged.push(d),
        }
    }
    merged
}

/// Keep the `n` towers with the longest dwell, merging duplicates first.
///
/// Ties break toward the lower tower id so the selection is
/// deterministic. Zero- and negative-duration entries are dropped.
pub fn top_n_towers(dwell: &[TowerDwell], n: usize) -> Vec<TowerDwell> {
    let mut out = Vec::new();
    top_n_towers_into(dwell, n, &mut out);
    out
}

/// [`top_n_towers`] into a caller-owned buffer: no allocation once
/// `out`'s capacity covers the input. `out` is cleared first, so a
/// dirty buffer from a previous user-day is fine.
///
/// Bit-identical to [`top_n_towers`]: the tower sort is stable (the
/// per-tower `f64` sums accumulate in input order — addition order
/// matters), and the final rank sort compares on (seconds, tower),
/// which is a strict total order once towers are unique, so an unstable
/// sort yields the same unique permutation a stable one would.
pub fn top_n_towers_into(dwell: &[TowerDwell], n: usize, out: &mut Vec<TowerDwell>) {
    out.clear();
    out.extend_from_slice(dwell);
    insertion_sort_by_tower(out);
    // In-place adjacent merge with a write index, dropping non-positive
    // entries — the same += sequence the collecting path performed.
    let mut w = 0usize;
    for i in 0..out.len() {
        let d = out[i];
        if d.seconds <= 0.0 {
            continue;
        }
        if w > 0 && out[w - 1].tower == d.tower {
            out[w - 1].seconds += d.seconds;
        } else {
            out[w] = d;
            w += 1;
        }
    }
    out.truncate(w);
    out.sort_unstable_by(|a, b| {
        b.seconds
            .total_cmp(&a.seconds)
            .then(a.tower.cmp(&b.tower))
    });
    out.truncate(n);
}

/// Stable, allocation-free insertion sort by tower id. A user-day
/// touches a handful of towers, so O(n²) never bites; stability is
/// load-bearing (see [`top_n_towers_into`]).
fn insertion_sort_by_tower(v: &mut [TowerDwell]) {
    for i in 1..v.len() {
        let x = v[i];
        let mut j = i;
        while j > 0 && v[j - 1].tower > x.tower {
            v[j] = v[j - 1];
            j -= 1;
        }
        v[j] = x;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(tower: u32, seconds: f64) -> TowerDwell {
        TowerDwell {
            tower,
            location: Point::new(tower as f64, 0.0),
            seconds,
        }
    }

    #[test]
    fn merges_duplicates_before_ranking() {
        // Tower 1 appears twice summing to 100 > tower 2's 60.
        let result = top_n_towers(&[d(2, 60.0), d(1, 40.0), d(1, 60.0)], 1);
        assert_eq!(result.len(), 1);
        assert_eq!(result[0].tower, 1);
        assert_eq!(result[0].seconds, 100.0);
    }

    #[test]
    fn keeps_top_n_by_duration() {
        let dwell = vec![d(1, 10.0), d(2, 50.0), d(3, 30.0), d(4, 40.0)];
        let top2 = top_n_towers(&dwell, 2);
        assert_eq!(
            top2.iter().map(|t| t.tower).collect::<Vec<_>>(),
            vec![2, 4]
        );
    }

    #[test]
    fn drops_zero_duration_entries() {
        let top = top_n_towers(&[d(1, 0.0), d(2, 5.0)], 20);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].tower, 2);
    }

    #[test]
    fn deterministic_tie_break() {
        let top = top_n_towers(&[d(9, 10.0), d(3, 10.0), d(7, 10.0)], 2);
        assert_eq!(top.iter().map(|t| t.tower).collect::<Vec<_>>(), vec![3, 7]);
    }

    #[test]
    fn n_larger_than_input_is_fine() {
        let top = top_n_towers(&[d(1, 5.0)], 20);
        assert_eq!(top.len(), 1);
    }

    #[test]
    fn empty_input_empty_output() {
        assert!(top_n_towers(&[], 20).is_empty());
    }

    /// The direct collapse must produce the same tower→seconds map as
    /// the old `top_n_towers(…, usize::MAX)` round-trip (which returns
    /// rank order; the collapse returns tower-id order).
    #[test]
    fn whole_day_collapse_matches_top_n_roundtrip() {
        use cellscope_time::DayBin;
        let binned: Vec<BinnedTowerDwell> = [
            (DayBin::Night, 5u32, 100.0),
            (DayBin::Morning, 2, 40.0),
            (DayBin::Morning, 5, 60.0),
            (DayBin::Evening, 2, 0.0), // dropped
            (DayBin::Evening, 9, 10.0),
        ]
        .into_iter()
        .map(|(bin, tower, seconds)| BinnedTowerDwell { bin, dwell: d(tower, seconds) })
        .collect();
        let direct = dwell_whole_day(&binned);
        let all: Vec<TowerDwell> = binned.iter().map(|b| b.dwell).collect();
        let mut via_rank = top_n_towers(&all, usize::MAX);
        via_rank.sort_by_key(|t| t.tower);
        assert_eq!(direct, via_rank);
        assert!(direct.windows(2).all(|w| w[0].tower < w[1].tower));
    }

    #[test]
    fn binned_projection_and_day_collapse() {
        use cellscope_time::DayBin;
        let binned = vec![
            BinnedTowerDwell { bin: DayBin::Night, dwell: d(1, 100.0) },
            BinnedTowerDwell { bin: DayBin::Morning, dwell: d(1, 50.0) },
            BinnedTowerDwell { bin: DayBin::Morning, dwell: d(2, 30.0) },
        ];
        let morning = dwell_in_bin(&binned, DayBin::Morning);
        assert_eq!(morning.len(), 2);
        let whole = dwell_whole_day(&binned);
        // Tower 1's night + morning dwell merges to 150 s.
        let t1 = whole.iter().find(|t| t.tower == 1).unwrap();
        assert_eq!(t1.seconds, 150.0);
        assert_eq!(whole.len(), 2);
        // Per-bin metrics differ from the whole-day ones.
        let e_morning = crate::entropy::mobility_entropy(&morning).unwrap();
        let e_day = crate::entropy::mobility_entropy(&whole).unwrap();
        assert!(e_morning > e_day, "{e_morning} vs {e_day}");
        assert!(dwell_in_bin(&binned, DayBin::Evening).is_empty());
    }
}
