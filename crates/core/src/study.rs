//! The assembled mobility methodology: one streaming object that turns
//! per-user-day tower dwell into everything Section 3 of the paper
//! reports.
//!
//! [`MobilityStudy`] is the entry point a downstream user with *real*
//! operator feeds would drive: feed it each user-day's dwell (already
//! joined with tower locations — the topology feed join), tagged with
//! the aggregation groups the user belongs to, and it maintains:
//!
//! * per-(group, day) mean **entropy** and **radius of gyration** over
//!   the top-N towers (Section 2.3's top-20 filter);
//! * the full per-user **gyration distribution** per (group, day) for
//!   percentile statements;
//! * the **night-dwell log** for home detection (callers decide which
//!   days fall in the observation window — February in the paper);
//! * per-user-day **place-presence sets** for mobility matrices.
//!
//! Instances merge, so feeds can be partitioned across workers in any
//! way that keeps a (user, day) on one worker.

use crate::aggregate::DailyGroupMean;
use crate::distribution::DailyGroupSamples;
use crate::dwell::{top_n_towers_into, TowerDwell};
use crate::entropy::mobility_entropy;
use crate::gyration::radius_of_gyration;
use crate::home::{HomeDetector, NightDwellLog};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Configuration of the mobility methodology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StudyConfig {
    /// Keep this many towers per user-day (paper: 20).
    pub top_n_towers: usize,
    /// Home-detection rule (paper: ≥14 nights).
    pub home_detector: HomeDetector,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            top_n_towers: 20,
            home_detector: HomeDetector::default(),
        }
    }
}

/// One ingested user-day, after the caller's feed joins.
#[derive(Debug, Clone)]
pub struct UserDayDwell<'a> {
    /// Anonymized user id.
    pub user: u64,
    /// Study day index.
    pub day: u16,
    /// Tower dwell with locations (any duplicates are merged).
    pub dwell: &'a [TowerDwell],
    /// Night-window (00:00–08:00) minutes per tower, for home
    /// detection. Pass an empty slice outside the observation window.
    pub night_minutes: &'a [(u32, u16)],
}

/// The streaming mobility study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MobilityStudy<G: Ord + Clone> {
    config: StudyConfig,
    num_days: usize,
    gyration: DailyGroupMean<G>,
    entropy: DailyGroupMean<G>,
    gyration_dist: DailyGroupSamples<G>,
    night: NightDwellLog,
    finished: bool,
}

impl<G: Ord + Clone> MobilityStudy<G> {
    /// New study over `num_days` days.
    pub fn new(config: StudyConfig, num_days: usize) -> MobilityStudy<G> {
        MobilityStudy {
            config,
            num_days,
            gyration: DailyGroupMean::new(num_days),
            entropy: DailyGroupMean::new(num_days),
            gyration_dist: DailyGroupSamples::new(num_days),
            night: NightDwellLog::new(),
            finished: false,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &StudyConfig {
        &self.config
    }

    /// Ingest one user-day under the given aggregation groups (e.g.
    /// `[National, County(X), Cluster(Y)]`). Returns the metrics that
    /// were computed, so callers can reuse them (for matrices, masks…).
    pub fn ingest(&mut self, input: UserDayDwell<'_>, groups: &[G]) -> Option<(f64, f64)> {
        let mut top = Vec::new();
        self.ingest_with(input, groups, &mut top)
    }

    /// [`ingest`](Self::ingest) with a caller-owned scratch buffer for
    /// the top-N selection — the hot-loop form: after warm-up no
    /// allocation happens per user-day. `top_scratch` is cleared on
    /// entry and holds the selected towers on return.
    pub fn ingest_with(
        &mut self,
        input: UserDayDwell<'_>,
        groups: &[G],
        top_scratch: &mut Vec<TowerDwell>,
    ) -> Option<(f64, f64)> {
        top_n_towers_into(input.dwell, self.config.top_n_towers, top_scratch);
        let top = &*top_scratch;
        let entropy = mobility_entropy(top);
        let gyration = radius_of_gyration(top);
        self.apply_derived(input.user, input.day, entropy, gyration, input.night_minutes, groups);
        entropy.zip(gyration)
    }

    /// Apply the already-computed per-user-day metrics to the
    /// accumulators. This is the second half of
    /// [`ingest_with`](Self::ingest_with), split out so a sharded
    /// pipeline can compute the metrics in parallel and replay the
    /// accumulator adds sequentially in canonical (day, user) order —
    /// the `f64` sums are order-sensitive, so bit-identity with the
    /// unsharded path requires applying in exactly the same sequence.
    pub fn apply_derived(
        &mut self,
        user: u64,
        day: u16,
        entropy: Option<f64>,
        gyration: Option<f64>,
        night_minutes: &[(u32, u16)],
        groups: &[G],
    ) {
        assert!(!self.finished, "ingest after finish");
        if let Some(e) = entropy {
            for g in groups {
                self.entropy.add(g.clone(), day, e);
            }
        }
        if let Some(g_km) = gyration {
            for g in groups {
                self.gyration.add(g.clone(), day, g_km);
                self.gyration_dist.add(g.clone(), day, g_km);
            }
        }
        for &(tower, minutes) in night_minutes {
            if minutes > 0 {
                self.night.record(user, day, tower, minutes);
            }
        }
    }

    /// Close the night log (must be called once before home detection).
    pub fn finish(&mut self) {
        if !self.finished {
            self.night.finish();
            self.finished = true;
        }
    }

    /// Merge another **finished** study (same window & config).
    ///
    /// # Panics
    /// Panics on mismatched windows or unfinished inputs.
    pub fn merge(&mut self, other: MobilityStudy<G>) {
        assert!(self.finished && other.finished, "merge requires finished studies");
        assert_eq!(self.num_days, other.num_days, "mismatched windows");
        self.gyration.merge(other.gyration);
        self.entropy.merge(other.entropy);
        self.gyration_dist.merge(other.gyration_dist);
        self.night.merge(other.night);
    }

    /// Detected homes (user → tower) under the configured rule.
    pub fn detect_homes(&self) -> HashMap<u64, u32> {
        assert!(self.finished, "finish the study before home detection");
        self.config.home_detector.detect_all(&self.night)
    }

    /// Per-(group, day) mean gyration.
    pub fn gyration(&self) -> &DailyGroupMean<G> {
        &self.gyration
    }

    /// Per-(group, day) mean entropy.
    pub fn entropy(&self) -> &DailyGroupMean<G> {
        &self.entropy
    }

    /// Per-(group, day) gyration samples.
    pub fn gyration_dist(&self) -> &DailyGroupSamples<G> {
        &self.gyration_dist
    }

    /// Consume the study, returning its parts (for dataset assembly).
    pub fn into_parts(
        self,
    ) -> (
        DailyGroupMean<G>,
        DailyGroupMean<G>,
        DailyGroupSamples<G>,
        NightDwellLog,
    ) {
        assert!(self.finished, "finish the study before dismantling it");
        (self.gyration, self.entropy, self.gyration_dist, self.night)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellscope_geo::Point;

    fn dwell(entries: &[(u32, f64, f64, f64)]) -> Vec<TowerDwell> {
        entries
            .iter()
            .map(|&(tower, x, y, seconds)| TowerDwell {
                tower,
                location: Point::new(x, y),
                seconds,
            })
            .collect()
    }

    #[test]
    fn ingest_accumulates_group_means() {
        let mut study: MobilityStudy<&str> = MobilityStudy::new(StudyConfig::default(), 10);
        // Two users, same day: one commuter, one home-body.
        let commuter = dwell(&[(1, 0.0, 0.0, 57_600.0), (2, 10.0, 0.0, 28_800.0)]);
        let homebody = dwell(&[(3, 5.0, 5.0, 86_400.0)]);
        let (e1, g1) = study
            .ingest(
                UserDayDwell { user: 1, day: 0, dwell: &commuter, night_minutes: &[] },
                &["national"],
            )
            .unwrap();
        let (e2, g2) = study
            .ingest(
                UserDayDwell { user: 2, day: 0, dwell: &homebody, night_minutes: &[] },
                &["national"],
            )
            .unwrap();
        assert!(e1 > 0.0 && g1 > 0.0);
        assert_eq!((e2, g2), (0.0, 0.0));
        let mean = study.gyration().mean(&"national", 0).unwrap();
        assert!((mean - g1 / 2.0).abs() < 1e-12);
        assert_eq!(study.gyration_dist().count(&"national", 0), 2);
    }

    #[test]
    fn top_n_filter_applies() {
        // 25 towers with equal dwell: only the top 20 survive, so the
        // entropy caps at ln 20 rather than ln 25.
        let mut study: MobilityStudy<u8> =
            MobilityStudy::new(StudyConfig::default(), 1);
        let many: Vec<TowerDwell> = (0..25)
            .map(|i| TowerDwell {
                tower: i,
                location: Point::new(i as f64, 0.0),
                seconds: 100.0,
            })
            .collect();
        let (e, _) = study
            .ingest(UserDayDwell { user: 1, day: 0, dwell: &many, night_minutes: &[] }, &[0])
            .unwrap();
        assert!((e - 20f64.ln()).abs() < 1e-9, "entropy {e}");
    }

    #[test]
    fn homes_from_night_minutes() {
        let mut study: MobilityStudy<u8> =
            MobilityStudy::new(StudyConfig::default(), 40);
        let d = dwell(&[(5, 0.0, 0.0, 80_000.0)]);
        for day in 0..20 {
            study.ingest(
                UserDayDwell {
                    user: 9,
                    day,
                    dwell: &d,
                    night_minutes: &[(5, 400), (6, 50)],
                },
                &[0],
            );
        }
        study.finish();
        let homes = study.detect_homes();
        assert_eq!(homes.get(&9), Some(&5));
    }

    #[test]
    fn merge_combines_partitions() {
        let d1 = dwell(&[(1, 0.0, 0.0, 1000.0), (2, 4.0, 0.0, 1000.0)]);
        let d2 = dwell(&[(3, 0.0, 0.0, 1000.0), (4, 8.0, 0.0, 1000.0)]);
        let mut a: MobilityStudy<u8> = MobilityStudy::new(StudyConfig::default(), 5);
        let mut b: MobilityStudy<u8> = MobilityStudy::new(StudyConfig::default(), 5);
        a.ingest(UserDayDwell { user: 1, day: 2, dwell: &d1, night_minutes: &[] }, &[0]);
        b.ingest(UserDayDwell { user: 2, day: 2, dwell: &d2, night_minutes: &[] }, &[0]);
        a.finish();
        b.finish();
        a.merge(b);
        assert_eq!(a.gyration_dist().count(&0, 2), 2);
        // Mean of 2 km and 4 km gyration radii.
        let mean = a.gyration().mean(&0, 2).unwrap();
        assert!((mean - 3.0).abs() < 1e-12, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "finish the study")]
    fn home_detection_requires_finish() {
        let study: MobilityStudy<u8> = MobilityStudy::new(StudyConfig::default(), 5);
        let _ = study.detect_homes();
    }
}
