//! Group-by daily aggregation.
//!
//! The mobility figures aggregate per-user daily metrics into group
//! means: nationally (Fig. 3), per region (Fig. 5), per OAC cluster
//! (Fig. 6). [`DailyGroupMean`] is a streaming accumulator for
//! (group, day) → mean-of-values, so the scenario can fold millions of
//! user-days without materializing them.

use cellscope_time::SimClock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Streaming (group, day) → mean accumulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DailyGroupMean<K: Ord> {
    num_days: usize,
    sums: BTreeMap<K, Vec<f64>>,
    counts: BTreeMap<K, Vec<u32>>,
}

impl<K: Ord + Clone> DailyGroupMean<K> {
    /// New accumulator over `num_days` days.
    pub fn new(num_days: usize) -> DailyGroupMean<K> {
        DailyGroupMean {
            num_days,
            sums: BTreeMap::new(),
            counts: BTreeMap::new(),
        }
    }

    /// Add one observation.
    pub fn add(&mut self, group: K, day: u16, value: f64) {
        debug_assert!((day as usize) < self.num_days, "day out of range");
        let sums = self
            .sums
            .entry(group.clone())
            .or_insert_with(|| vec![0.0; self.num_days]);
        sums[day as usize] += value;
        let counts = self
            .counts
            .entry(group)
            .or_insert_with(|| vec![0; self.num_days]);
        counts[day as usize] += 1;
    }

    /// Mean for (group, day); `None` when unobserved.
    pub fn mean(&self, group: &K, day: u16) -> Option<f64> {
        let c = *self.counts.get(group)?.get(day as usize)?;
        if c == 0 {
            return None;
        }
        Some(self.sums[group][day as usize] / c as f64)
    }

    /// Count for (group, day).
    pub fn count(&self, group: &K, day: u16) -> u32 {
        self.counts
            .get(group)
            .and_then(|c| c.get(day as usize).copied())
            .unwrap_or(0)
    }

    /// The group's daily means as a vector aligned with the clock.
    pub fn daily_means(&self, group: &K) -> Vec<Option<f64>> {
        (0..self.num_days as u16).map(|d| self.mean(group, d)).collect()
    }

    /// Wrap one group's series as a baseline-relative series.
    pub fn delta_series(
        &self,
        group: &K,
        clock: SimClock,
        baseline_week: cellscope_time::IsoWeek,
    ) -> crate::baseline::DeltaSeries {
        crate::baseline::DeltaSeries::new(clock, self.daily_means(group), baseline_week)
    }

    /// All groups seen.
    pub fn groups(&self) -> impl Iterator<Item = &K> {
        self.sums.keys()
    }

    /// Merge another accumulator into this one (for parallel folds).
    ///
    /// # Panics
    /// Panics if day counts differ.
    pub fn merge(&mut self, other: DailyGroupMean<K>) {
        assert_eq!(self.num_days, other.num_days, "mismatched day counts");
        for (k, sums) in other.sums {
            let entry = self
                .sums
                .entry(k.clone())
                .or_insert_with(|| vec![0.0; self.num_days]);
            for (a, b) in entry.iter_mut().zip(&sums) {
                *a += b;
            }
        }
        for (k, counts) in other.counts {
            let entry = self
                .counts
                .entry(k)
                .or_insert_with(|| vec![0; self.num_days]);
            for (a, b) in entry.iter_mut().zip(&counts) {
                *a += b;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means_and_counts() {
        let mut agg: DailyGroupMean<&str> = DailyGroupMean::new(10);
        agg.add("london", 0, 2.0);
        agg.add("london", 0, 4.0);
        agg.add("london", 3, 9.0);
        agg.add("rural", 0, 10.0);
        assert_eq!(agg.mean(&"london", 0), Some(3.0));
        assert_eq!(agg.count(&"london", 0), 2);
        assert_eq!(agg.mean(&"london", 3), Some(9.0));
        assert_eq!(agg.mean(&"london", 1), None);
        assert_eq!(agg.mean(&"rural", 0), Some(10.0));
        assert_eq!(agg.mean(&"unknown", 0), None);
    }

    #[test]
    fn daily_means_aligned() {
        let mut agg: DailyGroupMean<u8> = DailyGroupMean::new(3);
        agg.add(1, 1, 5.0);
        assert_eq!(agg.daily_means(&1), vec![None, Some(5.0), None]);
    }

    #[test]
    fn merge_combines_observations() {
        let mut a: DailyGroupMean<u8> = DailyGroupMean::new(4);
        let mut b: DailyGroupMean<u8> = DailyGroupMean::new(4);
        a.add(1, 0, 2.0);
        b.add(1, 0, 4.0);
        b.add(2, 3, 7.0);
        a.merge(b);
        assert_eq!(a.mean(&1, 0), Some(3.0));
        assert_eq!(a.mean(&2, 3), Some(7.0));
        assert_eq!(a.groups().count(), 2);
    }

    #[test]
    #[should_panic(expected = "mismatched day counts")]
    fn merge_rejects_mismatched_windows() {
        let mut a: DailyGroupMean<u8> = DailyGroupMean::new(4);
        a.merge(DailyGroupMean::new(5));
    }
}
