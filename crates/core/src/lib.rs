//! The paper's measurement methodology, as a reusable library.
//!
//! Everything in this crate is pure analysis: it consumes feeds (dwell
//! records, per-cell KPIs, case counts) and produces the statistics the
//! paper reports. Nothing here knows about the synthetic generators — a
//! downstream user could feed it records derived from a real operator's
//! probes, which is the point.
//!
//! * [`stats`] — medians, percentiles, means (the paper aggregates
//!   almost everything as medians and reports percentile bands);
//! * [`dwell`] — per-user-day tower dwell: normalization and the
//!   top-20-towers filter of Section 2.3;
//! * [`entropy`] — temporal-uncorrelated mobility entropy (Eq. 1);
//! * [`gyration`] — radius of gyration (Eq. 2);
//! * [`home`] — night-time home detection (≥14 February nights);
//! * [`baseline`] — "percentage of change vs. the average/median value
//!   of week 9" series, daily and weekly;
//! * [`aggregate`] — group-by-(region/cluster/district) daily means;
//! * [`matrix`] — the Inner-London → counties mobility matrix (Fig. 7);
//! * [`correlate`] — Pearson correlation and linear regression
//!   (Fig. 2's r², Fig. 4's non-correlation, Section 4.4's
//!   users-vs-volume correlations);
//! * [`kpi_stats`] — per-cell daily KPI records and their group
//!   medians, served by a columnar day-sharded index
//!   ([`kpi_stats::KpiColumns`]) with a one-pass multi-field median
//!   kernel and O(n) selection percentiles;
//! * [`study`] — the assembled streaming methodology
//!   ([`study::MobilityStudy`]): the object a downstream user drives
//!   with their own operator feeds.

pub mod aggregate;
pub mod baseline;
pub mod correlate;
pub mod distribution;
pub mod dwell;
pub mod entropy;
pub mod gyration;
pub mod home;
pub mod kpi_stats;
pub mod matrix;
pub mod stats;
pub mod study;

pub use aggregate::DailyGroupMean;
pub use baseline::{delta_pct, DeltaSeries};
pub use correlate::{linear_fit, pearson, LinearFit};
pub use distribution::DailyGroupSamples;
pub use dwell::{top_n_towers, top_n_towers_into, TowerDwell};
pub use entropy::mobility_entropy;
pub use gyration::radius_of_gyration;
pub use home::{HomeDetector, NightDwellLog};
pub use kpi_stats::{CellDayMetrics, KpiColumns, KpiField, KpiTable};
pub use matrix::MobilityMatrix;
pub use study::{MobilityStudy, StudyConfig, UserDayDwell};
