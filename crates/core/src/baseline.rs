//! Baseline-relative delta series.
//!
//! Nearly every figure in the paper reports "the percentage of change in
//! the average (or median) daily value compared to \[the\] average (or
//! median) value in week 9". [`DeltaSeries`] packages that: a vector of
//! daily values, a baseline window, and daily/weekly delta views.

use cellscope_time::{IsoWeek, SimClock};
use serde::{Deserialize, Serialize};

/// Percentage change of `value` vs `baseline` (e.g. `-24.0` = −24%).
///
/// Returns `None` when the baseline is zero or non-finite.
pub fn delta_pct(value: f64, baseline: f64) -> Option<f64> {
    if baseline == 0.0 || !baseline.is_finite() || !value.is_finite() {
        return None;
    }
    Some((value / baseline - 1.0) * 100.0)
}

/// A daily series over the study window with a baseline week.
///
/// The baseline-week mean and median are memoized at construction: the
/// figure builders read them once per delta view, and recomputing them
/// per call meant re-collecting and re-aggregating the baseline window
/// on every weekly query.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeltaSeries {
    clock: SimClock,
    /// One value per simulation day; `None` = no observation.
    values: Vec<Option<f64>>,
    baseline_week: IsoWeek,
    /// Memoized mean of the baseline week's observed daily values.
    baseline_mean: Option<f64>,
    /// Memoized median of the baseline week's observed daily values.
    baseline_median: Option<f64>,
}

impl DeltaSeries {
    /// Wrap a daily series. `values.len()` must equal `clock.num_days()`.
    pub fn new(
        clock: SimClock,
        values: Vec<Option<f64>>,
        baseline_week: IsoWeek,
    ) -> DeltaSeries {
        assert_eq!(
            values.len(),
            clock.num_days(),
            "one value per simulation day"
        );
        let base_days: Vec<f64> = clock
            .days_in_week(baseline_week)
            .filter_map(|d| values.get(d as usize).copied().flatten())
            .collect();
        DeltaSeries {
            baseline_mean: crate::stats::mean(&base_days),
            baseline_median: crate::stats::median(&base_days),
            clock,
            values,
            baseline_week,
        }
    }

    /// The raw daily value.
    pub fn value(&self, day: u16) -> Option<f64> {
        self.values.get(day as usize).copied().flatten()
    }

    /// Baseline: the mean of the baseline week's observed daily values.
    pub fn baseline_mean(&self) -> Option<f64> {
        self.baseline_mean
    }

    /// Baseline: the median of the baseline week's observed values.
    pub fn baseline_median(&self) -> Option<f64> {
        self.baseline_median
    }

    /// Daily Δ% vs the baseline-week mean (the mobility figures).
    pub fn daily_delta_pct(&self) -> Vec<Option<f64>> {
        let Some(base) = self.baseline_mean() else {
            return vec![None; self.values.len()];
        };
        self.values
            .iter()
            .map(|v| v.and_then(|x| delta_pct(x, base)))
            .collect()
    }

    /// Weekly Δ%: median of a week's daily values vs the baseline-week
    /// median (the KPI figures). Returns (week, Δ%) pairs in order.
    pub fn weekly_delta_pct(&self) -> Vec<(IsoWeek, Option<f64>)> {
        let Some(base) = self.baseline_median() else {
            return self.clock.weeks().into_iter().map(|w| (w, None)).collect();
        };
        self.clock
            .weeks()
            .into_iter()
            .map(|week| {
                let days: Vec<f64> = self
                    .clock
                    .days_in_week(week)
                    .filter_map(|d| self.value(d))
                    .collect();
                let delta = crate::stats::median(&days).and_then(|m| delta_pct(m, base));
                (week, delta)
            })
            .collect()
    }

    /// The Δ% of one specific week (None if unobserved). Computes just
    /// that week directly rather than materializing the whole weekly
    /// series to read one entry.
    pub fn week_delta_pct(&self, week: u8) -> Option<f64> {
        let base = self.baseline_median?;
        let week = self
            .clock
            .weeks()
            .into_iter()
            .find(|w| w.week == week)?;
        let days: Vec<f64> = self
            .clock
            .days_in_week(week)
            .filter_map(|d| self.value(d))
            .collect();
        crate::stats::median(&days).and_then(|m| delta_pct(m, base))
    }

    /// The clock backing this series.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellscope_time::Date;

    fn week(w: u8) -> IsoWeek {
        IsoWeek { year: 2020, week: w }
    }

    fn series(f: impl Fn(u16) -> Option<f64>) -> DeltaSeries {
        let clock = SimClock::study();
        let values: Vec<_> = clock.days().map(f).collect();
        DeltaSeries::new(clock, values, week(9))
    }

    #[test]
    fn delta_pct_basics() {
        assert_eq!(delta_pct(75.0, 100.0), Some(-25.0));
        assert_eq!(delta_pct(150.0, 100.0), Some(50.0));
        assert_eq!(delta_pct(100.0, 100.0), Some(0.0));
        assert_eq!(delta_pct(1.0, 0.0), None);
        assert_eq!(delta_pct(f64::NAN, 1.0), None);
    }

    #[test]
    fn baseline_week_deltas_are_near_zero() {
        let s = series(|_| Some(10.0));
        assert_eq!(s.baseline_mean(), Some(10.0));
        for d in s.daily_delta_pct().into_iter().flatten() {
            assert!(d.abs() < 1e-9);
        }
    }

    #[test]
    fn halving_after_baseline_shows_minus_50() {
        let clock = SimClock::study();
        let lockdown = clock.day_of(Date::ymd(2020, 3, 23)).unwrap();
        let s = series(|d| Some(if d >= lockdown { 5.0 } else { 10.0 }));
        let deltas = s.daily_delta_pct();
        assert!((deltas[lockdown as usize].unwrap() + 50.0).abs() < 1e-9);
        assert!((deltas[(lockdown - 1) as usize].unwrap()).abs() < 1e-9);
    }

    #[test]
    fn weekly_uses_medians() {
        // Week 10 has one outlier day; median should shrug it off.
        let clock = SimClock::study();
        let s = series(move |d| {
            let date = SimClock::study().date(d);
            if date.iso_week().week == 10 && date.weekday() == cellscope_time::Weekday::Wednesday
            {
                Some(1000.0)
            } else {
                Some(10.0)
            }
        });
        let _ = clock;
        assert_eq!(s.week_delta_pct(10), Some(0.0));
    }

    #[test]
    fn missing_days_are_skipped() {
        let s = series(|d| if d % 2 == 0 { Some(10.0) } else { None });
        assert_eq!(s.baseline_mean(), Some(10.0));
        let deltas = s.daily_delta_pct();
        assert!(deltas[1].is_none());
        assert_eq!(deltas[0], Some(0.0));
    }

    #[test]
    fn weeks_enumerated_in_order() {
        let s = series(|_| Some(1.0));
        let weeks: Vec<u8> = s.weekly_delta_pct().iter().map(|(w, _)| w.week).collect();
        assert_eq!(weeks.first(), Some(&5));
        assert_eq!(weeks.last(), Some(&19));
        assert!(weeks.windows(2).all(|p| p[0] < p[1]));
    }

    #[test]
    #[should_panic(expected = "one value per simulation day")]
    fn wrong_length_rejected() {
        DeltaSeries::new(SimClock::study(), vec![Some(1.0); 3], week(9));
    }

    /// The direct single-week path must agree with reading the same
    /// week out of the full weekly series, including unobserved weeks.
    #[test]
    fn week_delta_matches_weekly_series() {
        let s = series(|d| {
            if d % 3 == 0 {
                Some(10.0 + (d % 7) as f64)
            } else {
                None
            }
        });
        let weekly = s.weekly_delta_pct();
        for w in 1..=25u8 {
            let from_series = weekly
                .iter()
                .find(|(iw, _)| iw.week == w)
                .and_then(|(_, d)| *d);
            assert_eq!(s.week_delta_pct(w), from_series, "week {w}");
        }
        // An all-None baseline week still yields None everywhere.
        let empty = series(|_| None);
        assert_eq!(empty.week_delta_pct(10), None);
        assert_eq!(empty.baseline_mean(), None);
        assert_eq!(empty.baseline_median(), None);
    }
}
