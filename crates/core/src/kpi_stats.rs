//! Per-cell daily KPI records and group statistics.
//!
//! Section 2.4: "For all the hourly metrics, we further aggregate them
//! per day and extract the (hourly) median value per cell. This allows
//! to capture one single value per metric per day." [`CellDayMetrics`]
//! is that per-cell-day record; [`KpiTable`] holds the study's worth of
//! them and answers the questions the network-performance figures ask:
//! median across a set of cells per day/week, as Δ% vs week 9.
//!
//! # The columnar aggregation engine
//!
//! Every figure query groups by day and then selects one field across a
//! cell subset. The row-oriented record vector answers that by
//! rescanning all records per (field, cell-set, day) query — the
//! dominant analysis cost at scale. [`KpiColumns`] is a day-sharded,
//! column-per-field index built lazily from the records: shard `d`
//! holds day `d`'s cell ids plus one contiguous `f32` column per
//! [`KpiField`]. Queries walk one shard per day, evaluate the cell
//! filter **once** per record (not once per field), and compute order
//! statistics by O(n) selection. Results are bit-identical to the
//! naive scan (`daily_median_naive`/`daily_percentile_naive`, kept as
//! the reference) because the per-(day, filter) value multisets are
//! equal and medians/percentiles are order-invariant under `total_cmp`.
//!
//! The index lives behind a [`OnceLock`] and is invalidated by every
//! `&mut` access (`push`, `merge`, `records_mut`), so callers never see
//! a stale view; concurrent figure builders share one build.

use crate::baseline::DeltaSeries;
use crate::stats;
use cellscope_time::{IsoWeek, SimClock};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// One hourly KPI sample, generator-agnostic.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct HourlyKpiSample {
    /// Downlink volume, MB (all QCI 1–8 bearers).
    pub dl_volume_mb: f64,
    /// Uplink volume, MB.
    pub ul_volume_mb: f64,
    /// Average active DL users.
    pub active_dl_users: f64,
    /// Total connected users.
    pub connected_users: f64,
    /// Average user DL throughput, Mbit/s.
    pub user_dl_throughput_mbps: f64,
    /// TTI utilization, 0–1.
    pub tti_utilization: f64,
    /// Voice (QCI 1) volume, MB.
    pub voice_volume_mb: f64,
    /// Simultaneous voice users.
    pub voice_users: f64,
    /// Voice UL packet loss rate.
    pub voice_ul_loss: f64,
    /// Voice DL packet loss rate.
    pub voice_dl_loss: f64,
}

/// One cell-day: the per-metric medians of the day's hourly samples.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellDayMetrics {
    /// Cell key (cell id in the synthetic world).
    pub cell: u32,
    /// Study day.
    pub day: u16,
    /// Medians of the hourly samples (f32: the table is large).
    pub dl_volume_mb: f32,
    pub ul_volume_mb: f32,
    pub active_dl_users: f32,
    pub connected_users: f32,
    pub user_dl_throughput_mbps: f32,
    pub tti_utilization: f32,
    pub voice_volume_mb: f32,
    pub voice_users: f32,
    pub voice_ul_loss: f32,
    pub voice_dl_loss: f32,
}

/// Selector for one metric of [`CellDayMetrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KpiField {
    /// Downlink data volume.
    DlVolume,
    /// Uplink data volume.
    UlVolume,
    /// Active downlink users.
    ActiveDlUsers,
    /// Total connected users.
    ConnectedUsers,
    /// Average user DL throughput.
    UserDlThroughput,
    /// Cell resource utilization (TTI).
    TtiUtilization,
    /// Conversational-voice volume.
    VoiceVolume,
    /// Simultaneous voice users.
    VoiceUsers,
    /// Voice uplink packet loss rate.
    VoiceUlLoss,
    /// Voice downlink packet loss rate.
    VoiceDlLoss,
}

impl KpiField {
    /// Number of fields (= columns per day shard).
    pub const COUNT: usize = 10;

    /// All fields, in Fig. 8/9 order.
    pub const ALL: [KpiField; KpiField::COUNT] = [
        KpiField::DlVolume,
        KpiField::UlVolume,
        KpiField::ActiveDlUsers,
        KpiField::ConnectedUsers,
        KpiField::UserDlThroughput,
        KpiField::TtiUtilization,
        KpiField::VoiceVolume,
        KpiField::VoiceUsers,
        KpiField::VoiceUlLoss,
        KpiField::VoiceDlLoss,
    ];

    /// Dense column index, `0..COUNT`, in [`KpiField::ALL`] order.
    pub fn index(self) -> usize {
        match self {
            KpiField::DlVolume => 0,
            KpiField::UlVolume => 1,
            KpiField::ActiveDlUsers => 2,
            KpiField::ConnectedUsers => 3,
            KpiField::UserDlThroughput => 4,
            KpiField::TtiUtilization => 5,
            KpiField::VoiceVolume => 6,
            KpiField::VoiceUsers => 7,
            KpiField::VoiceUlLoss => 8,
            KpiField::VoiceDlLoss => 9,
        }
    }

    /// Plot title as used in the paper's figures.
    pub fn title(self) -> &'static str {
        match self {
            KpiField::DlVolume => "Downlink Data Volume",
            KpiField::UlVolume => "Uplink Data Volume",
            KpiField::ActiveDlUsers => "Downlink Active Users",
            KpiField::ConnectedUsers => "Total Number of Users",
            KpiField::UserDlThroughput => "User Downlink Throughput",
            KpiField::TtiUtilization => "Cell Resource Utilization",
            KpiField::VoiceVolume => "Voice Traffic Volume",
            KpiField::VoiceUsers => "Voice Simultaneous Users",
            KpiField::VoiceUlLoss => "Voice Uplink Packet Error Loss Rate",
            KpiField::VoiceDlLoss => "Voice Downlink Packet Error Loss Rate",
        }
    }
}

impl CellDayMetrics {
    /// Collapse one cell-day's hourly samples into the daily record
    /// (median per metric). Returns `None` for an empty day.
    pub fn from_hourly(cell: u32, day: u16, hours: &[HourlyKpiSample]) -> Option<CellDayMetrics> {
        if hours.is_empty() {
            return None;
        }
        // A cell-day has at most 24 hourly samples, so the median can
        // run on a stack buffer — `median_unstable` selects in place
        // and is bit-identical to the allocating `median`. The Vec
        // fallback keeps callers with denser-than-hourly samples (or
        // tests feeding synthetic rows) working.
        let med = |f: fn(&HourlyKpiSample) -> f64| -> f32 {
            let m = if hours.len() <= 24 {
                let mut buf = [0.0f64; 24];
                for (slot, h) in buf.iter_mut().zip(hours) {
                    *slot = f(h);
                }
                stats::median_unstable(&mut buf[..hours.len()])
            } else {
                let mut vals: Vec<f64> = hours.iter().map(f).collect();
                stats::median_unstable(&mut vals)
            };
            m.expect("non-empty, NaN-free hourly samples") as f32
        };
        Some(CellDayMetrics {
            cell,
            day,
            dl_volume_mb: med(|h| h.dl_volume_mb),
            ul_volume_mb: med(|h| h.ul_volume_mb),
            active_dl_users: med(|h| h.active_dl_users),
            connected_users: med(|h| h.connected_users),
            user_dl_throughput_mbps: med(|h| h.user_dl_throughput_mbps),
            tti_utilization: med(|h| h.tti_utilization),
            voice_volume_mb: med(|h| h.voice_volume_mb),
            voice_users: med(|h| h.voice_users),
            voice_ul_loss: med(|h| h.voice_ul_loss),
            voice_dl_loss: med(|h| h.voice_dl_loss),
        })
    }

    /// Read one metric.
    pub fn get(&self, field: KpiField) -> f64 {
        self.get_f32(field) as f64
    }

    /// Read one metric at storage precision.
    pub fn get_f32(&self, field: KpiField) -> f32 {
        match field {
            KpiField::DlVolume => self.dl_volume_mb,
            KpiField::UlVolume => self.ul_volume_mb,
            KpiField::ActiveDlUsers => self.active_dl_users,
            KpiField::ConnectedUsers => self.connected_users,
            KpiField::UserDlThroughput => self.user_dl_throughput_mbps,
            KpiField::TtiUtilization => self.tti_utilization,
            KpiField::VoiceVolume => self.voice_volume_mb,
            KpiField::VoiceUsers => self.voice_users,
            KpiField::VoiceUlLoss => self.voice_ul_loss,
            KpiField::VoiceDlLoss => self.voice_dl_loss,
        }
    }
}

/// One day's slice of the columnar index: the cell ids observed that
/// day plus one contiguous value column per [`KpiField`], all parallel.
#[derive(Debug, Clone, Default)]
struct DayShard {
    cells: Vec<u32>,
    columns: [Vec<f32>; KpiField::COUNT],
}

/// The day-sharded, column-per-field index over a [`KpiTable`].
///
/// Built once (lazily) per table state; see the module docs for the
/// layout and the bit-identity argument.
#[derive(Debug, Clone, Default)]
pub struct KpiColumns {
    shards: Vec<DayShard>,
}

impl KpiColumns {
    fn build(records: &[CellDayMetrics]) -> KpiColumns {
        let num_days = records.iter().map(|r| r.day as usize + 1).max().unwrap_or(0);
        let mut counts = vec![0usize; num_days];
        for r in records {
            counts[r.day as usize] += 1;
        }
        let mut shards: Vec<DayShard> = counts
            .into_iter()
            .map(|n| DayShard {
                cells: Vec::with_capacity(n),
                columns: std::array::from_fn(|_| Vec::with_capacity(n)),
            })
            .collect();
        for r in records {
            let shard = &mut shards[r.day as usize];
            shard.cells.push(r.cell);
            for field in KpiField::ALL {
                shard.columns[field.index()].push(r.get_f32(field));
            }
        }
        KpiColumns { shards }
    }

    /// Days covered (max record day + 1).
    pub fn num_days(&self) -> usize {
        self.shards.len()
    }

    /// Records in one day's shard.
    pub fn day_len(&self, day: usize) -> usize {
        self.shards.get(day).map_or(0, |s| s.cells.len())
    }
}

/// The study's per-cell-day KPI table.
///
/// Row storage (`records`) is canonical — it is what serializes and
/// compares — with the columnar index attached lazily for queries.
#[derive(Debug, Clone, Default)]
pub struct KpiTable {
    records: Vec<CellDayMetrics>,
    index: OnceLock<KpiColumns>,
}

/// Equality is over the canonical records; the lazy index is a cache.
impl PartialEq for KpiTable {
    fn eq(&self, other: &KpiTable) -> bool {
        self.records == other.records
    }
}

/// Serializes exactly like the former `#[derive(Serialize)]` on a
/// records-only struct, so feed/JSON compatibility is unchanged.
impl Serialize for KpiTable {
    fn to_content(&self) -> serde::Content {
        serde::Content::Struct(vec![("records", self.records.to_content())])
    }
}

impl Deserialize for KpiTable {
    fn from_content(content: &serde::Content) -> Result<Self, serde::DeError> {
        let fields = serde::de::fields(content)?;
        Ok(KpiTable {
            records: serde::de::field(&fields, "records")?,
            index: OnceLock::new(),
        })
    }
}

impl KpiTable {
    /// Empty table.
    pub fn new() -> KpiTable {
        KpiTable::default()
    }

    /// Append one record.
    pub fn push(&mut self, record: CellDayMetrics) {
        self.index.take();
        self.records.push(record);
    }

    /// All records.
    pub fn records(&self) -> &[CellDayMetrics] {
        &self.records
    }

    /// Mutable access to all records (post-processing passes, e.g.
    /// applying a network-wide daily loss component). Drops the
    /// columnar index; it rebuilds on the next query.
    pub fn records_mut(&mut self) -> &mut [CellDayMetrics] {
        self.index.take();
        &mut self.records
    }

    /// Append every record of another table (parallel-fold merge).
    pub fn merge(&mut self, other: KpiTable) {
        self.index.take();
        self.records.extend(other.records);
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The columnar index for the current records, building it on first
    /// use. Thread-safe: concurrent figure builders share one build.
    pub fn columns(&self) -> &KpiColumns {
        self.index.get_or_init(|| KpiColumns::build(&self.records))
    }

    /// Daily median of `field` across the cells selected by `filter`.
    ///
    /// `filter` is evaluated once per record in day-shard order; it
    /// must be a pure predicate of the cell id.
    pub fn daily_median(
        &self,
        field: KpiField,
        num_days: usize,
        filter: impl FnMut(u32) -> bool,
    ) -> Vec<Option<f64>> {
        self.daily_percentile(field, 50.0, num_days, filter)
    }

    /// Daily percentile variant (for the 90th-percentile voice series).
    pub fn daily_percentile(
        &self,
        field: KpiField,
        p: f64,
        num_days: usize,
        mut filter: impl FnMut(u32) -> bool,
    ) -> Vec<Option<f64>> {
        let cols = self.columns();
        let mut out = vec![None; num_days];
        let mut buf: Vec<f64> = Vec::new();
        for (day, slot) in out.iter_mut().enumerate().take(cols.shards.len()) {
            let shard = &cols.shards[day];
            let column = &shard.columns[field.index()];
            buf.clear();
            for (i, &cell) in shard.cells.iter().enumerate() {
                if filter(cell) {
                    buf.push(column[i] as f64);
                }
            }
            *slot = stats::percentile_unstable(&mut buf, p);
        }
        out
    }

    /// One-pass multi-field daily medians: evaluates `filter` once per
    /// record per day and reads every requested field's column off that
    /// single row selection. Returns `out[field_idx][day]`, where
    /// `field_idx` indexes `fields`. Bit-identical to calling
    /// [`KpiTable::daily_median`] per field.
    pub fn daily_medians_multi(
        &self,
        fields: &[KpiField],
        num_days: usize,
        mut filter: impl FnMut(u32) -> bool,
    ) -> Vec<Vec<Option<f64>>> {
        let cols = self.columns();
        let mut out = vec![vec![None; num_days]; fields.len()];
        let mut keep: Vec<u32> = Vec::new();
        let mut buf: Vec<f64> = Vec::new();
        for day in 0..num_days.min(cols.shards.len()) {
            let shard = &cols.shards[day];
            keep.clear();
            for (i, &cell) in shard.cells.iter().enumerate() {
                if filter(cell) {
                    keep.push(i as u32);
                }
            }
            if keep.is_empty() {
                continue;
            }
            for (fi, field) in fields.iter().enumerate() {
                let column = &shard.columns[field.index()];
                buf.clear();
                buf.extend(keep.iter().map(|&i| column[i as usize] as f64));
                out[fi][day] = stats::median_unstable(&mut buf);
            }
        }
        out
    }

    /// Reference implementation of [`KpiTable::daily_median`]: the
    /// original full-table rescan with clone-and-sort medians. Used by
    /// the equivalence property tests and as the baseline side of the
    /// aggregation benches.
    pub fn daily_median_naive(
        &self,
        field: KpiField,
        num_days: usize,
        filter: impl FnMut(u32) -> bool,
    ) -> Vec<Option<f64>> {
        self.daily_percentile_naive(field, 50.0, num_days, filter)
    }

    /// Reference implementation of [`KpiTable::daily_percentile`]; see
    /// [`KpiTable::daily_median_naive`].
    pub fn daily_percentile_naive(
        &self,
        field: KpiField,
        p: f64,
        num_days: usize,
        mut filter: impl FnMut(u32) -> bool,
    ) -> Vec<Option<f64>> {
        let mut per_day: Vec<Vec<f64>> = vec![Vec::new(); num_days];
        for r in &self.records {
            if (r.day as usize) < num_days && filter(r.cell) {
                per_day[r.day as usize].push(r.get(field));
            }
        }
        per_day
            .into_iter()
            .map(|v| stats::percentile_ref(&v, p))
            .collect()
    }

    /// Baseline-relative series of `field` over the selected cells.
    pub fn delta_series(
        &self,
        field: KpiField,
        clock: SimClock,
        baseline_week: IsoWeek,
        filter: impl FnMut(u32) -> bool,
    ) -> DeltaSeries {
        let daily = self.daily_median(field, clock.num_days(), filter);
        DeltaSeries::new(clock, daily, baseline_week)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(dl: f64) -> HourlyKpiSample {
        HourlyKpiSample {
            dl_volume_mb: dl,
            ul_volume_mb: dl / 10.0,
            active_dl_users: 3.0,
            connected_users: 50.0,
            user_dl_throughput_mbps: 6.0,
            tti_utilization: 0.2,
            voice_volume_mb: 1.0,
            voice_users: 0.5,
            voice_ul_loss: 0.001,
            voice_dl_loss: 0.002,
        }
    }

    #[test]
    fn from_hourly_takes_medians() {
        let hours: Vec<_> = (0..24).map(|h| sample(h as f64)).collect();
        let day = CellDayMetrics::from_hourly(7, 3, &hours).unwrap();
        assert_eq!(day.cell, 7);
        assert_eq!(day.day, 3);
        assert_eq!(day.dl_volume_mb, 11.5); // median of 0..=23
        assert_eq!(day.connected_users, 50.0);
        assert!(CellDayMetrics::from_hourly(7, 3, &[]).is_none());
    }

    #[test]
    fn field_roundtrip() {
        let day = CellDayMetrics::from_hourly(1, 0, &[sample(100.0)]).unwrap();
        assert_eq!(day.get(KpiField::DlVolume), 100.0);
        assert_eq!(day.get(KpiField::UlVolume), 10.0);
        assert_eq!(day.get(KpiField::TtiUtilization) as f32, 0.2);
        for (i, f) in KpiField::ALL.into_iter().enumerate() {
            assert!(!f.title().is_empty());
            assert_eq!(f.index(), i, "ALL order must match index()");
            let _ = day.get(f);
        }
    }

    #[test]
    fn daily_median_filters_cells() {
        let mut table = KpiTable::new();
        for (cell, dl) in [(1u32, 10.0), (2, 20.0), (3, 90.0)] {
            table.push(CellDayMetrics::from_hourly(cell, 0, &[sample(dl)]).unwrap());
        }
        let all = table.daily_median(KpiField::DlVolume, 2, |_| true);
        assert_eq!(all[0], Some(20.0));
        assert_eq!(all[1], None);
        let some = table.daily_median(KpiField::DlVolume, 2, |c| c != 3);
        assert_eq!(some[0], Some(15.0));
    }

    #[test]
    fn percentile_spans_distribution() {
        let mut table = KpiTable::new();
        for cell in 0..10u32 {
            table.push(
                CellDayMetrics::from_hourly(cell, 0, &[sample(cell as f64 * 10.0)]).unwrap(),
            );
        }
        let p90 = table.daily_percentile(KpiField::DlVolume, 90.0, 1, |_| true);
        assert_eq!(p90[0], Some(81.0));
    }

    #[test]
    fn columnar_matches_naive_and_survives_mutation() {
        let mut table = KpiTable::new();
        for day in 0..5u16 {
            for cell in 0..7u32 {
                table.push(
                    CellDayMetrics::from_hourly(
                        cell,
                        day,
                        &[sample((cell * 13 + day as u32 * 3) as f64)],
                    )
                    .unwrap(),
                );
            }
        }
        for field in KpiField::ALL {
            assert_eq!(
                table.daily_median(field, 6, |c| c % 2 == 0),
                table.daily_median_naive(field, 6, |c| c % 2 == 0),
            );
        }
        // Mutating the records invalidates the index.
        let before = table.daily_median(KpiField::VoiceDlLoss, 5, |_| true);
        for rec in table.records_mut() {
            rec.voice_dl_loss += 1.0;
        }
        let after = table.daily_median(KpiField::VoiceDlLoss, 5, |_| true);
        for (b, a) in before.iter().zip(&after) {
            assert!((a.unwrap() - b.unwrap() - 1.0).abs() < 1e-6);
        }
        assert_eq!(
            after,
            table.daily_median_naive(KpiField::VoiceDlLoss, 5, |_| true)
        );
    }

    #[test]
    fn multi_field_kernel_matches_single_field_queries() {
        let mut table = KpiTable::new();
        for day in 0..4u16 {
            for cell in 0..9u32 {
                table.push(
                    CellDayMetrics::from_hourly(
                        cell,
                        day,
                        &[sample((cell + 1) as f64 * (day + 1) as f64)],
                    )
                    .unwrap(),
                );
            }
        }
        let fields = [KpiField::DlVolume, KpiField::UlVolume, KpiField::VoiceUsers];
        let multi = table.daily_medians_multi(&fields, 5, |c| c != 4);
        for (fi, field) in fields.iter().enumerate() {
            assert_eq!(multi[fi], table.daily_median(*field, 5, |c| c != 4));
        }
    }

    #[test]
    fn serde_roundtrip_preserves_records() {
        let mut table = KpiTable::new();
        table.push(CellDayMetrics::from_hourly(3, 1, &[sample(42.0)]).unwrap());
        let _ = table.columns(); // a built index must not leak into the wire form
        let json = serde_json::to_string(&table).unwrap();
        let back: KpiTable = serde_json::from_str(&json).unwrap();
        assert_eq!(back, table);
        assert_eq!(back.records(), table.records());
    }

    #[test]
    fn columns_shape_matches_records() {
        let mut table = KpiTable::new();
        for (cell, day) in [(1u32, 0u16), (2, 0), (9, 2)] {
            table.push(CellDayMetrics::from_hourly(cell, day, &[sample(1.0)]).unwrap());
        }
        let cols = table.columns();
        assert_eq!(cols.num_days(), 3);
        assert_eq!(cols.day_len(0), 2);
        assert_eq!(cols.day_len(1), 0);
        assert_eq!(cols.day_len(2), 1);
        assert_eq!(cols.day_len(99), 0);
    }
}
