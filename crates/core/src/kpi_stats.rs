//! Per-cell daily KPI records and group statistics.
//!
//! Section 2.4: "For all the hourly metrics, we further aggregate them
//! per day and extract the (hourly) median value per cell. This allows
//! to capture one single value per metric per day." [`CellDayMetrics`]
//! is that per-cell-day record; [`KpiTable`] holds the study's worth of
//! them and answers the questions the network-performance figures ask:
//! median across a set of cells per day/week, as Δ% vs week 9.

use crate::baseline::DeltaSeries;
use crate::stats;
use cellscope_time::{IsoWeek, SimClock};
use serde::{Deserialize, Serialize};

/// One hourly KPI sample, generator-agnostic.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct HourlyKpiSample {
    /// Downlink volume, MB (all QCI 1–8 bearers).
    pub dl_volume_mb: f64,
    /// Uplink volume, MB.
    pub ul_volume_mb: f64,
    /// Average active DL users.
    pub active_dl_users: f64,
    /// Total connected users.
    pub connected_users: f64,
    /// Average user DL throughput, Mbit/s.
    pub user_dl_throughput_mbps: f64,
    /// TTI utilization, 0–1.
    pub tti_utilization: f64,
    /// Voice (QCI 1) volume, MB.
    pub voice_volume_mb: f64,
    /// Simultaneous voice users.
    pub voice_users: f64,
    /// Voice UL packet loss rate.
    pub voice_ul_loss: f64,
    /// Voice DL packet loss rate.
    pub voice_dl_loss: f64,
}

/// One cell-day: the per-metric medians of the day's hourly samples.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellDayMetrics {
    /// Cell key (cell id in the synthetic world).
    pub cell: u32,
    /// Study day.
    pub day: u16,
    /// Medians of the hourly samples (f32: the table is large).
    pub dl_volume_mb: f32,
    pub ul_volume_mb: f32,
    pub active_dl_users: f32,
    pub connected_users: f32,
    pub user_dl_throughput_mbps: f32,
    pub tti_utilization: f32,
    pub voice_volume_mb: f32,
    pub voice_users: f32,
    pub voice_ul_loss: f32,
    pub voice_dl_loss: f32,
}

/// Selector for one metric of [`CellDayMetrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KpiField {
    /// Downlink data volume.
    DlVolume,
    /// Uplink data volume.
    UlVolume,
    /// Active downlink users.
    ActiveDlUsers,
    /// Total connected users.
    ConnectedUsers,
    /// Average user DL throughput.
    UserDlThroughput,
    /// Cell resource utilization (TTI).
    TtiUtilization,
    /// Conversational-voice volume.
    VoiceVolume,
    /// Simultaneous voice users.
    VoiceUsers,
    /// Voice uplink packet loss rate.
    VoiceUlLoss,
    /// Voice downlink packet loss rate.
    VoiceDlLoss,
}

impl KpiField {
    /// All fields, in Fig. 8/9 order.
    pub const ALL: [KpiField; 10] = [
        KpiField::DlVolume,
        KpiField::UlVolume,
        KpiField::ActiveDlUsers,
        KpiField::ConnectedUsers,
        KpiField::UserDlThroughput,
        KpiField::TtiUtilization,
        KpiField::VoiceVolume,
        KpiField::VoiceUsers,
        KpiField::VoiceUlLoss,
        KpiField::VoiceDlLoss,
    ];

    /// Plot title as used in the paper's figures.
    pub fn title(self) -> &'static str {
        match self {
            KpiField::DlVolume => "Downlink Data Volume",
            KpiField::UlVolume => "Uplink Data Volume",
            KpiField::ActiveDlUsers => "Downlink Active Users",
            KpiField::ConnectedUsers => "Total Number of Users",
            KpiField::UserDlThroughput => "User Downlink Throughput",
            KpiField::TtiUtilization => "Cell Resource Utilization",
            KpiField::VoiceVolume => "Voice Traffic Volume",
            KpiField::VoiceUsers => "Voice Simultaneous Users",
            KpiField::VoiceUlLoss => "Voice Uplink Packet Error Loss Rate",
            KpiField::VoiceDlLoss => "Voice Downlink Packet Error Loss Rate",
        }
    }
}

impl CellDayMetrics {
    /// Collapse one cell-day's hourly samples into the daily record
    /// (median per metric). Returns `None` for an empty day.
    pub fn from_hourly(cell: u32, day: u16, hours: &[HourlyKpiSample]) -> Option<CellDayMetrics> {
        if hours.is_empty() {
            return None;
        }
        let med = |f: fn(&HourlyKpiSample) -> f64| -> f32 {
            let vals: Vec<f64> = hours.iter().map(f).collect();
            stats::median(&vals).expect("non-empty") as f32
        };
        Some(CellDayMetrics {
            cell,
            day,
            dl_volume_mb: med(|h| h.dl_volume_mb),
            ul_volume_mb: med(|h| h.ul_volume_mb),
            active_dl_users: med(|h| h.active_dl_users),
            connected_users: med(|h| h.connected_users),
            user_dl_throughput_mbps: med(|h| h.user_dl_throughput_mbps),
            tti_utilization: med(|h| h.tti_utilization),
            voice_volume_mb: med(|h| h.voice_volume_mb),
            voice_users: med(|h| h.voice_users),
            voice_ul_loss: med(|h| h.voice_ul_loss),
            voice_dl_loss: med(|h| h.voice_dl_loss),
        })
    }

    /// Read one metric.
    pub fn get(&self, field: KpiField) -> f64 {
        (match field {
            KpiField::DlVolume => self.dl_volume_mb,
            KpiField::UlVolume => self.ul_volume_mb,
            KpiField::ActiveDlUsers => self.active_dl_users,
            KpiField::ConnectedUsers => self.connected_users,
            KpiField::UserDlThroughput => self.user_dl_throughput_mbps,
            KpiField::TtiUtilization => self.tti_utilization,
            KpiField::VoiceVolume => self.voice_volume_mb,
            KpiField::VoiceUsers => self.voice_users,
            KpiField::VoiceUlLoss => self.voice_ul_loss,
            KpiField::VoiceDlLoss => self.voice_dl_loss,
        }) as f64
    }
}

/// The study's per-cell-day KPI table.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct KpiTable {
    records: Vec<CellDayMetrics>,
}

impl KpiTable {
    /// Empty table.
    pub fn new() -> KpiTable {
        KpiTable::default()
    }

    /// Append one record.
    pub fn push(&mut self, record: CellDayMetrics) {
        self.records.push(record);
    }

    /// All records.
    pub fn records(&self) -> &[CellDayMetrics] {
        &self.records
    }

    /// Mutable access to all records (post-processing passes, e.g.
    /// applying a network-wide daily loss component).
    pub fn records_mut(&mut self) -> &mut [CellDayMetrics] {
        &mut self.records
    }

    /// Append every record of another table (parallel-fold merge).
    pub fn merge(&mut self, other: KpiTable) {
        self.records.extend(other.records);
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Daily median of `field` across the cells selected by `filter`.
    pub fn daily_median(
        &self,
        field: KpiField,
        num_days: usize,
        mut filter: impl FnMut(u32) -> bool,
    ) -> Vec<Option<f64>> {
        let mut per_day: Vec<Vec<f64>> = vec![Vec::new(); num_days];
        for r in &self.records {
            if (r.day as usize) < num_days && filter(r.cell) {
                per_day[r.day as usize].push(r.get(field));
            }
        }
        per_day.into_iter().map(|v| stats::median(&v)).collect()
    }

    /// Daily percentile variant (for the 90th-percentile voice series).
    pub fn daily_percentile(
        &self,
        field: KpiField,
        p: f64,
        num_days: usize,
        mut filter: impl FnMut(u32) -> bool,
    ) -> Vec<Option<f64>> {
        let mut per_day: Vec<Vec<f64>> = vec![Vec::new(); num_days];
        for r in &self.records {
            if (r.day as usize) < num_days && filter(r.cell) {
                per_day[r.day as usize].push(r.get(field));
            }
        }
        per_day
            .into_iter()
            .map(|v| stats::percentile(&v, p))
            .collect()
    }

    /// Baseline-relative series of `field` over the selected cells.
    pub fn delta_series(
        &self,
        field: KpiField,
        clock: SimClock,
        baseline_week: IsoWeek,
        filter: impl FnMut(u32) -> bool,
    ) -> DeltaSeries {
        let daily = self.daily_median(field, clock.num_days(), filter);
        DeltaSeries::new(clock, daily, baseline_week)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(dl: f64) -> HourlyKpiSample {
        HourlyKpiSample {
            dl_volume_mb: dl,
            ul_volume_mb: dl / 10.0,
            active_dl_users: 3.0,
            connected_users: 50.0,
            user_dl_throughput_mbps: 6.0,
            tti_utilization: 0.2,
            voice_volume_mb: 1.0,
            voice_users: 0.5,
            voice_ul_loss: 0.001,
            voice_dl_loss: 0.002,
        }
    }

    #[test]
    fn from_hourly_takes_medians() {
        let hours: Vec<_> = (0..24).map(|h| sample(h as f64)).collect();
        let day = CellDayMetrics::from_hourly(7, 3, &hours).unwrap();
        assert_eq!(day.cell, 7);
        assert_eq!(day.day, 3);
        assert_eq!(day.dl_volume_mb, 11.5); // median of 0..=23
        assert_eq!(day.connected_users, 50.0);
        assert!(CellDayMetrics::from_hourly(7, 3, &[]).is_none());
    }

    #[test]
    fn field_roundtrip() {
        let day = CellDayMetrics::from_hourly(1, 0, &[sample(100.0)]).unwrap();
        assert_eq!(day.get(KpiField::DlVolume), 100.0);
        assert_eq!(day.get(KpiField::UlVolume), 10.0);
        assert_eq!(day.get(KpiField::TtiUtilization) as f32, 0.2);
        for f in KpiField::ALL {
            assert!(!f.title().is_empty());
            let _ = day.get(f);
        }
    }

    #[test]
    fn daily_median_filters_cells() {
        let mut table = KpiTable::new();
        for (cell, dl) in [(1u32, 10.0), (2, 20.0), (3, 90.0)] {
            table.push(CellDayMetrics::from_hourly(cell, 0, &[sample(dl)]).unwrap());
        }
        let all = table.daily_median(KpiField::DlVolume, 2, |_| true);
        assert_eq!(all[0], Some(20.0));
        assert_eq!(all[1], None);
        let some = table.daily_median(KpiField::DlVolume, 2, |c| c != 3);
        assert_eq!(some[0], Some(15.0));
    }

    #[test]
    fn percentile_spans_distribution() {
        let mut table = KpiTable::new();
        for cell in 0..10u32 {
            table.push(
                CellDayMetrics::from_hourly(cell, 0, &[sample(cell as f64 * 10.0)]).unwrap(),
            );
        }
        let p90 = table.daily_percentile(KpiField::DlVolume, 90.0, 1, |_| true);
        assert_eq!(p90[0], Some(81.0));
    }
}
