//! Per-(group, day) value distributions.
//!
//! The paper repeatedly reports not just the central tendency but the
//! distribution width: "metrics distributions have little variance in
//! all regions, and all percentiles are close to the median" (Section
//! 3.2), and the one exception it calls out — the 90th percentile of
//! downlink active users shrinking during lockdown (Section 4.1).
//! [`DailyGroupSamples`] retains the per-user daily samples per group so
//! those percentile statements can be computed and checked, and merges
//! across parallel workers.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Exact per-(group, day) sample store (f32 to halve the footprint; the
/// metrics carry no more precision than that anyway).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DailyGroupSamples<K: Ord> {
    num_days: usize,
    samples: BTreeMap<K, Vec<Vec<f32>>>,
}

impl<K: Ord + Clone> DailyGroupSamples<K> {
    /// New store over `num_days` days.
    pub fn new(num_days: usize) -> DailyGroupSamples<K> {
        DailyGroupSamples {
            num_days,
            samples: BTreeMap::new(),
        }
    }

    /// Record one observation.
    pub fn add(&mut self, group: K, day: u16, value: f64) {
        debug_assert!((day as usize) < self.num_days);
        let days = self
            .samples
            .entry(group)
            .or_insert_with(|| vec![Vec::new(); self.num_days]);
        days[day as usize].push(value as f32);
    }

    /// Percentile of a (group, day)'s samples; `None` when unobserved.
    /// Selection-based (one widening pass, no sort) — bit-identical to
    /// widening into `f64` and sorting, see [`crate::stats`].
    pub fn percentile(&self, group: &K, day: u16, p: f64) -> Option<f64> {
        let values = self.samples.get(group)?.get(day as usize)?;
        crate::stats::percentile_f32(values, p)
    }

    /// Number of samples for a (group, day).
    pub fn count(&self, group: &K, day: u16) -> usize {
        self.samples
            .get(group)
            .and_then(|d| d.get(day as usize))
            .map(Vec::len)
            .unwrap_or(0)
    }

    /// The daily series of one percentile for a group.
    pub fn daily_percentile(&self, group: &K, p: f64) -> Vec<Option<f64>> {
        (0..self.num_days as u16)
            .map(|d| self.percentile(group, d, p))
            .collect()
    }

    /// Relative inter-percentile spread of a (group, day):
    /// `(p90 − p10) / median`. The paper's "all percentiles are close to
    /// the median" translates to this staying small and stable.
    pub fn relative_spread(&self, group: &K, day: u16) -> Option<f64> {
        let p10 = self.percentile(group, day, 10.0)?;
        let p90 = self.percentile(group, day, 90.0)?;
        let median = self.percentile(group, day, 50.0)?;
        if median == 0.0 {
            return None;
        }
        Some((p90 - p10) / median)
    }

    /// Merge another store (parallel-fold).
    ///
    /// # Panics
    /// Panics if the day counts differ.
    pub fn merge(&mut self, other: DailyGroupSamples<K>) {
        assert_eq!(self.num_days, other.num_days, "mismatched day counts");
        for (k, days) in other.samples {
            let entry = self
                .samples
                .entry(k)
                .or_insert_with(|| vec![Vec::new(); self.num_days]);
            for (mine, mut theirs) in entry.iter_mut().zip(days) {
                mine.append(&mut theirs);
            }
        }
    }

    /// Groups observed.
    pub fn groups(&self) -> impl Iterator<Item = &K> {
        self.samples.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_over_known_samples() {
        let mut s: DailyGroupSamples<u8> = DailyGroupSamples::new(3);
        for v in 1..=100 {
            s.add(1, 0, v as f64);
        }
        assert_eq!(s.count(&1, 0), 100);
        let median = s.percentile(&1, 0, 50.0).unwrap();
        assert!((median - 50.5).abs() < 1.0);
        let p90 = s.percentile(&1, 0, 90.0).unwrap();
        assert!((p90 - 90.0).abs() < 1.5);
        assert_eq!(s.percentile(&1, 1, 50.0), None);
        assert_eq!(s.percentile(&2, 0, 50.0), None);
    }

    #[test]
    fn relative_spread_narrow_vs_wide() {
        let mut s: DailyGroupSamples<&str> = DailyGroupSamples::new(1);
        for i in 0..100 {
            s.add("narrow", 0, 100.0 + (i % 5) as f64);
            s.add("wide", 0, 10.0 + i as f64 * 3.0);
        }
        let narrow = s.relative_spread(&"narrow", 0).unwrap();
        let wide = s.relative_spread(&"wide", 0).unwrap();
        assert!(narrow < 0.1, "narrow spread {narrow}");
        assert!(wide > 1.0, "wide spread {wide}");
    }

    #[test]
    fn merge_concatenates_samples() {
        let mut a: DailyGroupSamples<u8> = DailyGroupSamples::new(2);
        let mut b: DailyGroupSamples<u8> = DailyGroupSamples::new(2);
        a.add(1, 0, 1.0);
        b.add(1, 0, 3.0);
        b.add(2, 1, 7.0);
        a.merge(b);
        assert_eq!(a.count(&1, 0), 2);
        assert_eq!(a.percentile(&1, 0, 50.0), Some(2.0));
        assert_eq!(a.count(&2, 1), 1);
        assert_eq!(a.groups().count(), 2);
    }

    #[test]
    #[should_panic(expected = "mismatched day counts")]
    fn merge_rejects_mismatched_days() {
        let mut a: DailyGroupSamples<u8> = DailyGroupSamples::new(2);
        a.merge(DailyGroupSamples::new(3));
    }
}
