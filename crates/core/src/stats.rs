//! Order statistics and means.
//!
//! The paper aggregates almost everything as *medians* ("we further
//! aggregate them per day and extract the (hourly) median value per
//! cell") and reports distribution width through percentiles (e.g. the
//! 90th percentile of voice volume in Fig. 9). These helpers are the
//! single implementation the whole workspace uses.

/// Arithmetic mean; `None` for an empty slice.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Median (interpolated for even lengths); `None` for an empty slice.
pub fn median(values: &[f64]) -> Option<f64> {
    percentile(values, 50.0)
}

/// Percentile in [0, 100] with linear interpolation between order
/// statistics; `None` for an empty slice. NaNs are rejected by
/// debug-assert (feeds never produce them).
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    debug_assert!(values.iter().all(|v| !v.is_nan()), "NaN in percentile input");
    debug_assert!((0.0..=100.0).contains(&p), "percentile out of range");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = rank - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Median of pre-sorted values (no copy). Caller guarantees order.
pub fn median_sorted(sorted: &[f64]) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let n = sorted.len();
    if n % 2 == 1 {
        Some(sorted[n / 2])
    } else {
        Some((sorted[n / 2 - 1] + sorted[n / 2]) / 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_inputs_yield_none() {
        assert_eq!(mean(&[]), None);
        assert_eq!(median(&[]), None);
        assert_eq!(percentile(&[], 90.0), None);
        assert_eq!(median_sorted(&[]), None);
    }

    #[test]
    fn mean_and_median_basics() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(median(&[5.0]), Some(5.0));
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile(&v, 0.0), Some(10.0));
        assert_eq!(percentile(&v, 100.0), Some(50.0));
        assert_eq!(percentile(&v, 50.0), Some(30.0));
        assert_eq!(percentile(&v, 25.0), Some(20.0));
        assert_eq!(percentile(&v, 90.0), Some(46.0));
    }

    #[test]
    fn percentile_is_order_invariant() {
        let a: [f64; 4] = [5.0, 1.0, 9.0, 3.0];
        let mut b = a;
        b.sort_by(|x, y| x.total_cmp(y));
        for p in [0.0, 10.0, 50.0, 90.0, 100.0] {
            assert_eq!(percentile(&a, p), percentile(&b, p));
        }
    }

    #[test]
    fn median_sorted_matches_median() {
        let mut v = vec![7.0, 3.0, 9.0, 1.0, 4.0, 4.0];
        let m = median(&v);
        v.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(median_sorted(&v), m);
    }
}
