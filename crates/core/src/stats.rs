//! Order statistics and means.
//!
//! The paper aggregates almost everything as *medians* ("we further
//! aggregate them per day and extract the (hourly) median value per
//! cell") and reports distribution width through percentiles (e.g. the
//! 90th percentile of voice volume in Fig. 9). These helpers are the
//! single implementation the whole workspace uses.
//!
//! Percentiles are computed by O(n) selection
//! ([`slice::select_nth_unstable_by`]) rather than a full sort; the
//! result is bit-identical to sorting because the k-th order statistic
//! under `total_cmp` (a total order on bit patterns) is a unique bit
//! pattern. [`percentile_ref`] keeps the clone-and-sort implementation
//! as the reference the equivalence tests and benches compare against.
//!
//! NaN handling is explicit: a NaN anywhere in the input makes every
//! percentile/median return `None`, in **all** build profiles. (An
//! earlier version only `debug_assert`ed, so a release-mode NaN
//! silently poisoned the sort and propagated into every figure.)

/// Arithmetic mean; `None` for an empty slice.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Median (interpolated for even lengths); `None` for an empty slice or
/// NaN-bearing input.
pub fn median(values: &[f64]) -> Option<f64> {
    percentile(values, 50.0)
}

/// Percentile in [0, 100] with linear interpolation between order
/// statistics; `None` for an empty slice. Any NaN in the input yields
/// `None` — explicitly, not by debug-assert, so a poisoned feed shows
/// up as a gap instead of a garbage number in release builds too.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut scratch = values.to_vec();
    percentile_unstable(&mut scratch, p)
}

/// In-place, allocation-free percentile kernel: O(n) selection instead
/// of a full sort. Reorders `values` arbitrarily. Same contract as
/// [`percentile`] (empty or NaN-bearing input → `None`).
pub fn percentile_unstable(values: &mut [f64], p: f64) -> Option<f64> {
    debug_assert!((0.0..=100.0).contains(&p), "percentile out of range");
    if values.is_empty() || values.iter().any(|v| v.is_nan()) {
        return None;
    }
    let rank = p / 100.0 * (values.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let frac = rank - lo as f64;
    let (_, lo_val, above) = values.select_nth_unstable_by(lo, |a, b| a.total_cmp(b));
    let lo_val = *lo_val;
    if frac == 0.0 {
        Some(lo_val)
    } else {
        // The (lo+1)-th order statistic is the minimum of the partition
        // above the pivot — no second selection pass needed.
        let hi_val = above
            .iter()
            .copied()
            .min_by(|a, b| a.total_cmp(b))
            .expect("rank.ceil() < len");
        Some(lo_val * (1.0 - frac) + hi_val * frac)
    }
}

/// In-place median over a scratch buffer (see [`percentile_unstable`]).
pub fn median_unstable(values: &mut [f64]) -> Option<f64> {
    percentile_unstable(values, 50.0)
}

/// Percentile of an `f32` sample store, widening through one scratch
/// buffer (the per-(group, day) distributions keep samples as `f32`).
/// Bit-identical to widening the slice yourself and calling
/// [`percentile`].
pub fn percentile_f32(values: &[f32], p: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut scratch: Vec<f64> = values.iter().map(|&v| v as f64).collect();
    percentile_unstable(&mut scratch, p)
}

/// Reference percentile: clone + full `total_cmp` sort, the original
/// implementation. Kept for the equivalence property tests and as the
/// "naive" side of the aggregation benches. Same NaN contract as
/// [`percentile`].
pub fn percentile_ref(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() || values.iter().any(|v| v.is_nan()) {
        return None;
    }
    debug_assert!((0.0..=100.0).contains(&p), "percentile out of range");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = rank - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Median of pre-sorted values (no copy). Caller guarantees order.
pub fn median_sorted(sorted: &[f64]) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let n = sorted.len();
    if n % 2 == 1 {
        Some(sorted[n / 2])
    } else {
        Some((sorted[n / 2 - 1] + sorted[n / 2]) / 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_inputs_yield_none() {
        assert_eq!(mean(&[]), None);
        assert_eq!(median(&[]), None);
        assert_eq!(percentile(&[], 90.0), None);
        assert_eq!(percentile_unstable(&mut [], 90.0), None);
        assert_eq!(percentile_f32(&[], 50.0), None);
        assert_eq!(percentile_ref(&[], 50.0), None);
        assert_eq!(median_sorted(&[]), None);
    }

    #[test]
    fn mean_and_median_basics() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(median(&[5.0]), Some(5.0));
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile(&v, 0.0), Some(10.0));
        assert_eq!(percentile(&v, 100.0), Some(50.0));
        assert_eq!(percentile(&v, 50.0), Some(30.0));
        assert_eq!(percentile(&v, 25.0), Some(20.0));
        assert_eq!(percentile(&v, 90.0), Some(46.0));
    }

    #[test]
    fn percentile_is_order_invariant() {
        let a: [f64; 4] = [5.0, 1.0, 9.0, 3.0];
        let mut b = a;
        b.sort_by(|x, y| x.total_cmp(y));
        for p in [0.0, 10.0, 50.0, 90.0, 100.0] {
            assert_eq!(percentile(&a, p), percentile(&b, p));
        }
    }

    /// Selection-based percentile matches the sort-based reference
    /// bit-for-bit, including with duplicates and signed zeros.
    #[test]
    fn selection_matches_reference_bitwise() {
        let cases: Vec<Vec<f64>> = vec![
            vec![1.0],
            vec![2.0, 2.0, 2.0],
            vec![5.0, 1.0, 9.0, 3.0, 3.0, 9.0, -2.5],
            vec![0.0, -0.0, 1.0, -1.0],
            vec![1e300, -1e300, 1e-300, 0.1 + 0.2, 1.0 / 3.0],
        ];
        for v in &cases {
            for p in [0.0, 7.0, 10.0, 25.0, 33.3, 50.0, 66.6, 90.0, 99.0, 100.0] {
                let sel = percentile(v, p);
                let srt = percentile_ref(v, p);
                assert_eq!(
                    sel.map(f64::to_bits),
                    srt.map(f64::to_bits),
                    "p={p} over {v:?}"
                );
            }
        }
    }

    /// NaN-bearing input is rejected with `None` in *every* build
    /// profile — this test passes identically under `cargo test` and
    /// `cargo test --release` because the rejection is an explicit
    /// branch, not a debug_assert.
    #[test]
    fn nan_input_returns_none_in_all_profiles() {
        let poisoned = [1.0, f64::NAN, 3.0];
        assert_eq!(percentile(&poisoned, 50.0), None);
        assert_eq!(percentile_ref(&poisoned, 50.0), None);
        assert_eq!(median(&poisoned), None);
        assert_eq!(percentile_unstable(&mut poisoned.to_vec(), 90.0), None);
        assert_eq!(percentile_f32(&[1.0, f32::NAN], 50.0), None);
        // A lone NaN too.
        assert_eq!(median(&[f64::NAN]), None);
        // Infinities are *not* NaN and stay orderable.
        assert_eq!(median(&[f64::INFINITY, 0.0, f64::NEG_INFINITY]), Some(0.0));
    }

    #[test]
    fn median_sorted_matches_median() {
        let mut v = vec![7.0, 3.0, 9.0, 1.0, 4.0, 4.0];
        let m = median(&v);
        v.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(median_sorted(&v), m);
    }

    #[test]
    fn f32_widening_matches_manual_widening() {
        let vals = [1.5f32, -0.25, 7.125, 7.125, 0.0];
        let widened: Vec<f64> = vals.iter().map(|&v| v as f64).collect();
        for p in [0.0, 10.0, 50.0, 90.0, 100.0] {
            assert_eq!(
                percentile_f32(&vals, p).map(f64::to_bits),
                percentile(&widened, p).map(f64::to_bits)
            );
        }
    }
}
