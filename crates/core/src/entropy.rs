//! Temporal-uncorrelated mobility entropy — Eq. (1) of the paper.
//!
//! `e = − Σ_j p(j) · log(p(j))` where `p(j)` is the fraction of dwell
//! time spent at the j-th visited tower: "a measure of the randomness of
//! the movements of an individual, and as such, a metric for the
//! predictability of movements" (Section 2.3, after Song et al.).

use crate::dwell::TowerDwell;

/// Compute the temporal-uncorrelated entropy of one user-day's dwell.
///
/// Uses the natural logarithm. Returns `None` when total dwell is zero
/// (unobserved user). A user seen at a single tower has entropy 0; the
/// maximum for `N` towers is `ln N`, reached on a uniform split.
///
/// Entries are treated as distinct visitation outcomes: pass dwell with
/// one entry per tower (as produced by [`crate::top_n_towers`], which
/// merges duplicates) — duplicated tower entries would be counted as
/// separate places.
///
/// ```
/// use cellscope_core::{mobility_entropy, TowerDwell};
/// use cellscope_geo::Point;
///
/// let day = vec![
///     TowerDwell { tower: 1, location: Point::new(0.0, 0.0), seconds: 16.0 * 3600.0 },
///     TowerDwell { tower: 2, location: Point::new(8.0, 0.0), seconds: 8.0 * 3600.0 },
/// ];
/// let e = mobility_entropy(&day).unwrap();
/// // Two places at a 2:1 split: 0 < e < ln 2.
/// assert!(e > 0.0 && e < 2f64.ln());
/// ```
pub fn mobility_entropy(dwell: &[TowerDwell]) -> Option<f64> {
    let total: f64 = dwell.iter().map(|d| d.seconds.max(0.0)).sum();
    if total <= 0.0 {
        return None;
    }
    let mut e = 0.0;
    for d in dwell {
        if d.seconds > 0.0 {
            let p = d.seconds / total;
            e -= p * p.ln();
        }
    }
    Some(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellscope_geo::Point;

    fn d(tower: u32, seconds: f64) -> TowerDwell {
        TowerDwell {
            tower,
            location: Point::new(0.0, 0.0),
            seconds,
        }
    }

    #[test]
    fn empty_or_zero_dwell_is_none() {
        assert_eq!(mobility_entropy(&[]), None);
        assert_eq!(mobility_entropy(&[d(1, 0.0)]), None);
    }

    #[test]
    fn single_tower_is_zero() {
        assert_eq!(mobility_entropy(&[d(1, 86_400.0)]), Some(0.0));
    }

    #[test]
    fn uniform_split_reaches_ln_n() {
        let dwell: Vec<_> = (0..4).map(|i| d(i, 100.0)).collect();
        let e = mobility_entropy(&dwell).unwrap();
        assert!((e - 4.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn skew_reduces_entropy() {
        let uniform = mobility_entropy(&[d(1, 50.0), d(2, 50.0)]).unwrap();
        let skewed = mobility_entropy(&[d(1, 90.0), d(2, 10.0)]).unwrap();
        assert!(skewed < uniform);
        assert!(skewed > 0.0);
    }

    #[test]
    fn scale_invariant_in_total_time() {
        let a = mobility_entropy(&[d(1, 10.0), d(2, 30.0)]).unwrap();
        let b = mobility_entropy(&[d(1, 1000.0), d(2, 3000.0)]).unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn two_tower_known_value() {
        // p = (0.75, 0.25): e = -(0.75 ln 0.75 + 0.25 ln 0.25)
        let e = mobility_entropy(&[d(1, 75.0), d(2, 25.0)]).unwrap();
        let expected = -(0.75f64 * 0.75f64.ln() + 0.25 * 0.25f64.ln());
        assert!((e - expected).abs() < 1e-12);
    }
}
