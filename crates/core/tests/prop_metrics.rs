//! Property tests for the analysis core: the mobility metrics and the
//! statistics they are built on.

use cellscope_core::{
    delta_pct, mobility_entropy, pearson, radius_of_gyration, stats, top_n_towers,
    MobilityMatrix, TowerDwell,
};
use cellscope_geo::Point;
use cellscope_time::{IsoWeek, SimClock};
use proptest::prelude::*;

/// Dwell with one entry per tower (the form `top_n_towers` produces and
/// the metrics are specified over).
fn dwell_strategy(max_towers: usize) -> impl Strategy<Value = Vec<TowerDwell>> {
    prop::collection::vec(
        (
            -500.0f64..500.0,
            -500.0f64..500.0,
            1.0f64..86_400.0,
        ),
        1..max_towers,
    )
    .prop_map(|entries| {
        entries
            .into_iter()
            .enumerate()
            .map(|(i, (x, y, seconds))| TowerDwell {
                tower: i as u32,
                location: Point::new(x, y),
                seconds,
            })
            .collect()
    })
}

proptest! {
    /// Entropy is bounded by [0, ln N] with N distinct towers.
    #[test]
    fn entropy_bounds(dwell in dwell_strategy(30)) {
        let e = mobility_entropy(&dwell).expect("positive dwell");
        prop_assert!(e >= -1e-12, "entropy {e}");
        let mut towers: Vec<u32> = dwell.iter().map(|d| d.tower).collect();
        towers.sort_unstable();
        towers.dedup();
        let bound = (towers.len() as f64).ln();
        prop_assert!(e <= bound + 1e-9, "entropy {e} > ln {} ", towers.len());
    }

    /// Entropy is invariant under uniform time scaling.
    #[test]
    fn entropy_scale_invariant(dwell in dwell_strategy(20), k in 0.01f64..100.0) {
        let a = mobility_entropy(&dwell).unwrap();
        let scaled: Vec<TowerDwell> = dwell
            .iter()
            .map(|d| TowerDwell { seconds: d.seconds * k, ..*d })
            .collect();
        let b = mobility_entropy(&scaled).unwrap();
        prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    /// Gyration is non-negative and bounded by the trajectory diameter.
    #[test]
    fn gyration_bounds(dwell in dwell_strategy(30)) {
        let g = radius_of_gyration(&dwell).expect("positive dwell");
        prop_assert!(g >= 0.0);
        let mut diameter = 0.0f64;
        for a in &dwell {
            for b in &dwell {
                diameter = diameter.max(a.location.distance_km(b.location));
            }
        }
        prop_assert!(g <= diameter + 1e-9, "gyration {g} > diameter {diameter}");
    }

    /// Gyration is invariant under translation of the whole map.
    #[test]
    fn gyration_translation_invariant(
        dwell in dwell_strategy(20),
        dx in -1e4f64..1e4,
        dy in -1e4f64..1e4,
    ) {
        let a = radius_of_gyration(&dwell).unwrap();
        let moved: Vec<TowerDwell> = dwell
            .iter()
            .map(|d| TowerDwell { location: d.location.offset(dx, dy), ..*d })
            .collect();
        let b = radius_of_gyration(&moved).unwrap();
        prop_assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }

    /// The top-N filter keeps at most N towers, conserves no more than
    /// the total time, and keeps the longest-dwelled towers.
    #[test]
    fn top_n_invariants(dwell in dwell_strategy(40), n in 1usize..25) {
        let top = top_n_towers(&dwell, n);
        prop_assert!(top.len() <= n);
        let total_in: f64 = dwell.iter().map(|d| d.seconds).sum();
        let total_out: f64 = top.iter().map(|d| d.seconds).sum();
        prop_assert!(total_out <= total_in + 1e-6);
        // Kept towers are distinct.
        let mut ids: Vec<u32> = top.iter().map(|d| d.tower).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), top.len());
        // The minimum kept dwell is >= the maximum dropped dwell
        // (after merging duplicates).
        if !top.is_empty() {
            let min_kept = top.iter().map(|d| d.seconds).fold(f64::MAX, f64::min);
            let mut merged: std::collections::HashMap<u32, f64> = Default::default();
            for d in &dwell {
                *merged.entry(d.tower).or_default() += d.seconds;
            }
            for (tower, seconds) in merged {
                if !top.iter().any(|t| t.tower == tower) {
                    prop_assert!(seconds <= min_kept + 1e-9);
                }
            }
        }
    }

    /// Percentiles stay within [min, max] and are monotone in p.
    #[test]
    fn percentile_properties(
        values in prop::collection::vec(-1e6f64..1e6, 1..200),
        p1 in 0.0f64..100.0,
        p2 in 0.0f64..100.0,
    ) {
        let lo = p1.min(p2);
        let hi = p1.max(p2);
        let a = stats::percentile(&values, lo).unwrap();
        let b = stats::percentile(&values, hi).unwrap();
        let min = values.iter().copied().fold(f64::MAX, f64::min);
        let max = values.iter().copied().fold(f64::MIN, f64::max);
        prop_assert!(a >= min - 1e-9 && b <= max + 1e-9);
        prop_assert!(a <= b + 1e-9, "percentile not monotone: {a} > {b}");
    }

    /// Pearson r stays in [-1, 1] and is symmetric.
    #[test]
    fn pearson_properties(pairs in prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 3..100)) {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        if let Some(r) = pearson(&xs, &ys) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "r = {r}");
            let r2 = pearson(&ys, &xs).unwrap();
            prop_assert!((r - r2).abs() < 1e-12);
        }
    }

    /// delta_pct round-trips: applying the delta to the baseline
    /// recovers the value.
    #[test]
    fn delta_pct_roundtrip(value in -1e6f64..1e6, baseline in 0.001f64..1e6) {
        let d = delta_pct(value, baseline).unwrap();
        let recovered = baseline * (1.0 + d / 100.0);
        prop_assert!((recovered - value).abs() < 1e-6 * value.abs().max(1.0));
    }

    /// A constant daily series has zero delta everywhere.
    #[test]
    fn constant_series_zero_delta(level in 0.1f64..1e6) {
        let clock = SimClock::study();
        let series = cellscope_core::DeltaSeries::new(
            clock,
            vec![Some(level); clock.num_days()],
            IsoWeek { year: 2020, week: 9 },
        );
        for d in series.daily_delta_pct().into_iter().flatten() {
            prop_assert!(d.abs() < 1e-9);
        }
        for (_, d) in series.weekly_delta_pct() {
            if let Some(d) = d {
                prop_assert!(d.abs() < 1e-9);
            }
        }
    }

    /// Matrix counts conserve: the delta row reconstructs the counts.
    #[test]
    fn matrix_delta_row_consistent(counts in prop::collection::vec(0u32..50, 100)) {
        let clock = SimClock::study();
        let mut m: MobilityMatrix<u8> = MobilityMatrix::new(clock.num_days());
        for (day, &c) in counts.iter().enumerate() {
            for _ in 0..c {
                m.record(1, day as u16);
            }
        }
        let week9 = IsoWeek { year: 2020, week: 9 };
        if let Some(base) = m.baseline_median(&1, &clock, week9).filter(|&b| b > 0.0) {
            let row = m.delta_row(&1, &clock, week9);
            for (day, delta) in row.iter().enumerate() {
                if let Some(delta) = delta {
                    let reconstructed = base * (1.0 + delta / 100.0);
                    prop_assert!((reconstructed - counts[day] as f64).abs() < 1e-6);
                }
            }
        }
    }
}
