//! Property tests for the columnar KPI aggregation engine: the indexed
//! query paths must match the naive rescan implementations bit-for-bit
//! on arbitrary tables, and the selection-based percentile kernel must
//! match the clone-and-sort reference.

use cellscope_core::kpi_stats::CellDayMetrics;
use cellscope_core::{stats, KpiField, KpiTable};
use cellscope_time::{IsoWeek, SimClock};
use proptest::prelude::*;

/// Bit-level comparison of optional doubles (distinguishes -0.0/0.0).
fn bits(v: &[Option<f64>]) -> Vec<Option<u64>> {
    v.iter().map(|o| o.map(f64::to_bits)).collect()
}

/// Build an arbitrary KPI table from generated (cell, day, seed) rows.
/// Every field gets a distinct value derived from the seed, including
/// negatives and exact ties across records.
fn table_from(rows: &[(u32, u16, f32)]) -> KpiTable {
    let mut table = KpiTable::new();
    for &(cell, day, v) in rows {
        table.push(CellDayMetrics {
            cell,
            day,
            dl_volume_mb: v,
            ul_volume_mb: v / 8.0,
            active_dl_users: (v % 7.0).abs(),
            connected_users: v.abs() + 1.0,
            user_dl_throughput_mbps: 10.0 - v / 3.0,
            tti_utilization: (v / 100.0).clamp(0.0, 1.0),
            voice_volume_mb: -v,
            voice_users: (v / 2.0).round(),
            voice_ul_loss: v * 1e-4,
            voice_dl_loss: v * -2e-4,
        });
    }
    table
}

fn rows_strategy(max_rows: usize) -> impl Strategy<Value = Vec<(u32, u16, f32)>> {
    prop::collection::vec(
        (0u32..12, 0u16..10, (-500.0f64..500.0).prop_map(|v| v as f32)),
        0..max_rows,
    )
}

proptest! {
    /// Selection-based percentile == sort-based reference, bit for bit.
    #[test]
    fn percentile_selection_matches_sort(
        values in prop::collection::vec(-1e6f64..1e6, 0..80),
        p in 0.0f64..100.0,
    ) {
        let sel = stats::percentile(&values, p);
        let srt = stats::percentile_ref(&values, p);
        prop_assert_eq!(sel.map(f64::to_bits), srt.map(f64::to_bits));
        // The in-place kernel agrees too.
        let mut scratch = values.clone();
        let unstable = stats::percentile_unstable(&mut scratch, p);
        prop_assert_eq!(unstable.map(f64::to_bits), srt.map(f64::to_bits));
    }

    /// Columnar daily_median == naive daily_median on arbitrary tables,
    /// for every field, with and without a cell filter.
    #[test]
    fn daily_median_columnar_matches_naive(
        rows in rows_strategy(60),
        num_days in 0usize..12,
        modulus in 1u32..5,
    ) {
        let table = table_from(&rows);
        for field in KpiField::ALL {
            let all_col = table.daily_median(field, num_days, |_| true);
            let all_ref = table.daily_median_naive(field, num_days, |_| true);
            prop_assert_eq!(bits(&all_col), bits(&all_ref));
            let filt_col = table.daily_median(field, num_days, |c| c % modulus == 0);
            let filt_ref = table.daily_median_naive(field, num_days, |c| c % modulus == 0);
            prop_assert_eq!(bits(&filt_col), bits(&filt_ref));
        }
    }

    /// Columnar daily_percentile == naive daily_percentile.
    #[test]
    fn daily_percentile_columnar_matches_naive(
        rows in rows_strategy(60),
        p in 0.0f64..100.0,
    ) {
        let table = table_from(&rows);
        for field in [KpiField::VoiceVolume, KpiField::DlVolume, KpiField::VoiceDlLoss] {
            let col = table.daily_percentile(field, p, 10, |c| c != 3);
            let naive = table.daily_percentile_naive(field, p, 10, |c| c != 3);
            prop_assert_eq!(bits(&col), bits(&naive));
        }
    }

    /// The one-pass multi-field kernel == per-field queries.
    #[test]
    fn multi_field_kernel_matches_per_field(rows in rows_strategy(60)) {
        let table = table_from(&rows);
        let fields = KpiField::ALL;
        let multi = table.daily_medians_multi(&fields, 10, |c| c % 2 == 1);
        for (fi, field) in fields.into_iter().enumerate() {
            let single = table.daily_median_naive(field, 10, |c| c % 2 == 1);
            prop_assert_eq!(bits(&multi[fi]), bits(&single));
        }
    }

    /// delta_series over the columnar path == a DeltaSeries built from
    /// the naive daily medians: same baselines, same daily and weekly
    /// delta views.
    #[test]
    fn delta_series_columnar_matches_naive(
        rows in prop::collection::vec(
            (0u32..12, 0u16..105, (-500.0f64..500.0).prop_map(|v| v as f32)),
            0..80,
        ),
    ) {
        let clock = SimClock::study();
        let week9 = IsoWeek { year: 2020, week: 9 };
        let table = table_from(&rows);
        let col = table.delta_series(KpiField::DlVolume, clock, week9, |c| c < 9);
        let naive_daily =
            table.daily_median_naive(KpiField::DlVolume, clock.num_days(), |c| c < 9);
        let naive = cellscope_core::DeltaSeries::new(clock, naive_daily, week9);
        prop_assert_eq!(
            col.baseline_mean().map(f64::to_bits),
            naive.baseline_mean().map(f64::to_bits)
        );
        prop_assert_eq!(
            col.baseline_median().map(f64::to_bits),
            naive.baseline_median().map(f64::to_bits)
        );
        prop_assert_eq!(bits(&col.daily_delta_pct()), bits(&naive.daily_delta_pct()));
        let wk_col: Vec<Option<u64>> = col
            .weekly_delta_pct()
            .into_iter()
            .map(|(_, d)| d.map(f64::to_bits))
            .collect();
        let wk_naive: Vec<Option<u64>> = naive
            .weekly_delta_pct()
            .into_iter()
            .map(|(_, d)| d.map(f64::to_bits))
            .collect();
        prop_assert_eq!(wk_col, wk_naive);
        for week in 5u8..=19 {
            prop_assert_eq!(
                col.week_delta_pct(week).map(f64::to_bits),
                naive.week_delta_pct(week).map(f64::to_bits),
                "week {}", week
            );
        }
    }

    /// Interleaving pushes, merges, and mutation never desyncs the
    /// index from the records.
    #[test]
    fn index_stays_consistent_under_mutation(
        first in rows_strategy(30),
        second in rows_strategy(30),
        bump in -10.0f64..10.0,
    ) {
        let mut table = table_from(&first);
        // Query (forces an index build), then merge more records.
        let _ = table.daily_median(KpiField::DlVolume, 10, |_| true);
        table.merge(table_from(&second));
        prop_assert_eq!(
            bits(&table.daily_median(KpiField::DlVolume, 10, |_| true)),
            bits(&table.daily_median_naive(KpiField::DlVolume, 10, |_| true))
        );
        // Mutate in place, then query again.
        let _ = table.columns();
        for rec in table.records_mut() {
            rec.ul_volume_mb += bump as f32;
        }
        prop_assert_eq!(
            bits(&table.daily_percentile(KpiField::UlVolume, 90.0, 10, |c| c != 1)),
            bits(&table.daily_percentile_naive(KpiField::UlVolume, 90.0, 10, |c| c != 1))
        );
    }
}
