//! The deployed network: site/cell tables, indices, daily snapshots.
//!
//! Mirrors the paper's "Radio Network Topology" data feed (Section 2.2):
//! metadata (location, configuration) and active/inactive status of every
//! tower, refreshed daily so structural changes (new deployments) don't
//! masquerade as behavioural shifts.

use crate::cell::{Cell, CellId, CellSite, SiteId};
use crate::rat::Rat;
use cellscope_geo::{BoundingBox, Point, ZoneId};
use serde::{Deserialize, Serialize};

/// A uniform-grid spatial index over cell sites.
///
/// `nearest_site` answers "which tower serves this point" in ~O(1) for
/// realistic densities; correctness (vs brute force) is property-tested.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SiteGrid {
    origin: Point,
    cell_size_km: f64,
    cols: usize,
    rows: usize,
    buckets: Vec<Vec<SiteId>>,
}

impl SiteGrid {
    fn build(sites: &[CellSite], bounds: BoundingBox, cell_size_km: f64) -> SiteGrid {
        let cols = ((bounds.width() / cell_size_km).ceil() as usize).max(1);
        let rows = ((bounds.height() / cell_size_km).ceil() as usize).max(1);
        let mut grid = SiteGrid {
            origin: bounds.min,
            cell_size_km,
            cols,
            rows,
            buckets: vec![Vec::new(); cols * rows],
        };
        for site in sites {
            let (c, r) = grid.bucket_of(site.location);
            grid.buckets[r * cols + c].push(site.id);
        }
        grid
    }

    fn bucket_of(&self, p: Point) -> (usize, usize) {
        let c = ((p.x - self.origin.x) / self.cell_size_km).floor() as isize;
        let r = ((p.y - self.origin.y) / self.cell_size_km).floor() as isize;
        (
            c.clamp(0, self.cols as isize - 1) as usize,
            r.clamp(0, self.rows as isize - 1) as usize,
        )
    }

    /// Nearest site to `p`, searching outward ring by ring.
    fn nearest(&self, p: Point, sites: &[CellSite]) -> Option<SiteId> {
        let (pc, pr) = self.bucket_of(p);
        let max_radius = self.cols.max(self.rows);
        let mut best: Option<(f64, SiteId)> = None;
        for radius in 0..=max_radius {
            // Scan the ring at this radius.
            let c0 = pc.saturating_sub(radius);
            let c1 = (pc + radius).min(self.cols - 1);
            let r0 = pr.saturating_sub(radius);
            let r1 = (pr + radius).min(self.rows - 1);
            for r in r0..=r1 {
                for c in c0..=c1 {
                    // Only the ring boundary is new at this radius.
                    let on_ring = r == r0 || r == r1 || c == c0 || c == c1;
                    if radius > 0 && !on_ring {
                        continue;
                    }
                    for &sid in &self.buckets[r * self.cols + c] {
                        let d = sites[sid.index()].location.distance_sq(p);
                        if best.map_or(true, |(bd, _)| d < bd) {
                            best = Some((d, sid));
                        }
                    }
                }
            }
            // Once something is found, one extra ring guarantees no closer
            // site hides in a neighbouring bucket.
            if let Some((best_d, _)) = best {
                let safe = (radius as f64) * self.cell_size_km;
                if best_d.sqrt() <= safe {
                    break;
                }
            }
        }
        best.map(|(_, id)| id)
    }
}

/// The full deployed network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    sites: Vec<CellSite>,
    cells: Vec<Cell>,
    cells_by_zone: Vec<Vec<CellId>>,
    grid: SiteGrid,
}

impl Topology {
    /// Assemble from site/cell tables.
    ///
    /// # Panics
    /// Panics if tables are empty, ids are not dense, or a cell references
    /// a missing site.
    pub fn from_parts(sites: Vec<CellSite>, cells: Vec<Cell>, num_zones: usize) -> Topology {
        assert!(!sites.is_empty(), "topology needs at least one site");
        for (i, s) in sites.iter().enumerate() {
            assert_eq!(s.id.index(), i, "site ids must be dense");
        }
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.id.index(), i, "cell ids must be dense");
            assert!(c.site.index() < sites.len(), "cell references missing site");
        }
        let mut cells_by_zone = vec![Vec::new(); num_zones];
        for c in &cells {
            cells_by_zone[c.zone.index()].push(c.id);
        }
        let bounds = BoundingBox::containing(sites.iter().map(|s| s.location))
            .expect("non-empty sites");
        let grid = SiteGrid::build(&sites, bounds, 10.0);
        Topology {
            sites,
            cells,
            cells_by_zone,
            grid,
        }
    }

    /// All sites.
    pub fn sites(&self) -> &[CellSite] {
        &self.sites
    }

    /// All cells.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Look up a site.
    pub fn site(&self, id: SiteId) -> &CellSite {
        &self.sites[id.index()]
    }

    /// Look up a cell.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// Cells serving a zone.
    pub fn cells_in_zone(&self, zone: ZoneId) -> &[CellId] {
        self.cells_by_zone
            .get(zone.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The site nearest to a point.
    pub fn nearest_site(&self, p: Point) -> SiteId {
        self.grid
            .nearest(p, &self.sites)
            .expect("non-empty topology")
    }

    /// Nearest site by brute force — reference implementation for tests.
    pub fn nearest_site_brute(&self, p: Point) -> SiteId {
        self.sites
            .iter()
            .min_by(|a, b| {
                a.location
                    .distance_sq(p)
                    .total_cmp(&b.location.distance_sq(p))
            })
            .map(|s| s.id)
            .expect("non-empty topology")
    }

    /// All sites within `radius_km` of `p`, unordered.
    pub fn sites_within(&self, p: Point, radius_km: f64) -> Vec<SiteId> {
        let mut out = Vec::new();
        let r2 = radius_km * radius_km;
        let span = (radius_km / self.grid.cell_size_km).ceil() as usize + 1;
        let (pc, pr) = self.grid.bucket_of(p);
        let c0 = pc.saturating_sub(span);
        let c1 = (pc + span).min(self.grid.cols - 1);
        let r0 = pr.saturating_sub(span);
        let r1 = (pr + span).min(self.grid.rows - 1);
        for r in r0..=r1 {
            for c in c0..=c1 {
                for &sid in &self.grid.buckets[r * self.grid.cols + c] {
                    if self.sites[sid.index()].location.distance_sq(p) <= r2 {
                        out.push(sid);
                    }
                }
            }
        }
        out
    }

    /// The cell of a given RAT at the site nearest to `p` that is active
    /// on `day`. Falls back to the site's 4G cell, then any cell there.
    pub fn serving_cell(&self, p: Point, rat: Rat, day: u16) -> Option<CellId> {
        let site = self.site(self.nearest_site(p));
        let pick = |want: Option<Rat>| -> Option<CellId> {
            site.cells
                .iter()
                .copied()
                .find(|&cid| {
                    let c = self.cell(cid);
                    c.is_active(day) && want.map_or(true, |r| c.rat == r)
                })
        };
        pick(Some(rat)).or_else(|| pick(Some(Rat::G4))).or_else(|| pick(None))
    }

    /// Number of cells of each RAT active on a day — the daily snapshot's
    /// structural summary.
    pub fn active_cell_count(&self, rat: Rat, day: u16) -> usize {
        self.cells
            .iter()
            .filter(|c| c.rat == rat && c.is_active(day))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellCapacity;

    fn toy_topology() -> Topology {
        // 3 sites on a line at x = 0, 10, 20.
        let mut sites = Vec::new();
        let mut cells = Vec::new();
        for i in 0..3u32 {
            let loc = Point::new(i as f64 * 10.0, 0.0);
            let cid = CellId(i);
            sites.push(CellSite {
                id: SiteId(i),
                location: loc,
                zone: ZoneId(i),
                cells: vec![cid],
            });
            cells.push(Cell {
                id: cid,
                site: SiteId(i),
                rat: Rat::G4,
                zone: ZoneId(i),
                location: loc,
                capacity: CellCapacity::typical(Rat::G4),
                active_from: 0,
                active_to: u16::MAX,
            });
        }
        Topology::from_parts(sites, cells, 3)
    }

    #[test]
    fn nearest_site_matches_brute_force() {
        let t = toy_topology();
        for x in [-5.0, 0.0, 4.9, 5.1, 12.0, 19.0, 100.0] {
            let p = Point::new(x, 3.0);
            assert_eq!(t.nearest_site(p), t.nearest_site_brute(p), "x={x}");
        }
    }

    #[test]
    fn serving_cell_respects_activation() {
        let mut t = toy_topology();
        t.cells[0].active_from = 50;
        let p = Point::new(0.0, 0.0);
        // Before activation the nearest site has no active cell at all.
        assert_eq!(t.serving_cell(p, Rat::G4, 10), None);
        assert_eq!(t.serving_cell(p, Rat::G4, 50), Some(CellId(0)));
    }

    #[test]
    fn serving_cell_falls_back_to_4g() {
        let t = toy_topology();
        // Asking for 2G at a 4G-only site falls back to the 4G cell.
        assert_eq!(
            t.serving_cell(Point::new(0.0, 0.0), Rat::G2, 0),
            Some(CellId(0))
        );
    }

    #[test]
    fn zone_index() {
        let t = toy_topology();
        assert_eq!(t.cells_in_zone(ZoneId(1)), &[CellId(1)]);
        assert!(t.cells_in_zone(ZoneId(99)).is_empty());
    }

    #[test]
    fn sites_within_matches_brute_force() {
        let t = toy_topology();
        for (x, radius) in [(0.0, 5.0), (10.0, 10.0), (5.0, 100.0), (5.0, 0.1)] {
            let p = Point::new(x, 0.0);
            let mut got = t.sites_within(p, radius);
            got.sort();
            let mut want: Vec<SiteId> = t
                .sites
                .iter()
                .filter(|s| s.location.distance_km(p) <= radius)
                .map(|s| s.id)
                .collect();
            want.sort();
            assert_eq!(got, want, "x={x} r={radius}");
        }
    }

    #[test]
    fn active_counts() {
        let mut t = toy_topology();
        t.cells[2].active_to = 5;
        assert_eq!(t.active_cell_count(Rat::G4, 0), 3);
        assert_eq!(t.active_cell_count(Rat::G4, 6), 2);
        assert_eq!(t.active_cell_count(Rat::G3, 0), 0);
    }
}
