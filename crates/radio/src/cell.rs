//! Cell sites and radio cells.
//!
//! "Cell sites (also called cell towers) are the sites where antennas and
//! equipment of the RAN are placed. Every cell site hosts one or multiple
//! antennas for one or more technologies (i.e., 2G, 3G, 4G)"
//! (Section 2.1). A [`CellSite`] is the geographic anchor mobility
//! statistics attach to; a [`Cell`] is the per-RAT radio entity KPIs are
//! collected for.

use crate::rat::Rat;
use cellscope_geo::{Point, ZoneId};
use serde::{Deserialize, Serialize};

/// Identifier of a cell site (dense index into the topology site table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SiteId(pub u32);

impl SiteId {
    /// Index into the topology's site table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for SiteId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "S{:05}", self.0)
    }
}

/// Identifier of a radio cell (dense index into the topology cell table).
///
/// This doubles as the "radio sector ID handling the communication"
/// carried by every signaling event (Section 2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CellId(pub u32);

impl CellId {
    /// Index into the topology's cell table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for CellId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "C{:06}", self.0)
    }
}

/// Radio capacity of one cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellCapacity {
    /// Aggregate downlink air-interface capacity in Mbit/s.
    pub dl_mbps: f64,
    /// Aggregate uplink capacity in Mbit/s.
    pub ul_mbps: f64,
}

impl CellCapacity {
    /// Typical capacity per RAT generation (macro-cell, all sectors).
    pub fn typical(rat: Rat) -> CellCapacity {
        match rat {
            Rat::G2 => CellCapacity {
                dl_mbps: 0.5,
                ul_mbps: 0.3,
            },
            Rat::G3 => CellCapacity {
                dl_mbps: 20.0,
                ul_mbps: 8.0,
            },
            Rat::G4 => CellCapacity {
                dl_mbps: 110.0,
                ul_mbps: 40.0,
            },
        }
    }

    /// Downlink capacity in megabytes per hour.
    pub fn dl_mb_per_hour(&self) -> f64 {
        self.dl_mbps * 3600.0 / 8.0
    }

    /// Uplink capacity in megabytes per hour.
    pub fn ul_mb_per_hour(&self) -> f64 {
        self.ul_mbps * 3600.0 / 8.0
    }
}

/// A radio cell: one RAT instance at a site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    /// Identifier (equals its index in the topology cell table).
    pub id: CellId,
    /// Hosting site.
    pub site: SiteId,
    /// Radio technology.
    pub rat: Rat,
    /// Zone the cell serves (postcode-level aggregation key).
    pub zone: ZoneId,
    /// Location (same as the hosting site).
    pub location: Point,
    /// Radio capacity.
    pub capacity: CellCapacity,
    /// First study day the cell is on air (inclusive).
    pub active_from: u16,
    /// Last study day the cell is on air (inclusive); `u16::MAX` = always.
    pub active_to: u16,
}

impl Cell {
    /// Whether the cell is on air on a given study day — the "status
    /// (active/inactive) of each cell tower" from the daily topology
    /// snapshot (Section 2.2).
    pub fn is_active(&self, day: u16) -> bool {
        day >= self.active_from && day <= self.active_to
    }
}

/// A cell site: location plus hosted cells.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellSite {
    /// Identifier (equals its index in the topology site table).
    pub id: SiteId,
    /// Location on the synthetic map.
    pub location: Point,
    /// Zone the site stands in.
    pub zone: ZoneId,
    /// Cells hosted at this site, at most one per RAT.
    pub cells: Vec<CellId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_ordering_across_rats() {
        let g2 = CellCapacity::typical(Rat::G2);
        let g3 = CellCapacity::typical(Rat::G3);
        let g4 = CellCapacity::typical(Rat::G4);
        assert!(g4.dl_mbps > g3.dl_mbps && g3.dl_mbps > g2.dl_mbps);
        assert!(g4.ul_mbps > g3.ul_mbps && g3.ul_mbps > g2.ul_mbps);
        // Downlink capacity exceeds uplink for every generation.
        for c in [g2, g3, g4] {
            assert!(c.dl_mbps > c.ul_mbps);
        }
    }

    #[test]
    fn hourly_volume_conversion() {
        let c = CellCapacity {
            dl_mbps: 80.0,
            ul_mbps: 8.0,
        };
        assert_eq!(c.dl_mb_per_hour(), 36_000.0);
        assert_eq!(c.ul_mb_per_hour(), 3_600.0);
    }

    #[test]
    fn activation_window() {
        let cell = Cell {
            id: CellId(0),
            site: SiteId(0),
            rat: Rat::G4,
            zone: ZoneId(0),
            location: Point::new(0.0, 0.0),
            capacity: CellCapacity::typical(Rat::G4),
            active_from: 10,
            active_to: 20,
        };
        assert!(!cell.is_active(9));
        assert!(cell.is_active(10));
        assert!(cell.is_active(20));
        assert!(!cell.is_active(21));
    }
}
