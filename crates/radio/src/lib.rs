//! Radio access network model.
//!
//! The paper's measurement infrastructure (Section 2.1) watches a 2G/3G/4G
//! network: cell sites hosting cells of several Radio Access Technologies,
//! hourly Key Performance Indicators per radio cell, and the inter-MNO
//! interconnect that voice traffic crosses. This crate models exactly the
//! parts of that infrastructure the study observes:
//!
//! * [`rat`] — the three RATs and their roles;
//! * [`cell`] — cell sites, cells and their capacity configuration;
//! * [`topology`] — the deployed network: daily snapshots (sites can
//!   activate/deactivate mid-study), zone and spatial indices for
//!   "which cell serves this point?";
//! * [`deploy`] — deterministic deployment of sites over a
//!   [`cellscope_geo::Geography`], density-proportional like a real plan;
//! * [`scheduler`] — an abstract LTE MAC: offered load in, KPIs out
//!   (served volume, TTI utilization, per-user throughput, active time);
//! * [`interconnect`] — the inter-MNO voice interconnection link whose
//!   capacity was exceeded by the week-10–12 voice surge (Section 4.2),
//!   including the network-operations response;
//! * [`kpi`] — the hourly per-cell KPI records of Section 2.4.

pub mod cell;
pub mod deploy;
pub mod interconnect;
pub mod kpi;
pub mod rat;
pub mod scheduler;
pub mod topology;

pub use cell::{Cell, CellCapacity, CellId, CellSite, SiteId};
pub use deploy::DeployConfig;
pub use interconnect::{DayOutcome, Interconnect, InterconnectConfig};
pub use kpi::{CellHourKpi, VoiceHourKpi};
pub use rat::Rat;
pub use scheduler::{HourLoad, Scheduler, SchedulerConfig, VoiceLoad};
pub use topology::Topology;
