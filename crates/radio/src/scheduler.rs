//! Abstract LTE scheduler: offered load in, radio KPIs out.
//!
//! Models the quantities Section 2.4 collects per 4G cell and hour:
//!
//! * UL/DL data volume — sum over all bearers with QCI 1–8;
//! * average number of active DL users — users with data in the DL buffer;
//! * average radio load — TTI utilization, "the number of active UEs the
//!   LTE scheduler assigns per TTI" (normalized here to 0–1 of schedulable
//!   resources);
//! * average user DL throughput — averaged over users active in the hour;
//! * seconds with active data.
//!
//! The model is intentionally analytic rather than packet-level: offered
//! volumes and user counts arrive per hour, and KPIs follow from a
//! processor-sharing view of the air interface. This keeps a country-scale
//! hourly simulation tractable while preserving the effects the paper
//! reports (load tracks volume; per-user throughput is *application*
//! limited when the cell is uncongested, which is exactly why throughput
//! fell with demand during lockdown instead of rising).

use crate::cell::CellCapacity;
use serde::{Deserialize, Serialize};

/// Conversational-voice load offered to one cell in one hour (QCI 1).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct VoiceLoad {
    /// Voice traffic volume in MB (both directions are near-symmetric;
    /// this is the per-direction volume).
    pub volume_mb: f64,
    /// Average number of simultaneously active voice users.
    pub simultaneous_users: f64,
}

/// All load offered to one cell in one hour.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct HourLoad {
    /// Offered downlink volume, MB (QCI 1–8 including voice DL).
    pub offered_dl_mb: f64,
    /// Offered uplink volume, MB.
    pub offered_ul_mb: f64,
    /// Average number of users with active DL transmission.
    pub active_dl_users: f64,
    /// Total users camped on the cell (active + idle), for the
    /// "total number of users connected" KPI of Figs. 10–11.
    pub connected_users: f64,
    /// Application-limited per-user DL throughput ceiling, Mbit/s.
    /// Content providers throttled streaming quality during the pandemic
    /// (Section 4.1), which this ceiling carries into the KPI.
    pub app_limit_mbps: f64,
    /// Conversational-voice component.
    pub voice: VoiceLoad,
}

/// Scheduler tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// Fraction of nominal capacity usable for user-plane data (the rest
    /// is reference signals / control overhead).
    pub usable_capacity_fraction: f64,
    /// Baseline radio packet loss at zero load (air interface floor).
    pub base_loss_rate: f64,
    /// How strongly cell load raises radio loss.
    pub loss_load_factor: f64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            usable_capacity_fraction: 0.85,
            base_loss_rate: 0.0008,
            loss_load_factor: 0.004,
        }
    }
}

/// Radio KPIs produced for one cell-hour (excluding interconnect effects,
/// which are applied nationally — see [`crate::interconnect`]).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct HourRadioKpi {
    /// Served DL volume, MB.
    pub dl_volume_mb: f64,
    /// Served UL volume, MB.
    pub ul_volume_mb: f64,
    /// Average active DL users.
    pub active_dl_users: f64,
    /// Total connected users (active + idle).
    pub connected_users: f64,
    /// Average per-user DL throughput, Mbit/s.
    pub user_dl_throughput_mbps: f64,
    /// TTI utilization, 0–1.
    pub tti_utilization: f64,
    /// Seconds in the hour with data in some buffer.
    pub active_seconds: f64,
    /// Served voice volume, MB.
    pub voice_volume_mb: f64,
    /// Average simultaneous voice users.
    pub voice_users: f64,
    /// Radio-layer loss contribution (before interconnect), 0–1.
    pub radio_loss_rate: f64,
}

/// The scheduler itself. Stateless: each cell-hour is independent given
/// its offered load, which is what lets the simulation parallelize.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Scheduler {
    config: SchedulerConfig,
}

impl Scheduler {
    /// Create with explicit tuning.
    pub fn new(config: SchedulerConfig) -> Scheduler {
        Scheduler { config }
    }

    /// Tuning in use.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// Serve one cell-hour of offered load.
    pub fn serve(&self, capacity: CellCapacity, load: &HourLoad) -> HourRadioKpi {
        let cfg = &self.config;
        let dl_cap_mb = capacity.dl_mb_per_hour() * cfg.usable_capacity_fraction;
        let ul_cap_mb = capacity.ul_mb_per_hour() * cfg.usable_capacity_fraction;

        // Voice bearers (QCI 1) are admission-controlled and scheduled
        // first; they are tiny relative to data so they essentially never
        // clip on the radio interface.
        let voice_mb = load.voice.volume_mb.min(dl_cap_mb);
        let data_dl_offered = load.offered_dl_mb.max(0.0);
        let data_ul_offered = load.offered_ul_mb.max(0.0);

        let dl_served = data_dl_offered.min((dl_cap_mb - voice_mb).max(0.0));
        let ul_served = data_ul_offered.min(ul_cap_mb);

        // TTI utilization tracks the served volume share of capacity; a
        // small floor accounts for always-on control traffic per camped
        // user.
        let rho = if dl_cap_mb > 0.0 {
            (dl_served + voice_mb) / dl_cap_mb
        } else {
            0.0
        };
        let tti = (rho + 0.00008 * load.connected_users).clamp(0.0, 1.0);

        // Per-user throughput: processor sharing among concurrently
        // active users, capped by the application limit. With the loads
        // the paper reports cells are uncongested, so the app limit is
        // what users actually see.
        let n = load.active_dl_users.max(1.0);
        let fair_share_mbps =
            (capacity.dl_mbps * cfg.usable_capacity_fraction * (1.0 - rho * 0.3)) / n;
        let user_tput = if load.active_dl_users > 0.0 && dl_served > 0.0 {
            fair_share_mbps.min(load.app_limit_mbps.max(0.01))
        } else {
            0.0
        };

        // Time with active data: each active user keeps the buffer busy
        // in bursts; saturate toward the full hour.
        let active_seconds = 3600.0 * (1.0 - (-(rho * 4.0 + load.active_dl_users * 0.05)).exp());

        // Radio-layer loss grows mildly with load.
        let radio_loss = cfg.base_loss_rate + cfg.loss_load_factor * rho * rho;

        HourRadioKpi {
            dl_volume_mb: dl_served,
            ul_volume_mb: ul_served,
            active_dl_users: load.active_dl_users,
            connected_users: load.connected_users,
            user_dl_throughput_mbps: user_tput,
            tti_utilization: tti,
            active_seconds,
            voice_volume_mb: voice_mb,
            voice_users: load.voice.simultaneous_users,
            radio_loss_rate: radio_loss,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rat::Rat;

    fn cap() -> CellCapacity {
        CellCapacity::typical(Rat::G4)
    }

    fn base_load() -> HourLoad {
        HourLoad {
            offered_dl_mb: 2_000.0,
            offered_ul_mb: 200.0,
            active_dl_users: 8.0,
            connected_users: 120.0,
            app_limit_mbps: 6.0,
            voice: VoiceLoad {
                volume_mb: 20.0,
                simultaneous_users: 1.5,
            },
        }
    }

    #[test]
    fn uncongested_cell_serves_everything() {
        let kpi = Scheduler::default().serve(cap(), &base_load());
        assert_eq!(kpi.dl_volume_mb, 2_000.0);
        assert_eq!(kpi.ul_volume_mb, 200.0);
        assert_eq!(kpi.voice_volume_mb, 20.0);
        assert!(kpi.tti_utilization > 0.0 && kpi.tti_utilization < 0.5);
    }

    #[test]
    fn served_volume_never_exceeds_capacity() {
        let mut load = base_load();
        load.offered_dl_mb = 1e9;
        load.offered_ul_mb = 1e9;
        let kpi = Scheduler::default().serve(cap(), &load);
        let cfg = SchedulerConfig::default();
        assert!(kpi.dl_volume_mb + kpi.voice_volume_mb <= cap().dl_mb_per_hour() * cfg.usable_capacity_fraction + 1e-6);
        assert!(kpi.ul_volume_mb <= cap().ul_mb_per_hour() * cfg.usable_capacity_fraction + 1e-6);
        assert!(kpi.tti_utilization <= 1.0);
    }

    #[test]
    fn throughput_is_application_limited_when_uncongested() {
        let kpi = Scheduler::default().serve(cap(), &base_load());
        assert!((kpi.user_dl_throughput_mbps - 6.0).abs() < 1e-9);
        // Lower the app limit (content throttling) -> throughput drops
        // even though the cell has headroom. This is the paper's
        // "throughput is application limited" finding.
        let mut throttled = base_load();
        throttled.app_limit_mbps = 5.0;
        let kpi2 = Scheduler::default().serve(cap(), &throttled);
        assert!((kpi2.user_dl_throughput_mbps - 5.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_fair_shares_under_congestion() {
        let mut load = base_load();
        load.offered_dl_mb = 1e7;
        load.active_dl_users = 200.0;
        load.app_limit_mbps = 50.0;
        let kpi = Scheduler::default().serve(cap(), &load);
        assert!(kpi.user_dl_throughput_mbps < 1.0, "{}", kpi.user_dl_throughput_mbps);
    }

    #[test]
    fn tti_monotone_in_offered_load() {
        let sched = Scheduler::default();
        let mut prev = -1.0;
        for mbs in [0.0, 500.0, 2_000.0, 10_000.0, 40_000.0, 1e6] {
            let mut load = base_load();
            load.offered_dl_mb = mbs;
            let kpi = sched.serve(cap(), &load);
            assert!(kpi.tti_utilization >= prev, "not monotone at {mbs}");
            prev = kpi.tti_utilization;
        }
    }

    #[test]
    fn loss_grows_with_load() {
        let sched = Scheduler::default();
        let idle = sched.serve(cap(), &HourLoad::default());
        let mut busy_load = base_load();
        busy_load.offered_dl_mb = 30_000.0;
        let busy = sched.serve(cap(), &busy_load);
        assert!(busy.radio_loss_rate > idle.radio_loss_rate);
        assert!(idle.radio_loss_rate >= SchedulerConfig::default().base_loss_rate);
    }

    #[test]
    fn idle_cell_has_zero_throughput_and_volume() {
        let kpi = Scheduler::default().serve(cap(), &HourLoad::default());
        assert_eq!(kpi.dl_volume_mb, 0.0);
        assert_eq!(kpi.user_dl_throughput_mbps, 0.0);
        assert!(kpi.active_seconds < 10.0);
    }
}
