//! The inter-MNO voice interconnection infrastructure.
//!
//! Section 4.2's key operational finding: the lockdown voice surge
//! ("seven years of growth … in the space of few days") exceeded the
//! capacity of the interconnect MNOs use to exchange voice traffic,
//! driving the **downlink** packet loss error rate for voice up by more
//! than 100% in weeks 10–12, until network operations provisioned more
//! capacity and loss dropped *below* pre-pandemic levels.
//!
//! [`Interconnect`] models that link as a day-stepped state machine:
//! offered off-net voice load vs. provisioned capacity gives a daily
//! loss contribution; sustained overload triggers the operations response
//! (a capacity upgrade) after a provisioning delay.

use serde::{Deserialize, Serialize};

/// Interconnect configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterconnectConfig {
    /// Provisioned capacity in offered-load units (same unit the daily
    /// offered load is reported in — national off-net voice MB/day).
    pub capacity: f64,
    /// Loss floor of the interconnect path at nominal utilization.
    pub base_loss_rate: f64,
    /// Utilization (offered/capacity) above which the link congests.
    pub congestion_threshold: f64,
    /// Loss added per unit of utilization beyond the threshold.
    pub overload_loss_slope: f64,
    /// Consecutive congested days before operations reacts.
    pub response_delay_days: u16,
    /// Capacity multiplier applied by the operations response.
    pub upgrade_factor: f64,
}

impl Default for InterconnectConfig {
    fn default() -> Self {
        InterconnectConfig {
            capacity: 1.0, // calibrated by `with_baseline_load`
            base_loss_rate: 0.0015,
            congestion_threshold: 0.92,
            overload_loss_slope: 0.002,
            // Capacity upgrades on an inter-operator link take weeks to
            // provision; the 2020 surge stayed loss-elevated through
            // weeks 10-12 before operations absorbed it (Section 4.2).
            response_delay_days: 20,
            upgrade_factor: 2.2,
        }
    }
}

impl InterconnectConfig {
    /// Dimension the link for a known baseline daily off-net voice load:
    /// capacity = `headroom` × baseline, the usual over-provisioning an
    /// operator carries into normal growth.
    pub fn with_baseline_load(baseline_daily_load: f64, headroom: f64) -> InterconnectConfig {
        InterconnectConfig {
            capacity: baseline_daily_load * headroom,
            ..InterconnectConfig::default()
        }
    }
}

/// Daily interconnect state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DayOutcome {
    /// Utilization = offered / capacity (after any upgrade this day).
    pub utilization: f64,
    /// Downlink voice loss contribution from the interconnect, 0–1.
    pub dl_loss_rate: f64,
    /// Whether the link was congested this day.
    pub congested: bool,
    /// Whether the operations upgrade happened this day.
    pub upgraded_today: bool,
}

/// The interconnect link state machine. Feed it one offered load per day
/// with [`Interconnect::step`], in chronological order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Interconnect {
    config: InterconnectConfig,
    capacity: f64,
    congested_streak: u16,
    upgraded: bool,
}

impl Interconnect {
    /// New link with the given configuration.
    pub fn new(config: InterconnectConfig) -> Interconnect {
        Interconnect {
            capacity: config.capacity,
            config,
            congested_streak: 0,
            upgraded: false,
        }
    }

    /// Current provisioned capacity.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Whether the operations upgrade has been applied.
    pub fn is_upgraded(&self) -> bool {
        self.upgraded
    }

    /// Advance one day with the given offered off-net voice load.
    pub fn step(&mut self, offered_load: f64) -> DayOutcome {
        // Operations responds at the *start* of the day after the streak
        // has run its course: provisioning happened overnight.
        let mut upgraded_today = false;
        if !self.upgraded && self.congested_streak >= self.config.response_delay_days {
            self.capacity *= self.config.upgrade_factor;
            self.upgraded = true;
            upgraded_today = true;
        }

        let utilization = if self.capacity > 0.0 {
            offered_load / self.capacity
        } else {
            f64::INFINITY
        };
        let congested = utilization > self.config.congestion_threshold;
        if congested {
            self.congested_streak = self.congested_streak.saturating_add(1);
        } else {
            self.congested_streak = 0;
        }

        // Loss: a floor scaled by utilization, plus a steep overload term.
        let overload = (utilization - self.config.congestion_threshold).max(0.0);
        let dl_loss_rate = (self.config.base_loss_rate * utilization
            + self.config.overload_loss_slope * overload)
            .clamp(0.0, 1.0);

        DayOutcome {
            utilization,
            dl_loss_rate,
            congested,
            upgraded_today,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> Interconnect {
        Interconnect::new(InterconnectConfig::with_baseline_load(100.0, 1.3))
    }

    #[test]
    fn nominal_load_has_floor_loss_only() {
        let mut ic = link();
        let out = ic.step(100.0);
        assert!(!out.congested);
        assert!(out.dl_loss_rate < InterconnectConfig::default().base_loss_rate);
        assert!(out.utilization > 0.7 && out.utilization < 0.8);
    }

    #[test]
    fn zero_load_zero_loss() {
        let mut ic = link();
        let out = ic.step(0.0);
        assert_eq!(out.dl_loss_rate, 0.0);
        assert!(!out.congested);
    }

    #[test]
    fn surge_congests_then_operations_fixes_it() {
        let mut ic = link();
        // Normal week.
        for _ in 0..7 {
            assert!(!ic.step(100.0).congested);
        }
        let baseline_loss = {
            let mut probe = link();
            probe.step(100.0).dl_loss_rate
        };
        // Voice surge: 2.4x baseline offered load.
        let mut spike_loss: f64 = 0.0;
        let mut upgrade_day = None;
        for day in 0..30 {
            let out = ic.step(240.0);
            spike_loss = spike_loss.max(out.dl_loss_rate);
            if out.upgraded_today {
                upgrade_day = Some(day);
                break;
            }
        }
        // Loss more than doubled during the congestion (paper: >+100%).
        assert!(
            spike_loss > 2.0 * baseline_loss,
            "spike {spike_loss} vs baseline {baseline_loss}"
        );
        let upgrade_day = upgrade_day.expect("operations should respond");
        assert!(upgrade_day >= 20, "upgrade before the response delay");

        // After the upgrade the same surge load runs uncongested and the
        // loss sits *below* the pre-surge baseline (paper Section 4.2).
        let after = ic.step(240.0);
        assert!(!after.congested);
        assert!(after.dl_loss_rate < baseline_loss * 1.5);
        assert!(ic.is_upgraded());
    }

    #[test]
    fn streak_resets_when_load_subsides() {
        let mut ic = link();
        for _ in 0..6 {
            ic.step(240.0); // congested
        }
        ic.step(50.0); // calm day resets the streak
        for _ in 0..6 {
            ic.step(240.0);
        }
        // Only 6 consecutive congested days — below the response delay,
        // so no upgrade yet.
        assert!(!ic.is_upgraded());
    }

    #[test]
    fn upgrade_happens_once() {
        let mut ic = link();
        let mut upgrades = 0;
        for _ in 0..60 {
            if ic.step(400.0).upgraded_today {
                upgrades += 1;
            }
        }
        assert_eq!(upgrades, 1);
    }

    #[test]
    fn loss_is_monotone_in_load() {
        let loads = [50.0, 80.0, 110.0, 140.0, 200.0, 400.0];
        let mut prev = -1.0;
        for &l in &loads {
            // fresh link each time: no upgrade state interference
            let out = Interconnect::new(InterconnectConfig::with_baseline_load(100.0, 1.3))
                .step(l);
            assert!(out.dl_loss_rate >= prev);
            prev = out.dl_loss_rate;
        }
    }
}
