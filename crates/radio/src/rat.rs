//! Radio Access Technologies.
//!
//! The studied network supports 2G, 3G and 4G (Section 2.1). The paper's
//! network-performance analysis focuses on 4G because "users spend on
//! average 75% of the time per day connected to 4G cells" (Section 2.4);
//! 3G and 2G cells still exist in the topology and receive dwell time so
//! that statistic is measurable rather than assumed.

use serde::{Deserialize, Serialize};

/// A Radio Access Technology generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Rat {
    /// GSM/GPRS — monitored on the Gb (data) and A (voice + mobility
    /// management) interfaces.
    G2,
    /// UMTS — monitored on the Iu-PS (data) and Iu-CS (voice) interfaces.
    G3,
    /// LTE — monitored at the MME on S1-MME plus the S1-UP user plane;
    /// carries VoLTE conversational voice as QCI-1 bearers.
    G4,
}

impl Rat {
    /// All RATs, oldest first.
    pub const ALL: [Rat; 3] = [Rat::G2, Rat::G3, Rat::G4];

    /// Marketing name.
    pub fn name(self) -> &'static str {
        match self {
            Rat::G2 => "2G",
            Rat::G3 => "3G",
            Rat::G4 => "4G",
        }
    }

    /// The control-plane interfaces the measurement infrastructure taps
    /// for this RAT (Section 2.1, "Radio Interfaces").
    pub fn monitored_interfaces(self) -> &'static [&'static str] {
        match self {
            Rat::G2 => &["Gb", "A"],
            Rat::G3 => &["Iu-PS", "Iu-CS"],
            Rat::G4 => &["S1-MME", "S1-UP"],
        }
    }

    /// Share of a smartphone's connected time spent camped on this RAT,
    /// calibrated to the paper's 75%-on-4G observation.
    pub fn typical_dwell_share(self) -> f64 {
        match self {
            Rat::G2 => 0.05,
            Rat::G3 => 0.20,
            Rat::G4 => 0.75,
        }
    }
}

impl std::fmt::Display for Rat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dwell_shares_sum_to_one() {
        let total: f64 = Rat::ALL.iter().map(|r| r.typical_dwell_share()).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn four_g_dominates_dwell() {
        assert_eq!(Rat::G4.typical_dwell_share(), 0.75);
    }

    #[test]
    fn interfaces_match_architecture_figure() {
        assert_eq!(Rat::G2.monitored_interfaces(), ["Gb", "A"]);
        assert_eq!(Rat::G3.monitored_interfaces(), ["Iu-PS", "Iu-CS"]);
        assert_eq!(Rat::G4.monitored_interfaces(), ["S1-MME", "S1-UP"]);
    }
}
