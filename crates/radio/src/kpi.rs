//! Hourly per-cell KPI records — the "Radio Network Performance" feed.
//!
//! Section 2.4 separates, per 4G cell and hour: UL/DL data volume over
//! all bearers (QCI 1–8), average active DL users, radio load (TTI
//! utilization), average user DL throughput, seconds with active data,
//! and — for conversational voice only (QCI 1) — voice volume, average
//! simultaneous voice users, and UL/DL packet loss error rates.
//!
//! [`CellHourKpi`] is exactly that record. The voice loss rates combine
//! the cell's radio-layer loss with the national interconnect loss of the
//! day (computed by [`crate::interconnect`] and passed in by the runner).

use crate::cell::CellId;
use crate::scheduler::HourRadioKpi;
use serde::{Deserialize, Serialize};

/// Conversational-voice (QCI 1) slice of a cell-hour.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct VoiceHourKpi {
    /// Total voice traffic volume, MB.
    pub volume_mb: f64,
    /// Average number of simultaneously active voice users.
    pub simultaneous_users: f64,
    /// Uplink packet loss error rate, 0–1.
    pub ul_loss_rate: f64,
    /// Downlink packet loss error rate, 0–1.
    pub dl_loss_rate: f64,
}

/// One cell-hour of the radio network performance feed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellHourKpi {
    /// The reporting cell.
    pub cell: CellId,
    /// Study day.
    pub day: u16,
    /// Hour of day, 0–23.
    pub hour: u8,
    /// Downlink data volume over all bearers (QCI 1–8), MB.
    pub dl_volume_mb: f64,
    /// Uplink data volume over all bearers, MB.
    pub ul_volume_mb: f64,
    /// Average users with active DL transmission.
    pub active_dl_users: f64,
    /// Total users connected (active + idle).
    pub connected_users: f64,
    /// Average user DL throughput, Mbit/s.
    pub user_dl_throughput_mbps: f64,
    /// Radio load as TTI utilization, 0–1.
    pub tti_utilization: f64,
    /// Seconds with active data in the hour.
    pub active_seconds: f64,
    /// Conversational-voice slice.
    pub voice: VoiceHourKpi,
}

impl CellHourKpi {
    /// Assemble the feed record from the scheduler output plus the
    /// day's interconnect loss contribution.
    ///
    /// Uplink voice loss only sees the radio layer (our MNO controls the
    /// uplink end-to-end until the interconnect hand-off measurement
    /// point); downlink voice crosses the inter-MNO interconnect first,
    /// which is why the week-10–12 congestion showed up only on DL
    /// (Section 4.2).
    pub fn from_radio(
        cell: CellId,
        day: u16,
        hour: u8,
        radio: &HourRadioKpi,
        interconnect_dl_loss: f64,
    ) -> CellHourKpi {
        CellHourKpi {
            cell,
            day,
            hour,
            dl_volume_mb: radio.dl_volume_mb + radio.voice_volume_mb,
            ul_volume_mb: radio.ul_volume_mb + radio.voice_volume_mb,
            active_dl_users: radio.active_dl_users,
            connected_users: radio.connected_users,
            user_dl_throughput_mbps: radio.user_dl_throughput_mbps,
            tti_utilization: radio.tti_utilization,
            active_seconds: radio.active_seconds,
            voice: VoiceHourKpi {
                volume_mb: radio.voice_volume_mb,
                simultaneous_users: radio.voice_users,
                ul_loss_rate: radio.radio_loss_rate,
                dl_loss_rate: (radio.radio_loss_rate + interconnect_dl_loss).min(1.0),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::HourRadioKpi;

    fn radio() -> HourRadioKpi {
        HourRadioKpi {
            dl_volume_mb: 1000.0,
            ul_volume_mb: 100.0,
            active_dl_users: 5.0,
            connected_users: 80.0,
            user_dl_throughput_mbps: 6.0,
            tti_utilization: 0.2,
            active_seconds: 1800.0,
            voice_volume_mb: 30.0,
            voice_users: 2.0,
            radio_loss_rate: 0.001,
        }
    }

    #[test]
    fn volumes_include_voice_bearer() {
        let kpi = CellHourKpi::from_radio(CellId(1), 3, 14, &radio(), 0.002);
        // "the sum of all data transferred on all cell bearers
        //  corresponding to QCI from 1 to 8"
        assert_eq!(kpi.dl_volume_mb, 1030.0);
        assert_eq!(kpi.ul_volume_mb, 130.0);
        assert_eq!(kpi.voice.volume_mb, 30.0);
    }

    #[test]
    fn interconnect_loss_hits_downlink_only() {
        let kpi = CellHourKpi::from_radio(CellId(1), 3, 14, &radio(), 0.002);
        assert!((kpi.voice.dl_loss_rate - 0.003).abs() < 1e-12);
        assert!((kpi.voice.ul_loss_rate - 0.001).abs() < 1e-12);
    }

    #[test]
    fn loss_rate_saturates_at_one() {
        let kpi = CellHourKpi::from_radio(CellId(0), 0, 0, &radio(), 2.0);
        assert_eq!(kpi.voice.dl_loss_rate, 1.0);
    }
}
