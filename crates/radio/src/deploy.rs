//! Deterministic network deployment over a synthetic geography.
//!
//! Places cell sites the way an operator's coverage plan does: site count
//! per zone scales with residents *and* daytime attraction (the City of
//! London has far more capacity than its 30k residents need), urban sites
//! are denser, and every site hosts a 4G cell plus — with RAT-dependent
//! probability — legacy 3G/2G cells. A small fraction of cells activates
//! mid-study so the daily-snapshot logic (Section 2.2) is exercised.

use crate::cell::{Cell, CellCapacity, CellId, CellSite, SiteId};
use crate::rat::Rat;
use crate::topology::Topology;
use cellscope_geo::Geography;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Deployment parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeployConfig {
    /// RNG seed (independent of the geography seed).
    pub seed: u64,
    /// Residents served per site in purely residential areas.
    pub residents_per_site: u32,
    /// Extra site weight per unit of work attraction (captures
    /// capacity deployed for daytime populations).
    pub attraction_weight: f64,
    /// Probability a site also hosts a 3G cell.
    pub p_3g: f64,
    /// Probability a site also hosts a 2G cell.
    pub p_2g: f64,
    /// Fraction of cells that activate on a random mid-study day (new
    /// deployments the topology snapshot must account for).
    pub mid_study_activation_rate: f64,
    /// Fraction of cells decommissioned on a random mid-study day
    /// (failures/swaps the daily snapshot must also account for).
    pub mid_study_deactivation_rate: f64,
    /// Number of study days (for activation-day sampling).
    pub num_days: u16,
}

impl Default for DeployConfig {
    fn default() -> Self {
        DeployConfig {
            seed: 0xBA5E,
            residents_per_site: 8_000,
            attraction_weight: 0.5,
            p_3g: 0.8,
            p_2g: 0.6,
            mid_study_activation_rate: 0.01,
            mid_study_deactivation_rate: 0.004,
            num_days: 100,
        }
    }
}

impl DeployConfig {
    /// A sparser deployment for fast tests.
    pub fn small(seed: u64) -> DeployConfig {
        DeployConfig {
            seed,
            residents_per_site: 80_000,
            ..DeployConfig::default()
        }
    }

    /// Deploy the network over `geo`.
    pub fn build(&self, geo: &Geography) -> Topology {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut sites: Vec<CellSite> = Vec::new();
        let mut cells: Vec<Cell> = Vec::new();

        for zone in geo.zones() {
            // Capacity planned for residents plus excess daytime visitors
            // (work_attraction is in resident-equivalent units, so the
            // excess over the resident base is the commuter/tourist load).
            let excess_daytime = (zone.work_attraction - zone.population as f64).max(0.0);
            let demand_units = zone.population as f64 + self.attraction_weight * excess_daytime;
            let n_sites = ((demand_units / self.residents_per_site as f64).round() as usize).max(1);
            let radius = (zone.area_km2 / std::f64::consts::PI).sqrt().max(0.2);
            for _ in 0..n_sites {
                let angle = rng.gen_range(0.0..std::f64::consts::TAU);
                let r = radius * rng.gen_range(0.0f64..1.0).sqrt();
                let location = zone.centroid.offset(r * angle.cos(), r * angle.sin());
                let site_id = SiteId(sites.len() as u32);
                let mut hosted = Vec::new();
                let add_cell = |rat: Rat, cells: &mut Vec<Cell>, rng: &mut StdRng| {
                    let id = CellId(cells.len() as u32);
                    let active_from = if rng.gen_bool(self.mid_study_activation_rate) {
                        rng.gen_range(1..self.num_days.max(2))
                    } else {
                        0
                    };
                    let active_to = if active_from == 0
                        && rng.gen_bool(self.mid_study_deactivation_rate)
                    {
                        rng.gen_range(1..self.num_days.max(2))
                    } else {
                        u16::MAX
                    };
                    cells.push(Cell {
                        id,
                        site: site_id,
                        rat,
                        zone: zone.id,
                        location,
                        capacity: CellCapacity::typical(rat),
                        active_from,
                        active_to,
                    });
                    id
                };
                hosted.push(add_cell(Rat::G4, &mut cells, &mut rng));
                if rng.gen_bool(self.p_3g) {
                    hosted.push(add_cell(Rat::G3, &mut cells, &mut rng));
                }
                if rng.gen_bool(self.p_2g) {
                    hosted.push(add_cell(Rat::G2, &mut cells, &mut rng));
                }
                sites.push(CellSite {
                    id: site_id,
                    location,
                    zone: zone.id,
                    cells: hosted,
                });
            }
        }
        Topology::from_parts(sites, cells, geo.num_zones())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellscope_geo::{County, SynthConfig};

    fn world() -> (Geography, Topology) {
        let geo = SynthConfig::small(3).build();
        let topo = DeployConfig::small(3).build(&geo);
        (geo, topo)
    }

    #[test]
    fn deployment_is_deterministic() {
        let geo = SynthConfig::small(3).build();
        let a = DeployConfig::small(3).build(&geo);
        let b = DeployConfig::small(3).build(&geo);
        assert_eq!(a.sites().len(), b.sites().len());
        assert_eq!(a.cells().len(), b.cells().len());
        for (x, y) in a.cells().iter().zip(b.cells()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn every_zone_has_coverage() {
        let (geo, topo) = world();
        for zone in geo.zones() {
            assert!(
                !topo.cells_in_zone(zone.id).is_empty(),
                "zone {} has no cells",
                zone.id
            );
        }
    }

    #[test]
    fn every_site_has_a_4g_cell() {
        let (_, topo) = world();
        for site in topo.sites() {
            assert!(
                site.cells
                    .iter()
                    .any(|&c| topo.cell(c).rat == Rat::G4),
                "site {} lacks 4G",
                site.id
            );
        }
    }

    #[test]
    fn urban_density_beats_rural() {
        let (geo, topo) = world();
        let sites_per_capita = |county: County| -> f64 {
            let zones = geo.zones_in_county(county);
            let pop: u64 = zones
                .iter()
                .map(|&z| geo.zone(z).population as u64)
                .sum();
            let sites = topo
                .sites()
                .iter()
                .filter(|s| geo.zone(s.zone).county == county)
                .count();
            sites as f64 / pop.max(1) as f64
        };
        // Inner London gets disproportionate capacity per *resident*
        // because of its daytime attraction.
        assert!(
            sites_per_capita(County::InnerLondon) > sites_per_capita(County::RuralSouthWest)
        );
    }

    #[test]
    fn snapshot_counts_track_churn() {
        let (_, topo) = world();
        // The daily snapshot sees activations raise and deactivations
        // lower the active-cell count across the study.
        let activated = topo.cells().iter().filter(|c| c.active_from > 0).count();
        let deactivated = topo
            .cells()
            .iter()
            .filter(|c| c.active_to != u16::MAX)
            .count();
        assert!(activated > 0, "no mid-study activations sampled");
        assert!(deactivated > 0, "no mid-study deactivations sampled");
        // No cell both activates late and deactivates (a nonsense window).
        assert!(topo
            .cells()
            .iter()
            .all(|c| !(c.active_from > 0 && c.active_to != u16::MAX)));
    }

    #[test]
    fn most_cells_active_from_day_zero() {
        let (_, topo) = world();
        let late = topo
            .cells()
            .iter()
            .filter(|c| c.active_from > 0)
            .count();
        let frac = late as f64 / topo.cells().len() as f64;
        assert!(frac < 0.05, "too many late activations: {frac}");
    }
}
