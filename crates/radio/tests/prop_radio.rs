//! Property tests for the radio layer: the spatial index against brute
//! force, scheduler conservation laws, and interconnect behaviour.

use cellscope_geo::{Point, ZoneId};
use cellscope_radio::{
    Cell, CellCapacity, CellId, CellSite, HourLoad, Interconnect, InterconnectConfig,
    Rat, Scheduler, SiteId, Topology, VoiceLoad,
};
use proptest::prelude::*;

fn topology_strategy() -> impl Strategy<Value = (Topology, Vec<Point>)> {
    (
        prop::collection::vec((-200.0f64..800.0, -100.0f64..700.0), 1..120),
        prop::collection::vec((-300.0f64..900.0, -200.0f64..800.0), 1..40),
    )
        .prop_map(|(site_points, query_points)| {
            let mut sites = Vec::new();
            let mut cells = Vec::new();
            for (i, (x, y)) in site_points.iter().enumerate() {
                let id = SiteId(i as u32);
                let cid = CellId(i as u32);
                sites.push(CellSite {
                    id,
                    location: Point::new(*x, *y),
                    zone: ZoneId(0),
                    cells: vec![cid],
                });
                cells.push(Cell {
                    id: cid,
                    site: id,
                    rat: Rat::G4,
                    zone: ZoneId(0),
                    location: Point::new(*x, *y),
                    capacity: CellCapacity::typical(Rat::G4),
                    active_from: 0,
                    active_to: u16::MAX,
                });
            }
            let topo = Topology::from_parts(sites, cells, 1);
            let queries = query_points
                .into_iter()
                .map(|(x, y)| Point::new(x, y))
                .collect();
            (topo, queries)
        })
}

proptest! {
    /// The grid index always returns a site at the true minimum distance
    /// (ties may resolve to either site).
    #[test]
    fn grid_nearest_matches_brute_force((topo, queries) in topology_strategy()) {
        for p in queries {
            let fast = topo.nearest_site(p);
            let brute = topo.nearest_site_brute(p);
            let d_fast = topo.site(fast).location.distance_km(p);
            let d_brute = topo.site(brute).location.distance_km(p);
            prop_assert!(
                (d_fast - d_brute).abs() < 1e-9,
                "grid {d_fast} vs brute {d_brute}"
            );
        }
    }

    /// sites_within returns exactly the sites inside the radius.
    #[test]
    fn sites_within_matches_filter((topo, queries) in topology_strategy(), radius in 0.0f64..300.0) {
        for p in queries.into_iter().take(5) {
            let mut got = topo.sites_within(p, radius);
            got.sort();
            let mut expected: Vec<SiteId> = topo
                .sites()
                .iter()
                .filter(|s| s.location.distance_km(p) <= radius)
                .map(|s| s.id)
                .collect();
            expected.sort();
            prop_assert_eq!(got, expected);
        }
    }

    /// Scheduler conservation: served volume never exceeds offered or
    /// capacity, and all outputs stay in range.
    #[test]
    fn scheduler_conservation(
        dl in 0.0f64..1e6,
        ul in 0.0f64..1e6,
        users in 0.0f64..1e4,
        connected in 0.0f64..1e5,
        app_limit in 0.1f64..100.0,
        voice_mb in 0.0f64..1e4,
    ) {
        let scheduler = Scheduler::default();
        let capacity = CellCapacity::typical(Rat::G4);
        let load = HourLoad {
            offered_dl_mb: dl,
            offered_ul_mb: ul,
            active_dl_users: users,
            connected_users: connected,
            app_limit_mbps: app_limit,
            voice: VoiceLoad { volume_mb: voice_mb, simultaneous_users: 1.0 },
        };
        let kpi = scheduler.serve(capacity, &load);
        prop_assert!(kpi.dl_volume_mb <= dl + 1e-9);
        prop_assert!(kpi.ul_volume_mb <= ul + 1e-9);
        prop_assert!(kpi.dl_volume_mb + kpi.voice_volume_mb <= capacity.dl_mb_per_hour() + 1e-6);
        prop_assert!((0.0..=1.0).contains(&kpi.tti_utilization));
        prop_assert!((0.0..=3600.0).contains(&kpi.active_seconds));
        prop_assert!(kpi.user_dl_throughput_mbps <= app_limit + 1e-9);
        prop_assert!((0.0..=1.0).contains(&kpi.radio_loss_rate));
    }

    /// Scheduler is monotone: more offered downlink never reduces the
    /// served volume or the utilization.
    #[test]
    fn scheduler_monotone(base in 0.0f64..50_000.0, extra in 0.0f64..50_000.0) {
        let scheduler = Scheduler::default();
        let capacity = CellCapacity::typical(Rat::G4);
        let mk = |dl: f64| HourLoad {
            offered_dl_mb: dl,
            offered_ul_mb: 100.0,
            active_dl_users: 5.0,
            connected_users: 100.0,
            app_limit_mbps: 8.0,
            voice: VoiceLoad::default(),
        };
        let a = scheduler.serve(capacity, &mk(base));
        let b = scheduler.serve(capacity, &mk(base + extra));
        prop_assert!(b.dl_volume_mb >= a.dl_volume_mb - 1e-9);
        prop_assert!(b.tti_utilization >= a.tti_utilization - 1e-9);
        prop_assert!(b.radio_loss_rate >= a.radio_loss_rate - 1e-12);
    }

    /// Interconnect: loss is within [0,1], zero at zero load, and the
    /// link upgrades at most once no matter the load pattern.
    #[test]
    fn interconnect_safety(loads in prop::collection::vec(0.0f64..500.0, 1..200)) {
        let mut link = Interconnect::new(InterconnectConfig::with_baseline_load(100.0, 1.15));
        let mut upgrades = 0;
        for load in loads {
            let out = link.step(load);
            prop_assert!((0.0..=1.0).contains(&out.dl_loss_rate));
            if out.upgraded_today {
                upgrades += 1;
            }
            if load == 0.0 {
                prop_assert_eq!(out.dl_loss_rate, 0.0);
            }
        }
        prop_assert!(upgrades <= 1);
    }

    /// Cell activation windows behave as half-open membership tests.
    #[test]
    fn activation_window(from in 0u16..200, len in 0u16..200, day in 0u16..400) {
        let cell = Cell {
            id: CellId(0),
            site: SiteId(0),
            rat: Rat::G4,
            zone: ZoneId(0),
            location: Point::new(0.0, 0.0),
            capacity: CellCapacity::typical(Rat::G4),
            active_from: from,
            active_to: from.saturating_add(len),
        };
        prop_assert_eq!(
            cell.is_active(day),
            day >= from && day <= from.saturating_add(len)
        );
    }
}
