//! Counter-based deterministic seeding.
//!
//! Every stochastic decision in the simulator derives from
//! `(scenario seed, subscriber, day, stream)` through SplitMix64, so:
//!
//! * the same scenario seed reproduces the same study bit-for-bit;
//! * trajectories for different (user, day) pairs are independent and
//!   can be generated in any order or in parallel;
//! * adding a new consumer of randomness (a new `stream`) does not
//!   perturb existing ones.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 finalizer: a strong 64-bit mixing function.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mix an arbitrary list of components into one seed.
pub fn mix(components: &[u64]) -> u64 {
    let mut acc = 0x243F_6A88_85A3_08D3; // pi digits, nothing up the sleeve
    for &c in components {
        acc = splitmix64(acc ^ c);
    }
    acc
}

/// A seeded RNG for one (scenario, subscriber, day, stream) tuple.
pub fn rng_for(scenario_seed: u64, subscriber: u32, day: u16, stream: u64) -> StdRng {
    StdRng::seed_from_u64(mix(&[scenario_seed, subscriber as u64, day as u64, stream]))
}

/// A uniform f64 in [0, 1) straight from a mixed seed — cheaper than
/// materializing an RNG when a single draw decides something.
pub fn uniform_for(scenario_seed: u64, subscriber: u32, day: u16, stream: u64) -> f64 {
    let bits = mix(&[scenario_seed, subscriber as u64, day as u64, stream]);
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn splitmix_is_deterministic_and_nontrivial() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(0), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
    }

    #[test]
    fn mix_sensitive_to_every_component() {
        let base = mix(&[1, 2, 3]);
        assert_ne!(base, mix(&[0, 2, 3]));
        assert_ne!(base, mix(&[1, 0, 3]));
        assert_ne!(base, mix(&[1, 2, 0]));
        assert_ne!(base, mix(&[1, 2]));
    }

    #[test]
    fn rng_reproducible_per_tuple() {
        let mut a = rng_for(42, 7, 30, 1);
        let mut b = rng_for(42, 7, 30, 1);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = rng_for(42, 7, 31, 1);
        let first_a = rng_for(42, 7, 30, 1).gen::<u64>();
        assert_ne!(first_a, c.gen::<u64>());
    }

    #[test]
    fn uniform_in_range_and_spread() {
        let mut sum = 0.0;
        let n = 10_000;
        for i in 0..n {
            let u = uniform_for(1, i, 0, 0);
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
