//! Deterministic population synthesis.
//!
//! Builds the MNO's subscriber base over a geography + topology:
//! market-share sampling of homes, device classes (smartphone vs M2M),
//! native vs roamer SIMs, behavioural segments, compliance draws,
//! anchor places, and the Inner-London relocation plans of Section 3.4.

use crate::anchors::{Anchor, AnchorKind, AnchorSet};
use crate::behavior::ClusterProfile;
use crate::relocation::Relocation;
use crate::rng;
use crate::subscriber::{DeviceClass, Segment, Subscriber, SubscriberId};
use cellscope_epidemic::RelocationWave;
use cellscope_geo::{County, Geography, Point, ZoneId};
use cellscope_radio::{SiteId, Topology};
use cellscope_time::Date;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Population synthesis parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PopulationConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of SIMs to synthesize (the MNO's subscriber base at the
    /// simulation's scale).
    pub num_subscribers: u32,
    /// Fraction of SIMs that are M2M devices rather than smartphones.
    pub m2m_rate: f64,
    /// Fraction of SIMs that are inbound international roamers.
    pub roamer_rate: f64,
    /// Fraction of Inner-London residents holding a usable secondary
    /// location (second residence / family home / long-stay base).
    pub london_second_home_rate: f64,
    /// Of those, the fraction that actually leaves during the
    /// pre-lockdown window. Tuned so ≈10% of Inner-London residents are
    /// absent from week 13 onward (paper Section 3.4).
    pub relocation_uptake: f64,
    /// First study day of the simulation window (for converting dates).
    pub study_start: Date,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig {
            seed: 0x5EED,
            num_subscribers: 30_000,
            m2m_rate: 0.06,
            roamer_rate: 0.02,
            london_second_home_rate: 0.14,
            relocation_uptake: 0.80,
            study_start: cellscope_time::STUDY_START,
        }
    }
}

/// The synthesized subscriber base.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Population {
    subscribers: Vec<Subscriber>,
}

impl Population {
    /// All subscribers.
    pub fn subscribers(&self) -> &[Subscriber] {
        &self.subscribers
    }

    /// Look up one subscriber.
    pub fn subscriber(&self, id: SubscriberId) -> &Subscriber {
        &self.subscribers[id.index()]
    }

    /// Number of subscribers.
    pub fn len(&self) -> usize {
        self.subscribers.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.subscribers.is_empty()
    }

    /// Synthesize a population.
    ///
    /// `waves` are the schedule's relocation waves: each subscriber
    /// whose home county a wave empties may draw a relocation plan (an
    /// empty slice means nobody ever leaves). The waves participate in
    /// the single RNG stream, so two runs with equal configs and waves
    /// are bit-identical.
    pub fn synthesize(
        config: &PopulationConfig,
        waves: &[RelocationWave],
        geo: &Geography,
        topo: &Topology,
    ) -> Population {
        let mut rng = rng::rng_for(config.seed, 0, 0, 0xB0B);
        // Cumulative zone weights proportional to resident population.
        let mut cum: Vec<f64> = Vec::with_capacity(geo.num_zones());
        let mut acc = 0.0;
        for z in geo.zones() {
            acc += z.population as f64;
            cum.push(acc);
        }
        let total_weight = acc;

        // Tourists live where leisure attraction dwarfs residents.
        let tourist_prob = |zone: &cellscope_geo::Zone| -> f64 {
            let ratio = zone.leisure_attraction / (zone.population as f64).max(1.0);
            (0.008 * ratio).clamp(0.0, 0.5)
        };

        let mut subscribers = Vec::with_capacity(config.num_subscribers as usize);
        for i in 0..config.num_subscribers {
            let id = SubscriberId(i);
            // Sample home zone by population weight.
            let draw = rng.gen_range(0.0..total_weight);
            let zi = cum.partition_point(|&c| c <= draw).min(geo.num_zones() - 1);
            let home_zone = geo.zones()[zi].id;
            let zone = geo.zone(home_zone);
            let profile = ClusterProfile::of(zone.cluster);

            // Home location: scattered within the zone.
            let zone_radius = (zone.area_km2 / std::f64::consts::PI).sqrt();
            let home_point = scatter(zone.centroid, zone_radius, &mut rng);
            let home_site = topo.nearest_site(home_point);
            let home_anchor = anchor_at(AnchorKind::Home, home_site, topo, geo);

            let device = if rng.gen_bool(config.m2m_rate) {
                DeviceClass::M2m
            } else {
                DeviceClass::Smartphone
            };
            let native = !rng.gen_bool(config.roamer_rate);

            let segment = if device == DeviceClass::M2m {
                Segment::HomeMaker // unused for M2M; they never move
            } else if rng.gen_bool(tourist_prob(zone)) {
                Segment::Tourist
            } else {
                let r: f64 = rng.gen();
                if r < 0.52 {
                    Segment::Worker {
                        essential: rng.gen_bool(0.20),
                    }
                } else if r < 0.65 {
                    Segment::Student
                } else if r < 0.85 {
                    Segment::Retiree
                } else {
                    Segment::HomeMaker
                }
            };

            let compliance = (0.90 + 0.08 * gaussian(&mut rng)).clamp(0.30, 1.0);

            let mut anchors = AnchorSet {
                home: Some(home_anchor),
                ..AnchorSet::default()
            };

            if device == DeviceClass::Smartphone {
                // Work/school anchor.
                if segment.has_daytime_anchor() {
                    let sigma = if matches!(segment, Segment::Student) {
                        (profile.commute_sigma_km * 0.5).max(2.0)
                    } else {
                        profile.commute_sigma_km
                    };
                    let work_zone = sample_zone_weighted(geo, home_point, sigma, true, &mut rng);
                    anchors.work = Some(sample_anchor_in_zone(
                        AnchorKind::Work,
                        work_zone,
                        geo,
                        topo,
                        &mut rng,
                    ));
                }

                // Leisure anchors: 1–4. Most are local; a minority are
                // long-range (family in another county, a recurring away
                // destination) — these keep a baseline of cross-county
                // presence on ordinary days, without which the mobility
                // matrix would have empty week-9 rows.
                let n_leisure = 1 + (rng.gen_range(0.0..1.0f64) * 3.3) as usize;
                for _ in 0..n_leisure {
                    let sigma = if rng.gen_bool(0.30) {
                        80.0
                    } else {
                        profile.leisure_sigma_km
                    };
                    let lz = sample_zone_weighted(
                        geo,
                        home_point,
                        sigma,
                        false,
                        &mut rng,
                    );
                    anchors.leisure.push(sample_anchor_in_zone(
                        AnchorKind::Leisure,
                        lz,
                        geo,
                        topo,
                        &mut rng,
                    ));
                }

                // Weekend-trip anchor in another county, for those with
                // the habit (~55%).
                if rng.gen_bool(0.55) {
                    if let Some(wz) =
                        sample_weekend_zone(geo, zone.county, home_point, &mut rng)
                    {
                        anchors.weekend = Some(sample_anchor_in_zone(
                            AnchorKind::WeekendTrip,
                            wz,
                            geo,
                            topo,
                            &mut rng,
                        ));
                    }
                }

                // Neighborhood sites within walking/errand range.
                let wander_radius = match zone.cluster.density_class() {
                    cellscope_geo::oac::DensityClass::Rural => 8.0,
                    cellscope_geo::oac::DensityClass::Suburban => 4.0,
                    _ => 2.5,
                };
                let mut nearby = topo.sites_within(home_point, wander_radius);
                nearby.retain(|&s| s != home_site);
                // Keep a bounded, deterministic selection.
                nearby.sort_by_key(|s| s.0);
                let keep = ((profile.wander_sites_mean * 2.5).ceil() as usize).clamp(2, 12);
                while nearby.len() > keep {
                    let idx = rng.gen_range(0..nearby.len());
                    nearby.swap_remove(idx);
                }
                anchors.neighborhood = nearby
                    .into_iter()
                    .map(|s| anchor_at(AnchorKind::Leisure, s, topo, geo))
                    .collect();
            }

            // Relocation plans: smartphone natives in a wave's county.
            let mut relocation = None;
            for wave in waves {
                if relocation.is_some()
                    || device != DeviceClass::Smartphone
                    || !native
                    || zone.county != wave.from_county
                {
                    continue;
                }
                let has_secondary = match segment {
                    Segment::Tourist => true, // long-stay base abroad
                    Segment::Student => rng.gen_bool(0.45), // family homes
                    _ => rng.gen_bool(config.london_second_home_rate),
                };
                if has_secondary && rng.gen_bool(config.relocation_uptake) {
                    let destination = wave.sample_destination(rng.gen());
                    let depart_date =
                        wave.start.add_days(rng.gen_range(0..wave.days.max(1)));
                    let depart_day = depart_date
                        .days_since(config.study_start)
                        .clamp(0, u16::MAX as i64)
                        as u16;
                    let return_day = if rng.gen_bool(wave.stay_away_prob) {
                        u16::MAX
                    } else {
                        depart_day + rng.gen_range(wave.return_min_days..wave.return_max_days)
                    };
                    relocation = Some(Relocation {
                        destination,
                        depart_day,
                        return_day,
                    });
                    // Second-home anchor + its neighborhood.
                    if segment != Segment::Tourist {
                        if let Some(sz) =
                            sample_zone_in_county(geo, destination, &mut rng)
                        {
                            let a = sample_anchor_in_zone(
                                AnchorKind::SecondHome,
                                sz,
                                geo,
                                topo,
                                &mut rng,
                            );
                            let mut nearby = topo.sites_within(a.location, 6.0);
                            nearby.retain(|&s| s != a.site);
                            nearby.sort_by_key(|s| s.0);
                            nearby.truncate(3);
                            anchors.second_neighborhood = nearby
                                .into_iter()
                                .map(|s| anchor_at(AnchorKind::SecondHome, s, topo, geo))
                                .collect();
                            // Second-home owners spend baseline weekends
                            // there too — this is what puts the sustained
                            // relocation counties (Hampshire, Kent) in the
                            // week-9 top-10 that Fig. 7 ranks by.
                            anchors.weekend = Some(Anchor {
                                kind: AnchorKind::WeekendTrip,
                                ..a
                            });
                            anchors.second_home = Some(a);
                        }
                    }
                }
            }

            subscribers.push(Subscriber {
                id,
                home_zone,
                home_cluster: zone.cluster,
                device,
                native,
                segment,
                compliance,
                anchors,
                relocation,
            });
        }
        Population { subscribers }
    }
}

/// Build an anchor for a site.
fn anchor_at(kind: AnchorKind, site: SiteId, topo: &Topology, _geo: &Geography) -> Anchor {
    let s = topo.site(site);
    Anchor {
        kind,
        site,
        zone: s.zone,
        location: s.location,
    }
}

/// Scatter a point uniformly within a disc.
fn scatter(center: Point, radius: f64, rng: &mut StdRng) -> Point {
    let angle = rng.gen_range(0.0..std::f64::consts::TAU);
    let r = radius.max(0.05) * rng.gen_range(0.0f64..1.0).sqrt();
    center.offset(r * angle.cos(), r * angle.sin())
}

/// Box–Muller standard normal.
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Sample a zone with weight `attraction × exp(-d / sigma)`.
///
/// `work` selects work vs leisure attraction. Falls back to the nearest
/// zone if all weights underflow.
fn sample_zone_weighted(
    geo: &Geography,
    from: Point,
    sigma_km: f64,
    work: bool,
    rng: &mut StdRng,
) -> ZoneId {
    let mut total = 0.0;
    let mut cum: Vec<f64> = Vec::with_capacity(geo.num_zones());
    for z in geo.zones() {
        let d = z.centroid.distance_km(from);
        let attraction = if work {
            z.work_attraction
        } else {
            z.leisure_attraction
        };
        let w = attraction * (-d / sigma_km).exp();
        total += w;
        cum.push(total);
    }
    if total <= 0.0 {
        return geo.nearest_zone(from).id;
    }
    let draw = rng.gen_range(0.0..total);
    let idx = cum.partition_point(|&c| c <= draw).min(geo.num_zones() - 1);
    geo.zones()[idx].id
}

/// Sample a weekend-trip zone: another county, leisure-weighted with a
/// gentle distance decay (people do drive a couple hours).
fn sample_weekend_zone(
    geo: &Geography,
    home_county: County,
    from: Point,
    rng: &mut StdRng,
) -> Option<ZoneId> {
    let mut total = 0.0;
    let mut entries: Vec<(ZoneId, f64)> = Vec::new();
    for z in geo.zones() {
        if z.county == home_county {
            continue;
        }
        let d = z.centroid.distance_km(from);
        let w = z.leisure_attraction * (-d / 80.0).exp();
        if w > 0.0 {
            total += w;
            entries.push((z.id, total));
        }
    }
    if total <= 0.0 {
        return None;
    }
    let draw = rng.gen_range(0.0..total);
    let idx = entries.partition_point(|&(_, c)| c <= draw).min(entries.len() - 1);
    Some(entries[idx].0)
}

/// Sample a zone within a county, weighted by leisure attraction.
fn sample_zone_in_county(geo: &Geography, county: County, rng: &mut StdRng) -> Option<ZoneId> {
    let zones = geo.zones_in_county(county);
    if zones.is_empty() {
        return None;
    }
    let total: f64 = zones
        .iter()
        .map(|&z| geo.zone(z).leisure_attraction)
        .sum();
    if total <= 0.0 {
        return Some(zones[rng.gen_range(0..zones.len())]);
    }
    let draw = rng.gen_range(0.0..total);
    let mut acc = 0.0;
    for &z in zones {
        acc += geo.zone(z).leisure_attraction;
        if draw < acc {
            return Some(z);
        }
    }
    zones.last().copied()
}

/// Sample an anchor at a random site within a zone (or the nearest site
/// to the zone centroid when the zone itself hosts none).
fn sample_anchor_in_zone(
    kind: AnchorKind,
    zone: ZoneId,
    geo: &Geography,
    topo: &Topology,
    rng: &mut StdRng,
) -> Anchor {
    let z = geo.zone(zone);
    let radius = (z.area_km2 / std::f64::consts::PI).sqrt();
    let p = scatter(z.centroid, radius, rng);
    let site = topo.nearest_site(p);
    anchor_at(kind, site, topo, geo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellscope_geo::SynthConfig;
    use cellscope_radio::DeployConfig;

    fn world() -> (Geography, Topology) {
        let geo = SynthConfig::small(5).build();
        let topo = DeployConfig::small(5).build(&geo);
        (geo, topo)
    }

    fn uk_waves() -> Vec<RelocationWave> {
        cellscope_epidemic::PhaseSchedule::uk_2020().relocation_waves
    }

    fn population(n: u32) -> (Geography, Topology, Population) {
        let (geo, topo) = world();
        let cfg = PopulationConfig {
            num_subscribers: n,
            seed: 99,
            ..PopulationConfig::default()
        };
        let pop = Population::synthesize(&cfg, &uk_waves(), &geo, &topo);
        (geo, topo, pop)
    }

    #[test]
    fn synthesis_is_deterministic() {
        let (geo, topo) = world();
        let cfg = PopulationConfig {
            num_subscribers: 500,
            seed: 1,
            ..PopulationConfig::default()
        };
        let a = Population::synthesize(&cfg, &uk_waves(), &geo, &topo);
        let b = Population::synthesize(&cfg, &uk_waves(), &geo, &topo);
        assert_eq!(a.subscribers(), b.subscribers());
    }

    #[test]
    fn everyone_has_home_and_important_places_in_range() {
        let (_, _, pop) = population(2_000);
        for s in pop.subscribers() {
            assert!(s.anchors.home.is_some(), "{} lacks home", s.id);
            if s.device == DeviceClass::Smartphone {
                let n = s.anchors.num_important_places();
                assert!(
                    (1..=8).contains(&n),
                    "{} has {n} important places",
                    s.id
                );
            }
        }
    }

    #[test]
    fn device_and_nativity_rates_approximately_match() {
        let (_, _, pop) = population(8_000);
        let m2m = pop
            .subscribers()
            .iter()
            .filter(|s| s.device == DeviceClass::M2m)
            .count() as f64
            / pop.len() as f64;
        let roamers = pop
            .subscribers()
            .iter()
            .filter(|s| !s.native)
            .count() as f64
            / pop.len() as f64;
        assert!((0.03..0.09).contains(&m2m), "m2m rate {m2m}");
        assert!((0.005..0.04).contains(&roamers), "roamer rate {roamers}");
    }

    #[test]
    fn homes_follow_population_distribution() {
        let (geo, _, pop) = population(12_000);
        // Compare subscriber share vs census share for the largest county.
        let census_share = geo.census().county_population(County::OuterLondon) as f64
            / geo.census().total_population() as f64;
        let sub_share = pop
            .subscribers()
            .iter()
            .filter(|s| geo.zone(s.home_zone).county == County::OuterLondon)
            .count() as f64
            / pop.len() as f64;
        assert!(
            (sub_share - census_share).abs() < 0.03,
            "census {census_share} vs subscribers {sub_share}"
        );
    }

    #[test]
    fn inner_london_relocation_share_near_ten_percent() {
        let (geo, _, pop) = population(20_000);
        let inner: Vec<_> = pop
            .subscribers()
            .iter()
            .filter(|s| {
                geo.zone(s.home_zone).county == County::InnerLondon
                    && s.in_study_population()
            })
            .collect();
        assert!(inner.len() > 300, "need enough Inner-London residents");
        // Absent on a mid-lockdown day (Apr 15 = study day 74).
        let away = inner.iter().filter(|s| s.is_relocated(74)).count() as f64
            / inner.len() as f64;
        assert!(
            (0.05..0.25).contains(&away),
            "relocated share {away}"
        );
    }

    #[test]
    fn relocations_only_from_inner_london() {
        let (geo, _, pop) = population(8_000);
        for s in pop.subscribers() {
            if s.relocation.is_some() {
                assert_eq!(geo.zone(s.home_zone).county, County::InnerLondon);
            }
        }
    }

    #[test]
    fn relocation_departures_fall_in_march_window() {
        let (_, _, pop) = population(20_000);
        let start = cellscope_time::STUDY_START;
        for s in pop.subscribers() {
            if let Some(r) = &s.relocation {
                let date = start.add_days(r.depart_day as i64);
                assert!(
                    date >= Date::ymd(2020, 3, 14) && date <= Date::ymd(2020, 3, 25),
                    "departure {date}"
                );
            }
        }
    }

    #[test]
    fn no_waves_means_no_departures() {
        // A schedule without relocation waves (e.g. the no-intervention
        // control) synthesizes a population in which nobody ever leaves.
        let (geo, topo) = world();
        let cfg = PopulationConfig {
            num_subscribers: 5_000,
            seed: 99,
            ..PopulationConfig::default()
        };
        let pop = Population::synthesize(&cfg, &[], &geo, &topo);
        for sub in pop.subscribers() {
            assert!(sub.relocation.is_none(), "{} has a plan", sub.id);
            for day in [0u16, 40, 70, 99] {
                assert!(!sub.is_relocated(day), "{} away on {day}", sub.id);
            }
        }
    }

    #[test]
    fn waves_can_empty_any_county() {
        // The wave's county is data, not code: point one at Greater
        // Manchester and its residents (not London's) draw plans.
        let (geo, topo) = world();
        let cfg = PopulationConfig {
            num_subscribers: 8_000,
            seed: 99,
            ..PopulationConfig::default()
        };
        let mut wave = uk_waves().remove(0);
        wave.from_county = County::GreaterManchester;
        let pop = Population::synthesize(&cfg, &[wave], &geo, &topo);
        let mut plans = 0;
        for s in pop.subscribers() {
            if s.relocation.is_some() {
                assert_eq!(
                    geo.zone(s.home_zone).county,
                    County::GreaterManchester
                );
                plans += 1;
            }
        }
        assert!(plans > 0, "no Greater Manchester departures drawn");
    }

    #[test]
    fn m2m_devices_have_no_anchors_beyond_home() {
        let (_, _, pop) = population(5_000);
        for s in pop.subscribers() {
            if s.device == DeviceClass::M2m {
                assert!(s.anchors.work.is_none());
                assert!(s.anchors.leisure.is_empty());
                assert!(s.anchors.neighborhood.is_empty());
            }
        }
    }

    #[test]
    fn workers_commute_shorter_in_dense_clusters() {
        use cellscope_geo::OacCluster;
        let (geo, _, pop) = population(20_000);
        let mean_commute = |cluster: OacCluster| -> Option<f64> {
            let ds: Vec<f64> = pop
                .subscribers()
                .iter()
                .filter(|s| {
                    geo.zone(s.home_zone).cluster == cluster && s.anchors.work.is_some()
                })
                .map(|s| {
                    s.anchors
                        .home()
                        .location
                        .distance_km(s.anchors.work.as_ref().unwrap().location)
                })
                .collect();
            if ds.len() < 30 {
                None
            } else {
                Some(ds.iter().sum::<f64>() / ds.len() as f64)
            }
        };
        if let (Some(cosmo), Some(rural)) = (
            mean_commute(OacCluster::Cosmopolitans),
            mean_commute(OacCluster::RuralResidents),
        ) {
            assert!(cosmo < rural, "cosmo {cosmo} vs rural {rural}");
        }
    }
}
