//! Important places.
//!
//! Section 2.3 notes "more than three quarters of people have between 3
//! to 6 important places, and in general no more than 8". An
//! [`AnchorSet`] holds those places for one subscriber: home, an optional
//! daytime anchor (work/school), a handful of leisure anchors, plus the
//! nearby sites the subscriber wanders across (corner shop, park, school
//! run) that give mobility its local randomness.

use cellscope_geo::{Point, ZoneId};
use cellscope_radio::SiteId;
use serde::{Deserialize, Serialize};

/// What role a place plays in the subscriber's life.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AnchorKind {
    /// Primary residence.
    Home,
    /// Workplace or school.
    Work,
    /// Recurrent leisure destination (gym, relatives, pub, shops).
    Leisure,
    /// Distant destination for occasional weekend trips.
    WeekendTrip,
    /// Secondary residence (used while relocated).
    SecondHome,
}

/// One important place: a cell site plus its geography.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Anchor {
    /// Role of the place.
    pub kind: AnchorKind,
    /// Serving cell site.
    pub site: SiteId,
    /// Zone the site is in.
    pub zone: ZoneId,
    /// Site location (cached for distance computations).
    pub location: Point,
}

/// A subscriber's set of important places.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AnchorSet {
    /// Home place; `None` only for the default/uninitialized set.
    pub home: Option<Anchor>,
    /// Work/school place for segments that have one.
    pub work: Option<Anchor>,
    /// Leisure destinations (1–5).
    pub leisure: Vec<Anchor>,
    /// Distant weekend-trip destination, if the subscriber has the habit.
    pub weekend: Option<Anchor>,
    /// Secondary residence for subscribers with a relocation plan.
    pub second_home: Option<Anchor>,
    /// Nearby sites the subscriber wanders across (excludes the home
    /// site itself). Denser areas naturally yield more of these, which
    /// is what gives urban users their higher mobility entropy.
    pub neighborhood: Vec<Anchor>,
    /// Nearby sites around the second home, used while relocated.
    pub second_neighborhood: Vec<Anchor>,
}

impl AnchorSet {
    /// Total count of distinct important places (home + work + leisure +
    /// weekend + second home). The paper's 3–8 rule applies to these,
    /// not to incidental neighborhood towers.
    pub fn num_important_places(&self) -> usize {
        self.home.iter().count()
            + self.work.iter().count()
            + self.leisure.len()
            + self.weekend.iter().count()
            + self.second_home.iter().count()
    }

    /// The home anchor.
    ///
    /// # Panics
    /// Panics when called on an uninitialized set — population synthesis
    /// always assigns a home.
    pub fn home(&self) -> &Anchor {
        self.home.as_ref().expect("subscriber without home anchor")
    }

    /// All anchors, for invariant checks.
    pub fn iter_all(&self) -> impl Iterator<Item = &Anchor> {
        self.home
            .iter()
            .chain(self.work.iter())
            .chain(self.leisure.iter())
            .chain(self.weekend.iter())
            .chain(self.second_home.iter())
            .chain(self.neighborhood.iter())
            .chain(self.second_neighborhood.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn anchor(kind: AnchorKind, site: u32) -> Anchor {
        Anchor {
            kind,
            site: SiteId(site),
            zone: ZoneId(0),
            location: Point::new(site as f64, 0.0),
        }
    }

    #[test]
    fn important_place_count() {
        let mut set = AnchorSet {
            home: Some(anchor(AnchorKind::Home, 0)),
            work: Some(anchor(AnchorKind::Work, 1)),
            leisure: vec![anchor(AnchorKind::Leisure, 2), anchor(AnchorKind::Leisure, 3)],
            weekend: None,
            second_home: None,
            neighborhood: vec![anchor(AnchorKind::Leisure, 4); 5],
            second_neighborhood: Vec::new(),
        };
        assert_eq!(set.num_important_places(), 4);
        set.weekend = Some(anchor(AnchorKind::WeekendTrip, 9));
        assert_eq!(set.num_important_places(), 5);
        // Neighborhood towers don't count as important places.
        set.neighborhood.clear();
        assert_eq!(set.num_important_places(), 5);
    }

    #[test]
    fn iter_all_covers_everything() {
        let set = AnchorSet {
            home: Some(anchor(AnchorKind::Home, 0)),
            work: None,
            leisure: vec![anchor(AnchorKind::Leisure, 2)],
            weekend: Some(anchor(AnchorKind::WeekendTrip, 3)),
            second_home: Some(anchor(AnchorKind::SecondHome, 4)),
            neighborhood: vec![anchor(AnchorKind::Leisure, 5)],
            second_neighborhood: vec![anchor(AnchorKind::SecondHome, 6)],
        };
        assert_eq!(set.iter_all().count(), 6);
    }

    #[test]
    #[should_panic(expected = "without home anchor")]
    fn default_set_has_no_home() {
        AnchorSet::default().home();
    }
}
