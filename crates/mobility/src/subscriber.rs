//! Subscribers: the simulated SIM population.
//!
//! Section 2.3 filters the raw signaling population down to "native users
//! … that are smartphones": M2M devices (smart sensors) and international
//! inbound roamers are dropped. The synthetic population therefore
//! contains all three kinds, and the analysis pipeline must do the same
//! filtering the paper does.

use crate::anchors::AnchorSet;
use crate::relocation::Relocation;
use cellscope_geo::{OacCluster, ZoneId};
use serde::{Deserialize, Serialize};

/// Subscriber identifier (dense index into the population table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SubscriberId(pub u32);

impl SubscriberId {
    /// Index into the population table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for SubscriberId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "U{:07}", self.0)
    }
}

/// Device class, as derivable from the GSMA TAC catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceClass {
    /// A smartphone used as a primary personal device.
    Smartphone,
    /// A Machine-to-Machine device (meter, tracker, sensor): static,
    /// low traffic, must be excluded from mobility statistics.
    M2m,
}

/// Behavioural segment of a (human) subscriber.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Segment {
    /// Commutes to a workplace on weekdays.
    Worker {
        /// Essential workers keep commuting under lockdown (supermarkets,
        /// health care, logistics) — the floor under the mobility drop.
        essential: bool,
    },
    /// Attends school/university until the Mar 20 closures.
    Student,
    /// No fixed weekday anchor; moves locally.
    Retiree,
    /// At-home adult; local errands only.
    HomeMaker,
    /// Long-stay visitor based in tourist-heavy areas; leaves the
    /// country for good early in the pandemic. Part of why central
    /// London's user counts collapse (Section 5.1).
    Tourist,
}

impl Segment {
    /// Whether the segment has a weekday daytime anchor to attend.
    pub fn has_daytime_anchor(self) -> bool {
        matches!(self, Segment::Worker { .. } | Segment::Student)
    }
}

/// One subscriber of the synthetic MNO.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Subscriber {
    /// Identifier.
    pub id: SubscriberId,
    /// Home zone (ground truth; the analysis re-infers this from
    /// signaling and validates against census — Fig. 2).
    pub home_zone: ZoneId,
    /// Geodemographic cluster of the home zone (cached: demand and
    /// behaviour both condition on it every simulated day).
    pub home_cluster: OacCluster,
    /// Device class.
    pub device: DeviceClass,
    /// Whether the SIM is native to the studied MNO (vs. an inbound
    /// international roamer).
    pub native: bool,
    /// Behavioural segment.
    pub segment: Segment,
    /// Individual compliance with restrictions, 0 (ignores them)
    /// to 1 (full compliance). Drawn around the cluster profile mean.
    pub compliance: f64,
    /// The subscriber's important places.
    pub anchors: AnchorSet,
    /// Temporary relocation plan, if any (Inner-London residents with a
    /// secondary location; students returning to family homes).
    pub relocation: Option<Relocation>,
}

impl Subscriber {
    /// Whether the paper's mobility analysis would keep this subscriber
    /// (smartphone + native — Section 2.3).
    pub fn in_study_population(&self) -> bool {
        self.device == DeviceClass::Smartphone && self.native
    }

    /// Whether the subscriber is away at their secondary location on
    /// the given study day.
    pub fn is_relocated(&self, day: u16) -> bool {
        self.relocation
            .as_ref()
            .is_some_and(|r| r.is_away(day))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anchors::AnchorSet;

    fn subscriber(device: DeviceClass, native: bool) -> Subscriber {
        Subscriber {
            id: SubscriberId(0),
            home_zone: ZoneId(0),
            home_cluster: OacCluster::Urbanites,
            device,
            native,
            segment: Segment::Retiree,
            compliance: 0.9,
            anchors: AnchorSet::default(),
            relocation: None,
        }
    }

    #[test]
    fn study_population_filter() {
        assert!(subscriber(DeviceClass::Smartphone, true).in_study_population());
        assert!(!subscriber(DeviceClass::M2m, true).in_study_population());
        assert!(!subscriber(DeviceClass::Smartphone, false).in_study_population());
        assert!(!subscriber(DeviceClass::M2m, false).in_study_population());
    }

    #[test]
    fn daytime_anchor_segments() {
        assert!(Segment::Worker { essential: false }.has_daytime_anchor());
        assert!(Segment::Student.has_daytime_anchor());
        assert!(!Segment::Retiree.has_daytime_anchor());
        assert!(!Segment::Tourist.has_daytime_anchor());
    }

    #[test]
    fn no_relocation_means_never_away() {
        let s = subscriber(DeviceClass::Smartphone, true);
        for day in 0..100 {
            assert!(!s.is_relocated(day));
        }
    }
}
