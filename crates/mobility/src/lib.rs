//! Agent-based mobility model.
//!
//! The proprietary input the paper cannot share is *people*: 22M
//! subscribers whose devices attach to towers as they live their days.
//! This crate synthesizes that population and its behaviour:
//!
//! * [`subscriber`] — subscribers with segments (workers, students,
//!   retirees, tourists), device classes (smartphone vs M2M) and
//!   native/roamer status, so the paper's filtering steps (Section 2.3)
//!   have something real to filter;
//! * [`anchors`] — each subscriber's important places (home, work,
//!   leisure), consistent with the finding that people have 3–8
//!   important places;
//! * [`behavior`] — how policy intensity translates into daily choices,
//!   with per-OAC-cluster profiles (trip compliance vs. local-wandering
//!   retention) and regional modulation (the week 18–19 relaxation in
//!   London and West Yorkshire, the East Sussex pre-lockdown weekend);
//! * [`relocation`] — temporary relocation of Inner-London residents to
//!   secondary locations (Section 3.4's sustained −10%);
//! * [`population`] — deterministic synthesis of all of the above over a
//!   geography and topology;
//! * [`trajectory`] — the per-(subscriber, day) dwell generator: which
//!   towers, for how long, in which 4-hour bin;
//! * [`rng`] — counter-based per-(user, day) seeding so trajectories are
//!   reproducible regardless of iteration order (and parallelizable).

pub mod anchors;
pub mod behavior;
pub mod population;
pub mod relocation;
pub mod rng;
pub mod subscriber;
pub mod trajectory;

pub use anchors::{Anchor, AnchorKind, AnchorSet};
pub use behavior::{BehaviorModel, ClusterProfile, DayPlanParams};
pub use population::{Population, PopulationConfig};
pub use relocation::Relocation;
pub use subscriber::{DeviceClass, Segment, Subscriber, SubscriberId};
pub use trajectory::{BinVisit, DayTrajectory, TrajectoryGenerator, VisitKind};
