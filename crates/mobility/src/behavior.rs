//! Policy-response behaviour model.
//!
//! Translates the national restriction intensity (epidemic crate) into
//! the knobs of one subscriber's day: does she commute, how much leisure
//! time, any weekend trip, how much local wandering. Three layers of
//! heterogeneity reproduce the paper's cross-sections:
//!
//! * **per-cluster profiles** ([`ClusterProfile`]) — e.g. Ethnicity
//!   Central cuts distant trips hardest but keeps local movement
//!   (Fig. 6: largest gyration drop, smallest entropy drop); Rural
//!   Residents retain more movement overall;
//! * **per-county modulation** — London and West Yorkshire relax in
//!   weeks 18–19 while Greater Manchester and the West Midlands stay
//!   put (Section 3.2);
//! * **dated events** — the East Sussex escape weekend of Mar 21–22 and
//!   the Hampshire/Kent weekend trips at the end of April (Section 3.4).

use cellscope_epidemic::PhaseSchedule;
use cellscope_geo::{County, OacCluster};
use cellscope_time::Date;
use serde::{Deserialize, Serialize};

use crate::subscriber::{Segment, Subscriber};

/// Behavioural constants of one OAC cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterProfile {
    /// How fully the cluster's residents give up *distant* trips under
    /// restrictions (1 = give up everything the policy asks).
    pub trip_compliance: f64,
    /// Fraction of local wandering retained under full restrictions.
    /// High retention with high trip compliance = "moves less far but
    /// still randomly", the Ethnicity Central signature.
    pub wander_retention: f64,
    /// Typical commute distance scale, km (lognormal-ish sigma).
    pub commute_sigma_km: f64,
    /// Typical leisure-anchor distance scale, km.
    pub leisure_sigma_km: f64,
    /// Mean number of distinct neighborhood sites wandered across on a
    /// normal day (drives entropy; denser areas have more).
    pub wander_sites_mean: f64,
    /// Baseline probability of a weekend trip to another county.
    pub weekend_trip_prob: f64,
}

impl ClusterProfile {
    /// Profile of a cluster, calibrated against Figs. 5–6.
    pub fn of(cluster: OacCluster) -> ClusterProfile {
        use OacCluster::*;
        match cluster {
            RuralResidents => ClusterProfile {
                trip_compliance: 0.82,
                wander_retention: 0.62,
                commute_sigma_km: 15.0,
                leisure_sigma_km: 17.0,
                wander_sites_mean: 2.0,
                weekend_trip_prob: 0.15,
            },
            Cosmopolitans => ClusterProfile {
                trip_compliance: 0.95,
                wander_retention: 0.80,
                commute_sigma_km: 10.0,
                leisure_sigma_km: 11.0,
                wander_sites_mean: 3.0,
                weekend_trip_prob: 0.13,
            },
            EthnicityCentral => ClusterProfile {
                trip_compliance: 0.97,
                wander_retention: 0.90,
                commute_sigma_km: 10.5,
                leisure_sigma_km: 11.0,
                wander_sites_mean: 2.9,
                weekend_trip_prob: 0.10,
            },
            MulticulturalMetropolitans => ClusterProfile {
                trip_compliance: 0.92,
                wander_retention: 0.72,
                commute_sigma_km: 11.0,
                leisure_sigma_km: 12.0,
                wander_sites_mean: 2.6,
                weekend_trip_prob: 0.10,
            },
            Urbanites => ClusterProfile {
                trip_compliance: 0.90,
                wander_retention: 0.74,
                commute_sigma_km: 12.0,
                leisure_sigma_km: 14.0,
                wander_sites_mean: 2.4,
                weekend_trip_prob: 0.12,
            },
            Suburbanites => ClusterProfile {
                trip_compliance: 0.90,
                wander_retention: 0.72,
                commute_sigma_km: 13.0,
                leisure_sigma_km: 15.0,
                wander_sites_mean: 2.2,
                weekend_trip_prob: 0.12,
            },
            ConstrainedCityDwellers => ClusterProfile {
                trip_compliance: 0.88,
                wander_retention: 0.76,
                commute_sigma_km: 10.0,
                leisure_sigma_km: 11.0,
                wander_sites_mean: 2.5,
                weekend_trip_prob: 0.08,
            },
            HardPressedLiving => ClusterProfile {
                trip_compliance: 0.88,
                wander_retention: 0.76,
                commute_sigma_km: 11.0,
                leisure_sigma_km: 12.0,
                wander_sites_mean: 2.3,
                weekend_trip_prob: 0.08,
            },
        }
    }
}

/// The resolved knobs for one (subscriber, day).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DayPlanParams {
    /// Probability the subscriber attends their daytime anchor today.
    pub work_attendance: f64,
    /// Multiplier on leisure-anchor time (1 = normal).
    pub leisure_factor: f64,
    /// Probability of a trip to the distant weekend anchor today.
    pub weekend_trip_prob: f64,
    /// Multiplier on local wandering (distinct neighborhood sites).
    pub wander_factor: f64,
    /// Multiplier on the duration of each local outing. Confinement
    /// makes the few permitted outings *longer* (the daily-exercise
    /// hour, the single big shop), which is what keeps mobility entropy
    /// from collapsing as fast as gyration (Section 3.1).
    pub outing_duration_factor: f64,
}

/// The behaviour model: a phase schedule plus regional/event modulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BehaviorModel {
    schedule: PhaseSchedule,
}

impl BehaviorModel {
    /// Build over a behavioural schedule.
    pub fn new(schedule: PhaseSchedule) -> BehaviorModel {
        BehaviorModel { schedule }
    }

    /// The schedule in use.
    pub fn schedule(&self) -> &PhaseSchedule {
        &self.schedule
    }

    /// Regional modulation of restriction intensity: <1 means the county
    /// relaxes more than the national schedule, >1 means it stays
    /// stricter. Section 3.2: London and West Yorkshire relax in weeks
    /// 18–19; Greater Manchester and the West Midlands do not.
    pub fn regional_relaxation(&self, date: Date, county: County) -> f64 {
        self.schedule.regional_factor(date, county)
    }

    /// Dated boost on weekend-trip probability toward a destination
    /// county. Reproduces the Mar 21–22 East Sussex escape weekend and
    /// the late-April Hampshire (and, less so, Kent) weekends of Fig. 7.
    pub fn weekend_destination_boost(&self, date: Date, destination: County) -> f64 {
        self.schedule.weekend_boost(date, destination)
    }

    /// Effective restriction felt by a subscriber on a date.
    pub fn effective_intensity(&self, date: Date, subscriber: &Subscriber, county: County) -> f64 {
        (self.schedule.intensity(date)
            * self.regional_relaxation(date, county)
            * subscriber.compliance)
            .clamp(0.0, 1.0)
    }

    /// Resolve the day's behavioural knobs.
    ///
    /// `cluster` is the subscriber's home-zone OAC cluster; `county`
    /// their home county; `weekend` whether `date` is a weekend day.
    pub fn day_plan(
        &self,
        date: Date,
        subscriber: &Subscriber,
        cluster: OacCluster,
        county: County,
        weekend_dest: Option<County>,
    ) -> DayPlanParams {
        let profile = ClusterProfile::of(cluster);
        let e = self.effective_intensity(date, subscriber, county);
        let trip_restriction = (e * profile.trip_compliance).clamp(0.0, 1.0);

        let weekend = date.is_weekend();
        let work_attendance = match subscriber.segment {
            Segment::Worker { essential } if !weekend => {
                if essential {
                    // Essential workers keep commuting throughout.
                    (1.0 - 0.15 * trip_restriction).max(0.85)
                } else {
                    // WFH-capable work collapses almost entirely.
                    (1.0 - trip_restriction).powf(1.4)
                }
            }
            Segment::Student if !weekend => {
                // Schools closed outright while a closure phase is on.
                if self.schedule.schools_closed(date) {
                    0.0
                } else {
                    1.0 - 0.3 * trip_restriction
                }
            }
            _ => 0.0,
        };

        let leisure_factor = (1.0 - 0.92 * trip_restriction).max(0.0);

        // Weekend trips vanish even before lockdown (weeks 11–12), so the
        // restriction curve is harsher, then dated events can boost it.
        let mut weekend_trip_prob = if weekend {
            profile.weekend_trip_prob * (1.0 - trip_restriction).powi(2)
        } else {
            0.0
        };
        if let Some(dest) = weekend_dest {
            weekend_trip_prob =
                (weekend_trip_prob * self.weekend_destination_boost(date, dest)).min(0.9);
        }

        let wander_factor = 1.0 - e * (1.0 - profile.wander_retention);
        let outing_duration_factor = 1.0 + 0.9 * e;

        DayPlanParams {
            work_attendance,
            leisure_factor,
            weekend_trip_prob,
            wander_factor,
            outing_duration_factor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anchors::AnchorSet;
    use crate::subscriber::{DeviceClass, SubscriberId};
    use cellscope_geo::ZoneId;

    fn worker(essential: bool, compliance: f64) -> Subscriber {
        Subscriber {
            id: SubscriberId(0),
            home_zone: ZoneId(0),
            home_cluster: OacCluster::Urbanites,
            device: DeviceClass::Smartphone,
            native: true,
            segment: Segment::Worker { essential },
            compliance,
            anchors: AnchorSet::default(),
            relocation: None,
        }
    }

    fn model() -> BehaviorModel {
        BehaviorModel::new(PhaseSchedule::uk_2020())
    }

    #[test]
    fn baseline_day_is_normal_life() {
        let m = model();
        let plan = m.day_plan(
            Date::ymd(2020, 2, 26),
            &worker(false, 0.9),
            OacCluster::Urbanites,
            County::Hampshire,
            None,
        );
        assert_eq!(plan.work_attendance, 1.0);
        assert_eq!(plan.leisure_factor, 1.0);
        assert_eq!(plan.wander_factor, 1.0);
        assert_eq!(plan.outing_duration_factor, 1.0);
        assert_eq!(plan.weekend_trip_prob, 0.0); // weekday
    }

    #[test]
    fn lockdown_collapses_commuting_for_non_essential() {
        let m = model();
        let date = Date::ymd(2020, 3, 30); // week 14, full lockdown
        let plan = m.day_plan(
            date,
            &worker(false, 0.95),
            OacCluster::Urbanites,
            County::Hampshire,
            None,
        );
        assert!(plan.work_attendance < 0.10, "{}", plan.work_attendance);
        let essential = m.day_plan(
            date,
            &worker(true, 0.95),
            OacCluster::Urbanites,
            County::Hampshire,
            None,
        );
        assert!(essential.work_attendance >= 0.85);
    }

    #[test]
    fn students_stop_at_closures_not_lockdown() {
        let m = model();
        let mut s = worker(false, 0.9);
        s.segment = Segment::Student;
        let before = m.day_plan(
            Date::ymd(2020, 3, 19),
            &s,
            OacCluster::Cosmopolitans,
            County::InnerLondon,
            None,
        );
        assert!(before.work_attendance > 0.8);
        let after = m.day_plan(
            Date::ymd(2020, 3, 20),
            &s,
            OacCluster::Cosmopolitans,
            County::InnerLondon,
            None,
        );
        assert_eq!(after.work_attendance, 0.0);
    }

    #[test]
    fn wander_retains_more_than_trips_for_ethnicity_central() {
        let m = model();
        let date = Date::ymd(2020, 3, 30);
        let s = worker(false, 1.0);
        let plan = m.day_plan(
            date,
            &s,
            OacCluster::EthnicityCentral,
            County::InnerLondon,
            None,
        );
        // Local wandering survives far better than leisure/trips.
        assert!(plan.wander_factor > 0.8, "{}", plan.wander_factor);
        assert!(plan.leisure_factor < 0.2, "{}", plan.leisure_factor);
    }

    #[test]
    fn weekend_trips_vanish_by_lockdown_but_events_boost() {
        let m = model();
        let s = worker(false, 0.95);
        // Normal February weekend: finite trip probability.
        let feb = m.day_plan(
            Date::ymd(2020, 2, 29),
            &s,
            OacCluster::Urbanites,
            County::InnerLondon,
            Some(County::Hampshire),
        );
        assert!(feb.weekend_trip_prob > 0.05);
        // Lockdown weekend: essentially zero.
        let apr = m.day_plan(
            Date::ymd(2020, 4, 4),
            &s,
            OacCluster::Urbanites,
            County::InnerLondon,
            Some(County::Hampshire),
        );
        assert!(apr.weekend_trip_prob < 0.005, "{}", apr.weekend_trip_prob);
        // East Sussex escape weekend (Mar 21): boosted relative to the
        // same date toward an unboosted destination.
        let sussex = m.day_plan(
            Date::ymd(2020, 3, 21),
            &s,
            OacCluster::Urbanites,
            County::InnerLondon,
            Some(County::EastSussex),
        );
        let surrey = m.day_plan(
            Date::ymd(2020, 3, 21),
            &s,
            OacCluster::Urbanites,
            County::InnerLondon,
            Some(County::Surrey),
        );
        assert!(sussex.weekend_trip_prob > 4.0 * surrey.weekend_trip_prob);
    }

    #[test]
    fn regional_relaxation_weeks_18_19() {
        let m = model();
        let date = Date::ymd(2020, 4, 29); // week 18
        assert!(m.regional_relaxation(date, County::InnerLondon) < 0.9);
        assert!(m.regional_relaxation(date, County::WestYorkshire) < 0.9);
        assert!(m.regional_relaxation(date, County::GreaterManchester) >= 1.0);
        assert!(m.regional_relaxation(date, County::WestMidlands) >= 1.0);
        // Outside those weeks: no modulation.
        assert_eq!(
            m.regional_relaxation(Date::ymd(2020, 4, 10), County::InnerLondon),
            1.0
        );
    }

    #[test]
    fn compliance_scales_effect() {
        let m = model();
        let date = Date::ymd(2020, 3, 30);
        let strict = m.day_plan(
            date,
            &worker(false, 1.0),
            OacCluster::Urbanites,
            County::Kent,
            None,
        );
        let loose = m.day_plan(
            date,
            &worker(false, 0.5),
            OacCluster::Urbanites,
            County::Kent,
            None,
        );
        assert!(loose.work_attendance > strict.work_attendance);
        assert!(loose.leisure_factor > strict.leisure_factor);
        assert!(loose.wander_factor > strict.wander_factor);
    }

    #[test]
    fn cluster_profiles_cover_all_clusters() {
        for c in OacCluster::ALL {
            let p = ClusterProfile::of(c);
            assert!(p.trip_compliance > 0.0 && p.trip_compliance <= 1.0);
            assert!(p.wander_retention > 0.0 && p.wander_retention <= 1.0);
            assert!(p.commute_sigma_km > 0.0);
            assert!(p.wander_sites_mean > 0.0);
        }
        // Rural trips are longest, central-London shortest.
        assert!(
            ClusterProfile::of(OacCluster::RuralResidents).commute_sigma_km
                > ClusterProfile::of(OacCluster::Cosmopolitans).commute_sigma_km
        );
        // Central-London wanders over more sites (entropy driver).
        assert!(
            ClusterProfile::of(OacCluster::Cosmopolitans).wander_sites_mean
                > ClusterProfile::of(OacCluster::RuralResidents).wander_sites_mean
        );
    }
}
