//! Per-(subscriber, day) dwell generation.
//!
//! A [`DayTrajectory`] lists, for each of the six 4-hour bins of the day,
//! which cell sites the device camped on and for how many minutes. This
//! is the ground truth the signaling generator turns into control-plane
//! events, and the quantity the paper's mobility metrics (Section 2.3)
//! are computed from after reconstruction.

use crate::behavior::{BehaviorModel, ClusterProfile};
use crate::rng;
use crate::subscriber::{DeviceClass, Segment, Subscriber, SubscriberId};
use cellscope_geo::Geography;
use cellscope_radio::SiteId;
use cellscope_time::{DayBin, SimClock, SimDay};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Minutes in one 4-hour bin.
pub const BIN_MINUTES: u16 = 240;

/// Why the subscriber is at a place — the context that determines how
/// the device is used there. A phone on a kitchen table, a phone in an
/// office, and a phone on a walk generate very different cellular
/// traffic for the same number of minutes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum VisitKind {
    /// At the primary residence.
    Home,
    /// At the secondary residence (while relocated).
    SecondHome,
    /// At the workplace / school.
    Work,
    /// At a leisure destination (shops, relatives, venues).
    Leisure,
    /// On a distant weekend trip.
    Trip,
    /// Local wandering: errands, walks, the daily exercise hour.
    Wander,
}

/// Dwell on one site within one bin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinVisit {
    /// Which 4-hour bin.
    pub bin: DayBin,
    /// The cell site camped on.
    pub site: SiteId,
    /// Minutes of dwell (≤ 240 per bin in total).
    pub minutes: u16,
    /// Why the subscriber is there.
    pub kind: VisitKind,
}

/// One subscriber-day of dwell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DayTrajectory {
    /// Whose day this is.
    pub subscriber: SubscriberId,
    /// Study day index.
    pub day: SimDay,
    /// Dwell records; an empty list means the device was unreachable
    /// (e.g. a tourist who left the country).
    pub visits: Vec<BinVisit>,
}

impl Default for DayTrajectory {
    /// An empty placeholder day — the natural seed for a reusable
    /// buffer handed to [`TrajectoryGenerator::generate_into`], which
    /// overwrites every field.
    fn default() -> DayTrajectory {
        DayTrajectory {
            subscriber: SubscriberId(0),
            day: 0,
            visits: Vec::new(),
        }
    }
}

impl DayTrajectory {
    /// Total minutes across all visits (1440 for a present device).
    pub fn total_minutes(&self) -> u32 {
        self.visits.iter().map(|v| v.minutes as u32).sum()
    }

    /// Distinct sites visited.
    pub fn distinct_sites(&self) -> usize {
        let mut sites: Vec<SiteId> = self.visits.iter().map(|v| v.site).collect();
        sites.sort();
        sites.dedup();
        sites.len()
    }
}

/// Reusable per-bin build buffers. Owned by the generator (or a stack
/// temporary in the allocating path) and cleared per day, so the
/// steady-state cost of building a trajectory is zero allocations.
#[derive(Default)]
struct TrajScratch {
    bins: [Vec<(SiteId, u16, VisitKind)>; 6],
}

/// Mutable per-bin allocation used while building a day — a view over
/// the scratch buffers.
struct DayAlloc<'s> {
    bins: &'s mut [Vec<(SiteId, u16, VisitKind)>; 6],
}

impl<'s> DayAlloc<'s> {
    fn all_at(scratch: &'s mut TrajScratch, site: SiteId, kind: VisitKind) -> DayAlloc<'s> {
        for slots in scratch.bins.iter_mut() {
            slots.clear();
            slots.push((site, BIN_MINUTES, kind));
        }
        DayAlloc { bins: &mut scratch.bins }
    }

    /// Replace the entire bin with one site.
    fn set_bin(&mut self, bin: DayBin, site: SiteId, kind: VisitKind) {
        let slots = &mut self.bins[bin.index()];
        slots.clear();
        slots.push((site, BIN_MINUTES, kind));
    }

    /// Move `minutes` from the currently-largest allocation in `bin` to
    /// `site`. Carves less if the largest slot is smaller.
    fn carve(&mut self, bin: DayBin, site: SiteId, minutes: u16, kind: VisitKind) {
        let slots = &mut self.bins[bin.index()];
        let Some(largest) = slots
            .iter_mut()
            .max_by_key(|(_, m, _)| *m)
            .filter(|(_, m, _)| *m > 0)
        else {
            return;
        };
        let take = minutes.min(largest.1);
        largest.1 -= take;
        if take > 0 {
            slots.push((site, take, kind));
        }
    }

    /// Largest remaining slot in a bin, in minutes.
    fn headroom(&self, bin: DayBin) -> u16 {
        self.bins[bin.index()]
            .iter()
            .map(|&(_, m, _)| m)
            .max()
            .unwrap_or(0)
    }

    /// Append the finished day to `out` (bins in [`DayBin::ALL`] order,
    /// duplicate (site, kind) pairs merged within each bin). Sorting
    /// happens in place with a stable insertion sort, so nothing
    /// allocates — output order is bit-identical to the old
    /// clone-and-stable-sort path.
    fn write_visits(self, out: &mut Vec<BinVisit>) {
        for (i, bin) in DayBin::ALL.iter().enumerate() {
            let slots = &mut self.bins[i];
            slots.retain(|&(_, m, _)| m > 0);
            insertion_sort_by_key(slots, |&(s, _, k)| (s, k));
            let bin_start = out.len();
            for &(site, minutes, kind) in slots.iter() {
                let merge = out.len() > bin_start && {
                    let last = out.last().expect("non-empty past bin_start");
                    last.site == site && last.kind == kind
                };
                if merge {
                    out.last_mut().expect("checked").minutes += minutes;
                } else {
                    out.push(BinVisit {
                        bin: *bin,
                        site,
                        minutes,
                        kind,
                    });
                }
            }
        }
    }
}

/// Stable, allocation-free insertion sort (only strictly-greater
/// elements shift, so equal keys keep their input order). The slot
/// lists hold a handful of entries, well inside insertion sort's sweet
/// spot.
fn insertion_sort_by_key<T: Copy, K: Ord>(v: &mut [T], key: impl Fn(&T) -> K) {
    for i in 1..v.len() {
        let x = v[i];
        let k = key(&x);
        let mut j = i;
        while j > 0 && key(&v[j - 1]) > k {
            v[j] = v[j - 1];
            j -= 1;
        }
        v[j] = x;
    }
}

/// Generates trajectories for any (subscriber, day) pair. Logically
/// stateless — outputs depend only on (seed, subscriber, day) — but it
/// owns reusable build buffers, which is what makes
/// [`generate_into`](Self::generate_into) allocation-free.
pub struct TrajectoryGenerator<'a> {
    geo: &'a Geography,
    behavior: &'a BehaviorModel,
    clock: SimClock,
    seed: u64,
    scratch: TrajScratch,
}

impl<'a> TrajectoryGenerator<'a> {
    /// Build a generator.
    pub fn new(
        geo: &'a Geography,
        behavior: &'a BehaviorModel,
        clock: SimClock,
        seed: u64,
    ) -> TrajectoryGenerator<'a> {
        TrajectoryGenerator {
            geo,
            behavior,
            clock,
            seed,
            scratch: TrajScratch::default(),
        }
    }

    /// The simulation clock in use.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Generate one subscriber-day. Deterministic in
    /// (generator seed, subscriber id, day).
    pub fn generate(&self, sub: &Subscriber, day: SimDay) -> DayTrajectory {
        let mut scratch = TrajScratch::default();
        let mut out = DayTrajectory::default();
        self.generate_with(sub, day, &mut scratch, &mut out);
        out
    }

    /// [`generate`](Self::generate) into a caller-owned trajectory,
    /// reusing the generator's internal build buffers — the hot-loop
    /// form: after warm-up, no allocation happens per subscriber-day.
    /// `out` is fully overwritten (a dirty buffer from a previous day
    /// is fine). Bit-identical to the allocating path.
    pub fn generate_into(&mut self, sub: &Subscriber, day: SimDay, out: &mut DayTrajectory) {
        // Take the scratch out so the `&self` core can borrow freely.
        // `TrajScratch::default()` holds six empty Vecs — no allocation.
        let mut scratch = std::mem::take(&mut self.scratch);
        self.generate_with(sub, day, &mut scratch, out);
        self.scratch = scratch;
    }

    fn generate_with(
        &self,
        sub: &Subscriber,
        day: SimDay,
        scratch: &mut TrajScratch,
        out: &mut DayTrajectory,
    ) {
        out.subscriber = sub.id;
        out.day = day;
        out.visits.clear();

        let mut rng = rng::rng_for(self.seed, sub.id.0, day, 0x7247);
        let date = self.clock.date(day);
        let home_site = sub.anchors.home().site;

        // M2M devices are static: the whole day on the home site.
        if sub.device == DeviceClass::M2m {
            DayAlloc::all_at(scratch, home_site, VisitKind::Home).write_visits(&mut out.visits);
            return;
        }

        // Relocated subscribers.
        if sub.is_relocated(day) {
            if sub.segment == Segment::Tourist || sub.anchors.second_home.is_none() {
                // Left the country: the device disappears from the
                // network (visits stay empty).
                return;
            }
            let second = sub.anchors.second_home.as_ref().expect("checked above");
            let mut alloc = DayAlloc::all_at(scratch, second.site, VisitKind::SecondHome);
            // Local wandering around the second home.
            let n = poisson(&mut rng, 1.4).min(sub.anchors.second_neighborhood.len());
            for i in 0..n {
                let a = &sub.anchors.second_neighborhood[i];
                let bin = [DayBin::Morning, DayBin::Afternoon, DayBin::Evening]
                    [rng.gen_range(0..3)];
                alloc.carve(bin, a.site, 30 + rng.gen_range(0..30), VisitKind::Wander);
            }
            alloc.write_visits(&mut out.visits);
            return;
        }

        let home_zone = self.geo.zone(sub.home_zone);
        let cluster = home_zone.cluster;
        let county = home_zone.county;
        let profile = ClusterProfile::of(cluster);
        let weekend = date.is_weekend();
        let weekend_dest = sub
            .anchors
            .weekend
            .as_ref()
            .map(|a| self.geo.zone(a.zone).county);
        let plan = self
            .behavior
            .day_plan(date, sub, cluster, county, weekend_dest);

        let mut alloc = DayAlloc::all_at(scratch, home_site, VisitKind::Home);

        // Weekend trip: the day bins at the distant anchor.
        let mut on_trip = false;
        if weekend {
            if let Some(trip) = &sub.anchors.weekend {
                if rng.gen_bool(plan.weekend_trip_prob.clamp(0.0, 1.0)) {
                    on_trip = true;
                    alloc.set_bin(DayBin::Morning, trip.site, VisitKind::Trip);
                    alloc.set_bin(DayBin::Afternoon, trip.site, VisitKind::Trip);
                    alloc.set_bin(DayBin::Evening, trip.site, VisitKind::Trip);
                }
            }
        }

        // Commute day: morning + afternoon at work, a slice of evening.
        if !on_trip && !weekend {
            if let Some(work) = &sub.anchors.work {
                if rng.gen_bool(plan.work_attendance.clamp(0.0, 1.0)) {
                    alloc.set_bin(DayBin::Morning, work.site, VisitKind::Work);
                    alloc.set_bin(DayBin::Afternoon, work.site, VisitKind::Work);
                    alloc.carve(DayBin::Evening, work.site, 60, VisitKind::Work);
                }
            }
        }

        // Leisure visit.
        if !on_trip && !sub.anchors.leisure.is_empty() {
            let budget = if weekend { 150.0 } else { 90.0 };
            let minutes = (budget * plan.leisure_factor) as u16;
            if minutes >= 15 {
                let a = &sub.anchors.leisure[rng.gen_range(0..sub.anchors.leisure.len())];
                let bin = if weekend {
                    DayBin::Afternoon
                } else {
                    DayBin::Evening
                };
                alloc.carve(bin, a.site, minutes, VisitKind::Leisure);
            }
        }

        // Local wandering: errands, walks, school runs. Restrictions thin
        // it out less than they thin out trips (the entropy signature).
        if !sub.anchors.neighborhood.is_empty() {
            let mean = profile.wander_sites_mean * plan.wander_factor;
            let mut n = poisson(&mut rng, mean);
            // The daily-exercise / essential-errand floor: most days
            // include at least one local movement even in deep lockdown
            // (the UK lockdown explicitly allowed daily exercise).
            if n == 0 && rng.gen_bool(0.85) {
                n = 1;
            }
            let n = n.min(sub.anchors.neighborhood.len());
            let wander_bins = [
                DayBin::Morning,
                DayBin::Afternoon,
                DayBin::Evening,
                DayBin::LateEvening,
            ];
            // Visit distinct neighborhood sites (deterministic rotation
            // start so the same sites don't dominate).
            let start = rng.gen_range(0..sub.anchors.neighborhood.len());
            for i in 0..n {
                let a = &sub.anchors.neighborhood
                    [(start + i) % sub.anchors.neighborhood.len()];
                let bin = wander_bins[rng.gen_range(0..wander_bins.len())];
                let minutes = ((40 + rng.gen_range(0..35)) as f64
                    * plan.outing_duration_factor) as u16;
                if alloc.headroom(bin) > minutes + 30 {
                    alloc.carve(bin, a.site, minutes, VisitKind::Wander);
                }
            }
        }

        alloc.write_visits(&mut out.visits);
    }
}

/// Knuth Poisson sampler (fine for the small means used here).
fn poisson(rng: &mut StdRng, mean: f64) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    let l = (-mean).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.gen_range(0.0..1.0f64);
        if p < l || k > 50 {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::BehaviorModel;
    use crate::population::{Population, PopulationConfig};
    use cellscope_epidemic::PhaseSchedule;
    use cellscope_geo::SynthConfig;
    use cellscope_radio::DeployConfig;
    use cellscope_time::Date;

    struct World {
        geo: Geography,
        pop: Population,
        behavior: BehaviorModel,
        clock: SimClock,
    }

    fn world() -> World {
        let geo = SynthConfig::small(5).build();
        let topo = DeployConfig::small(5).build(&geo);
        let pop = Population::synthesize(
            &PopulationConfig {
                num_subscribers: 3_000,
                seed: 4,
                ..PopulationConfig::default()
            },
            &PhaseSchedule::uk_2020().relocation_waves,
            &geo,
            &topo,
        );
        World {
            geo,
            pop,
            behavior: BehaviorModel::new(PhaseSchedule::uk_2020()),
            clock: SimClock::study(),
        }
    }

    #[test]
    fn present_devices_account_for_the_full_day() {
        let w = world();
        let generator = TrajectoryGenerator::new(&w.geo, &w.behavior, w.clock, 7);
        for sub in w.pop.subscribers().iter().take(500) {
            let t = generator.generate(sub, 10);
            if !t.visits.is_empty() {
                assert_eq!(t.total_minutes(), 1440, "{}", sub.id);
                // Per-bin totals are exactly 240.
                for bin in DayBin::ALL {
                    let bin_total: u32 = t
                        .visits
                        .iter()
                        .filter(|v| v.bin == bin)
                        .map(|v| v.minutes as u32)
                        .sum();
                    assert_eq!(bin_total, 240, "{} bin {:?}", sub.id, bin);
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let w = world();
        let generator = TrajectoryGenerator::new(&w.geo, &w.behavior, w.clock, 7);
        for sub in w.pop.subscribers().iter().take(50) {
            assert_eq!(generator.generate(sub, 33), generator.generate(sub, 33));
        }
    }

    #[test]
    fn m2m_devices_never_move() {
        let w = world();
        let generator = TrajectoryGenerator::new(&w.geo, &w.behavior, w.clock, 7);
        for sub in w.pop.subscribers() {
            if sub.device == DeviceClass::M2m {
                for day in [0u16, 30, 60, 99] {
                    let t = generator.generate(sub, day);
                    assert_eq!(t.distinct_sites(), 1);
                    assert_eq!(
                        t.visits[0].site,
                        sub.anchors.home().site,
                        "{}",
                        sub.id
                    );
                }
            }
        }
    }

    #[test]
    fn mobility_shrinks_under_lockdown() {
        let w = world();
        let generator = TrajectoryGenerator::new(&w.geo, &w.behavior, w.clock, 7);
        let baseline_day = w.clock.day_of(Date::ymd(2020, 2, 26)).unwrap();
        let lockdown_day = w.clock.day_of(Date::ymd(2020, 4, 1)).unwrap();
        let mut base_sites = 0usize;
        let mut lock_sites = 0usize;
        let mut counted = 0usize;
        for sub in w.pop.subscribers().iter() {
            if !sub.in_study_population() || sub.relocation.is_some() {
                continue;
            }
            base_sites += generator.generate(sub, baseline_day).distinct_sites();
            lock_sites += generator.generate(sub, lockdown_day).distinct_sites();
            counted += 1;
        }
        assert!(counted > 1000);
        // Distinct sites shrink only mildly (daily-exercise wandering is
        // retained by design — the paper's entropy signal)…
        assert!(
            (lock_sites as f64) < 0.95 * base_sites as f64,
            "baseline {base_sites} vs lockdown {lock_sites}"
        );
    }

    #[test]
    fn time_concentrates_at_home_under_lockdown() {
        let w = world();
        let generator = TrajectoryGenerator::new(&w.geo, &w.behavior, w.clock, 7);
        let baseline_day = w.clock.day_of(Date::ymd(2020, 2, 26)).unwrap();
        let lockdown_day = w.clock.day_of(Date::ymd(2020, 4, 1)).unwrap();
        let mut base_home = 0u64;
        let mut lock_home = 0u64;
        for sub in w.pop.subscribers() {
            if !sub.in_study_population() || sub.relocation.is_some() {
                continue;
            }
            let home = sub.anchors.home().site;
            let home_minutes = |t: &DayTrajectory| -> u64 {
                t.visits
                    .iter()
                    .filter(|v| v.site == home)
                    .map(|v| v.minutes as u64)
                    .sum()
            };
            base_home += home_minutes(&generator.generate(sub, baseline_day));
            lock_home += home_minutes(&generator.generate(sub, lockdown_day));
        }
        assert!(
            lock_home as f64 > 1.15 * base_home as f64,
            "home minutes {base_home} -> {lock_home}"
        );
    }

    #[test]
    fn relocated_tourists_disappear() {
        let w = world();
        let generator = TrajectoryGenerator::new(&w.geo, &w.behavior, w.clock, 7);
        let mut seen = 0;
        for sub in w.pop.subscribers() {
            if sub.segment == Segment::Tourist {
                if let Some(r) = &sub.relocation {
                    let t = generator.generate(sub, r.depart_day + 1);
                    assert!(t.visits.is_empty(), "{} should be abroad", sub.id);
                    let before = generator.generate(sub, r.depart_day.saturating_sub(5));
                    assert!(!before.visits.is_empty());
                    seen += 1;
                }
            }
        }
        assert!(seen > 0, "world should contain departing tourists");
    }

    #[test]
    fn relocated_residents_dwell_at_second_home() {
        let w = world();
        let generator = TrajectoryGenerator::new(&w.geo, &w.behavior, w.clock, 7);
        let mut seen = 0;
        for sub in w.pop.subscribers() {
            if sub.segment == Segment::Tourist {
                continue;
            }
            let (Some(r), Some(second)) = (&sub.relocation, &sub.anchors.second_home)
            else {
                continue;
            };
            let t = generator.generate(sub, r.depart_day + 3);
            let at_second: u32 = t
                .visits
                .iter()
                .filter(|v| v.site == second.site)
                .map(|v| v.minutes as u32)
                .sum();
            assert!(
                at_second > 1000,
                "{} spends {at_second} min at second home",
                sub.id
            );
            seen += 1;
        }
        assert!(seen > 0, "world should contain relocated residents");
    }

    #[test]
    fn weekday_workers_visit_work_in_baseline() {
        let w = world();
        let generator = TrajectoryGenerator::new(&w.geo, &w.behavior, w.clock, 7);
        let day = w.clock.day_of(Date::ymd(2020, 2, 25)).unwrap(); // Tue
        let mut attended = 0usize;
        let mut workers = 0usize;
        for sub in w.pop.subscribers() {
            if let Segment::Worker { .. } = sub.segment {
                if let Some(work) = &sub.anchors.work {
                    workers += 1;
                    let t = generator.generate(sub, day);
                    if t.visits.iter().any(|v| v.site == work.site && v.minutes > 100) {
                        attended += 1;
                    }
                }
            }
        }
        assert!(workers > 300);
        let rate = attended as f64 / workers as f64;
        assert!(rate > 0.9, "baseline attendance {rate}");
    }
}
