//! Temporary relocation away from home.
//!
//! Section 3.4: "approximately 10% of the [Inner London] residents
//! temporarily relocated during the lockdown" — students leaving
//! campuses after the Mar 19 school closures, long-term tourists
//! leaving the centre, and residents moving to second residences.
//! Hampshire received the largest sustained inflow; there was a visible
//! escape wave to East Sussex on the Mar 21–22 weekend just before the
//! stay-at-home order.

use cellscope_geo::County;
use serde::{Deserialize, Serialize};

/// A temporary relocation plan: away at the second home between
/// `depart_day` and `return_day` (study-day indices, inclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Relocation {
    /// Destination county (the second-home anchor lives there).
    pub destination: County,
    /// First study day spent away.
    pub depart_day: u16,
    /// Last study day spent away (`u16::MAX` = does not return within
    /// the study window — the common case the paper observes).
    pub return_day: u16,
}

impl Relocation {
    /// Whether the subscriber is away on `day`.
    pub fn is_away(&self, day: u16) -> bool {
        day >= self.depart_day && day <= self.return_day
    }
}

/// Relative popularity of relocation destinations for Inner-London
/// residents, calibrated to Fig. 7's ordering. The canonical table
/// lives with the schedule types so scenario files can default to it.
pub use cellscope_epidemic::schedule::LONDON_DESTINATION_WEIGHTS;

/// Draw a destination county from the calibrated London weights given
/// a uniform sample in [0, 1).
pub fn sample_destination(u: f64) -> County {
    let total: f64 = LONDON_DESTINATION_WEIGHTS.iter().map(|&(_, w)| w).sum();
    let mut draw = u.clamp(0.0, 1.0 - f64::EPSILON) * total;
    for &(county, w) in &LONDON_DESTINATION_WEIGHTS {
        if draw < w {
            return county;
        }
        draw -= w;
    }
    LONDON_DESTINATION_WEIGHTS.last().expect("non-empty").0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn away_window_inclusive() {
        let r = Relocation {
            destination: County::Hampshire,
            depart_day: 45,
            return_day: 80,
        };
        assert!(!r.is_away(44));
        assert!(r.is_away(45));
        assert!(r.is_away(80));
        assert!(!r.is_away(81));
    }

    #[test]
    fn open_ended_relocation() {
        let r = Relocation {
            destination: County::Kent,
            depart_day: 50,
            return_day: u16::MAX,
        };
        assert!(r.is_away(u16::MAX - 1));
    }

    #[test]
    fn destination_sampling_covers_all_weights() {
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..10_000 {
            seen.insert(sample_destination(i as f64 / 10_000.0));
        }
        assert_eq!(seen.len(), LONDON_DESTINATION_WEIGHTS.len());
    }

    #[test]
    fn hampshire_is_the_top_destination() {
        let mut counts = std::collections::BTreeMap::new();
        for i in 0..10_000 {
            *counts.entry(sample_destination(i as f64 / 10_000.0)).or_insert(0u32) += 1;
        }
        let top = counts.iter().max_by_key(|&(_, &c)| c).unwrap();
        assert_eq!(*top.0, County::Hampshire);
    }

    #[test]
    fn extreme_uniform_samples_are_safe() {
        let _ = sample_destination(0.0);
        let _ = sample_destination(1.0); // clamped, must not panic
        let _ = sample_destination(0.999_999_999);
    }
}
