//! Property tests for trajectory generation over a real world: time
//! accounting, determinism, and behavioural monotonicity hold for every
//! (subscriber, day) pair, not just the ones unit tests pick.

use cellscope_epidemic::PhaseSchedule;
use cellscope_geo::{Geography, SynthConfig};
use cellscope_mobility::{
    BehaviorModel, DeviceClass, Population, PopulationConfig, TrajectoryGenerator,
};
use cellscope_radio::DeployConfig;
use cellscope_time::{DayBin, SimClock};
use proptest::prelude::*;
use std::sync::OnceLock;

struct Fixture {
    geo: Geography,
    pop: Population,
    behavior: BehaviorModel,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let geo = SynthConfig::small(77).build();
        let topo = DeployConfig::small(77).build(&geo);
        let pop = Population::synthesize(
            &PopulationConfig {
                num_subscribers: 1_000,
                seed: 77,
                ..PopulationConfig::default()
            },
            &PhaseSchedule::uk_2020().relocation_waves,
            &geo,
            &topo,
        );
        Fixture {
            geo,
            pop,
            behavior: BehaviorModel::new(PhaseSchedule::uk_2020()),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every present device accounts for exactly 24 hours, split into
    /// exactly 240 minutes per 4-hour bin.
    #[test]
    fn day_time_is_conserved(user in 0usize..1000, day in 0u16..100, seed in 0u64..8) {
        let f = fixture();
        let generator =
            TrajectoryGenerator::new(&f.geo, &f.behavior, SimClock::study(), seed);
        let sub = &f.pop.subscribers()[user];
        let traj = generator.generate(sub, day);
        if traj.visits.is_empty() {
            return Ok(()); // device abroad
        }
        prop_assert_eq!(traj.total_minutes(), 1440);
        for bin in DayBin::ALL {
            let bin_total: u32 = traj
                .visits
                .iter()
                .filter(|v| v.bin == bin)
                .map(|v| v.minutes as u32)
                .sum();
            prop_assert_eq!(bin_total, 240, "bin {:?}", bin);
        }
        // Visits within a bin are distinct (site, kind) pairs (merged
        // allocation; the same site can host e.g. home and wander time).
        for bin in DayBin::ALL {
            let mut keys: Vec<(u32, _)> = traj
                .visits
                .iter()
                .filter(|v| v.bin == bin)
                .map(|v| (v.site.0, v.kind))
                .collect();
            let n = keys.len();
            keys.sort_unstable();
            keys.dedup();
            prop_assert_eq!(keys.len(), n, "duplicate (site, kind) within a bin");
        }
    }

    /// Trajectories are a pure function of (seed, subscriber, day).
    #[test]
    fn generation_is_deterministic(user in 0usize..1000, day in 0u16..100, seed in 0u64..8) {
        let f = fixture();
        let g1 = TrajectoryGenerator::new(&f.geo, &f.behavior, SimClock::study(), seed);
        let g2 = TrajectoryGenerator::new(&f.geo, &f.behavior, SimClock::study(), seed);
        let sub = &f.pop.subscribers()[user];
        prop_assert_eq!(g1.generate(sub, day), g2.generate(sub, day));
    }

    /// The night window (00:00–08:00) is spent at the home or second
    /// home site for the overwhelming majority of user-days — the
    /// assumption home detection rests on.
    #[test]
    fn nights_are_spent_at_home(user in 0usize..1000, day in 0u16..100) {
        let f = fixture();
        let generator = TrajectoryGenerator::new(&f.geo, &f.behavior, SimClock::study(), 1);
        let sub = &f.pop.subscribers()[user];
        if sub.device != DeviceClass::Smartphone {
            return Ok(());
        }
        let traj = generator.generate(sub, day);
        if traj.visits.is_empty() {
            return Ok(());
        }
        let home = sub.anchors.home().site;
        let second = sub.anchors.second_home.as_ref().map(|a| a.site);
        let night_at_base: u32 = traj
            .visits
            .iter()
            .filter(|v| v.bin.is_night_window())
            .filter(|v| v.site == home || Some(v.site) == second)
            .map(|v| v.minutes as u32)
            .sum();
        // 480 night-window minutes; at least 400 at the (second) home.
        prop_assert!(night_at_base >= 400, "night at base {night_at_base}");
    }

    /// Lockdown never *increases* a user's number of distinct sites
    /// dramatically: local wandering is retained but long-range variety
    /// disappears. (Weak monotonicity with generous slack: weekends and
    /// randomness move individual days both ways.)
    #[test]
    fn lockdown_site_variety_bounded(user in 0usize..1000) {
        let f = fixture();
        let generator = TrajectoryGenerator::new(&f.geo, &f.behavior, SimClock::study(), 1);
        let sub = &f.pop.subscribers()[user];
        if sub.device != DeviceClass::Smartphone || sub.relocation.is_some() {
            return Ok(());
        }
        // Average distinct sites across baseline weekdays vs lockdown
        // weekdays (Tue–Thu of weeks 7-8 vs 15-16).
        let avg = |days: &[u16]| -> f64 {
            let total: usize = days
                .iter()
                .map(|&d| generator.generate(sub, d).distinct_sites())
                .sum();
            total as f64 / days.len() as f64
        };
        let baseline = avg(&[10, 11, 12, 17, 18, 19]);
        let lockdown = avg(&[73, 74, 75, 80, 81, 82]);
        prop_assert!(
            lockdown <= baseline + 1.5,
            "baseline {baseline} vs lockdown {lockdown}"
        );
    }
}
