//! Per-figure dataset builders.
//!
//! One function per table/figure of the paper's evaluation, each
//! consuming a [`StudyDataset`] and returning a serializable structure
//! with exactly the series the figure plots. The bench harness and the
//! `repro` binary print these; the integration tests assert their
//! shapes against the paper's reported numbers.

use crate::dataset::{MetricGroup, StudyDataset};
use cellscope_core::{delta_pct, linear_fit, pearson, KpiField, LinearFit};
use cellscope_exec::{ExecError, Executor};
use cellscope_geo::{County, LondonDistrict, OacCluster};
use cellscope_time::{Date, IsoWeek, SimClock};
use serde::Serialize;
use std::collections::HashSet;
use std::fmt;

/// The ISO weeks the paper's figures span (weeks 9–19 of 2020).
pub fn figure_weeks() -> Vec<u8> {
    (9..=19).collect()
}

fn wk(week: u8) -> IsoWeek {
    IsoWeek { year: 2020, week }
}

/// The study day of `date`, clamped into the clock's window: a date
/// before the window maps to day 0, one after it to the last day. The
/// paper's calendar anchors (Feb 23, Feb 24, May 4 2020…) are fixed,
/// but the study window is configurable — a shorter window must narrow
/// the analysis range, not abort the figure fan-out.
fn clamp_to_window(clock: &SimClock, date: Date) -> u16 {
    match clock.day_of(date) {
        Some(d) => d,
        None if date < clock.date(0) => 0,
        None => (clock.num_days() - 1) as u16,
    }
}

/// A figure-set build failure.
#[derive(Debug)]
pub enum FigureError {
    /// A figure builder panicked; the execution layer names the
    /// `figures` stage and the builder's slot index.
    Exec(ExecError),
    /// The study window shares no days with the paper's analysis weeks
    /// (ISO weeks 9–19 of 2020): every Δ%-vs-baseline series would be
    /// empty, so the figure set cannot be built.
    WindowOutsideStudy,
}

impl fmt::Display for FigureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FigureError::Exec(e) => write!(f, "figure build: {e}"),
            FigureError::WindowOutsideStudy => write!(
                f,
                "study window contains none of the paper's analysis weeks \
                 (ISO 2020-W09..W19)"
            ),
        }
    }
}

impl std::error::Error for FigureError {}

impl From<ExecError> for FigureError {
    fn from(e: ExecError) -> FigureError {
        FigureError::Exec(e)
    }
}

// ---------------------------------------------------------------------
// Figure 2 — home-detection validation
// ---------------------------------------------------------------------

/// Fig. 2: inferred residential population per LAD vs census.
#[derive(Debug, Clone, Serialize)]
pub struct Fig2 {
    /// (LAD label, census population, inferred user count).
    pub points: Vec<(String, u64, u32)>,
    /// OLS fit of inferred vs census — the paper reports r² = 0.955.
    pub fit: Option<LinearFit>,
}

/// Build Fig. 2.
pub fn fig2(ds: &StudyDataset) -> Fig2 {
    let points: Vec<(String, u64, u32)> = ds
        .home_validation
        .iter()
        .map(|p| (p.lad.to_string(), p.census, p.inferred))
        .collect();
    let xs: Vec<f64> = points.iter().map(|p| p.1 as f64).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.2 as f64).collect();
    Fig2 {
        fit: linear_fit(&xs, &ys),
        points,
    }
}

// ---------------------------------------------------------------------
// Figure 3 — national mobility
// ---------------------------------------------------------------------

/// Fig. 3: national daily Δ% of gyration and entropy vs week 9.
#[derive(Debug, Clone, Serialize)]
pub struct Fig3 {
    /// Daily Δ% of the average radius of gyration per user.
    pub gyration_daily_pct: Vec<Option<f64>>,
    /// Daily Δ% of the average mobility entropy per user.
    pub entropy_daily_pct: Vec<Option<f64>>,
    /// Weekly means of the daily deltas, (week, gyration Δ%, entropy Δ%).
    pub weekly: Vec<(u8, Option<f64>, Option<f64>)>,
    /// Daily (p10, median, p90) of the per-user gyration distribution —
    /// the figure's percentile bands. The paper notes the distributions
    /// barely change shape across weeks.
    pub gyration_percentiles: Vec<Option<(f64, f64, f64)>>,
}

/// Build Fig. 3.
pub fn fig3(ds: &StudyDataset) -> Fig3 {
    let g = ds
        .gyration
        .delta_series(&MetricGroup::National, ds.clock, ds.baseline_week());
    let e = ds
        .entropy
        .delta_series(&MetricGroup::National, ds.clock, ds.baseline_week());
    let gyration_daily_pct = g.daily_delta_pct();
    let entropy_daily_pct = e.daily_delta_pct();
    let weekly = figure_weeks()
        .into_iter()
        .map(|week| {
            let days: Vec<u16> = ds.clock.days_in_week(wk(week)).collect();
            let mean_of = |series: &[Option<f64>]| {
                let vals: Vec<f64> = days
                    .iter()
                    .filter_map(|&d| series[d as usize])
                    .collect();
                cellscope_core::stats::mean(&vals)
            };
            (
                week,
                mean_of(&gyration_daily_pct),
                mean_of(&entropy_daily_pct),
            )
        })
        .collect();
    let gyration_percentiles = (0..ds.clock.num_days() as u16)
        .map(|d| {
            let p10 = ds.gyration_dist.percentile(&MetricGroup::National, d, 10.0)?;
            let p50 = ds.gyration_dist.percentile(&MetricGroup::National, d, 50.0)?;
            let p90 = ds.gyration_dist.percentile(&MetricGroup::National, d, 90.0)?;
            Some((p10, p50, p90))
        })
        .collect();
    Fig3 {
        gyration_daily_pct,
        entropy_daily_pct,
        weekly,
        gyration_percentiles,
    }
}

/// Supplementary: mean gyration per 4-hour bin, baseline week vs a
/// lockdown week — *when* in the day mobility died. The commuting bins
/// collapse hardest; the night bins barely move (everyone already was
/// at home).
#[derive(Debug, Clone, Serialize)]
pub struct BinProfile {
    /// (bin name, mean gyration in week 9, mean gyration in week 15,
    /// Δ%).
    pub bins: Vec<(String, f64, f64, Option<f64>)>,
}

/// Build the per-bin mobility profile.
pub fn bin_profile(ds: &StudyDataset) -> BinProfile {
    use cellscope_time::DayBin;
    let week_mean = |bin: DayBin, week: u8| -> Option<f64> {
        let vals: Vec<f64> = ds
            .clock
            .days_in_week(wk(week))
            .filter_map(|d| ds.gyration_by_bin.mean(&bin, d))
            .collect();
        cellscope_core::stats::mean(&vals)
    };
    let bins = DayBin::ALL
        .iter()
        .map(|&bin| {
            let base = week_mean(bin, 9).unwrap_or(0.0);
            let lock = week_mean(bin, 15).unwrap_or(0.0);
            (
                format!("{bin:?}"),
                base,
                lock,
                delta_pct(lock, base),
            )
        })
        .collect();
    BinProfile { bins }
}

// ---------------------------------------------------------------------
// Figure 4 — mobility vs cases
// ---------------------------------------------------------------------

/// One Fig. 4 scatter point.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Fig4Point {
    /// Study day.
    pub day: u16,
    /// Cumulative lab-confirmed cases on that day.
    pub cumulative_cases: f64,
    /// National entropy Δ% on that day.
    pub entropy_delta_pct: f64,
    /// Weekend flag (the figure colours weekends).
    pub weekend: bool,
}

/// Fig. 4: entropy variation vs cumulative case counts, Feb 23 – May 4.
#[derive(Debug, Clone, Serialize)]
pub struct Fig4 {
    /// Scatter points.
    pub points: Vec<Fig4Point>,
    /// Pearson r over the pre-lockdown range (cases < ~5,000), where
    /// the paper argues there is *no* relationship: mobility only moved
    /// with announcements, not with case counts.
    pub pre_lockdown_pearson: Option<f64>,
    /// Cases on the declaration day (vertical line of the figure).
    pub cases_at_declaration: f64,
}

/// Build Fig. 4. The paper's Feb 23 – May 4 range is clamped to the
/// study window, so shorter windows plot the overlap instead of
/// panicking.
pub fn fig4(ds: &StudyDataset) -> Fig4 {
    let entropy_daily = fig3(ds).entropy_daily_pct;
    let start = clamp_to_window(&ds.clock, Date::ymd(2020, 2, 23));
    let end = clamp_to_window(&ds.clock, Date::ymd(2020, 5, 4));
    let mut points = Vec::new();
    for day in start..=end {
        let date = ds.clock.date(day);
        if let Some(e) = entropy_daily[day as usize] {
            points.push(Fig4Point {
                day,
                cumulative_cases: ds.cases.cumulative(date),
                entropy_delta_pct: e,
                weekend: date.is_weekend(),
            });
        }
    }
    // Pre-announcement range: before the pandemic declaration mobility
    // should ignore the (already growing) case counts. A scenario that
    // never declares leaves every point "pre" and anchors the vertical
    // line at zero cases.
    let declaration = ds.declaration;
    let pre: Vec<&Fig4Point> = points
        .iter()
        .filter(|p| declaration.map_or(true, |d| ds.clock.date(p.day) < d))
        .collect();
    let xs: Vec<f64> = pre.iter().map(|p| p.cumulative_cases).collect();
    let ys: Vec<f64> = pre.iter().map(|p| p.entropy_delta_pct).collect();
    Fig4 {
        pre_lockdown_pearson: pearson(&xs, &ys),
        cases_at_declaration: declaration.map_or(0.0, |d| ds.cases.cumulative(d)),
        points,
    }
}

// ---------------------------------------------------------------------
// Figures 5 & 6 — regional / geodemographic mobility
// ---------------------------------------------------------------------

/// One group's mobility series, as Δ% vs the *national* week-9 average
/// (so baseline offsets between groups stay visible, as in the paper).
#[derive(Debug, Clone, Serialize)]
pub struct GroupMobility {
    /// Group label.
    pub group: String,
    /// Daily gyration Δ% vs national week-9 mean.
    pub gyration_daily_pct: Vec<Option<f64>>,
    /// Daily entropy Δ% vs national week-9 mean.
    pub entropy_daily_pct: Vec<Option<f64>>,
    /// Weekly means (week, gyration Δ%, entropy Δ%).
    pub weekly: Vec<(u8, Option<f64>, Option<f64>)>,
}

fn group_mobility(ds: &StudyDataset, group: MetricGroup, label: String) -> GroupMobility {
    let national_g_base = ds
        .gyration
        .delta_series(&MetricGroup::National, ds.clock, ds.baseline_week())
        .baseline_mean();
    let national_e_base = ds
        .entropy
        .delta_series(&MetricGroup::National, ds.clock, ds.baseline_week())
        .baseline_mean();
    let daily = |acc: &cellscope_core::DailyGroupMean<MetricGroup>,
                 base: Option<f64>|
     -> Vec<Option<f64>> {
        (0..ds.clock.num_days() as u16)
            .map(|d| {
                let v = acc.mean(&group, d)?;
                delta_pct(v, base?)
            })
            .collect()
    };
    let gyration_daily_pct = daily(&ds.gyration, national_g_base);
    let entropy_daily_pct = daily(&ds.entropy, national_e_base);
    let weekly = figure_weeks()
        .into_iter()
        .map(|week| {
            let days: Vec<u16> = ds.clock.days_in_week(wk(week)).collect();
            let mean_of = |series: &[Option<f64>]| {
                let vals: Vec<f64> = days
                    .iter()
                    .filter_map(|&d| series[d as usize])
                    .collect();
                cellscope_core::stats::mean(&vals)
            };
            (
                week,
                mean_of(&gyration_daily_pct),
                mean_of(&entropy_daily_pct),
            )
        })
        .collect();
    GroupMobility {
        group: label,
        gyration_daily_pct,
        entropy_daily_pct,
        weekly,
    }
}

/// Fig. 5: the five study regions' mobility vs the national average.
pub fn fig5(ds: &StudyDataset) -> Vec<GroupMobility> {
    County::STUDY_REGIONS
        .iter()
        .map(|&c| group_mobility(ds, MetricGroup::County(c), c.name().to_string()))
        .collect()
}

/// Fig. 6: the eight OAC clusters' mobility vs the national average.
pub fn fig6(ds: &StudyDataset) -> Vec<GroupMobility> {
    OacCluster::ALL
        .iter()
        .map(|&c| group_mobility(ds, MetricGroup::Cluster(c), c.name().to_string()))
        .collect()
}

// ---------------------------------------------------------------------
// Figure 7 — the Inner-London mobility matrix
// ---------------------------------------------------------------------

/// Fig. 7: daily Δ% of Inner-London residents present per county.
#[derive(Debug, Clone, Serialize)]
pub struct Fig7 {
    /// (county name, daily Δ% vs week-9 median), Inner London first,
    /// then the top receiving counties by week-9 volume.
    pub rows: Vec<(String, Vec<Option<f64>>)>,
}

/// Build Fig. 7.
pub fn fig7(ds: &StudyDataset) -> Fig7 {
    let mut rows = Vec::new();
    let week9 = ds.baseline_week();
    rows.push((
        County::InnerLondon.name().to_string(),
        ds.matrix.delta_row(&County::InnerLondon, &ds.clock, week9),
    ));
    for county in ds
        .matrix
        .top_places(&ds.clock, week9, 10, Some(&County::InnerLondon))
    {
        rows.push((
            county.name().to_string(),
            ds.matrix.delta_row(&county, &ds.clock, week9),
        ));
    }
    Fig7 { rows }
}

// ---------------------------------------------------------------------
// Figures 8–12 — network KPIs
// ---------------------------------------------------------------------

/// One KPI line: weekly Δ% vs the national week-9 median.
#[derive(Debug, Clone, Serialize)]
pub struct KpiLine {
    /// Region/cluster/district label.
    pub label: String,
    /// (week, Δ%).
    pub weekly_pct: Vec<(u8, Option<f64>)>,
}

/// A figure panel: one metric, several lines.
#[derive(Debug, Clone, Serialize)]
pub struct KpiPanel {
    /// The metric.
    pub field: KpiField,
    /// Panel title (as in the paper's figures).
    pub title: String,
    /// The lines.
    pub lines: Vec<KpiLine>,
}

/// Collapse a daily series into the paper's weekly Δ% view: median of
/// each figure week's observed days vs the week-9 median.
fn weekly_from_daily(ds: &StudyDataset, daily: &[Option<f64>]) -> Vec<(u8, Option<f64>)> {
    let baseline = {
        let wk9: Vec<f64> = ds
            .clock
            .days_in_week(ds.baseline_week())
            .filter_map(|d| daily[d as usize])
            .collect();
        cellscope_core::stats::median(&wk9)
    };
    figure_weeks()
        .into_iter()
        .map(|week| {
            let vals: Vec<f64> = ds
                .clock
                .days_in_week(wk(week))
                .filter_map(|d| daily[d as usize])
                .collect();
            let delta = match (cellscope_core::stats::median(&vals), baseline) {
                (Some(v), Some(b)) => delta_pct(v, b),
                _ => None,
            };
            (week, delta)
        })
        .collect()
}

/// Weekly Δ% of `field` medians over `cells` (None = all cells), against
/// the line's own week-9 median. The paper's Figs. 8–12 normalize each
/// line so week 9 sits at 0 (all regions' DL volume starts in the same
/// +9…+17% band in week 10), which requires per-line baselines.
fn kpi_weekly(
    ds: &StudyDataset,
    field: KpiField,
    cells: Option<&HashSet<u32>>,
) -> Vec<(u8, Option<f64>)> {
    let num_days = ds.clock.num_days();
    let daily = match cells {
        None => ds.kpi.daily_median(field, num_days, |_| true),
        Some(set) => ds.kpi.daily_median(field, num_days, |c| set.contains(&c)),
    };
    weekly_from_daily(ds, &daily)
}

/// Build one figure's worth of KPI panels through the columnar engine's
/// one-pass multi-field kernel: each line's cell filter runs **once**
/// per record, with every panel's field read off that single row
/// selection — instead of one full-table rescan per (field, line).
/// Output is bit-identical to building each panel independently.
fn panels_multi(
    ds: &StudyDataset,
    fields: &[KpiField],
    lines: &[(String, Option<HashSet<u32>>)],
) -> Vec<KpiPanel> {
    let num_days = ds.clock.num_days();
    let mut panels: Vec<KpiPanel> = fields
        .iter()
        .map(|&field| KpiPanel {
            field,
            title: field.title().to_string(),
            lines: Vec::with_capacity(lines.len()),
        })
        .collect();
    for (label, cells) in lines {
        let dailies = match cells {
            None => ds.kpi.daily_medians_multi(fields, num_days, |_| true),
            Some(set) => {
                ds.kpi
                    .daily_medians_multi(fields, num_days, |c| set.contains(&c))
            }
        };
        for (panel, daily) in panels.iter_mut().zip(&dailies) {
            panel.lines.push(KpiLine {
                label: label.clone(),
                weekly_pct: weekly_from_daily(ds, daily),
            });
        }
    }
    panels
}

/// Fig. 8: the all-traffic KPI panels for the UK plus the five regions.
pub fn fig8(ds: &StudyDataset) -> Vec<KpiPanel> {
    let mut lines: Vec<(String, Option<HashSet<u32>>)> =
        vec![("UK - all regions".to_string(), None)];
    for county in County::STUDY_REGIONS {
        lines.push((
            county.name().to_string(),
            Some(ds.cells_in_county(county).into_iter().collect()),
        ));
    }
    panels_multi(
        ds,
        &[
            KpiField::DlVolume,
            KpiField::UlVolume,
            KpiField::ActiveDlUsers,
            KpiField::UserDlThroughput,
            KpiField::TtiUtilization,
            KpiField::ConnectedUsers,
        ],
        &lines,
    )
}

/// Fig. 9: the 4G voice (QCI 1) panels, UK-wide, plus the 90th
/// percentile of voice volume whose spike the paper highlights.
#[derive(Debug, Clone, Serialize)]
pub struct Fig9 {
    /// Voice panels (volume, simultaneous users, UL loss, DL loss).
    pub panels: Vec<KpiPanel>,
    /// Weekly Δ% of the 90th-percentile voice volume across cells.
    pub volume_p90_weekly_pct: Vec<(u8, Option<f64>)>,
}

/// Build Fig. 9.
pub fn fig9(ds: &StudyDataset) -> Fig9 {
    let uk: Vec<(String, Option<HashSet<u32>>)> = vec![("UK".to_string(), None)];
    let panels = panels_multi(
        ds,
        &[
            KpiField::VoiceVolume,
            KpiField::VoiceUsers,
            KpiField::VoiceUlLoss,
            KpiField::VoiceDlLoss,
        ],
        &uk,
    );

    // p90 series vs its own week-9 baseline.
    let num_days = ds.clock.num_days();
    let p90_daily = ds
        .kpi
        .daily_percentile(KpiField::VoiceVolume, 90.0, num_days, |_| true);
    let base = {
        let wk9: Vec<f64> = ds
            .clock
            .days_in_week(ds.baseline_week())
            .filter_map(|d| p90_daily[d as usize])
            .collect();
        cellscope_core::stats::median(&wk9)
    };
    let volume_p90_weekly_pct = figure_weeks()
        .into_iter()
        .map(|week| {
            let vals: Vec<f64> = ds
                .clock
                .days_in_week(wk(week))
                .filter_map(|d| p90_daily[d as usize])
                .collect();
            let delta = match (cellscope_core::stats::median(&vals), base) {
                (Some(v), Some(b)) => delta_pct(v, b),
                _ => None,
            };
            (week, delta)
        })
        .collect();
    Fig9 {
        panels,
        volume_p90_weekly_pct,
    }
}

/// Fig. 10: KPI panels per OAC cluster, plus the users↔DL-volume
/// correlations of Section 4.4.
#[derive(Debug, Clone, Serialize)]
pub struct Fig10 {
    /// Panels (DL volume, total users, UL volume, active users).
    pub panels: Vec<KpiPanel>,
    /// (cluster, Pearson r between daily total users and DL volume).
    pub user_volume_correlation: Vec<(String, Option<f64>)>,
}

/// Build Fig. 10.
pub fn fig10(ds: &StudyDataset) -> Fig10 {
    let lines: Vec<(String, Option<HashSet<u32>>)> = OacCluster::ALL
        .iter()
        .map(|&c| {
            (
                c.name().to_string(),
                Some(ds.cells_in_cluster(c).into_iter().collect::<HashSet<u32>>()),
            )
        })
        .collect();
    let panels = panels_multi(
        ds,
        &[
            KpiField::DlVolume,
            KpiField::ConnectedUsers,
            KpiField::UlVolume,
            KpiField::ActiveDlUsers,
        ],
        &lines,
    );

    let num_days = ds.clock.num_days();
    let corr_fields = [KpiField::ConnectedUsers, KpiField::DlVolume];
    let user_volume_correlation = OacCluster::ALL
        .iter()
        .map(|&cluster| {
            let set: HashSet<u32> = ds.cells_in_cluster(cluster).into_iter().collect();
            let both = ds
                .kpi
                .daily_medians_multi(&corr_fields, num_days, |c| set.contains(&c));
            let (users, dl) = (&both[0], &both[1]);
            let pairs: Vec<(f64, f64)> = users
                .iter()
                .zip(dl)
                .filter_map(|(u, d)| Some((u.as_ref().copied()?, d.as_ref().copied()?)))
                .collect();
            let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            (cluster.name().to_string(), pearson(&xs, &ys))
        })
        .collect();
    Fig10 {
        panels,
        user_volume_correlation,
    }
}

/// Fig. 11: KPI panels per Inner-London postal district.
pub fn fig11(ds: &StudyDataset) -> Vec<KpiPanel> {
    let lines: Vec<(String, Option<HashSet<u32>>)> = LondonDistrict::ALL
        .iter()
        .map(|&d| {
            (
                d.code().to_string(),
                Some(ds.cells_in_district(d).into_iter().collect::<HashSet<u32>>()),
            )
        })
        .collect();
    panels_multi(
        ds,
        &[
            KpiField::DlVolume,
            KpiField::UlVolume,
            KpiField::ConnectedUsers,
            KpiField::ActiveDlUsers,
            KpiField::TtiUtilization,
        ],
        &lines,
    )
}

/// Fig. 12: KPI panels per OAC cluster *within Inner London*.
pub fn fig12(ds: &StudyDataset) -> Vec<KpiPanel> {
    let london_clusters = [
        OacCluster::Cosmopolitans,
        OacCluster::EthnicityCentral,
        OacCluster::MulticulturalMetropolitans,
    ];
    let lines: Vec<(String, Option<HashSet<u32>>)> = london_clusters
        .iter()
        .map(|&cl| {
            let set: HashSet<u32> = ds
                .cell_geo
                .iter()
                .enumerate()
                .filter(|(_, (county, cluster, _))| {
                    *county == County::InnerLondon && *cluster == cl
                })
                .map(|(i, _)| i as u32)
                .collect();
            (cl.name().to_string(), Some(set))
        })
        .collect();
    panels_multi(
        ds,
        &[
            KpiField::DlVolume,
            KpiField::UlVolume,
            KpiField::ActiveDlUsers,
            KpiField::UserDlThroughput,
        ],
        &lines,
    )
}

// ---------------------------------------------------------------------
// Headline numbers
// ---------------------------------------------------------------------

/// The abstract/conclusion headline statistics, paper-vs-measured.
#[derive(Debug, Clone, Serialize)]
pub struct Headline {
    /// Peak national mobility (gyration) drop, % (paper: ≈ −50%).
    pub gyration_trough_pct: Option<f64>,
    /// Peak national entropy drop, % (smaller than gyration per paper).
    pub entropy_trough_pct: Option<f64>,
    /// UK DL volume Δ% in week 17 (paper: −24%).
    pub dl_volume_week17_pct: Option<f64>,
    /// UK DL volume Δ% in week 10 (paper: +8%).
    pub dl_volume_week10_pct: Option<f64>,
    /// UK radio load Δ% in week 16 (paper: −15.1%).
    pub radio_load_week16_pct: Option<f64>,
    /// Peak voice-volume Δ% (paper: ≈ +140% weekly median, 150% peak).
    pub voice_volume_peak_pct: Option<f64>,
    /// Peak voice DL loss Δ% (paper: > +100% in weeks 10–12).
    pub voice_dl_loss_peak_pct: Option<f64>,
    /// Inner-London residents absent from week 13 on, % (paper: ≈10%).
    pub london_absent_pct: Option<f64>,
    /// Share of dwell time on 4G (paper: ≈75%).
    pub rat_4g_share: f64,
    /// Fig. 2 validation r² (paper: 0.955).
    pub home_validation_r2: Option<f64>,
    /// UK user throughput trough Δ% (paper: ≥ −10%).
    pub throughput_trough_pct: Option<f64>,
    /// UK uplink volume range across weeks 10–19 (paper: −7%…+1.5%).
    pub ul_volume_range_pct: (Option<f64>, Option<f64>),
}

/// Compute the headline statistics.
pub fn headline(ds: &StudyDataset) -> Headline {
    let f3 = fig3(ds);
    let trough = |series: &[Option<f64>]| -> Option<f64> {
        series
            .iter()
            .flatten()
            .copied()
            .min_by(|a, b| a.total_cmp(b))
    };
    // Only consider the analysis range (week >= 9, i.e. from Feb 24),
    // clamped so non-default study windows narrow it instead of
    // panicking.
    let start = clamp_to_window(&ds.clock, Date::ymd(2020, 2, 24)) as usize;

    let dl = kpi_weekly(ds, KpiField::DlVolume, None);
    let tti = kpi_weekly(ds, KpiField::TtiUtilization, None);
    let voice = kpi_weekly(ds, KpiField::VoiceVolume, None);
    let dl_loss = kpi_weekly(ds, KpiField::VoiceDlLoss, None);
    let tput = kpi_weekly(ds, KpiField::UserDlThroughput, None);
    let ul = kpi_weekly(ds, KpiField::UlVolume, None);
    let at_week = |series: &[(u8, Option<f64>)], week: u8| -> Option<f64> {
        series.iter().find(|(w, _)| *w == week).and_then(|(_, v)| *v)
    };
    let peak = |series: &[(u8, Option<f64>)]| -> Option<f64> {
        series
            .iter()
            .filter_map(|(_, v)| *v)
            .max_by(|a, b| a.total_cmp(b))
    };
    let trough_w = |series: &[(u8, Option<f64>)]| -> Option<f64> {
        series
            .iter()
            .filter(|(w, _)| *w >= 10)
            .filter_map(|(_, v)| *v)
            .min_by(|a, b| a.total_cmp(b))
    };

    // London absence: mean Inner-London row value from the first fully
    // restricted day on. A window ending before that week — or a
    // scenario with no stay-home order — has no absence figure.
    let f7 = fig7(ds);
    let london_absent_pct = f7.rows.first().and_then(|(_, row)| {
        let week13_start = ds.clock.day_of(ds.full_restriction?)? as usize;
        let vals: Vec<f64> = row[week13_start..].iter().flatten().copied().collect();
        cellscope_core::stats::mean(&vals).map(|v| -v)
    });

    Headline {
        gyration_trough_pct: trough(&f3.gyration_daily_pct[start..]),
        entropy_trough_pct: trough(&f3.entropy_daily_pct[start..]),
        dl_volume_week17_pct: at_week(&dl, 17),
        dl_volume_week10_pct: at_week(&dl, 10),
        radio_load_week16_pct: at_week(&tti, 16),
        voice_volume_peak_pct: peak(&voice),
        voice_dl_loss_peak_pct: peak(&dl_loss),
        london_absent_pct,
        rat_4g_share: ds.rat_dwell_share[2],
        home_validation_r2: fig2(ds).fit.map(|f| f.r2),
        throughput_trough_pct: trough_w(&tput),
        ul_volume_range_pct: (trough_w(&ul), peak(&ul)),
    }
}

/// Table 1 as data: the eight clusters with name, definition, and the
/// number of zones of each cluster in this study's synthetic country.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// Cluster name.
    pub name: String,
    /// Table 1 definition.
    pub definition: String,
    /// Cells labelled with the cluster in this run.
    pub cells: usize,
}

/// Build Table 1 (with per-cluster deployment counts as evidence the
/// synthetic country instantiates every cluster).
pub fn table1(ds: &StudyDataset) -> Vec<Table1Row> {
    OacCluster::ALL
        .iter()
        .map(|&c| Table1Row {
            name: c.name().to_string(),
            definition: c.definition().to_string(),
            cells: ds.cells_in_cluster(c).len(),
        })
        .collect()
}

// ---------------------------------------------------------------------
// The full figure set, built in parallel
// ---------------------------------------------------------------------

/// Every table/figure of the paper's evaluation, built from one dataset.
#[derive(Debug, Clone, Serialize)]
pub struct FigureSet {
    /// Table 1 — the OAC cluster roster.
    pub table1: Vec<Table1Row>,
    /// Fig. 2 — home-detection validation.
    pub fig2: Fig2,
    /// Fig. 3 — national mobility.
    pub fig3: Fig3,
    /// Fig. 4 — mobility vs cases.
    pub fig4: Fig4,
    /// Fig. 5 — regional mobility.
    pub fig5: Vec<GroupMobility>,
    /// Fig. 6 — geodemographic mobility.
    pub fig6: Vec<GroupMobility>,
    /// Fig. 7 — the Inner-London matrix.
    pub fig7: Fig7,
    /// Fig. 8 — all-traffic KPI panels.
    pub fig8: Vec<KpiPanel>,
    /// Fig. 9 — 4G voice panels.
    pub fig9: Fig9,
    /// Fig. 10 — KPI panels per OAC cluster.
    pub fig10: Fig10,
    /// Fig. 11 — Inner-London district panels.
    pub fig11: Vec<KpiPanel>,
    /// Fig. 12 — Inner-London cluster panels.
    pub fig12: Vec<KpiPanel>,
    /// Supplementary per-bin mobility profile.
    pub bin_profile: BinProfile,
    /// Headline statistics.
    pub headline: Headline,
}

/// One built figure, tagged for the fixed-slot merge in [`build_all`].
enum Built {
    Table1(Vec<Table1Row>),
    F2(Fig2),
    F3(Fig3),
    F4(Fig4),
    F5(Vec<GroupMobility>),
    F6(Vec<GroupMobility>),
    F7(Fig7),
    F8(Vec<KpiPanel>),
    F9(Fig9),
    F10(Fig10),
    F11(Vec<KpiPanel>),
    F12(Vec<KpiPanel>),
    Bins(BinProfile),
    Head(Headline),
}

/// Build every figure, fanning the per-figure builders across up to
/// `threads` workers (`0` = all available cores).
///
/// Determinism contract (inherited from [`cellscope_exec`]): the work
/// is split into fixed tasks — one per figure — that do not depend on
/// the thread count, task `i` is owned by worker `i % workers`, and
/// results come back in task order. Each builder reads the shared
/// dataset immutably, so the output is bit-identical for any `threads`
/// value, including the sequential `threads == 1` path. A panicking
/// builder surfaces as [`FigureError::Exec`] naming the `figures`
/// stage and the builder's slot index; a study window with no overlap
/// with the paper's analysis weeks fails up front with
/// [`FigureError::WindowOutsideStudy`].
pub fn build_all(ds: &StudyDataset, threads: usize) -> Result<FigureSet, FigureError> {
    let mut exec = Executor::new(threads);
    build_all_with(ds, &mut exec)
}

/// [`build_all`] over a caller-supplied [`Executor`] (records a
/// `figures` stage in the executor's metrics).
pub fn build_all_with(
    ds: &StudyDataset,
    exec: &mut Executor,
) -> Result<FigureSet, FigureError> {
    if figure_weeks()
        .iter()
        .all(|&w| ds.clock.days_in_week(wk(w)).next().is_none())
    {
        return Err(FigureError::WindowOutsideStudy);
    }
    type Builder = fn(&StudyDataset) -> Built;
    const BUILDERS: [Builder; 14] = [
        |ds| Built::Table1(table1(ds)),
        |ds| Built::F2(fig2(ds)),
        |ds| Built::F3(fig3(ds)),
        |ds| Built::F4(fig4(ds)),
        |ds| Built::F5(fig5(ds)),
        |ds| Built::F6(fig6(ds)),
        |ds| Built::F7(fig7(ds)),
        |ds| Built::F8(fig8(ds)),
        |ds| Built::F9(fig9(ds)),
        |ds| Built::F10(fig10(ds)),
        |ds| Built::F11(fig11(ds)),
        |ds| Built::F12(fig12(ds)),
        |ds| Built::Bins(bin_profile(ds)),
        |ds| Built::Head(headline(ds)),
    ];
    // Warm the columnar KPI index before fanning out so the builders
    // share one ready index instead of racing on the lazy build.
    ds.kpi.columns();

    let built = exec.run_stage("figures", BUILDERS.len(), |i, ctx| {
        ctx.add_items(1); // one figure slot
        BUILDERS[i](ds)
    })?;

    let mut slots = built.into_iter();
    let mut next = move || slots.next().unwrap_or_else(|| unreachable!("slot count matches builders"));
    macro_rules! take {
        ($variant:ident) => {
            match next() {
                Built::$variant(v) => v,
                _ => unreachable!("slot order is fixed"),
            }
        };
    }
    Ok(FigureSet {
        table1: take!(Table1),
        fig2: take!(F2),
        fig3: take!(F3),
        fig4: take!(F4),
        fig5: take!(F5),
        fig6: take!(F6),
        fig7: take!(F7),
        fig8: take!(F8),
        fig9: take!(F9),
        fig10: take!(F10),
        fig11: take!(F11),
        fig12: take!(F12),
        bin_profile: take!(Bins),
        headline: take!(Head),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_study, ScenarioConfig, StudyDataset};
    use std::sync::OnceLock;

    fn ds() -> &'static StudyDataset {
        static DS: OnceLock<StudyDataset> = OnceLock::new();
        DS.get_or_init(|| run_study(&ScenarioConfig::tiny(5)).expect("study"))
    }

    #[test]
    fn table1_lists_all_clusters_with_cells() {
        let rows = table1(ds());
        assert_eq!(rows.len(), 8);
        for row in &rows {
            assert!(!row.name.is_empty() && !row.definition.is_empty());
            assert!(row.cells > 0, "{} has no cells", row.name);
        }
    }

    #[test]
    fn fig2_points_cover_every_lad() {
        let f = fig2(ds());
        assert!(!f.points.is_empty());
        // Census populations are positive and labels unique.
        let mut labels: Vec<&String> = f.points.iter().map(|(l, _, _)| l).collect();
        let n = labels.len();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), n);
        assert!(f.points.iter().all(|(_, census, _)| *census > 0));
    }

    #[test]
    fn fig3_series_are_day_aligned() {
        let f = fig3(ds());
        let days = ds().clock.num_days();
        assert_eq!(f.gyration_daily_pct.len(), days);
        assert_eq!(f.entropy_daily_pct.len(), days);
        assert_eq!(f.gyration_percentiles.len(), days);
        // Percentile bands are ordered p10 <= p50 <= p90.
        for band in f.gyration_percentiles.iter().flatten() {
            assert!(band.0 <= band.1 && band.1 <= band.2, "{band:?}");
        }
        // Weekly covers weeks 9-19.
        let weeks: Vec<u8> = f.weekly.iter().map(|(w, _, _)| *w).collect();
        assert_eq!(weeks, figure_weeks());
    }

    #[test]
    fn fig4_points_sorted_and_monotone_in_cases() {
        let f = fig4(ds());
        for pair in f.points.windows(2) {
            assert!(pair[0].day < pair[1].day);
            assert!(pair[0].cumulative_cases <= pair[1].cumulative_cases);
        }
    }

    #[test]
    fn fig5_fig6_groups_complete() {
        let f5 = fig5(ds());
        assert_eq!(f5.len(), 5);
        let f6 = fig6(ds());
        assert_eq!(f6.len(), 8);
        for g in f5.iter().chain(&f6) {
            assert_eq!(g.gyration_daily_pct.len(), ds().clock.num_days());
            assert_eq!(g.weekly.len(), figure_weeks().len());
        }
    }

    #[test]
    fn fig7_rows_start_with_inner_london() {
        let f = fig7(ds());
        assert_eq!(f.rows[0].0, "Inner London");
        assert!(f.rows.len() >= 2, "matrix needs destination rows");
        for (_, row) in &f.rows {
            assert_eq!(row.len(), ds().clock.num_days());
        }
    }

    #[test]
    fn fig8_panels_and_lines_complete() {
        let panels = fig8(ds());
        assert_eq!(panels.len(), 6);
        for p in &panels {
            assert_eq!(p.lines.len(), 6, "UK + 5 regions in {}", p.title);
            assert_eq!(p.lines[0].label, "UK - all regions");
            for line in &p.lines {
                assert_eq!(line.weekly_pct.len(), figure_weeks().len());
            }
        }
    }

    #[test]
    fn fig9_panels_complete() {
        let f = fig9(ds());
        assert_eq!(f.panels.len(), 4);
        assert_eq!(f.volume_p90_weekly_pct.len(), figure_weeks().len());
    }

    #[test]
    fn fig10_correlations_in_range() {
        let f = fig10(ds());
        assert_eq!(f.user_volume_correlation.len(), 8);
        for (name, r) in &f.user_volume_correlation {
            if let Some(r) = r {
                assert!((-1.0..=1.0).contains(r), "{name}: r = {r}");
            }
        }
    }

    #[test]
    fn fig11_fig12_have_expected_lines() {
        let f11 = fig11(ds());
        assert!(f11.iter().all(|p| p.lines.len() == 8));
        let f12 = fig12(ds());
        assert!(f12.iter().all(|p| p.lines.len() == 3));
    }

    #[test]
    fn figures_serialize_to_json() {
        // The repro binary exports every figure as JSON; the structures
        // must serialize cleanly.
        let d = ds();
        for value in [
            serde_json::to_value(fig2(d)).unwrap(),
            serde_json::to_value(fig3(d)).unwrap(),
            serde_json::to_value(fig4(d)).unwrap(),
            serde_json::to_value(fig7(d)).unwrap(),
            serde_json::to_value(fig9(d)).unwrap(),
            serde_json::to_value(headline(d)).unwrap(),
        ] {
            assert!(value.is_object() || value.is_array());
        }
    }

    #[test]
    fn bin_profile_shows_commute_collapse() {
        let profile = bin_profile(ds());
        assert_eq!(profile.bins.len(), 6);
        let delta = |name: &str| -> f64 {
            profile
                .bins
                .iter()
                .find(|(n, _, _, _)| n == name)
                .and_then(|(_, _, _, d)| *d)
                .unwrap_or(0.0)
        };
        // The commuting/daytime bins collapse far harder than the night
        // bin (whose residents were home in both worlds).
        assert!(delta("Morning") < -30.0, "Morning {}", delta("Morning"));
        assert!(
            delta("Morning") < delta("Night") - 15.0,
            "Morning {} vs Night {}",
            delta("Morning"),
            delta("Night")
        );
    }

    #[test]
    fn build_all_identical_across_thread_counts() {
        // The parallel figure pass must be bit-identical to the
        // sequential one, for any worker count. JSON serialization
        // preserves every f64 bit pattern we emit, so value equality
        // here is bitwise equality of the figures.
        let d = ds();
        let sequential = serde_json::to_value(build_all(d, 1).expect("figures")).unwrap();
        for threads in [2, 8] {
            let parallel =
                serde_json::to_value(build_all(d, threads).expect("figures")).unwrap();
            assert_eq!(sequential, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn multi_field_panels_match_naive_path() {
        // The one-pass multi-field kernel behind panels_multi must
        // reproduce the naive per-(field, line) rescan bit for bit.
        let d = ds();
        let num_days = d.clock.num_days();
        let f8 = fig8(d);
        for panel in &f8 {
            for line in &panel.lines {
                let daily = if line.label == "UK - all regions" {
                    d.kpi.daily_median_naive(panel.field, num_days, |_| true)
                } else {
                    let county = County::STUDY_REGIONS
                        .iter()
                        .find(|c| c.name() == line.label)
                        .copied()
                        .expect("line label is a study region");
                    let set: HashSet<u32> = d.cells_in_county(county).into_iter().collect();
                    d.kpi
                        .daily_median_naive(panel.field, num_days, |c| set.contains(&c))
                };
                let naive = weekly_from_daily(d, &daily);
                let bits = |s: &[(u8, Option<f64>)]| -> Vec<(u8, Option<u64>)> {
                    s.iter().map(|(w, v)| (*w, v.map(f64::to_bits))).collect()
                };
                assert_eq!(
                    bits(&line.weekly_pct),
                    bits(&naive),
                    "{} / {}",
                    panel.title,
                    line.label
                );
            }
        }
    }

    #[test]
    fn headline_fields_present() {
        let h = headline(ds());
        assert!(h.gyration_trough_pct.is_some());
        assert!(h.voice_volume_peak_pct.is_some());
        assert!(h.home_validation_r2.is_some());
        assert!(h.rat_4g_share > 0.5);
    }
}
