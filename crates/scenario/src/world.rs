//! The static world of one study run.

use crate::config::ScenarioConfig;
use cellscope_epidemic::CaseCurve;
use cellscope_geo::{County, Geography, LondonDistrict, OacCluster};
use cellscope_mobility::{BehaviorModel, Population};
use cellscope_radio::Topology;
use cellscope_signaling::{Anonymizer, TacCatalog};
use cellscope_time::SimClock;

/// Everything that exists before the first simulated day: the country,
/// the radio network, the subscriber base, and the models that drive
/// behaviour.
pub struct World {
    /// Synthetic UK.
    pub geo: Geography,
    /// Deployed radio network.
    pub topo: Topology,
    /// Subscriber base.
    pub population: Population,
    /// Policy-response behaviour model.
    pub behavior: BehaviorModel,
    /// National cumulative-case curve.
    pub cases: CaseCurve,
    /// Simulation clock (the paper's study window).
    pub clock: SimClock,
    /// GSMA-style device catalog.
    pub catalog: TacCatalog,
    /// Identity anonymizer.
    pub anonymizer: Anonymizer,
    /// Per-cell geography lookup: (county, cluster, district), indexed
    /// by cell id — the NSPL-style join the KPI analysis needs.
    pub cell_geo: Vec<(County, OacCluster, Option<LondonDistrict>)>,
}

impl World {
    /// Build the world for a configuration.
    pub fn build(config: &ScenarioConfig) -> World {
        let geo = config.geography.build();
        let topo = config.deployment.build(&geo);
        // The scenario's schedule governs every policy-reactive model.
        let population = Population::synthesize(
            &config.population,
            &config.schedule.relocation_waves,
            &geo,
            &topo,
        );
        let behavior = BehaviorModel::new(config.schedule.clone());
        let clock = SimClock::new(config.study_start, config.study_end);
        let cell_geo = topo
            .cells()
            .iter()
            .map(|c| {
                let z = geo.zone(c.zone);
                (z.county, z.cluster, z.district)
            })
            .collect();
        World {
            geo,
            topo,
            population,
            behavior,
            cases: CaseCurve::uk_2020(),
            clock,
            catalog: TacCatalog::synthetic(),
            anonymizer: Anonymizer::new(config.seed ^ 0xA11CE),
            cell_geo,
        }
    }

    /// Number of simulated days.
    pub fn num_days(&self) -> usize {
        self.clock.num_days()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScenarioConfig;

    #[test]
    fn world_builds_consistently() {
        let cfg = ScenarioConfig::tiny(3);
        let w = World::build(&cfg);
        assert_eq!(w.cell_geo.len(), w.topo.cells().len());
        assert_eq!(w.num_days(), 100);
        assert!(w.population.len() > 1_000);
        // Cell-geo join matches the underlying zones.
        for (cell, &(county, cluster, district)) in
            w.topo.cells().iter().zip(&w.cell_geo)
        {
            let z = w.geo.zone(cell.zone);
            assert_eq!(z.county, county);
            assert_eq!(z.cluster, cluster);
            assert_eq!(z.district, district);
        }
    }
}
