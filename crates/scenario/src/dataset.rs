//! The collected study data.
//!
//! [`StudyDataset`] is the output of a full run: everything the paper's
//! figures and takeaways are computed from, in the aggregated forms the
//! paper itself works with (per-user-day metrics folded into group
//! means, per-cell-day KPI medians, inferred homes, the Inner-London
//! mobility matrix, the interconnect's daily state, case counts).

use cellscope_epidemic::CaseCurve;
use cellscope_core::{DailyGroupMean, DailyGroupSamples, KpiTable, MobilityMatrix};
use cellscope_geo::{County, LadId, LondonDistrict, OacCluster, ZoneId};
use cellscope_radio::DayOutcome;
use cellscope_time::{Date, DayBin, SimClock};
use serde::{Deserialize, Serialize};

/// Grouping key for mobility-metric aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MetricGroup {
    /// Whole country.
    National,
    /// By home county.
    County(County),
    /// By home-zone OAC cluster.
    Cluster(OacCluster),
}

/// Per-subscriber reference data (ground truth + feed-side attributes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UserInfo {
    /// Ground-truth home zone.
    pub home_zone: ZoneId,
    /// Ground-truth home county.
    pub home_county: County,
    /// Home-zone OAC cluster.
    pub home_cluster: OacCluster,
    /// Home postal district (Inner London only).
    pub home_district: Option<LondonDistrict>,
    /// Whether the analysis keeps this user: smartphone TAC + native
    /// SIM, determined from the feed the way Section 2.3 does.
    pub in_study: bool,
    /// Home county *inferred* by the home-detection algorithm
    /// (None when undetectable).
    pub inferred_home_county: Option<County>,
}

/// One point of the Fig. 2 validation: a LAD's census population vs the
/// number of users whose inferred home lies in it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HomeValidationPoint {
    /// The LAD.
    pub lad: LadId,
    /// ONS-style census population.
    pub census: u64,
    /// Users with inferred home in the LAD.
    pub inferred: u32,
}

/// Everything a study run produces.
pub struct StudyDataset {
    /// The study window.
    pub clock: SimClock,
    /// Per-user reference table (indexed by subscriber id).
    pub users: Vec<UserInfo>,
    /// Per-(group, day) mean radius of gyration (km).
    pub gyration: DailyGroupMean<MetricGroup>,
    /// Per-(group, day) mean mobility entropy (nats).
    pub entropy: DailyGroupMean<MetricGroup>,
    /// Full per-user gyration samples per (group, day) — the paper's
    /// distribution/percentile statements ("all percentiles are close
    /// to the median") are computed from these.
    pub gyration_dist: DailyGroupSamples<MetricGroup>,
    /// National mean gyration per (4-hour bin, day): Section 2.3 also
    /// computes the metrics per bin, which exposes *when* in the day
    /// mobility died (the commuting bins) and when it survived (the
    /// exercise-hour bins).
    pub gyration_by_bin: DailyGroupMean<DayBin>,
    /// Per-cell-day KPI records.
    pub kpi: KpiTable,
    /// Per-cell geography: (county, cluster, district), by cell id.
    pub cell_geo: Vec<(County, OacCluster, Option<LondonDistrict>)>,
    /// Inner-London residents' county-presence matrix (residents by
    /// *inferred* home, per Section 3.4).
    pub matrix: MobilityMatrix<County>,
    /// Fig. 2 validation points.
    pub home_validation: Vec<HomeValidationPoint>,
    /// Daily interconnect state (utilization, loss, upgrade).
    pub interconnect_daily: Vec<DayOutcome>,
    /// Daily national off-net voice load offered to the interconnect.
    pub national_voice_daily: Vec<f64>,
    /// National cumulative-case curve.
    pub cases: CaseCurve,
    /// Share of smartphone dwell time on [2G, 3G, 4G] (Section 2.4's
    /// 75%-on-4G statistic).
    pub rat_dwell_share: [f64; 3],
    /// Number of users kept by the study filter.
    pub study_population: usize,
    /// Number of users with a detected home.
    pub homes_detected: usize,
    /// The scenario's pandemic-declaration anchor (first scheduled
    /// behaviour change); `None` when the schedule never intervenes.
    /// Figure builders split "before/after the announcement" here
    /// instead of hard-coding the UK's Mar 11.
    pub declaration: Option<Date>,
    /// The scenario's full-restriction anchor (first phase whose
    /// confinement floor reaches 1.0); `None` without a stay-home
    /// order. Replaces the hard-coded Mar 23 lockdown date.
    pub full_restriction: Option<Date>,
}

impl StudyDataset {
    /// The paper's baseline week.
    pub fn baseline_week(&self) -> cellscope_time::IsoWeek {
        cellscope_time::IsoWeek { year: 2020, week: 9 }
    }

    /// Cells (ids) in a county.
    pub fn cells_in_county(&self, county: County) -> Vec<u32> {
        self.cell_geo
            .iter()
            .enumerate()
            .filter(|(_, (c, _, _))| *c == county)
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Cells (ids) in an OAC cluster.
    pub fn cells_in_cluster(&self, cluster: OacCluster) -> Vec<u32> {
        self.cell_geo
            .iter()
            .enumerate()
            .filter(|(_, (_, c, _))| *c == cluster)
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Cells (ids) in an Inner-London postal district.
    pub fn cells_in_district(&self, district: LondonDistrict) -> Vec<u32> {
        self.cell_geo
            .iter()
            .enumerate()
            .filter(|(_, (_, _, d))| *d == Some(district))
            .map(|(i, _)| i as u32)
            .collect()
    }
}
