//! Canonical scenario variants: the counterfactual and ablation arms.
//!
//! Each function takes a base configuration and removes (or alters) one
//! modelled mechanism, leaving everything else — including every seed —
//! untouched, so differences between runs are attributable to that
//! mechanism alone. The `ablation` binary and the integration tests both
//! build their arms from here.

use crate::config::ScenarioConfig;
use cellscope_epidemic::Timeline;

/// The control arm: no pandemic interventions ever happen. Mobility,
/// demand, voice, relocation and throttling all read a quiet timeline.
pub fn no_interventions(base: &ScenarioConfig) -> ScenarioConfig {
    let mut cfg = base.clone();
    cfg.timeline = Timeline::no_intervention();
    cfg
}

/// Remove the Inner-London relocation wave (nobody acts on their
/// secondary residence); everything else proceeds as in the base.
pub fn no_relocation(base: &ScenarioConfig) -> ScenarioConfig {
    let mut cfg = base.clone();
    cfg.population.relocation_uptake = 0.0;
    cfg
}

/// Network operations provision interconnect capacity within `days`
/// of sustained congestion instead of the historical ~3 weeks.
pub fn fast_ops_response(base: &ScenarioConfig, days: u16) -> ScenarioConfig {
    let mut cfg = base.clone();
    cfg.interconnect.response_delay_days = days;
    cfg
}

/// Content providers never reduce quality: per-user throughput stays at
/// the unthrottled application ceiling.
pub fn no_content_throttling(base: &ScenarioConfig) -> ScenarioConfig {
    let mut cfg = base.clone();
    cfg.content_throttling = false;
    cfg
}

/// The interconnect is dimensioned with `headroom`× the baseline
/// off-net voice load (e.g. 4.0 = never congests under the surge).
pub fn interconnect_headroom(base: &ScenarioConfig, headroom: f64) -> ScenarioConfig {
    let mut cfg = base.clone();
    cfg.interconnect_headroom = headroom;
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_change_exactly_one_mechanism() {
        let base = ScenarioConfig::tiny(9);

        let v = no_interventions(&base);
        assert_ne!(v.timeline, base.timeline);
        assert_eq!(v.population.num_subscribers, base.population.num_subscribers);
        assert_eq!(v.seed, base.seed);

        let v = no_relocation(&base);
        assert_eq!(v.population.relocation_uptake, 0.0);
        assert_eq!(v.timeline, base.timeline);

        let v = fast_ops_response(&base, 5);
        assert_eq!(v.interconnect.response_delay_days, 5);
        assert_eq!(v.interconnect_headroom, base.interconnect_headroom);

        let v = no_content_throttling(&base);
        assert!(!v.content_throttling);
        assert!(base.content_throttling);

        let v = interconnect_headroom(&base, 4.0);
        assert_eq!(v.interconnect_headroom, 4.0);
    }

    #[test]
    fn config_round_trips_through_json() {
        // The repro binary persists and reloads configurations; every
        // knob must survive serialization.
        let base = ScenarioConfig::small(123);
        let json = serde_json::to_string(&base).expect("serialize");
        let back: ScenarioConfig = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
        assert_eq!(back.seed, base.seed);
        assert_eq!(back.population.num_subscribers, base.population.num_subscribers);
        assert_eq!(back.timeline, base.timeline);
    }
}
