//! Canonical scenario variants: the counterfactual and ablation arms.
//!
//! A variant is a [`ScenarioDelta`] — a sparse set of overrides applied
//! on top of a base configuration, leaving everything else (including
//! every seed) untouched, so differences between runs are attributable
//! to the overridden mechanisms alone. Scenario files express the same
//! deltas in their `[overrides]` table, so the ablation binary, the
//! integration tests, and the scenario library all share one source of
//! truth for "what a variant may change".

use crate::config::ScenarioConfig;
use cellscope_epidemic::PhaseSchedule;
use serde::{Deserialize, Serialize};

/// A sparse override set over a [`ScenarioConfig`]. Every field is
/// optional; [`ScenarioDelta::apply`] copies only the present ones onto
/// a clone of the base. The closed field set is deliberate: a delta can
/// swap the behavioural schedule or the handful of ablation knobs, but
/// never seeds or population scale — those would silently break
/// attributability.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ScenarioDelta {
    /// Replace the behavioural phase schedule.
    pub schedule: Option<PhaseSchedule>,
    /// Override the share of eligible residents acting on a relocation
    /// wave (0.0 disables relocation entirely).
    pub relocation_uptake: Option<f64>,
    /// Override how quickly network operations provision interconnect
    /// capacity after sustained congestion (days).
    pub response_delay_days: Option<u16>,
    /// Enable/disable content-provider quality reduction.
    pub content_throttling: Option<bool>,
    /// Override interconnect head-room over the baseline off-net load.
    pub interconnect_headroom: Option<f64>,
}

impl ScenarioDelta {
    /// Apply the present overrides to a clone of `base`.
    pub fn apply(&self, base: &ScenarioConfig) -> ScenarioConfig {
        let mut cfg = base.clone();
        if let Some(schedule) = &self.schedule {
            cfg.schedule = schedule.clone();
        }
        if let Some(uptake) = self.relocation_uptake {
            cfg.population.relocation_uptake = uptake;
        }
        if let Some(days) = self.response_delay_days {
            cfg.interconnect.response_delay_days = days;
        }
        if let Some(throttling) = self.content_throttling {
            cfg.content_throttling = throttling;
        }
        if let Some(headroom) = self.interconnect_headroom {
            cfg.interconnect_headroom = headroom;
        }
        cfg
    }

    /// Whether the delta overrides anything at all.
    pub fn is_empty(&self) -> bool {
        *self == ScenarioDelta::default()
    }
}

/// The control arm: no pandemic interventions ever happen. Mobility,
/// demand, voice, relocation and throttling all read an empty schedule.
pub fn no_interventions(base: &ScenarioConfig) -> ScenarioConfig {
    ScenarioDelta {
        schedule: Some(PhaseSchedule::no_intervention()),
        ..ScenarioDelta::default()
    }
    .apply(base)
}

/// Remove the Inner-London relocation wave (nobody acts on their
/// secondary residence); everything else proceeds as in the base.
pub fn no_relocation(base: &ScenarioConfig) -> ScenarioConfig {
    ScenarioDelta {
        relocation_uptake: Some(0.0),
        ..ScenarioDelta::default()
    }
    .apply(base)
}

/// Network operations provision interconnect capacity within `days`
/// of sustained congestion instead of the historical ~3 weeks.
pub fn fast_ops_response(base: &ScenarioConfig, days: u16) -> ScenarioConfig {
    ScenarioDelta {
        response_delay_days: Some(days),
        ..ScenarioDelta::default()
    }
    .apply(base)
}

/// Content providers never reduce quality: per-user throughput stays at
/// the unthrottled application ceiling.
pub fn no_content_throttling(base: &ScenarioConfig) -> ScenarioConfig {
    ScenarioDelta {
        content_throttling: Some(false),
        ..ScenarioDelta::default()
    }
    .apply(base)
}

/// The interconnect is dimensioned with `headroom`× the baseline
/// off-net voice load (e.g. 4.0 = never congests under the surge).
pub fn interconnect_headroom(base: &ScenarioConfig, headroom: f64) -> ScenarioConfig {
    ScenarioDelta {
        interconnect_headroom: Some(headroom),
        ..ScenarioDelta::default()
    }
    .apply(base)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_change_exactly_one_mechanism() {
        let base = ScenarioConfig::tiny(9);

        let v = no_interventions(&base);
        assert_ne!(v.schedule, base.schedule);
        assert_eq!(v.population.num_subscribers, base.population.num_subscribers);
        assert_eq!(v.seed, base.seed);

        let v = no_relocation(&base);
        assert_eq!(v.population.relocation_uptake, 0.0);
        assert_eq!(v.schedule, base.schedule);

        let v = fast_ops_response(&base, 5);
        assert_eq!(v.interconnect.response_delay_days, 5);
        assert_eq!(v.interconnect_headroom, base.interconnect_headroom);

        let v = no_content_throttling(&base);
        assert!(!v.content_throttling);
        assert!(base.content_throttling);

        let v = interconnect_headroom(&base, 4.0);
        assert_eq!(v.interconnect_headroom, 4.0);
    }

    #[test]
    fn empty_delta_is_identity() {
        let base = ScenarioConfig::tiny(11);
        let delta = ScenarioDelta::default();
        assert!(delta.is_empty());
        let applied = delta.apply(&base);
        assert_eq!(
            serde_json::to_string(&applied).unwrap(),
            serde_json::to_string(&base).unwrap()
        );
    }

    #[test]
    fn delta_round_trips_through_json() {
        let delta = ScenarioDelta {
            schedule: Some(PhaseSchedule::no_intervention()),
            relocation_uptake: Some(0.25),
            response_delay_days: None,
            content_throttling: Some(false),
            interconnect_headroom: Some(2.5),
        };
        let json = serde_json::to_string(&delta).unwrap();
        let back: ScenarioDelta = serde_json::from_str(&json).unwrap();
        assert_eq!(back, delta);
        assert!(!back.is_empty());
    }

    #[test]
    fn config_round_trips_through_json() {
        // The repro binary persists and reloads configurations; every
        // knob must survive serialization.
        let base = ScenarioConfig::small(123);
        let json = serde_json::to_string(&base).expect("serialize");
        let back: ScenarioConfig = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
        assert_eq!(back.seed, base.seed);
        assert_eq!(back.population.num_subscribers, base.population.num_subscribers);
        assert_eq!(back.schedule, base.schedule);
    }
}
