//! Scenario configuration and scale presets.

use cellscope_epidemic::Timeline;
use cellscope_geo::SynthConfig;
use cellscope_mobility::PopulationConfig;
use cellscope_radio::{DeployConfig, InterconnectConfig};
use cellscope_signaling::EventGenConfig;
use serde::{Deserialize, Serialize};

/// Everything that defines one study run. All randomness derives from
/// the seeds below: two runs with equal configs are bit-identical.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Master seed, mixed into every component seed.
    pub seed: u64,
    /// Geography generation.
    pub geography: SynthConfig,
    /// Radio deployment.
    pub deployment: DeployConfig,
    /// Population synthesis.
    pub population: PopulationConfig,
    /// Signaling event generation.
    pub events: EventGenConfig,
    /// The policy timeline driving behaviour. The default is the UK's
    /// 2020 intervention sequence; swap in
    /// [`Timeline::no_intervention`] (or a custom one) for
    /// counterfactual studies.
    pub timeline: Timeline,
    /// Voice-interconnect head-room over the baseline daily off-net
    /// load (capacity = headroom × measured week-9 load).
    pub interconnect_headroom: f64,
    /// Target median peak-hour cell utilization at baseline; the runner
    /// calibrates the population scale factor against it so a subsampled
    /// population still loads cells realistically.
    pub target_peak_utilization: f64,
    /// Interconnect behaviour (capacity is overwritten from headroom).
    pub interconnect: InterconnectConfig,
    /// Whether content providers throttle quality from just before the
    /// closures (the EU request of March 2020). Disable to ablate the
    /// "throughput is application-limited" effect.
    pub content_throttling: bool,
    /// Route mobility metrics through the signaling event stream and
    /// dwell reconstruction (the paper's actual code path). Disable only
    /// for quick smoke runs — ground-truth dwell is then used directly.
    pub use_event_reconstruction: bool,
    /// Worker threads for the day loop (`0` = all available cores).
    pub threads: usize,
}

impl ScenarioConfig {
    /// The full-scale default study (tens of thousands of subscribers;
    /// minutes of runtime in release mode).
    pub fn full(seed: u64) -> ScenarioConfig {
        ScenarioConfig {
            seed,
            geography: SynthConfig {
                seed: seed ^ 0x6E0,
                ..SynthConfig::default()
            },
            deployment: DeployConfig {
                seed: seed ^ 0xDE9107,
                ..DeployConfig::default()
            },
            population: PopulationConfig {
                seed: seed ^ 0x909,
                num_subscribers: 40_000,
                ..PopulationConfig::default()
            },
            events: EventGenConfig {
                seed: seed ^ 0xE0E,
                ..EventGenConfig::default()
            },
            timeline: Timeline::uk_2020(),
            interconnect_headroom: 1.15,
            target_peak_utilization: 0.35,
            interconnect: InterconnectConfig::default(),
            content_throttling: true,
            use_event_reconstruction: true,
            threads: 0,
        }
    }

    /// A small but statistically meaningful study (~8k subscribers,
    /// coarse zones) — seconds of runtime in release mode; used by the
    /// integration tests and examples.
    pub fn small(seed: u64) -> ScenarioConfig {
        let mut cfg = ScenarioConfig::full(seed);
        cfg.geography.residents_per_zone = 120_000;
        cfg.deployment.residents_per_site = 24_000;
        cfg.population.num_subscribers = 12_000;
        cfg
    }

    /// The tiniest useful scenario (~2k subscribers) for unit tests.
    /// Event reconstruction stays on: tests must cover the real path.
    pub fn tiny(seed: u64) -> ScenarioConfig {
        let mut cfg = ScenarioConfig::full(seed);
        cfg.geography.residents_per_zone = 400_000;
        cfg.geography.zones_per_lad = 3;
        cfg.deployment.residents_per_site = 80_000;
        cfg.population.num_subscribers = 2_000;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_scale_down_monotonically() {
        let full = ScenarioConfig::full(1);
        let small = ScenarioConfig::small(1);
        let tiny = ScenarioConfig::tiny(1);
        assert!(full.population.num_subscribers > small.population.num_subscribers);
        assert!(small.population.num_subscribers > tiny.population.num_subscribers);
        assert!(tiny.use_event_reconstruction, "tests must use the real path");
    }

    #[test]
    fn seeds_differentiate_components() {
        let cfg = ScenarioConfig::full(42);
        let seeds = [
            cfg.geography.seed,
            cfg.deployment.seed,
            cfg.population.seed,
            cfg.events.seed,
        ];
        for (i, a) in seeds.iter().enumerate() {
            for b in seeds.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }
}
