//! Scenario configuration and scale presets.

use cellscope_epidemic::{Milestones, PhaseSchedule};
use cellscope_geo::SynthConfig;
use cellscope_mobility::PopulationConfig;
use cellscope_radio::{DeployConfig, InterconnectConfig};
use cellscope_signaling::EventGenConfig;
use cellscope_time::{Date, STUDY_END, STUDY_START};
use serde::{Deserialize, Serialize};

/// Everything that defines one study run. All randomness derives from
/// the seeds below: two runs with equal configs are bit-identical.
///
/// `Deserialize` is hand-written (see below) so configs serialized
/// before the study window became configurable still load: a missing
/// `study_start`/`study_end` falls back to the paper's window, and a
/// legacy six-date `timeline` key expands into the equivalent
/// [`PhaseSchedule`].
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioConfig {
    /// Master seed, mixed into every component seed.
    pub seed: u64,
    /// Geography generation.
    pub geography: SynthConfig,
    /// Radio deployment.
    pub deployment: DeployConfig,
    /// Population synthesis.
    pub population: PopulationConfig,
    /// Signaling event generation.
    pub events: EventGenConfig,
    /// The phase schedule driving behaviour: dated phases, news and
    /// voice-surge windows, regional factors and relocation waves. The
    /// default is the UK's 2020 intervention sequence; swap in
    /// [`PhaseSchedule::no_intervention`] (or a scenario file) for
    /// counterfactual studies.
    pub schedule: PhaseSchedule,
    /// Voice-interconnect head-room over the baseline daily off-net
    /// load (capacity = headroom × measured week-9 load).
    pub interconnect_headroom: f64,
    /// Target median peak-hour cell utilization at baseline; the runner
    /// calibrates the population scale factor against it so a subsampled
    /// population still loads cells realistically.
    pub target_peak_utilization: f64,
    /// Interconnect behaviour (capacity is overwritten from headroom).
    pub interconnect: InterconnectConfig,
    /// Whether content providers throttle quality from just before the
    /// closures (the EU request of March 2020). Disable to ablate the
    /// "throughput is application-limited" effect.
    pub content_throttling: bool,
    /// Route mobility metrics through the signaling event stream and
    /// dwell reconstruction (the paper's actual code path). Disable only
    /// for quick smoke runs — ground-truth dwell is then used directly.
    pub use_event_reconstruction: bool,
    /// Worker threads for the day loop (`0` = all available cores).
    pub threads: usize,
    /// First day of the study window (paper: Feb 1 2020). Figure
    /// builders clamp their calendar anchors to the window, so shorter
    /// windows narrow the analysis instead of aborting it.
    pub study_start: Date,
    /// Last day of the study window, inclusive (paper: May 10 2020).
    pub study_end: Date,
}

impl Deserialize for ScenarioConfig {
    fn from_content(c: &serde::Content) -> Result<ScenarioConfig, serde::DeError> {
        let f = serde::de::fields(c)?;
        Ok(ScenarioConfig {
            seed: serde::de::field(&f, "seed")?,
            geography: serde::de::field(&f, "geography")?,
            deployment: serde::de::field(&f, "deployment")?,
            population: serde::de::field(&f, "population")?,
            events: serde::de::field(&f, "events")?,
            // Current configs carry a full `schedule`; configs from
            // before the scenario engine carry a six-date `timeline`
            // (exactly the `Milestones` shape) instead.
            schedule: match serde::de::field::<Option<PhaseSchedule>>(&f, "schedule")? {
                Some(s) => s,
                None => {
                    let m: Milestones = serde::de::field(&f, "timeline")?;
                    PhaseSchedule::from_milestones(&m)
                }
            },
            interconnect_headroom: serde::de::field(&f, "interconnect_headroom")?,
            target_peak_utilization: serde::de::field(&f, "target_peak_utilization")?,
            interconnect: serde::de::field(&f, "interconnect")?,
            content_throttling: serde::de::field(&f, "content_throttling")?,
            use_event_reconstruction: serde::de::field(&f, "use_event_reconstruction")?,
            threads: serde::de::field(&f, "threads")?,
            // Absent in pre-window configs: the paper's study window.
            study_start: serde::de::field::<Option<Date>>(&f, "study_start")?
                .unwrap_or(STUDY_START),
            study_end: serde::de::field::<Option<Date>>(&f, "study_end")?
                .unwrap_or(STUDY_END),
        })
    }
}

impl ScenarioConfig {
    /// The full-scale default study (tens of thousands of subscribers;
    /// minutes of runtime in release mode).
    pub fn full(seed: u64) -> ScenarioConfig {
        ScenarioConfig {
            seed,
            geography: SynthConfig {
                seed: seed ^ 0x6E0,
                ..SynthConfig::default()
            },
            deployment: DeployConfig {
                seed: seed ^ 0xDE9107,
                ..DeployConfig::default()
            },
            population: PopulationConfig {
                seed: seed ^ 0x909,
                num_subscribers: 40_000,
                ..PopulationConfig::default()
            },
            events: EventGenConfig {
                seed: seed ^ 0xE0E,
                ..EventGenConfig::default()
            },
            schedule: PhaseSchedule::uk_2020(),
            interconnect_headroom: 1.15,
            target_peak_utilization: 0.35,
            interconnect: InterconnectConfig::default(),
            content_throttling: true,
            use_event_reconstruction: true,
            threads: 0,
            study_start: STUDY_START,
            study_end: STUDY_END,
        }
    }

    /// A small but statistically meaningful study (~8k subscribers,
    /// coarse zones) — seconds of runtime in release mode; used by the
    /// integration tests and examples.
    pub fn small(seed: u64) -> ScenarioConfig {
        let mut cfg = ScenarioConfig::full(seed);
        cfg.geography.residents_per_zone = 120_000;
        cfg.deployment.residents_per_site = 24_000;
        cfg.population.num_subscribers = 12_000;
        cfg
    }

    /// The paper-scale preset: half a million subscribers over the
    /// outbreak-to-lockdown window (Feb 1 – Mar 15 2020). Run it
    /// through the sharded, memory-bounded runner
    /// ([`crate::shard::run_sharded`] with
    /// [`crate::shard::ShardPlan::large`]) — the in-memory runner
    /// handles it too, but peak memory grows with subscribers × days.
    pub fn large(seed: u64) -> ScenarioConfig {
        let mut cfg = ScenarioConfig::full(seed);
        cfg.population.num_subscribers = 500_000;
        cfg.study_end = Date::ymd(2020, 3, 15);
        cfg
    }

    /// The full-window paper preset: one million subscribers over the
    /// paper's characterization window (Feb 1 – Apr 17 2020). Meant
    /// exclusively for the sharded, memory-bounded runner
    /// ([`crate::shard::run_sharded`] with
    /// [`crate::shard::ShardPlan::paper`]); the in-memory runner's
    /// population × days structures do not fit a normal machine at
    /// this scale.
    pub fn paper(seed: u64) -> ScenarioConfig {
        let mut cfg = ScenarioConfig::full(seed);
        cfg.population.num_subscribers = 1_000_000;
        cfg.study_end = Date::ymd(2020, 4, 17);
        cfg
    }

    /// The tiniest useful scenario (~2k subscribers) for unit tests.
    /// Event reconstruction stays on: tests must cover the real path.
    pub fn tiny(seed: u64) -> ScenarioConfig {
        let mut cfg = ScenarioConfig::full(seed);
        cfg.geography.residents_per_zone = 400_000;
        cfg.geography.zones_per_lad = 3;
        cfg.deployment.residents_per_site = 80_000;
        cfg.population.num_subscribers = 2_000;
        cfg
    }

    /// Resolve a scale-preset name ([`PRESET_NAMES`]) to its config.
    /// The error is typed so front-ends can reject an unknown name
    /// with a proper exit code instead of a panic or a silent default.
    pub fn preset(name: &str, seed: u64) -> Result<ScenarioConfig, UnknownPresetError> {
        match name {
            "tiny" => Ok(ScenarioConfig::tiny(seed)),
            "small" => Ok(ScenarioConfig::small(seed)),
            "full" => Ok(ScenarioConfig::full(seed)),
            "large" => Ok(ScenarioConfig::large(seed)),
            "paper" => Ok(ScenarioConfig::paper(seed)),
            other => Err(UnknownPresetError { name: other.to_string() }),
        }
    }
}

/// Every name [`ScenarioConfig::preset`] accepts, smallest first.
pub const PRESET_NAMES: &[&str] = &["tiny", "small", "full", "large", "paper"];

/// A scale-preset name [`ScenarioConfig::preset`] does not know.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownPresetError {
    /// The name that failed to resolve.
    pub name: String,
}

impl std::fmt::Display for UnknownPresetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown scale preset `{}` (valid: {})",
            self.name,
            PRESET_NAMES.join(", ")
        )
    }
}

impl std::error::Error for UnknownPresetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_scale_down_monotonically() {
        let paper = ScenarioConfig::paper(1);
        let large = ScenarioConfig::large(1);
        let full = ScenarioConfig::full(1);
        let small = ScenarioConfig::small(1);
        let tiny = ScenarioConfig::tiny(1);
        assert!(paper.population.num_subscribers > large.population.num_subscribers);
        assert!(large.population.num_subscribers > full.population.num_subscribers);
        assert!(full.population.num_subscribers > small.population.num_subscribers);
        assert!(small.population.num_subscribers > tiny.population.num_subscribers);
        assert!(tiny.use_event_reconstruction, "tests must use the real path");
        // The large preset trades window length for population; paper
        // restores the full characterization window at 2× large.
        assert!(large.study_end < full.study_end);
        assert_eq!(large.study_start, full.study_start);
        assert!(paper.study_end > large.study_end);
        assert_eq!(paper.study_end, Date::ymd(2020, 4, 17));
        assert_eq!(paper.study_start, full.study_start);
    }

    #[test]
    fn preset_resolver_is_total_over_its_names() {
        for &name in PRESET_NAMES {
            let cfg = ScenarioConfig::preset(name, 9).expect(name);
            assert_eq!(cfg.seed, 9);
        }
        let err = ScenarioConfig::preset("medium", 9).unwrap_err();
        assert_eq!(err.name, "medium");
        let msg = err.to_string();
        for &name in PRESET_NAMES {
            assert!(msg.contains(name), "{msg} must list `{name}`");
        }
    }

    #[test]
    fn study_window_defaults_survive_serde() {
        // Configs serialized before the window became configurable
        // (no `study_start`/`study_end` keys) deserialize to the
        // paper's window. The legacy mirror below is exactly the old
        // field set.
        #[derive(Serialize)]
        struct LegacyConfig {
            seed: u64,
            geography: SynthConfig,
            deployment: DeployConfig,
            population: PopulationConfig,
            events: EventGenConfig,
            timeline: Milestones,
            interconnect_headroom: f64,
            target_peak_utilization: f64,
            interconnect: InterconnectConfig,
            content_throttling: bool,
            use_event_reconstruction: bool,
            threads: usize,
        }
        let cur = ScenarioConfig::tiny(7);
        let legacy = LegacyConfig {
            seed: cur.seed,
            geography: cur.geography,
            deployment: cur.deployment,
            population: cur.population.clone(),
            events: cur.events,
            timeline: Milestones::uk_2020(),
            interconnect_headroom: cur.interconnect_headroom,
            target_peak_utilization: cur.target_peak_utilization,
            interconnect: cur.interconnect,
            content_throttling: cur.content_throttling,
            use_event_reconstruction: cur.use_event_reconstruction,
            threads: cur.threads,
        };
        let text = serde_json::to_string(&legacy).unwrap();
        let cfg: ScenarioConfig = serde_json::from_str(&text).unwrap();
        assert_eq!(cfg.study_start, STUDY_START);
        assert_eq!(cfg.study_end, STUDY_END);
        // The legacy six-date timeline expands to the equivalent
        // schedule.
        assert_eq!(cfg.schedule, PhaseSchedule::uk_2020());
        assert_eq!(
            cfg.population.num_subscribers,
            cur.population.num_subscribers
        );

        // And the current shape round-trips with the window intact.
        let large = ScenarioConfig::large(7);
        let back: ScenarioConfig =
            serde_json::from_str(&serde_json::to_string(&large).unwrap()).unwrap();
        assert_eq!(back.study_end, large.study_end);
    }

    #[test]
    fn seeds_differentiate_components() {
        let cfg = ScenarioConfig::full(42);
        let seeds = [
            cfg.geography.seed,
            cfg.deployment.seed,
            cfg.population.seed,
            cfg.events.seed,
        ];
        for (i, a) in seeds.iter().enumerate() {
            for b in seeds.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }
}
