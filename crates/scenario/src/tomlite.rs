//! A minimal TOML reader for scenario files.
//!
//! The container ships no TOML dependency, so the scenario engine
//! carries its own reader for the subset scenario files actually use:
//!
//! * `[table]` and nested `[a.b]` headers;
//! * `[[array-of-tables]]`, including nested (`[[a.b]]` appends to the
//!   array `b` of the *latest* element of `a`);
//! * `key = value` with bare (`a-z A-Z 0-9 _ -`) or `"quoted"` keys;
//! * values: basic strings, integers, floats, booleans, bare
//!   `YYYY-MM-DD` dates, and (possibly multi-line) arrays;
//! * `#` comments and blank lines.
//!
//! Order is preserved — tables are `Vec<(String, TomlValue)>` — and
//! floats go through Rust's correctly-rounded `f64` parser, so a value
//! written as `0.85` loads as exactly the `0.85` literal a Rust source
//! would produce. Errors carry the 1-based source line.

use cellscope_time::Date;
use std::fmt;

/// One parsed TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum TomlValue {
    /// Basic string.
    Str(String),
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// Bare local date (`YYYY-MM-DD`).
    Date(Date),
    /// Array of values.
    Array(Vec<TomlValue>),
    /// Table (order-preserving).
    Table(Table),
}

/// An order-preserving table.
pub type Table = Vec<(String, TomlValue)>;

impl TomlValue {
    /// A short name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            TomlValue::Str(_) => "string",
            TomlValue::Int(_) => "integer",
            TomlValue::Float(_) => "float",
            TomlValue::Bool(_) => "boolean",
            TomlValue::Date(_) => "date",
            TomlValue::Array(_) => "array",
            TomlValue::Table(_) => "table",
        }
    }
}

/// A parse failure, anchored to its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct TomlError {
    /// 1-based line the failure was detected on.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for TomlError {}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, TomlError> {
    Err(TomlError { line, msg: msg.into() })
}

/// Parse a TOML document into its root table.
pub fn parse(text: &str) -> Result<Table, TomlError> {
    let mut root: Table = Vec::new();
    // Path of the table subsequent `key = value` lines land in. Each
    // segment names a key; traversal descends through tables and into
    // the *last* element of arrays-of-tables.
    let mut current: Vec<String> = Vec::new();
    let mut lines = text.lines().enumerate().peekable();

    while let Some((idx, raw)) = lines.next() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("[[") {
            let Some(inner) = rest.strip_suffix("]]") else {
                return err(lineno, "unterminated `[[` header");
            };
            let path = parse_key_path(inner.trim(), lineno)?;
            if path.is_empty() {
                return err(lineno, "empty `[[ ]]` header");
            }
            let (parent, leaf) = path.split_at(path.len() - 1);
            let table = open_path(&mut root, parent, lineno)?;
            match table.iter_mut().find(|(k, _)| *k == leaf[0]) {
                None => {
                    table.push((leaf[0].clone(), TomlValue::Array(vec![TomlValue::Table(
                        Vec::new(),
                    )])));
                }
                Some((_, TomlValue::Array(items))) => {
                    items.push(TomlValue::Table(Vec::new()));
                }
                Some((_, other)) => {
                    return err(
                        lineno,
                        format!("`{}` is a {}, not an array of tables", leaf[0], other.type_name()),
                    );
                }
            }
            current = path;
        } else if let Some(rest) = line.strip_prefix('[') {
            let Some(inner) = rest.strip_suffix(']') else {
                return err(lineno, "unterminated `[` header");
            };
            let path = parse_key_path(inner.trim(), lineno)?;
            if path.is_empty() {
                return err(lineno, "empty `[ ]` header");
            }
            let (parent, leaf) = path.split_at(path.len() - 1);
            let table = open_path(&mut root, parent, lineno)?;
            match table.iter_mut().find(|(k, _)| *k == leaf[0]) {
                None => table.push((leaf[0].clone(), TomlValue::Table(Vec::new()))),
                Some((_, TomlValue::Table(_))) => {
                    return err(lineno, format!("table `{}` defined twice", path.join(".")));
                }
                Some((_, other)) => {
                    return err(
                        lineno,
                        format!("`{}` is a {}, not a table", leaf[0], other.type_name()),
                    );
                }
            }
            current = path;
        } else {
            // key = value — possibly spilling over following lines when
            // an array stays open.
            let Some(eq) = find_unquoted(line, '=') else {
                return err(lineno, format!("expected `key = value`, got `{line}`"));
            };
            let key = parse_single_key(line[..eq].trim(), lineno)?;
            let mut value_text = line[eq + 1..].trim().to_string();
            if value_text.is_empty() {
                return err(lineno, format!("`{key}` has no value"));
            }
            while bracket_balance(&value_text) > 0 {
                let Some((_, cont)) = lines.next() else {
                    return err(lineno, format!("unterminated array in `{key}`"));
                };
                value_text.push(' ');
                value_text.push_str(strip_comment(cont).trim());
            }
            let mut cur = Cursor::new(&value_text, lineno);
            let value = cur.parse_value()?;
            cur.skip_ws();
            if !cur.at_end() {
                return err(lineno, format!("trailing characters after the value of `{key}`"));
            }
            let table = open_path(&mut root, &current, lineno)?;
            if table.iter().any(|(k, _)| *k == key) {
                return err(lineno, format!("key `{key}` set twice"));
            }
            table.push((key, value));
        }
    }
    Ok(root)
}

/// Walk `path` from `root`, creating missing tables, descending into
/// the last element of arrays-of-tables.
fn open_path<'a>(
    root: &'a mut Table,
    path: &[String],
    line: usize,
) -> Result<&'a mut Table, TomlError> {
    let mut cur = root;
    for seg in path {
        if !cur.iter().any(|(k, _)| k == seg) {
            cur.push((seg.clone(), TomlValue::Table(Vec::new())));
        }
        let entry = cur
            .iter_mut()
            .find(|(k, _)| k == seg)
            .expect("just ensured");
        cur = match &mut entry.1 {
            TomlValue::Table(t) => t,
            TomlValue::Array(items) => match items.last_mut() {
                Some(TomlValue::Table(t)) => t,
                _ => return err(line, format!("array `{seg}` holds no table to extend")),
            },
            other => {
                return err(
                    line,
                    format!("`{seg}` is a {}, not a table", other.type_name()),
                )
            }
        };
    }
    Ok(cur)
}

/// Strip a `#` comment, respecting basic strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Find `needle` outside of basic strings.
fn find_unquoted(line: &str, needle: char) -> Option<usize> {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            c2 if c2 == needle && !in_str => return Some(i),
            _ => {}
        }
    }
    None
}

/// Net `[`-depth of a line fragment, outside basic strings.
fn bracket_balance(s: &str) -> i32 {
    let mut depth = 0;
    let mut in_str = false;
    let mut escaped = false;
    for c in s.chars() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth
}

fn is_bare_key_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '-'
}

/// Parse a dotted header path (`a.b.c`).
fn parse_key_path(text: &str, line: usize) -> Result<Vec<String>, TomlError> {
    text.split('.')
        .map(|seg| parse_single_key(seg.trim(), line))
        .collect()
}

/// Parse one key: bare or quoted.
fn parse_single_key(text: &str, line: usize) -> Result<String, TomlError> {
    if let Some(rest) = text.strip_prefix('"') {
        let Some(inner) = rest.strip_suffix('"') else {
            return err(line, format!("unterminated quoted key `{text}`"));
        };
        return Ok(inner.to_string());
    }
    if text.is_empty() || !text.chars().all(is_bare_key_char) {
        return err(line, format!("invalid key `{text}`"));
    }
    Ok(text.to_string())
}

/// Character cursor over one logical value.
struct Cursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str, line: usize) -> Cursor<'a> {
        Cursor { chars: text.chars().peekable(), line }
    }

    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some(c) if c.is_whitespace()) {
            self.chars.next();
        }
    }

    fn at_end(&mut self) -> bool {
        self.chars.peek().is_none()
    }

    fn parse_value(&mut self) -> Result<TomlValue, TomlError> {
        self.skip_ws();
        match self.chars.peek() {
            None => err(self.line, "missing value"),
            Some('"') => self.parse_string(),
            Some('[') => self.parse_array(),
            Some('{') => err(self.line, "inline tables are not supported"),
            Some(_) => self.parse_scalar(),
        }
    }

    fn parse_string(&mut self) -> Result<TomlValue, TomlError> {
        self.chars.next(); // opening quote
        let mut out = String::new();
        loop {
            match self.chars.next() {
                None => return err(self.line, "unterminated string"),
                Some('"') => return Ok(TomlValue::Str(out)),
                Some('\\') => match self.chars.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('r') => out.push('\r'),
                    other => {
                        return err(
                            self.line,
                            format!("unsupported escape `\\{}`", other.unwrap_or(' ')),
                        )
                    }
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn parse_array(&mut self) -> Result<TomlValue, TomlError> {
        self.chars.next(); // `[`
        let mut items = Vec::new();
        loop {
            self.skip_ws();
            match self.chars.peek() {
                None => return err(self.line, "unterminated array"),
                Some(']') => {
                    self.chars.next();
                    return Ok(TomlValue::Array(items));
                }
                Some(',') => {
                    self.chars.next();
                }
                Some(_) => items.push(self.parse_value()?),
            }
        }
    }

    fn parse_scalar(&mut self) -> Result<TomlValue, TomlError> {
        let mut token = String::new();
        while let Some(&c) = self.chars.peek() {
            if c == ',' || c == ']' || c.is_whitespace() {
                break;
            }
            token.push(c);
            self.chars.next();
        }
        scalar_from_token(&token, self.line)
    }
}

/// Classify a bare token: bool, date, integer, or float.
fn scalar_from_token(token: &str, line: usize) -> Result<TomlValue, TomlError> {
    match token {
        "true" => return Ok(TomlValue::Bool(true)),
        "false" => return Ok(TomlValue::Bool(false)),
        _ => {}
    }
    if let Some(date) = parse_date(token) {
        return Ok(TomlValue::Date(date));
    }
    let numeric = token.replace('_', "");
    if numeric.chars().all(|c| c.is_ascii_digit() || c == '-' || c == '+')
        && numeric.chars().any(|c| c.is_ascii_digit())
    {
        if let Ok(i) = numeric.parse::<i64>() {
            return Ok(TomlValue::Int(i));
        }
    }
    if let Ok(f) = numeric.parse::<f64>() {
        if numeric.contains('.') || numeric.contains('e') || numeric.contains('E') {
            return Ok(TomlValue::Float(f));
        }
    }
    err(line, format!("cannot parse value `{token}`"))
}

/// Parse and range-check a bare `YYYY-MM-DD` date.
fn parse_date(token: &str) -> Option<Date> {
    let bytes = token.as_bytes();
    if bytes.len() != 10 || bytes[4] != b'-' || bytes[7] != b'-' {
        return None;
    }
    let year: i32 = token[..4].parse().ok()?;
    let month: u8 = token[5..7].parse().ok()?;
    let day: u8 = token[8..10].parse().ok()?;
    if !(1..=12).contains(&month) {
        return None;
    }
    let leap = (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
    let max_day = match month {
        2 if leap => 29,
        2 => 28,
        4 | 6 | 9 | 11 => 30,
        _ => 31,
    };
    if day == 0 || day > max_day {
        return None;
    }
    Some(Date::ymd(year, month, day))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get<'a>(t: &'a Table, key: &str) -> &'a TomlValue {
        &t.iter().find(|(k, _)| k == key).expect(key).1
    }

    #[test]
    fn scalars_and_order() {
        let t = parse(
            "name = \"x\"\ncount = 3\nshare = 0.85\nflag = true\nwhen = 2020-03-23\n",
        )
        .unwrap();
        assert_eq!(
            t.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>(),
            ["name", "count", "share", "flag", "when"]
        );
        assert_eq!(get(&t, "name"), &TomlValue::Str("x".into()));
        assert_eq!(get(&t, "count"), &TomlValue::Int(3));
        assert_eq!(get(&t, "share"), &TomlValue::Float(0.85));
        assert_eq!(get(&t, "flag"), &TomlValue::Bool(true));
        assert_eq!(get(&t, "when"), &TomlValue::Date(Date::ymd(2020, 3, 23)));
    }

    #[test]
    fn floats_parse_to_the_literal_bits() {
        let t = parse("a = 0.1\nb = 2.4\nc = 1.0e-3\n").unwrap();
        assert_eq!(get(&t, "a"), &TomlValue::Float(0.1));
        assert_eq!(get(&t, "b"), &TomlValue::Float(2.4));
        assert_eq!(get(&t, "c"), &TomlValue::Float(1.0e-3));
    }

    #[test]
    fn tables_and_arrays_of_tables() {
        let text = "\
top = 1

[traffic]
throttle = 2020-03-19

[[phase]]
name = \"a\"

[[phase]]
name = \"b\"

[[regional]]
factor = 0.95
[[regional.group]]
counties = [\"kent\", \"essex\"]
";
        let t = parse(text).unwrap();
        let TomlValue::Table(traffic) = get(&t, "traffic") else { panic!() };
        assert_eq!(get(traffic, "throttle"), &TomlValue::Date(Date::ymd(2020, 3, 19)));
        let TomlValue::Array(phases) = get(&t, "phase") else { panic!() };
        assert_eq!(phases.len(), 2);
        let TomlValue::Table(second) = &phases[1] else { panic!() };
        assert_eq!(get(second, "name"), &TomlValue::Str("b".into()));
        let TomlValue::Array(regional) = get(&t, "regional") else { panic!() };
        let TomlValue::Table(win) = &regional[0] else { panic!() };
        let TomlValue::Array(groups) = get(win, "group") else { panic!() };
        assert_eq!(groups.len(), 1);
    }

    #[test]
    fn multi_line_arrays_and_comments() {
        let text = "\
# leading comment
weights = [ # trailing comment
    [\"hampshire\", 0.26],
    [\"kent\", 0.17],
]
";
        let t = parse(text).unwrap();
        let TomlValue::Array(rows) = get(&t, "weights") else { panic!() };
        assert_eq!(rows.len(), 2);
        let TomlValue::Array(first) = &rows[0] else { panic!() };
        assert_eq!(first[0], TomlValue::Str("hampshire".into()));
        assert_eq!(first[1], TomlValue::Float(0.26));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("ok = 1\nbroken\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse("a = 1\na = 2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.msg.contains("twice"));
        let e = parse("d = 2020-13-01\n").unwrap_err();
        assert_eq!(e.line, 1);
        let e = parse("[t]\nx = 1\n[t]\n").unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let t = parse("s = \"a # b\"\n").unwrap();
        assert_eq!(get(&t, "s"), &TomlValue::Str("a # b".into()));
    }
}
