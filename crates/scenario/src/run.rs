//! The two-phase study runner.
//!
//! **Phase A** (parallel over subscribers) replays every subscriber-day
//! through the paper's mobility pipeline: trajectory → signaling events
//! → dwell reconstruction → top-20 towers → entropy/gyration → group
//! accumulators, plus February night dwell for home detection and daily
//! county-presence masks for the mobility matrix.
//!
//! **Phase B** (parallel over days) replays the same days through the
//! traffic pipeline: presence × demand → per-cell hourly offered load →
//! radio scheduler → per-cell-day KPI medians, plus the national voice
//! volume offered to the interconnect.
//!
//! A final sequential pass steps the interconnect state machine through
//! the days (its operations response is stateful) and adds its daily DL
//! loss to every cell-day voice record.

use crate::config::ScenarioConfig;
use crate::dataset::{HomeValidationPoint, MetricGroup, StudyDataset, UserInfo};
use crate::world::World;
use cellscope_core::kpi_stats::{CellDayMetrics, HourlyKpiSample};
use cellscope_core::study::{MobilityStudy, StudyConfig, UserDayDwell};
use cellscope_core::{top_n_towers, DailyGroupMean, KpiTable, MobilityMatrix, TowerDwell};
use cellscope_geo::County;
use cellscope_mobility::{Subscriber, TrajectoryGenerator};
use cellscope_radio::{
    CellHourKpi, Interconnect, InterconnectConfig, Rat, Scheduler, SchedulerConfig,
};
use cellscope_signaling::{reconstruct_dwell, EventGenerator};
use cellscope_time::DayBin;
use cellscope_traffic::{DayLoadGrid, DemandModel, LoadGenerator, ThrottlePolicy, VoiceModel};

/// Run the full study for a configuration.
pub fn run_study(config: &ScenarioConfig) -> StudyDataset {
    let world = World::build(config);
    run_study_in(config, &world)
}

/// Run the study over a pre-built world (lets callers keep the world
/// for further interrogation).
pub fn run_study_in(config: &ScenarioConfig, world: &World) -> StudyDataset {
    let threads = if config.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        config.threads
    };

    let phase_a = run_phase_a(config, world, threads);
    let scale = calibrate_traffic_scale(config, world);
    let (kpi, voice_daily) = run_phase_b(config, world, threads, scale);
    assemble(config, world, phase_a, kpi, voice_daily)
}

/// Per-thread output of phase A.
struct PhaseA {
    /// The paper's mobility methodology, driven exactly as a real-data
    /// consumer would drive it (see [`cellscope_core::study`]).
    study: MobilityStudy<MetricGroup>,
    gyration_by_bin: DailyGroupMean<DayBin>,
    /// County-presence bitmask per (subscriber, day), county-index bit
    /// set when the user's top-20 towers touch that county; row-major
    /// over the thread's contiguous subscriber range.
    county_masks: Vec<u32>,
    rat_minutes: [u64; 3],
}

fn run_phase_a(config: &ScenarioConfig, world: &World, threads: usize) -> PhaseA {
    let num_days = world.num_days();
    let subs = world.population.subscribers();
    let chunk_size = subs.len().div_ceil(threads.max(1));

    let mut partials: Vec<PhaseA> = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for chunk in subs.chunks(chunk_size.max(1)) {
            handles.push(scope.spawn(move |_| phase_a_chunk(config, world, chunk)));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("phase A worker panicked"))
            .collect()
    })
    .expect("phase A scope");

    // Merge in chunk order so county_masks stays aligned with ids.
    let mut study = MobilityStudy::new(StudyConfig::default(), num_days);
    study.finish(); // empty shell, ready to absorb finished partials
    let mut merged = PhaseA {
        study,
        gyration_by_bin: DailyGroupMean::new(num_days),
        county_masks: Vec::with_capacity(subs.len() * num_days),
        rat_minutes: [0; 3],
    };
    for mut p in partials.drain(..) {
        p.study.finish();
        merged.study.merge(p.study);
        merged.gyration_by_bin.merge(p.gyration_by_bin);
        merged.county_masks.append(&mut p.county_masks);
        for (a, b) in merged.rat_minutes.iter_mut().zip(p.rat_minutes) {
            *a += b;
        }
    }
    merged
}

fn phase_a_chunk(config: &ScenarioConfig, world: &World, chunk: &[Subscriber]) -> PhaseA {
    let num_days = world.num_days();
    let trajgen =
        TrajectoryGenerator::new(&world.geo, &world.behavior, world.clock, config.seed);
    let eventgen = EventGenerator::new(
        &world.topo,
        &world.catalog,
        world.anonymizer,
        config.events,
    );
    let february: Vec<u16> = world.clock.february_days();
    let feb_set: Vec<bool> = {
        let mut v = vec![false; num_days];
        for &d in &february {
            v[d as usize] = true;
        }
        v
    };

    let mut out = PhaseA {
        study: MobilityStudy::new(StudyConfig::default(), num_days),
        gyration_by_bin: DailyGroupMean::new(num_days),
        county_masks: vec![0u32; chunk.len() * num_days],
        rat_minutes: [0; 3],
    };
    let mut site_minutes: Vec<(u32, u16, u16)> = Vec::new(); // (site, mins, night mins)
    let mut bin_site_minutes: Vec<(DayBin, u32, u16)> = Vec::new(); // (bin, site, mins)

    for (local, sub) in chunk.iter().enumerate() {
        // Feed-side study filter: smartphone TAC + native PLMN
        // (Section 2.3) — decided from what the probe records expose.
        let in_study = world.catalog.is_smartphone(eventgen.tac_of(sub))
            && eventgen.plmn_of(sub) == (cellscope_signaling::event::UK_MCC, cellscope_signaling::event::HOME_MNC);
        if !in_study {
            continue;
        }
        let anon = world.anonymizer.anon_id(sub.id.0);
        let home_zone = world.geo.zone(sub.home_zone);
        let groups = [
            MetricGroup::National,
            MetricGroup::County(home_zone.county),
            MetricGroup::Cluster(home_zone.cluster),
        ];

        for day in world.clock.days() {
            let traj = trajgen.generate(sub, day);
            site_minutes.clear();
            bin_site_minutes.clear();

            if config.use_event_reconstruction {
                let events = eventgen.generate(sub, &traj);
                if events.is_empty() {
                    continue; // device unreachable today
                }
                for rec in reconstruct_dwell(&events) {
                    let cell = world.topo.cell(rec.cell);
                    out.rat_minutes[cell.rat as usize] += rec.minutes as u64;
                    let night = if rec.bin.is_night_window() {
                        rec.minutes
                    } else {
                        0
                    };
                    push_site_minutes(&mut site_minutes, cell.site.0, rec.minutes, night);
                    bin_site_minutes.push((rec.bin, cell.site.0, rec.minutes));
                }
            } else {
                if traj.visits.is_empty() {
                    continue;
                }
                for v in &traj.visits {
                    let night = if v.bin.is_night_window() { v.minutes } else { 0 };
                    push_site_minutes(&mut site_minutes, v.site.0, v.minutes, night);
                    out.rat_minutes[Rat::G4 as usize] += v.minutes as u64;
                    bin_site_minutes.push((v.bin, v.site.0, v.minutes));
                }
            }

            // Tower dwell -> the paper's methodology (top-20 filter,
            // entropy, gyration, distributions, night log) — all inside
            // MobilityStudy, the same object a real-data consumer drives.
            let dwell: Vec<TowerDwell> = site_minutes
                .iter()
                .map(|&(site, mins, _)| TowerDwell {
                    tower: site,
                    location: world.topo.site(cellscope_radio::SiteId(site)).location,
                    seconds: mins as f64 * 60.0,
                })
                .collect();
            let night_pairs: Vec<(u32, u16)> = if feb_set[day as usize] {
                site_minutes
                    .iter()
                    .filter(|&&(_, _, night)| night > 0)
                    .map(|&(site, _, night)| (site, night))
                    .collect()
            } else {
                Vec::new()
            };
            out.study.ingest(
                UserDayDwell {
                    user: anon,
                    day,
                    dwell: &dwell,
                    night_minutes: &night_pairs,
                },
                &groups,
            );

            // Per-bin gyration (Section 2.3 computes the metrics over
            // the six 4-hour bins too) — national aggregate only.
            for bin in DayBin::ALL {
                let bin_dwell: Vec<TowerDwell> = bin_site_minutes
                    .iter()
                    .filter(|&&(b, _, _)| b == bin)
                    .map(|&(_, site, mins)| TowerDwell {
                        tower: site,
                        location: world.topo.site(cellscope_radio::SiteId(site)).location,
                        seconds: mins as f64 * 60.0,
                    })
                    .collect();
                if let Some(g_bin) = cellscope_core::radius_of_gyration(&bin_dwell) {
                    out.gyration_by_bin.add(bin, day, g_bin);
                }
            }

            // County presence mask (for the mobility matrix), over the
            // same top-20 tower set the metrics use.
            let top = top_n_towers(&dwell, 20);
            let mut mask = 0u32;
            for t in &top {
                let zone = world.topo.site(cellscope_radio::SiteId(t.tower)).zone;
                mask |= 1 << world.geo.zone(zone).county.index();
            }
            out.county_masks[local * num_days + day as usize] = mask;
        }
    }
    out
}

fn push_site_minutes(acc: &mut Vec<(u32, u16, u16)>, site: u32, minutes: u16, night: u16) {
    for entry in acc.iter_mut() {
        if entry.0 == site {
            entry.1 += minutes;
            entry.2 += night;
            return;
        }
    }
    acc.push((site, minutes, night));
}

/// Determine how many real subscribers one synthetic subscriber stands
/// for: replay one baseline weekday at scale 1 and match the median
/// peak-hour downlink utilization of used cells to the configured
/// target. Without this, a subsampled population would leave realistic
/// cell capacities idle and flatten every load-derived KPI.
fn calibrate_traffic_scale(config: &ScenarioConfig, world: &World) -> f64 {
    let day = world
        .clock
        .day_of(cellscope_time::Date::ymd(2020, 2, 25))
        .expect("baseline Tuesday inside study window");
    let date = world.clock.date(day);
    let trajgen =
        TrajectoryGenerator::new(&world.geo, &world.behavior, world.clock, config.seed);
    let loadgen = load_generator(config, 1.0);
    let mut grid = DayLoadGrid::new(world.topo.cells().len());
    for sub in world.population.subscribers() {
        let traj = trajgen.generate(sub, day);
        loadgen.accumulate(sub, &traj, date, 0.0, 0.0, &world.topo, &mut grid);
    }
    let usable = SchedulerConfig::default().usable_capacity_fraction;
    let mut peak_rhos: Vec<f64> = Vec::new();
    for cell in world.topo.cells() {
        if cell.rat != Rat::G4 || !cell.is_active(day) {
            continue;
        }
        let cap_mb = cell.capacity.dl_mb_per_hour() * usable;
        let mut peak = 0.0f64;
        let mut used = false;
        for hour in 0..24 {
            let load = grid.get(cell.id.index(), hour);
            if load.connected_users > 0.0 {
                used = true;
            }
            peak = peak.max((load.offered_dl_mb + load.voice.volume_mb) / cap_mb);
        }
        if used && peak > 0.0 {
            peak_rhos.push(peak);
        }
    }
    let median = cellscope_core::stats::median(&peak_rhos).unwrap_or(1.0);
    if median <= 0.0 {
        1.0
    } else {
        config.target_peak_utilization / median
    }
}

/// The load generator for a configuration: all policy-reactive traffic
/// models follow the scenario's timeline. `scale` is the population
/// weight (1.0 = raw per-subscriber loads; the runner calibrates it via
/// [`run_study_in`]'s calibration pass).
pub fn load_generator(config: &ScenarioConfig, scale: f64) -> LoadGenerator {
    LoadGenerator {
        demand: DemandModel {
            timeline: config.timeline,
            ..DemandModel::default()
        },
        voice: VoiceModel {
            timeline: config.timeline,
            ..VoiceModel::default()
        },
        // Content providers reduced quality as venues closed (the EU
        // request of Mar 19, the day before the closures).
        throttle: {
            let mut throttle = ThrottlePolicy {
                effective_from: config.timeline.closures.add_days(-1),
                ..ThrottlePolicy::default()
            };
            if !config.content_throttling {
                throttle.throttled_mbps = throttle.baseline_mbps;
            }
            throttle
        },
        scale,
    }
}

fn run_phase_b(
    config: &ScenarioConfig,
    world: &World,
    threads: usize,
    scale: f64,
) -> (KpiTable, Vec<f64>) {
    let num_days = world.num_days();
    let days: Vec<u16> = world.clock.days().collect();
    let chunk_size = days.len().div_ceil(threads.max(1));

    let partials: Vec<(KpiTable, Vec<(u16, f64)>)> = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for chunk in days.chunks(chunk_size.max(1)) {
            handles.push(scope.spawn(move |_| phase_b_chunk(config, world, chunk, scale)));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("phase B worker panicked"))
            .collect()
    })
    .expect("phase B scope");

    let mut kpi = KpiTable::new();
    let mut voice_daily = vec![0.0; num_days];
    for (table, voices) in partials {
        kpi.merge(table);
        for (day, v) in voices {
            voice_daily[day as usize] = v;
        }
    }
    (kpi, voice_daily)
}

fn phase_b_chunk(
    config: &ScenarioConfig,
    world: &World,
    days: &[u16],
    scale: f64,
) -> (KpiTable, Vec<(u16, f64)>) {
    let trajgen =
        TrajectoryGenerator::new(&world.geo, &world.behavior, world.clock, config.seed);
    let loadgen = load_generator(config, scale);
    let scheduler = Scheduler::new(SchedulerConfig::default());
    let mut grid = DayLoadGrid::new(world.topo.cells().len());
    let mut kpi = KpiTable::new();
    let mut voices = Vec::with_capacity(days.len());
    let mut hours_buf: Vec<HourlyKpiSample> = Vec::with_capacity(24);

    for &day in days {
        let date = world.clock.date(day);
        let timeline = world.behavior.timeline();
        let intensity = timeline.intensity(date);
        // Ratchet: at-home WiFi settling does not unwind after lockdown.
        let confinement = if date >= timeline.lockdown {
            1.0
        } else {
            intensity
        };
        grid.clear();
        for sub in world.population.subscribers() {
            let traj = trajgen.generate(sub, day);
            loadgen.accumulate(sub, &traj, date, intensity, confinement, &world.topo, &mut grid);
        }
        voices.push((day, loadgen.off_net_voice_mb(&grid)));

        for cell in world.topo.cells() {
            if cell.rat != Rat::G4 || !cell.is_active(day) {
                continue;
            }
            let mut any_usage = false;
            hours_buf.clear();
            for hour in 0..24u8 {
                let load = grid.get(cell.id.index(), hour as usize);
                if load.connected_users > 0.0 {
                    any_usage = true;
                }
                let radio = scheduler.serve(cell.capacity, load);
                // Interconnect DL loss is added in the sequential pass;
                // pass 0 here.
                let kpi_hour = CellHourKpi::from_radio(cell.id, day, hour, &radio, 0.0);
                hours_buf.push(HourlyKpiSample {
                    dl_volume_mb: kpi_hour.dl_volume_mb,
                    ul_volume_mb: kpi_hour.ul_volume_mb,
                    active_dl_users: kpi_hour.active_dl_users,
                    connected_users: kpi_hour.connected_users,
                    user_dl_throughput_mbps: kpi_hour.user_dl_throughput_mbps,
                    tti_utilization: kpi_hour.tti_utilization,
                    voice_volume_mb: kpi_hour.voice.volume_mb,
                    voice_users: kpi_hour.voice.simultaneous_users,
                    voice_ul_loss: kpi_hour.voice.ul_loss_rate,
                    voice_dl_loss: kpi_hour.voice.dl_loss_rate,
                });
            }
            // Cells nobody camped on all day are coverage artifacts of
            // the population subsample; real studies only see reporting
            // cells with subscribers.
            if any_usage {
                if let Some(rec) = CellDayMetrics::from_hourly(cell.id.0, day, &hours_buf) {
                    kpi.push(rec);
                }
            }
        }
    }
    (kpi, voices)
}

fn assemble(
    config: &ScenarioConfig,
    world: &World,
    phase_a: PhaseA,
    mut kpi: KpiTable,
    voice_daily: Vec<f64>,
) -> StudyDataset {
    let num_days = world.num_days();

    // --- Home detection & validation -----------------------------------
    let homes = phase_a.study.detect_homes();
    let mut lad_counts: std::collections::BTreeMap<cellscope_geo::LadId, u32> =
        std::collections::BTreeMap::new();

    let mut users = Vec::with_capacity(world.population.len());
    let eventgen = EventGenerator::new(
        &world.topo,
        &world.catalog,
        world.anonymizer,
        config.events,
    );
    for sub in world.population.subscribers() {
        let z = world.geo.zone(sub.home_zone);
        let anon = world.anonymizer.anon_id(sub.id.0);
        let inferred_home_county = homes.get(&anon).map(|&site| {
            let zone = world.topo.site(cellscope_radio::SiteId(site)).zone;
            let zref = world.geo.zone(zone);
            *lad_counts.entry(zref.lad).or_default() += 1;
            zref.county
        });
        let in_study = world.catalog.is_smartphone(eventgen.tac_of(sub))
            && sub.native;
        users.push(UserInfo {
            home_zone: sub.home_zone,
            home_county: z.county,
            home_cluster: z.cluster,
            home_district: z.district,
            in_study,
            inferred_home_county,
        });
    }
    let home_validation: Vec<HomeValidationPoint> = world
        .geo
        .lads()
        .iter()
        .map(|lad| HomeValidationPoint {
            lad: lad.id,
            census: lad.census_population,
            inferred: lad_counts.get(&lad.id).copied().unwrap_or(0),
        })
        .collect();

    // --- Mobility matrix over inferred Inner-London residents ----------
    let mut matrix: MobilityMatrix<County> = MobilityMatrix::new(num_days);
    for (idx, info) in users.iter().enumerate() {
        if info.inferred_home_county != Some(County::InnerLondon) {
            continue;
        }
        for day in 0..num_days {
            let mask = phase_a.county_masks[idx * num_days + day];
            if mask == 0 {
                continue;
            }
            for c in County::ALL {
                if mask & (1 << c.index()) != 0 {
                    matrix.record(c, day as u16);
                }
            }
        }
    }

    // --- Interconnect: calibrate on week 9, then replay the days -------
    let week9: Vec<f64> = world
        .clock
        .days_in_week(cellscope_time::IsoWeek { year: 2020, week: 9 })
        .map(|d| voice_daily[d as usize])
        .collect();
    let baseline_load =
        cellscope_core::stats::mean(&week9).expect("week 9 observed");
    let ic_config = InterconnectConfig {
        capacity: baseline_load * config.interconnect_headroom,
        ..config.interconnect
    };
    let mut interconnect = Interconnect::new(ic_config);
    let interconnect_daily: Vec<_> = voice_daily
        .iter()
        .map(|&offered| interconnect.step(offered))
        .collect();
    // Spread each day's interconnect loss onto that day's voice DL loss.
    for rec in kpi.records_mut() {
        rec.voice_dl_loss += interconnect_daily[rec.day as usize].dl_loss_rate as f32;
    }

    // --- RAT dwell shares ----------------------------------------------
    let total_rat: u64 = phase_a.rat_minutes.iter().sum();
    let rat_dwell_share = if total_rat == 0 {
        [0.0; 3]
    } else {
        [
            phase_a.rat_minutes[0] as f64 / total_rat as f64,
            phase_a.rat_minutes[1] as f64 / total_rat as f64,
            phase_a.rat_minutes[2] as f64 / total_rat as f64,
        ]
    };

    let study_population = users.iter().filter(|u| u.in_study).count();
    let homes_detected = homes.len();
    let (gyration, entropy, gyration_dist, _night) = phase_a.study.into_parts();

    StudyDataset {
        clock: world.clock,
        users,
        gyration,
        entropy,
        gyration_dist,
        gyration_by_bin: phase_a.gyration_by_bin,
        kpi,
        cell_geo: world.cell_geo.clone(),
        matrix,
        home_validation,
        interconnect_daily,
        national_voice_daily: voice_daily,
        cases: world.cases,
        rat_dwell_share,
        study_population,
        homes_detected,
    }
}
