//! The two-phase study runner.
//!
//! **Phase A** (parallel over fixed day blocks) replays every
//! subscriber-day through the paper's mobility pipeline: trajectory →
//! signaling events → dwell reconstruction → top-20 towers →
//! entropy/gyration → group accumulators, plus February night dwell for
//! home detection and daily county-presence masks for the mobility
//! matrix.
//!
//! **Phase B** (parallel over days) replays the same days through the
//! traffic pipeline: presence × demand → per-cell hourly offered load →
//! radio scheduler → per-cell-day KPI medians, plus the national voice
//! volume offered to the interconnect.
//!
//! A final sequential pass steps the interconnect state machine through
//! the days (its operations response is stateful) and adds its daily DL
//! loss to every cell-day voice record.
//!
//! # Determinism by day ownership
//!
//! Both phases partition work into **fixed day blocks** whose size does
//! not depend on the thread count and run them on the
//! [`cellscope_exec`] execution layer, which assigns tasks to workers
//! round-robin and merges results back in task order. Every per-(group,
//! day) accumulator bucket is therefore filled entirely by the one
//! worker that owns the day, with users ingested in subscriber order;
//! merging partials only ever adds zero contributions from non-owning
//! blocks. The result: studies are **bit-identical across thread
//! counts**, and identical to a [`crate::replay`] run that streams the
//! same days back from serialized feeds.
//!
//! A panicking worker no longer aborts the process: the execution layer
//! captures it and [`run_study`] returns a structured
//! [`ExecError`](cellscope_exec::ExecError) naming the stage and task.

use crate::config::ScenarioConfig;
use crate::dataset::{HomeValidationPoint, MetricGroup, StudyDataset, UserInfo};
use crate::shard::MaskStore;
use crate::world::World;
use cellscope_core::kpi_stats::{CellDayMetrics, HourlyKpiSample};
use cellscope_core::study::{MobilityStudy, StudyConfig};
use cellscope_core::{top_n_towers_into, DailyGroupMean, KpiTable, MobilityMatrix, TowerDwell};
use cellscope_exec::{ExecError, Executor, TaskCtx};
use cellscope_geo::County;
use cellscope_mobility::{DayTrajectory, TrajectoryGenerator};
use cellscope_radio::{
    CellHourKpi, Interconnect, InterconnectConfig, Rat, Scheduler, SchedulerConfig,
};
use cellscope_signaling::{
    reconstruct_dwell_into, DwellRecord, EventGenerator, SignalingEvent,
};
use cellscope_time::{Date, DayBin};
use cellscope_traffic::{DayLoadGrid, DemandModel, LoadGenerator, ThrottlePolicy, VoiceModel};

/// Days per phase-A work block. Fixed (never derived from the thread
/// count) so each accumulator bucket has exactly one owning block
/// regardless of parallelism — the property the determinism and
/// replay-equivalence guarantees rest on.
pub(crate) const PHASE_A_BLOCK_DAYS: usize = 4;

/// Days per phase-B work block; fixed for the same reason as
/// [`PHASE_A_BLOCK_DAYS`].
pub(crate) const PHASE_B_BLOCK_DAYS: usize = 4;

/// Run the full study for a configuration.
///
/// A worker panic inside either parallel phase is captured by the
/// execution layer and returned as an [`ExecError`] naming the stage
/// and task; the process neither aborts nor hangs.
pub fn run_study(config: &ScenarioConfig) -> Result<StudyDataset, ExecError> {
    let world = World::build(config);
    run_study_in(config, &world)
}

/// Run the study over a pre-built world (lets callers keep the world
/// for further interrogation).
pub fn run_study_in(
    config: &ScenarioConfig,
    world: &World,
) -> Result<StudyDataset, ExecError> {
    let mut exec = Executor::new(config.threads);
    run_study_with(config, world, &mut exec)
}

/// [`run_study_in`] over a caller-supplied [`Executor`] — the executor
/// collects per-stage [`RunMetrics`](cellscope_exec::RunMetrics)
/// (`phase_a`, `calibrate`, `phase_b`, `assemble`) the caller can drain
/// with [`Executor::take_metrics`] after the run.
pub fn run_study_with(
    config: &ScenarioConfig,
    world: &World,
    exec: &mut Executor,
) -> Result<StudyDataset, ExecError> {
    let phase_a = run_phase_a(config, world, exec)?;
    let scale = exec.time_stage("calibrate", || calibrate_traffic_scale(config, world));
    let (kpi, voice_daily) = run_phase_b(config, world, exec, scale)?;
    Ok(exec
        .time_stage("assemble", || {
            assemble(config, world, phase_a, kpi, voice_daily)
        })
        .expect("in-memory mask store cannot fail"))
}

/// Phase A output, merged over all day blocks.
pub(crate) struct PhaseA {
    /// The paper's mobility methodology, driven exactly as a real-data
    /// consumer would drive it (see [`cellscope_core::study`]).
    pub(crate) study: MobilityStudy<MetricGroup>,
    pub(crate) gyration_by_bin: DailyGroupMean<DayBin>,
    /// County-presence bitmask per (subscriber, day), county-index bit
    /// set when the user's top-20 towers touch that county. In-memory
    /// runs hold the full `[subscriber * num_days + day]` matrix; the
    /// sharded large-scale path may have spilled it to disk day-major.
    pub(crate) county_masks: MaskStore,
    pub(crate) rat_minutes: [u64; 3],
}

/// Phase A partial for one day block.
pub(crate) struct PhaseABlock {
    /// The block's days, ascending.
    pub(crate) days: Vec<u16>,
    pub(crate) study: MobilityStudy<MetricGroup>,
    pub(crate) gyration_by_bin: DailyGroupMean<DayBin>,
    /// `[local_day * num_subscribers + subscriber]`.
    pub(crate) county_masks: Vec<u32>,
    pub(crate) rat_minutes: [u64; 3],
}

impl PhaseABlock {
    pub(crate) fn new(num_days: usize, days: Vec<u16>, num_subs: usize) -> PhaseABlock {
        PhaseABlock {
            county_masks: vec![0u32; days.len() * num_subs],
            days,
            study: MobilityStudy::new(StudyConfig::default(), num_days),
            gyration_by_bin: DailyGroupMean::new(num_days),
            rat_minutes: [0; 3],
        }
    }
}

/// The feed-side study membership: per subscriber, `Some((anon_id,
/// aggregation groups))` when Section 2.3's filter (smartphone TAC +
/// native PLMN, both decided from what the probe records expose) keeps
/// the user.
pub(crate) struct StudyRoster {
    pub(crate) members: Vec<Option<(u64, [MetricGroup; 3])>>,
}

pub(crate) fn build_roster(config: &ScenarioConfig, world: &World) -> StudyRoster {
    let eventgen = EventGenerator::new(
        &world.topo,
        &world.catalog,
        world.anonymizer,
        config.events,
    );
    let members = world
        .population
        .subscribers()
        .iter()
        .map(|sub| {
            let in_study = world.catalog.is_smartphone(eventgen.tac_of(sub))
                && eventgen.plmn_of(sub)
                    == (
                        cellscope_signaling::event::UK_MCC,
                        cellscope_signaling::event::HOME_MNC,
                    );
            if !in_study {
                return None;
            }
            let home_zone = world.geo.zone(sub.home_zone);
            Some((
                world.anonymizer.anon_id(sub.id.0),
                [
                    MetricGroup::National,
                    MetricGroup::County(home_zone.county),
                    MetricGroup::Cluster(home_zone.cluster),
                ],
            ))
        })
        .collect();
    StudyRoster { members }
}

/// One site-resolved dwell segment of a user-day — the common currency
/// of the in-memory and feed-replay ingestion paths.
pub(crate) struct SiteDwell {
    pub(crate) bin: DayBin,
    pub(crate) site: u32,
    pub(crate) minutes: u16,
    pub(crate) rat: Rat,
}

/// The per-worker scratch arena of the subscriber-day hot path. One
/// instance lives per worker (block task or replay thread) and owns
/// every buffer the pipeline touches per user-day — trajectory, event
/// stream, reconstructed dwell, tower aggregation, top-N selection —
/// so the steady-state loop allocates nothing: each buffer is cleared
/// and refilled in place once its high-water capacity is reached.
#[derive(Default)]
pub(crate) struct IngestScratch {
    /// Caller fills this with the user-day's segments before calling
    /// [`ingest_user_day`].
    pub(crate) segments: Vec<SiteDwell>,
    /// Trajectory buffer for [`TrajectoryGenerator::generate_into`].
    pub(crate) traj: DayTrajectory,
    /// Event buffer for [`EventGenerator::generate_into`].
    pub(crate) events: Vec<SignalingEvent>,
    /// Dwell buffer for [`reconstruct_dwell_into`].
    pub(crate) dwell_records: Vec<DwellRecord>,
    site_minutes: Vec<(u32, u16, u16)>, // (site, mins, night mins)
    dwell: Vec<TowerDwell>,
    bin_dwell: Vec<TowerDwell>,
    /// Night-window (tower, minutes) pairs of the last derived
    /// user-day — left in place for the caller to apply (or ship).
    pub(crate) night_pairs: Vec<(u32, u16)>,
    /// Top-N output of the study ingest and the county-mask selection.
    top: Vec<TowerDwell>,
}

/// The order-free half of one user-day ingest: every metric the phase-A
/// accumulators need, computed from the segments alone, with no
/// accumulator touched. The night-window pairs stay in
/// `scratch.night_pairs` (order preserved) — the one piece whose apply
/// order matters but whose derivation does not.
///
/// Splitting derivation from application is what makes the sharded
/// large-scale path possible: shards derive these records in parallel,
/// and a sequential fold applies them in canonical (day, subscriber)
/// order, reproducing the unsharded accumulator sequences bit for bit.
pub(crate) struct DerivedMetrics {
    pub(crate) entropy: Option<f64>,
    pub(crate) gyration: Option<f64>,
    /// Per-bin gyration in [`DayBin::ALL`] order.
    pub(crate) bin_gyration: [Option<f64>; DayBin::ALL.len()],
    pub(crate) county_mask: u32,
    pub(crate) rat_minutes: [u64; 3],
}

/// Derive one user-day's metrics from `scratch.segments`. `top_n` is
/// the study's configured top-N tower count (the metrics half);
/// the county mask always uses the paper's fixed top-20.
pub(crate) fn derive_user_day(
    world: &World,
    scratch: &mut IngestScratch,
    feb_night: bool,
    top_n: usize,
) -> DerivedMetrics {
    let mut rat_minutes = [0u64; 3];
    scratch.site_minutes.clear();
    for s in &scratch.segments {
        rat_minutes[s.rat as usize] += s.minutes as u64;
        let night = if s.bin.is_night_window() { s.minutes } else { 0 };
        push_site_minutes(&mut scratch.site_minutes, s.site, s.minutes, night);
    }

    // Tower dwell -> the paper's methodology (top-N filter, entropy,
    // gyration) — the exact arithmetic of `MobilityStudy::ingest_with`.
    scratch.dwell.clear();
    scratch
        .dwell
        .extend(scratch.site_minutes.iter().map(|&(site, mins, _)| TowerDwell {
            tower: site,
            location: world.topo.site(cellscope_radio::SiteId(site)).location,
            seconds: mins as f64 * 60.0,
        }));
    scratch.night_pairs.clear();
    if feb_night {
        scratch.night_pairs.extend(
            scratch
                .site_minutes
                .iter()
                .filter(|&&(_, _, night)| night > 0)
                .map(|&(site, _, night)| (site, night)),
        );
    }
    top_n_towers_into(&scratch.dwell, top_n, &mut scratch.top);
    let entropy = cellscope_core::mobility_entropy(&scratch.top);
    let gyration = cellscope_core::radius_of_gyration(&scratch.top);

    // Per-bin gyration (Section 2.3 computes the metrics over the six
    // 4-hour bins too) — national aggregate only.
    let mut bin_gyration = [None; DayBin::ALL.len()];
    for (slot, bin) in bin_gyration.iter_mut().zip(DayBin::ALL) {
        scratch.bin_dwell.clear();
        scratch.bin_dwell.extend(
            scratch
                .segments
                .iter()
                .filter(|s| s.bin == bin)
                .map(|s| TowerDwell {
                    tower: s.site,
                    location: world.topo.site(cellscope_radio::SiteId(s.site)).location,
                    seconds: s.minutes as f64 * 60.0,
                }),
        );
        *slot = cellscope_core::radius_of_gyration(&scratch.bin_dwell);
    }

    // County presence mask (for the mobility matrix), over the same
    // top-20 tower set the metrics use. Recomputed into the reused
    // scratch buffer so the mask stays decoupled from the study's
    // configured top-N (both are 20 today).
    top_n_towers_into(&scratch.dwell, 20, &mut scratch.top);
    let mut mask = 0u32;
    for t in &scratch.top {
        let zone = world.topo.site(cellscope_radio::SiteId(t.tower)).zone;
        mask |= 1 << world.geo.zone(zone).county.index();
    }

    DerivedMetrics {
        entropy,
        gyration,
        bin_gyration,
        county_mask: mask,
        rat_minutes,
    }
}

/// Fold one user-day (its segments sitting in `scratch.segments`) into
/// a phase-A block: RAT minutes, tower dwell → the study object
/// (top-20 filter, entropy, gyration, night log), per-bin gyration, and
/// the county-presence mask. Derive + apply in one step — the shape the
/// in-memory and feed-replay paths use.
#[allow(clippy::too_many_arguments)]
pub(crate) fn ingest_user_day(
    world: &World,
    out: &mut PhaseABlock,
    scratch: &mut IngestScratch,
    sub_idx: usize,
    num_subs: usize,
    local_day: usize,
    day: u16,
    feb_night: bool,
    anon: u64,
    groups: &[MetricGroup; 3],
) {
    let top_n = out.study.config().top_n_towers;
    let d = derive_user_day(world, scratch, feb_night, top_n);
    for (a, b) in out.rat_minutes.iter_mut().zip(d.rat_minutes) {
        *a += b;
    }
    out.study.apply_derived(
        anon,
        day,
        d.entropy,
        d.gyration,
        &scratch.night_pairs,
        groups,
    );
    for (bin, g) in DayBin::ALL.iter().zip(d.bin_gyration) {
        if let Some(g) = g {
            out.gyration_by_bin.add(*bin, day, g);
        }
    }
    out.county_masks[local_day * num_subs + sub_idx] = d.county_mask;
}

fn run_phase_a(
    config: &ScenarioConfig,
    world: &World,
    exec: &mut Executor,
) -> Result<PhaseA, ExecError> {
    let roster = build_roster(config, world);
    let days: Vec<u16> = world.clock.days().collect();
    let blocks: Vec<&[u16]> = days.chunks(PHASE_A_BLOCK_DAYS).collect();

    let partials = exec.run_stage("phase_a", blocks.len(), |i, ctx| {
        phase_a_block(config, world, &roster, blocks[i], ctx)
    })?;
    Ok(merge_phase_a(
        world.num_days(),
        world.population.len(),
        partials,
    ))
}

/// Merge phase-A block partials, **in block order**, into the global
/// phase-A output. Shared by the in-memory runner and the feed-replay
/// engine (whose blocks are single days).
pub(crate) fn merge_phase_a(
    num_days: usize,
    num_subs: usize,
    partials: impl IntoIterator<Item = PhaseABlock>,
) -> PhaseA {
    let mut study = MobilityStudy::new(StudyConfig::default(), num_days);
    study.finish(); // empty shell, ready to absorb finished partials
    let mut masks = vec![0u32; num_subs * num_days];
    let mut merged = PhaseA {
        study,
        gyration_by_bin: DailyGroupMean::new(num_days),
        county_masks: MaskStore::Mem(Vec::new()),
        rat_minutes: [0; 3],
    };
    for mut p in partials {
        p.study.finish();
        merged.study.merge(p.study);
        merged.gyration_by_bin.merge(p.gyration_by_bin);
        for (local_day, &day) in p.days.iter().enumerate() {
            for sub in 0..num_subs {
                let mask = p.county_masks[local_day * num_subs + sub];
                if mask != 0 {
                    masks[sub * num_days + day as usize] = mask;
                }
            }
        }
        for (a, b) in merged.rat_minutes.iter_mut().zip(p.rat_minutes) {
            *a += b;
        }
    }
    merged.county_masks = MaskStore::Mem(masks);
    merged
}

pub(crate) fn phase_a_block(
    config: &ScenarioConfig,
    world: &World,
    roster: &StudyRoster,
    block: &[u16],
    ctx: &mut TaskCtx,
) -> PhaseABlock {
    let mut trajgen =
        TrajectoryGenerator::new(&world.geo, &world.behavior, world.clock, config.seed);
    let mut eventgen = EventGenerator::new(
        &world.topo,
        &world.catalog,
        world.anonymizer,
        config.events,
    );
    let feb_set = february_set(world);
    let subs = world.population.subscribers();
    let num_subs = subs.len();

    let mut out = PhaseABlock::new(world.num_days(), block.to_vec(), num_subs);
    let mut scratch = IngestScratch::default();
    ctx.count("days", block.len() as u64);

    // Day-major, subscriber order within each day — the exact order a
    // replay of the per-day feeds ingests in.
    for (local_day, &day) in block.iter().enumerate() {
        let feb_night = feb_set[day as usize];
        for (sub_idx, sub) in subs.iter().enumerate() {
            let Some((anon, groups)) = roster.members[sub_idx] else {
                continue;
            };
            trajgen.generate_into(sub, day, &mut scratch.traj);
            scratch.segments.clear();
            if config.use_event_reconstruction {
                eventgen.generate_into(sub, &scratch.traj, &mut scratch.events);
                if scratch.events.is_empty() {
                    continue; // device unreachable today
                }
                reconstruct_dwell_into(&scratch.events, &mut scratch.dwell_records);
                for rec in &scratch.dwell_records {
                    let cell = world.topo.cell(rec.cell);
                    scratch.segments.push(SiteDwell {
                        bin: rec.bin,
                        site: cell.site.0,
                        minutes: rec.minutes,
                        rat: cell.rat,
                    });
                }
            } else {
                if scratch.traj.visits.is_empty() {
                    continue;
                }
                scratch
                    .segments
                    .extend(scratch.traj.visits.iter().map(|v| SiteDwell {
                        bin: v.bin,
                        site: v.site.0,
                        minutes: v.minutes,
                        rat: Rat::G4,
                    }));
            }
            ingest_user_day(
                world, &mut out, &mut scratch, sub_idx, num_subs, local_day, day,
                feb_night, anon, &groups,
            );
            ctx.add_items(1); // one user-day folded in
        }
    }
    out
}

/// Per-day flag: is this day inside the home-detection observation
/// window (February)?
pub(crate) fn february_set(world: &World) -> Vec<bool> {
    let mut v = vec![false; world.num_days()];
    for d in world.clock.february_days() {
        v[d as usize] = true;
    }
    v
}

fn push_site_minutes(acc: &mut Vec<(u32, u16, u16)>, site: u32, minutes: u16, night: u16) {
    for entry in acc.iter_mut() {
        if entry.0 == site {
            entry.1 += minutes;
            entry.2 += night;
            return;
        }
    }
    acc.push((site, minutes, night));
}

/// Determine how many real subscribers one synthetic subscriber stands
/// for: replay one baseline weekday at scale 1 and match the median
/// peak-hour downlink utilization of used cells to the configured
/// target. Without this, a subsampled population would leave realistic
/// cell capacities idle and flatten every load-derived KPI.
pub(crate) fn calibrate_traffic_scale(config: &ScenarioConfig, world: &World) -> f64 {
    // The paper's baseline weekday is Tuesday Feb 25 2020; a window
    // that does not contain it calibrates on its first Tuesday (any
    // pre-lockdown weekday works — the calibration replays one day at
    // scale 1), falling back to day 0 for sub-week windows.
    let day = world
        .clock
        .day_of(cellscope_time::Date::ymd(2020, 2, 25))
        .or_else(|| {
            world
                .clock
                .days()
                .find(|&d| world.clock.weekday(d) == cellscope_time::Weekday::Tuesday)
        })
        .unwrap_or(0);
    let date = world.clock.date(day);
    let mut trajgen =
        TrajectoryGenerator::new(&world.geo, &world.behavior, world.clock, config.seed);
    let loadgen = load_generator(config, 1.0);
    let mut grid = DayLoadGrid::new(world.topo.cells().len());
    let mut traj = DayTrajectory::default();
    for sub in world.population.subscribers() {
        trajgen.generate_into(sub, day, &mut traj);
        loadgen.accumulate(sub, &traj, date, 0.0, 0.0, &world.topo, &mut grid);
    }
    let usable = SchedulerConfig::default().usable_capacity_fraction;
    let mut peak_rhos: Vec<f64> = Vec::new();
    for cell in world.topo.cells() {
        if cell.rat != Rat::G4 || !cell.is_active(day) {
            continue;
        }
        let cap_mb = cell.capacity.dl_mb_per_hour() * usable;
        let mut peak = 0.0f64;
        let mut used = false;
        for hour in 0..24 {
            let load = grid.get(cell.id.index(), hour);
            if load.connected_users > 0.0 {
                used = true;
            }
            peak = peak.max((load.offered_dl_mb + load.voice.volume_mb) / cap_mb);
        }
        if used && peak > 0.0 {
            peak_rhos.push(peak);
        }
    }
    let median = cellscope_core::stats::median(&peak_rhos).unwrap_or(1.0);
    if median <= 0.0 {
        1.0
    } else {
        config.target_peak_utilization / median
    }
}

/// The load generator for a configuration: all policy-reactive traffic
/// models follow the scenario's schedule. `scale` is the population
/// weight (1.0 = raw per-subscriber loads; the runner calibrates it via
/// [`run_study_in`]'s calibration pass).
pub fn load_generator(config: &ScenarioConfig, scale: f64) -> LoadGenerator {
    LoadGenerator {
        demand: DemandModel {
            schedule: config.schedule.clone(),
            ..DemandModel::default()
        },
        voice: VoiceModel {
            schedule: config.schedule.clone(),
            ..VoiceModel::default()
        },
        // Content providers reduced quality as venues closed (the EU
        // request of Mar 19, the day before the closures). A schedule
        // with no throttle date means providers never degrade.
        throttle: {
            let mut throttle = ThrottlePolicy {
                effective_from: config
                    .schedule
                    .throttle_from
                    .unwrap_or(Date::ymd(9999, 1, 1)),
                ..ThrottlePolicy::default()
            };
            if !config.content_throttling {
                throttle.throttled_mbps = throttle.baseline_mbps;
            }
            throttle
        },
        scale,
    }
}

fn run_phase_b(
    config: &ScenarioConfig,
    world: &World,
    exec: &mut Executor,
    scale: f64,
) -> Result<(KpiTable, Vec<f64>), ExecError> {
    let num_days = world.num_days();
    let days: Vec<u16> = world.clock.days().collect();
    let blocks: Vec<&[u16]> = days.chunks(PHASE_B_BLOCK_DAYS).collect();

    // Fixed day blocks merged in block order: blocks are consecutive
    // day ranges, so the merged KPI record order is day-major exactly
    // as a sequential pass would produce it, for any thread count.
    let partials = exec.run_stage("phase_b", blocks.len(), |i, ctx| {
        phase_b_chunk(config, world, blocks[i], scale, ctx)
    })?;

    let mut kpi = KpiTable::new();
    let mut voice_daily = vec![0.0; num_days];
    for (table, voices) in partials {
        kpi.merge(table);
        for (day, v) in voices {
            voice_daily[day as usize] = v;
        }
    }
    Ok((kpi, voice_daily))
}

pub(crate) fn phase_b_chunk(
    config: &ScenarioConfig,
    world: &World,
    days: &[u16],
    scale: f64,
    ctx: &mut TaskCtx,
) -> (KpiTable, Vec<(u16, f64)>) {
    let mut trajgen =
        TrajectoryGenerator::new(&world.geo, &world.behavior, world.clock, config.seed);
    let loadgen = load_generator(config, scale);
    let scheduler = Scheduler::new(SchedulerConfig::default());
    let mut grid = DayLoadGrid::new(world.topo.cells().len());
    let mut kpi = KpiTable::new();
    let mut voices = Vec::with_capacity(days.len());
    let mut traj_buf = DayTrajectory::default();
    let mut hours_buf: Vec<HourlyKpiSample> = Vec::with_capacity(24);

    for &day in days {
        let voice = simulate_day_kpi(
            world,
            &mut trajgen,
            &loadgen,
            &scheduler,
            &mut grid,
            day,
            &mut traj_buf,
            &mut hours_buf,
            |cell_id, hours| {
                if let Some(rec) = CellDayMetrics::from_hourly(cell_id, day, hours) {
                    kpi.push(rec);
                }
            },
        );
        voices.push((day, voice));
    }
    ctx.count("days", days.len() as u64);
    ctx.add_items(kpi.len() as u64); // cell-days produced
    (kpi, voices)
}

/// Simulate one day of the traffic pipeline: presence × demand into
/// `grid`, then the radio scheduler per active 4G cell. Calls `sink`
/// with each reporting cell's 24 post-scheduler hourly samples (cells
/// nobody camped on all day are coverage artifacts of the population
/// subsample; real studies only see reporting cells with subscribers)
/// and returns the day's off-net voice volume. Shared by the phase-B
/// runner and the feed exporter.
#[allow(clippy::too_many_arguments)]
pub(crate) fn simulate_day_kpi(
    world: &World,
    trajgen: &mut TrajectoryGenerator<'_>,
    loadgen: &LoadGenerator,
    scheduler: &Scheduler,
    grid: &mut DayLoadGrid,
    day: u16,
    traj_buf: &mut DayTrajectory,
    hours_buf: &mut Vec<HourlyKpiSample>,
    sink: impl FnMut(u32, &[HourlyKpiSample]),
) -> f64 {
    let date = world.clock.date(day);
    let schedule = world.behavior.schedule();
    let intensity = schedule.intensity(date);
    // Ratchet: at-home WiFi settling does not unwind once a full
    // confinement phase has started.
    let confinement = schedule.confinement(date);
    grid.clear();
    for sub in world.population.subscribers() {
        trajgen.generate_into(sub, day, traj_buf);
        loadgen.accumulate(sub, traj_buf, date, intensity, confinement, &world.topo, grid);
    }
    let voice = loadgen.off_net_voice_mb(grid);
    day_kpi_from_grid(world, scheduler, grid, day, hours_buf, sink);
    voice
}

/// The scheduler half of one traffic day: run the radio scheduler over
/// an already-accumulated load grid and emit each reporting cell's 24
/// post-scheduler hourly samples. Split from [`simulate_day_kpi`] so
/// the sharded path — which accumulates the grid from shard-derived
/// trajectories — shares the exact per-cell pass.
pub(crate) fn day_kpi_from_grid(
    world: &World,
    scheduler: &Scheduler,
    grid: &DayLoadGrid,
    day: u16,
    hours_buf: &mut Vec<HourlyKpiSample>,
    sink: impl FnMut(u32, &[HourlyKpiSample]),
) {
    let num_cells = world.topo.cells().len();
    day_kpi_from_grid_range(world, scheduler, grid, day, 0, num_cells, hours_buf, sink);
}

/// [`day_kpi_from_grid`] restricted to the topology's cells
/// `lo..hi` (slice order). Each cell's samples depend only on its own
/// grid rows, so disjoint ranges compute independently; running the
/// ranges in ascending order reproduces the full pass cell for cell —
/// this is what lets the sharded phase B parallelize the scheduler
/// across cell ranges without changing a single emitted record.
#[allow(clippy::too_many_arguments)]
pub(crate) fn day_kpi_from_grid_range(
    world: &World,
    scheduler: &Scheduler,
    grid: &DayLoadGrid,
    day: u16,
    lo: usize,
    hi: usize,
    hours_buf: &mut Vec<HourlyKpiSample>,
    mut sink: impl FnMut(u32, &[HourlyKpiSample]),
) {
    for cell in &world.topo.cells()[lo..hi] {
        if cell.rat != Rat::G4 || !cell.is_active(day) {
            continue;
        }
        let mut any_usage = false;
        hours_buf.clear();
        for hour in 0..24u8 {
            let load = grid.get(cell.id.index(), hour as usize);
            if load.connected_users > 0.0 {
                any_usage = true;
            }
            let radio = scheduler.serve(cell.capacity, load);
            // Interconnect DL loss is added in the sequential pass;
            // pass 0 here.
            let kpi_hour = CellHourKpi::from_radio(cell.id, day, hour, &radio, 0.0);
            hours_buf.push(HourlyKpiSample {
                dl_volume_mb: kpi_hour.dl_volume_mb,
                ul_volume_mb: kpi_hour.ul_volume_mb,
                active_dl_users: kpi_hour.active_dl_users,
                connected_users: kpi_hour.connected_users,
                user_dl_throughput_mbps: kpi_hour.user_dl_throughput_mbps,
                tti_utilization: kpi_hour.tti_utilization,
                voice_volume_mb: kpi_hour.voice.volume_mb,
                voice_users: kpi_hour.voice.simultaneous_users,
                voice_ul_loss: kpi_hour.voice.ul_loss_rate,
                voice_dl_loss: kpi_hour.voice.dl_loss_rate,
            });
        }
        if any_usage {
            sink(cell.id.0, hours_buf);
        }
    }
}

/// Assemble the final dataset. The only fallible step is reading a
/// disk-spilled county-mask store back (the sharded large-scale path);
/// with in-memory masks this never errors.
pub(crate) fn assemble(
    config: &ScenarioConfig,
    world: &World,
    mut phase_a: PhaseA,
    mut kpi: KpiTable,
    voice_daily: Vec<f64>,
) -> Result<StudyDataset, std::io::Error> {
    let num_days = world.num_days();

    // --- Home detection & validation -----------------------------------
    let homes = phase_a.study.detect_homes();
    let mut lad_counts: std::collections::BTreeMap<cellscope_geo::LadId, u32> =
        std::collections::BTreeMap::new();

    let mut users = Vec::with_capacity(world.population.len());
    let eventgen = EventGenerator::new(
        &world.topo,
        &world.catalog,
        world.anonymizer,
        config.events,
    );
    for sub in world.population.subscribers() {
        let z = world.geo.zone(sub.home_zone);
        let anon = world.anonymizer.anon_id(sub.id.0);
        let inferred_home_county = homes.get(&anon).map(|&site| {
            let zone = world.topo.site(cellscope_radio::SiteId(site)).zone;
            let zref = world.geo.zone(zone);
            *lad_counts.entry(zref.lad).or_default() += 1;
            zref.county
        });
        let in_study = world.catalog.is_smartphone(eventgen.tac_of(sub))
            && sub.native;
        users.push(UserInfo {
            home_zone: sub.home_zone,
            home_county: z.county,
            home_cluster: z.cluster,
            home_district: z.district,
            in_study,
            inferred_home_county,
        });
    }
    let home_validation: Vec<HomeValidationPoint> = world
        .geo
        .lads()
        .iter()
        .map(|lad| HomeValidationPoint {
            lad: lad.id,
            census: lad.census_population,
            inferred: lad_counts.get(&lad.id).copied().unwrap_or(0),
        })
        .collect();

    // --- Mobility matrix over inferred Inner-London residents ----------
    // The matrix is pure per-(county, day) counting, so the traversal
    // order over (user, day) is free: the in-memory store walks
    // user-major, a disk spill walks day-major (one row resident at a
    // time) — identical counts either way.
    let mut matrix: MobilityMatrix<County> = MobilityMatrix::new(num_days);
    let record_mask = |mask: u32, day: usize, matrix: &mut MobilityMatrix<County>| {
        for c in County::ALL {
            if mask & (1 << c.index()) != 0 {
                matrix.record(c, day as u16);
            }
        }
    };
    match &mut phase_a.county_masks {
        MaskStore::Mem(masks) => {
            for (idx, info) in users.iter().enumerate() {
                if info.inferred_home_county != Some(County::InnerLondon) {
                    continue;
                }
                for day in 0..num_days {
                    let mask = masks[idx * num_days + day];
                    if mask != 0 {
                        record_mask(mask, day, &mut matrix);
                    }
                }
            }
        }
        MaskStore::Spill(spill) => {
            let mut row = Vec::new();
            for day in 0..num_days {
                spill.read_day(day, &mut row)?;
                for (idx, info) in users.iter().enumerate() {
                    if info.inferred_home_county != Some(County::InnerLondon) {
                        continue;
                    }
                    let mask = row[idx];
                    if mask != 0 {
                        record_mask(mask, day, &mut matrix);
                    }
                }
            }
        }
    }

    // --- Interconnect: calibrate on week 9, then replay the days -------
    let week9: Vec<f64> = world
        .clock
        .days_in_week(cellscope_time::IsoWeek { year: 2020, week: 9 })
        .map(|d| voice_daily[d as usize])
        .collect();
    // Windows that miss week 9 entirely calibrate on the first (up to)
    // seven observed days instead — a baseline from the window's own
    // pre-lockdown head, never a panic.
    let baseline_load = cellscope_core::stats::mean(&week9).unwrap_or_else(|| {
        let head = &voice_daily[..voice_daily.len().min(7)];
        cellscope_core::stats::mean(head).unwrap_or(0.0)
    });
    let ic_config = InterconnectConfig {
        capacity: baseline_load * config.interconnect_headroom,
        ..config.interconnect
    };
    let mut interconnect = Interconnect::new(ic_config);
    let interconnect_daily: Vec<_> = voice_daily
        .iter()
        .map(|&offered| interconnect.step(offered))
        .collect();
    // Spread each day's interconnect loss onto that day's voice DL loss.
    for rec in kpi.records_mut() {
        rec.voice_dl_loss += interconnect_daily[rec.day as usize].dl_loss_rate as f32;
    }
    // The KPI table is final from here on: build its columnar index now
    // so downstream figure builders (possibly parallel) find it ready.
    kpi.columns();

    // --- RAT dwell shares ----------------------------------------------
    let total_rat: u64 = phase_a.rat_minutes.iter().sum();
    let rat_dwell_share = if total_rat == 0 {
        [0.0; 3]
    } else {
        [
            phase_a.rat_minutes[0] as f64 / total_rat as f64,
            phase_a.rat_minutes[1] as f64 / total_rat as f64,
            phase_a.rat_minutes[2] as f64 / total_rat as f64,
        ]
    };

    let study_population = users.iter().filter(|u| u.in_study).count();
    let homes_detected = homes.len();
    let (gyration, entropy, gyration_dist, _night) = phase_a.study.into_parts();

    Ok(StudyDataset {
        clock: world.clock,
        users,
        gyration,
        entropy,
        gyration_dist,
        gyration_by_bin: phase_a.gyration_by_bin,
        kpi,
        cell_geo: world.cell_geo.clone(),
        matrix,
        home_validation,
        interconnect_daily,
        national_voice_daily: voice_daily,
        cases: world.cases,
        rat_dwell_share,
        study_population,
        homes_detected,
        declaration: world.behavior.schedule().declaration_date(),
        full_restriction: world.behavior.schedule().full_restriction_date(),
    })
}
