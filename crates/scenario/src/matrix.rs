//! The scenario matrix runner.
//!
//! [`run_matrix`] drives every scenario file of a directory through the
//! full pipeline — apply the scenario to a base configuration, build
//! the world, export the signaling/KPI/voice feeds, stream them back
//! through the replay engine, verify the replayed dataset is
//! bit-identical to the in-memory run, and write the complete figure
//! set — one output directory per scenario. The feeds are deleted after
//! a successful replay (they are the largest artifact and fully
//! regenerable); the figure JSONs and a per-scenario summary stay.

use crate::config::ScenarioConfig;
use crate::desc::{scenario_files, ScenarioDoc, ScenarioError};
use crate::figures::{self, FigureSet};
use crate::replay::{
    dataset_divergence, export_feeds_in, replay_study_with, ReplayConfig,
};
use crate::run::run_study_with;
use crate::shard::{run_study_sharded, ShardPlan};
use crate::world::World;
use cellscope_exec::Executor;
use serde::Serialize;
use std::fmt;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// What one scenario's matrix run produced.
#[derive(Debug, Clone, Serialize)]
pub struct MatrixOutcome {
    /// Scenario name (also the output subdirectory).
    pub name: String,
    /// The scenario's one-line description.
    pub description: String,
    /// Simulated days.
    pub num_days: usize,
    /// Users kept by the study filter.
    pub study_population: usize,
    /// Per-cell-day KPI records.
    pub kpi_records: usize,
    /// Replay accounting: feed lines read back.
    pub replay_lines: u64,
    /// Wall seconds: in-memory study.
    pub study_seconds: f64,
    /// Wall seconds: feed export.
    pub export_seconds: f64,
    /// Wall seconds: streamed replay.
    pub replay_seconds: f64,
    /// Wall seconds: figure build + write.
    pub figures_seconds: f64,
    /// Headline gyration trough (Δ% vs baseline), if the window shows
    /// one — the one-glance "did this scenario move mobility" figure.
    pub gyration_trough_pct: Option<f64>,
    /// Headline voice peak (Δ% vs baseline).
    pub voice_volume_peak_pct: Option<f64>,
}

/// A matrix failure, tagged with the scenario that caused it.
#[derive(Debug)]
pub enum MatrixError {
    /// Loading or validating a scenario file failed.
    Scenario {
        /// The offending file.
        file: PathBuf,
        /// The typed load/validation error.
        error: ScenarioError,
    },
    /// A pipeline stage failed.
    Stage {
        /// The scenario being run.
        scenario: String,
        /// Stage label (`study`, `export`, `replay`, `figures`).
        stage: &'static str,
        /// Error text.
        error: String,
    },
    /// The replayed dataset diverged from the in-memory run.
    Divergence {
        /// The scenario being run.
        scenario: String,
        /// First diverging dataset field.
        field: &'static str,
    },
    /// The scenario directory held no `.toml` files.
    EmptyLibrary(PathBuf),
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::Scenario { file, error } => {
                write!(f, "{}: {error}", file.display())
            }
            MatrixError::Stage { scenario, stage, error } => {
                write!(f, "scenario `{scenario}`, {stage}: {error}")
            }
            MatrixError::Divergence { scenario, field } => {
                write!(
                    f,
                    "scenario `{scenario}`: replayed dataset diverges in `{field}`"
                )
            }
            MatrixError::EmptyLibrary(dir) => {
                write!(f, "no scenario files (*.toml) in {}", dir.display())
            }
        }
    }
}

impl std::error::Error for MatrixError {}

/// Run every scenario of `dir` through generate → replay → aggregate →
/// figures, writing per-scenario outputs under `out/<name>/`. `base`
/// fixes seeds and scale; `sharded` routes the study through the
/// memory-bounded sharded runner (bit-identical by construction).
/// Scenarios run in file-name order; the first failure aborts.
pub fn run_matrix(
    base: &ScenarioConfig,
    dir: &Path,
    out: &Path,
    sharded: bool,
) -> Result<Vec<MatrixOutcome>, MatrixError> {
    let files = scenario_files(dir)
        .map_err(|error| MatrixError::Scenario { file: dir.to_path_buf(), error })?;
    if files.is_empty() {
        return Err(MatrixError::EmptyLibrary(dir.to_path_buf()));
    }
    let mut outcomes = Vec::with_capacity(files.len());
    for file in files {
        let doc = ScenarioDoc::load(&file)
            .and_then(|doc| doc.validate().map(|()| doc))
            .map_err(|error| MatrixError::Scenario { file: file.clone(), error })?;
        outcomes.push(run_one(base, &doc, out, sharded)?);
    }
    Ok(outcomes)
}

/// Run one scenario document through the full pipeline.
pub fn run_one(
    base: &ScenarioConfig,
    doc: &ScenarioDoc,
    out: &Path,
    sharded: bool,
) -> Result<MatrixOutcome, MatrixError> {
    let stage_err = |stage: &'static str| {
        let scenario = doc.name.clone();
        move |e: String| MatrixError::Stage { scenario, stage, error: e }
    };
    let config = doc.apply(base);
    let scenario_dir = out.join(&doc.name);
    let feeds_dir = scenario_dir.join("feeds");
    std::fs::create_dir_all(&scenario_dir)
        .map_err(|e| stage_err("study")(e.to_string()))?;

    let mut exec = Executor::new(config.threads);
    let world = World::build(&config);

    // Generate: the in-memory study is the reference dataset.
    let t0 = Instant::now();
    let ds = if sharded {
        run_study_sharded(&config, &world, &mut exec, &ShardPlan::default())
            .map_err(|e| stage_err("study")(e.to_string()))?
    } else {
        run_study_with(&config, &world, &mut exec)
            .map_err(|e| stage_err("study")(e.to_string()))?
    };
    let study_seconds = t0.elapsed().as_secs_f64();

    // Export the feeds, then stream them back through the replay
    // engine — the paper's actual "operator hands you feeds" path.
    let t1 = Instant::now();
    export_feeds_in(&config, &world, &feeds_dir)
        .map_err(|e| stage_err("export")(e.to_string()))?;
    let export_seconds = t1.elapsed().as_secs_f64();

    let t2 = Instant::now();
    let (replayed, report) =
        replay_study_with(&config, &world, &feeds_dir, &ReplayConfig::default(), &mut exec)
            .map_err(|e| stage_err("replay")(e.to_string()))?;
    let replay_seconds = t2.elapsed().as_secs_f64();
    if let Some(field) = dataset_divergence(&ds, &replayed) {
        return Err(MatrixError::Divergence { scenario: doc.name.clone(), field });
    }

    // Aggregate + figures from the replayed dataset (it just proved
    // bit-identical; using it keeps the replay path load-bearing).
    let t3 = Instant::now();
    let figs = figures::build_all_with(&replayed, &mut exec)
        .map_err(|e| stage_err("figures")(e.to_string()))?;
    write_figures(&scenario_dir, &figs).map_err(|e| stage_err("figures")(e.to_string()))?;
    let figures_seconds = t3.elapsed().as_secs_f64();

    // Feeds are the big regenerable artifact; drop them once verified.
    let _ = std::fs::remove_dir_all(&feeds_dir);

    let outcome = MatrixOutcome {
        name: doc.name.clone(),
        description: doc.description.clone(),
        num_days: world.num_days(),
        study_population: ds.study_population,
        kpi_records: ds.kpi.len(),
        replay_lines: report.events.lines_read
            + report.kpi.lines_read
            + report.voice.lines_read,
        study_seconds,
        export_seconds,
        replay_seconds,
        figures_seconds,
        gyration_trough_pct: figs.headline.gyration_trough_pct,
        voice_volume_peak_pct: figs.headline.voice_volume_peak_pct,
    };
    let summary = serde_json::to_string_pretty(&outcome).expect("serialize outcome");
    std::fs::write(scenario_dir.join("summary.json"), summary)
        .map_err(|e| stage_err("figures")(e.to_string()))?;
    Ok(outcome)
}

/// Write every figure of a set as `<dir>/<figure>.json`.
fn write_figures(dir: &Path, figs: &FigureSet) -> Result<(), String> {
    let write = |name: &str, v: serde_json::Value| -> Result<(), String> {
        let path = dir.join(format!("{name}.json"));
        std::fs::write(&path, serde_json::to_string_pretty(&v).map_err(|e| e.to_string())?)
            .map_err(|e| format!("{}: {e}", path.display()))
    };
    write("table1", serde_json::to_value(&figs.table1).map_err(|e| e.to_string())?)?;
    write("fig2", serde_json::to_value(&figs.fig2).map_err(|e| e.to_string())?)?;
    write("fig3", serde_json::to_value(&figs.fig3).map_err(|e| e.to_string())?)?;
    write("fig4", serde_json::to_value(&figs.fig4).map_err(|e| e.to_string())?)?;
    write("fig5", serde_json::to_value(&figs.fig5).map_err(|e| e.to_string())?)?;
    write("fig6", serde_json::to_value(&figs.fig6).map_err(|e| e.to_string())?)?;
    write("fig7", serde_json::to_value(&figs.fig7).map_err(|e| e.to_string())?)?;
    write("fig8", serde_json::to_value(&figs.fig8).map_err(|e| e.to_string())?)?;
    write("fig9", serde_json::to_value(&figs.fig9).map_err(|e| e.to_string())?)?;
    write("fig10", serde_json::to_value(&figs.fig10).map_err(|e| e.to_string())?)?;
    write("fig11", serde_json::to_value(&figs.fig11).map_err(|e| e.to_string())?)?;
    write("fig12", serde_json::to_value(&figs.fig12).map_err(|e| e.to_string())?)?;
    write(
        "bin_profile",
        serde_json::to_value(&figs.bin_profile).map_err(|e| e.to_string())?,
    )?;
    write("headline", serde_json::to_value(&figs.headline).map_err(|e| e.to_string())?)
}
