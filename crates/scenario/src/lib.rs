//! End-to-end study runner.
//!
//! Wires every layer together the way the paper's measurement campaign
//! did: build the country and the radio network, synthesize the
//! subscriber base, simulate the study window day by day (trajectories →
//! signaling events → reconstructed dwell → mobility metrics; presence ×
//! demand → offered load → radio KPIs; voice → interconnect), and
//! assemble a [`dataset::StudyDataset`] from which [`figures`]
//! regenerates every table and figure of the evaluation.
//!
//! * [`config`] — scenario parameters and scale presets;
//! * [`world`] — the static world (geography, topology, population);
//! * [`run`] — the two-phase parallel day loop;
//! * [`dataset`] — the collected study data;
//! * [`figures`] — one builder per paper figure (Fig. 2 … Fig. 12)
//!   plus the headline statistics of the abstract/conclusions;
//! * [`shard`] — the sharded, memory-bounded large-scale runner:
//!   (day-block × subscriber-range) derivation with a sequential
//!   canonical-order fold, bit-identical to [`run`] at any geometry;
//! * [`replay`] — serialize a run's feeds to disk and stream them back
//!   through the identical analysis (fault-tolerant, multi-worker);
//! * [`feedfmt`] — the binary columnar feed format: KPI/voice segment
//!   codecs and the lossless JSONL⇄binary directory converter;
//! * [`variants`] — the canonical counterfactual/ablation arms as
//!   sparse [`variants::ScenarioDelta`] overrides;
//! * [`tomlite`] — the self-contained TOML reader scenario files use;
//! * [`desc`] — declarative scenario documents: parse, validate
//!   (deny-unknown-fields, typed errors), apply to a base config;
//! * [`matrix`] — the scenario matrix runner: every scenario of a
//!   library directory through generate → replay → figures.

pub mod config;
pub mod dataset;
pub mod desc;
pub mod feedfmt;
pub mod figures;
pub mod hotpath;
pub mod matrix;
pub mod replay;
pub mod run;
pub mod shard;
pub mod tomlite;
pub mod variants;
pub mod world;

pub use config::{ScenarioConfig, UnknownPresetError, PRESET_NAMES};
pub use dataset::StudyDataset;
pub use desc::{scenario_files, ScenarioDoc, ScenarioError};
pub use matrix::{run_matrix, MatrixError, MatrixOutcome};
pub use feedfmt::{convert_feed_dir, detect_format, ConvertSummary, FeedFormat};
pub use replay::{
    dataset_divergence, export_feeds, replay_study, FeedManifest, MalformedAt,
    ReplayConfig, ReplayError, ReplayOptions, ReplayReport, MAX_MALFORMED_LOCATIONS,
};
pub use run::{run_study, run_study_in, run_study_with};
pub use shard::{run_sharded, run_study_sharded, ShardError, ShardPlan};
pub use variants::ScenarioDelta;
pub use world::World;
