//! Sharded, memory-bounded large-scale execution.
//!
//! The in-memory runner ([`crate::run`]) parallelizes over **day
//! blocks**: every worker walks the full population, and every block
//! holds a full-population mask slab. That is the right shape up to a
//! few tens of thousands of subscribers; at paper scale (hundreds of
//! thousands to millions) it is memory-quadratic in the wrong places.
//!
//! This module reshapes both phases into **(day-block × subscriber-
//! range) shards** on top of [`Executor::run_pipeline_fold`]:
//!
//! * **derive** (parallel): each shard walks its subscriber range for
//!   its days and produces compact *derived records* — per-user-day
//!   mobility metrics in phase A, packed visit lists in phase B. No
//!   shard ever touches an accumulator.
//! * **fold** (sequential, streaming): the calling thread applies the
//!   derived records to a single global accumulator in canonical
//!   **(day ascending, subscriber ascending)** order — exactly the
//!   order the unsharded runner uses. Because every floating-point
//!   accumulation happens in the same sequence, the sharded dataset is
//!   **bit-identical** to the unsharded one for any shard geometry and
//!   any thread count.
//!
//! Phase B adds a third axis: once a day's load grid has been folded,
//! its radio-scheduler pass fans back out over **(day × cell-range)**
//! tasks (see [`ShardPlan::cells_per_shard`]) — cells are independent
//! after accumulation, and folding the per-range KPI records in
//! production order reproduces the sequential per-cell push order
//! exactly, so the cell axis changes wall-time, never output.
//!
//! Peak memory is bounded by *channel depth × shard size*, not by the
//! population: the pipeline holds at most `capacity` undelivered shard
//! results, plus one day-block of buffered records in the fold. The one
//! remaining population-sized structure — the per-(subscriber, day)
//! county-mask matrix — can be spilled to a temporary file day-major
//! ([`MaskStore::Spill`]) and read back one day-row at a time during
//! assembly.

use crate::config::ScenarioConfig;
use crate::dataset::{MetricGroup, StudyDataset};
use crate::run::{
    self, build_roster, derive_user_day, february_set, load_generator, DerivedMetrics,
    IngestScratch, SiteDwell, StudyRoster,
};
use crate::world::World;
use cellscope_core::kpi_stats::{CellDayMetrics, HourlyKpiSample};
use cellscope_core::study::{MobilityStudy, StudyConfig};
use cellscope_core::{DailyGroupMean, KpiTable};
use cellscope_exec::{ExecError, Executor, TaskCtx};
use cellscope_mobility::{BinVisit, DayTrajectory, TrajectoryGenerator};
use cellscope_radio::{Rat, Scheduler, SchedulerConfig};
use cellscope_signaling::{reconstruct_dwell_into, EventGenerator};
use cellscope_time::DayBin;
use cellscope_traffic::DayLoadGrid;
use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Shard geometry for a large-scale run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    /// Days per shard (the fold applies one day-block at a time; 1
    /// minimizes fold buffering).
    pub days_per_shard: usize,
    /// Subscribers per shard — the unit of parallel derivation.
    pub subs_per_shard: usize,
    /// Cells per phase-B scheduler shard — the unit of parallel
    /// radio-scheduler work over an accumulated day grid. `0` keeps
    /// each day's scheduler pass in one task (parallelism across days
    /// only).
    pub cells_per_shard: usize,
    /// Spill the per-(subscriber, day) county-mask matrix to a
    /// temporary file instead of holding it in memory (the matrix is
    /// the one population × days structure assembly needs).
    pub spill_masks: bool,
    /// Maximum undelivered shard results in flight (bounds peak
    /// memory); `0` means twice the worker count.
    pub capacity: usize,
}

impl ShardPlan {
    /// The geometry `repro --scale large` uses: single-day blocks,
    /// 50k-subscriber ranges, 4096-cell scheduler shards, masks
    /// spilled.
    pub fn large() -> ShardPlan {
        ShardPlan {
            days_per_shard: 1,
            subs_per_shard: 50_000,
            cells_per_shard: 4_096,
            spill_masks: true,
            capacity: 0,
        }
    }

    /// The geometry `repro --scale paper` uses: the 1M-subscriber
    /// full-window preset wants the same single-day blocks and spilled
    /// masks as `large`, bigger subscriber ranges (fewer, fatter derive
    /// tasks — per-shard fixed costs amortize over 4× the subscribers),
    /// and 4096-cell scheduler shards so the phase-B radio pass scales
    /// with cores instead of serializing on the fold thread.
    pub fn paper() -> ShardPlan {
        ShardPlan {
            days_per_shard: 1,
            subs_per_shard: 200_000,
            cells_per_shard: 4_096,
            spill_masks: true,
            capacity: 0,
        }
    }
}

impl Default for ShardPlan {
    fn default() -> ShardPlan {
        ShardPlan {
            days_per_shard: 1,
            subs_per_shard: 8_192,
            cells_per_shard: 0,
            spill_masks: false,
            capacity: 0,
        }
    }
}

/// Why a sharded run failed: a captured worker panic, or an I/O error
/// in the mask spill.
#[derive(Debug)]
pub enum ShardError {
    /// A worker panicked; the execution layer names the stage and task.
    Exec(ExecError),
    /// The county-mask spill file could not be written or read back.
    Spill(io::Error),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Exec(e) => write!(f, "sharded run failed: {e}"),
            ShardError::Spill(e) => write!(f, "county-mask spill failed: {e}"),
        }
    }
}

impl std::error::Error for ShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardError::Exec(e) => Some(e),
            ShardError::Spill(e) => Some(e),
        }
    }
}

impl From<ExecError> for ShardError {
    fn from(e: ExecError) -> ShardError {
        ShardError::Exec(e)
    }
}

impl From<io::Error> for ShardError {
    fn from(e: io::Error) -> ShardError {
        ShardError::Spill(e)
    }
}

// ---------------------------------------------------------------------
// County-mask storage: in-memory slab or day-major disk spill.
// ---------------------------------------------------------------------

/// Where the per-(subscriber, day) county-presence masks live.
pub(crate) enum MaskStore {
    /// Dense `[subscriber * num_days + day]` slab (the in-memory runner
    /// and small sharded runs).
    Mem(Vec<u32>),
    /// Day-major rows in a temporary file (large sharded runs); read
    /// back one day-row at a time during assembly, deleted on drop.
    Spill(SpillMasks),
}

static SPILL_COUNTER: AtomicU64 = AtomicU64::new(0);

fn spill_path() -> PathBuf {
    std::env::temp_dir().join(format!(
        "cellscope-masks-{}-{}.bin",
        std::process::id(),
        SPILL_COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

/// A completed day-major mask spill, ready for day-row reads.
pub(crate) struct SpillMasks {
    file: File,
    path: PathBuf,
    num_subs: usize,
}

impl SpillMasks {
    /// Read day `day`'s row (`num_subs` little-endian u32 masks) into
    /// `row`.
    pub(crate) fn read_day(&mut self, day: usize, row: &mut Vec<u32>) -> io::Result<()> {
        let bytes_per_row = self.num_subs * 4;
        self.file
            .seek(SeekFrom::Start((day * bytes_per_row) as u64))?;
        let mut bytes = vec![0u8; bytes_per_row];
        self.file.read_exact(&mut bytes)?;
        row.clear();
        row.extend(
            bytes
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().unwrap())),
        );
        Ok(())
    }
}

impl Drop for SpillMasks {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Write-side of the mask store: the phase-A fold sets masks for the
/// current day and seals each day-row in ascending day order.
enum MaskSink {
    Mem { masks: Vec<u32>, num_days: usize },
    Spill { file: File, path: PathBuf, row: Vec<u32> },
}

impl MaskSink {
    fn new(num_subs: usize, num_days: usize, spill: bool) -> io::Result<MaskSink> {
        if spill {
            let path = spill_path();
            let file = File::options()
                .read(true)
                .write(true)
                .create_new(true)
                .open(&path)?;
            Ok(MaskSink::Spill {
                file,
                path,
                row: vec![0u32; num_subs],
            })
        } else {
            Ok(MaskSink::Mem {
                masks: vec![0u32; num_subs * num_days],
                num_days,
            })
        }
    }

    fn set(&mut self, sub: usize, day: usize, mask: u32) {
        match self {
            MaskSink::Mem { masks, num_days } => masks[sub * *num_days + day] = mask,
            MaskSink::Spill { row, .. } => row[sub] = mask,
        }
    }

    /// Seal one day (called for every day, ascending).
    fn end_day(&mut self) -> io::Result<()> {
        if let MaskSink::Spill { file, row, .. } = self {
            let mut bytes = Vec::with_capacity(row.len() * 4);
            for &m in row.iter() {
                bytes.extend_from_slice(&m.to_le_bytes());
            }
            file.write_all(&bytes)?;
            row.iter_mut().for_each(|m| *m = 0);
        }
        Ok(())
    }

    fn finish(self, num_subs: usize) -> io::Result<MaskStore> {
        match self {
            MaskSink::Mem { masks, .. } => Ok(MaskStore::Mem(masks)),
            MaskSink::Spill { mut file, path, .. } => {
                file.flush()?;
                file.seek(SeekFrom::Start(0))?;
                Ok(MaskStore::Spill(SpillMasks {
                    file,
                    path,
                    num_subs,
                }))
            }
        }
    }
}

// ---------------------------------------------------------------------
// Shard enumeration (shared by both phases).
// ---------------------------------------------------------------------

/// One shard: a block of days × a range of subscriber indices.
#[derive(Debug, Clone)]
struct Shard {
    days: Vec<u16>,
    lo: usize,
    hi: usize,
}

/// Enumerate shards block-major then range-minor — the production order
/// the fold relies on: all ranges of day-block 0, then all ranges of
/// day-block 1, …
fn shards(days: &[u16], num_subs: usize, plan: &ShardPlan) -> (Vec<Shard>, usize) {
    let days_per = plan.days_per_shard.max(1);
    let subs_per = plan.subs_per_shard.max(1);
    let ranges: Vec<(usize, usize)> = (0..num_subs)
        .step_by(subs_per)
        .map(|lo| (lo, (lo + subs_per).min(num_subs)))
        .collect();
    let mut out = Vec::new();
    for block in days.chunks(days_per) {
        for &(lo, hi) in &ranges {
            out.push(Shard {
                days: block.to_vec(),
                lo,
                hi,
            });
        }
    }
    (out, ranges.len().max(1))
}

fn fold_capacity(plan: &ShardPlan, exec: &Executor) -> usize {
    if plan.capacity > 0 {
        plan.capacity
    } else {
        exec.threads().saturating_mul(2).max(2)
    }
}

// ---------------------------------------------------------------------
// Phase A, sharded.
// ---------------------------------------------------------------------

/// One derived user-day: everything the phase-A accumulators need,
/// detached from any accumulator.
struct DerivedA {
    sub_idx: u32,
    metrics: DerivedMetrics,
    /// Night-window (tower, minutes) pairs — empty outside February.
    night_pairs: Vec<(u32, u16)>,
}

/// A phase-A shard result: derived records per local day, subscriber
/// ascending within each day.
type ShardAOut = Vec<Vec<DerivedA>>;

fn phase_a_sharded(
    config: &ScenarioConfig,
    world: &World,
    exec: &mut Executor,
    plan: &ShardPlan,
) -> Result<run::PhaseA, ShardError> {
    let roster = build_roster(config, world);
    let days: Vec<u16> = world.clock.days().collect();
    let num_days = world.num_days();
    let num_subs = world.population.len();
    let (tasks, num_ranges) = shards(&days, num_subs, plan);
    let feb_set = february_set(world);
    let top_n = StudyConfig::default().top_n_towers;
    let capacity = fold_capacity(plan, exec);

    struct AccA {
        study: MobilityStudy<MetricGroup>,
        gyration_by_bin: DailyGroupMean<DayBin>,
        masks: MaskSink,
        rat_minutes: [u64; 3],
        /// Buffered results of the current day-block, range ascending.
        buf: Vec<(Vec<u16>, ShardAOut)>,
        io_err: Option<io::Error>,
    }

    let mut acc = AccA {
        study: MobilityStudy::new(StudyConfig::default(), num_days),
        gyration_by_bin: DailyGroupMean::new(num_days),
        masks: MaskSink::new(num_subs, num_days, plan.spill_masks)?,
        rat_minutes: [0; 3],
        buf: Vec::with_capacity(num_ranges),
        io_err: None,
    };

    let mut task_iter = tasks.into_iter();
    let roster_ref = &roster;
    let feb_ref = &feb_set;

    exec.run_pipeline_fold(
        "phase_a_shards",
        capacity,
        move || task_iter.next(),
        || {
            (
                TrajectoryGenerator::new(&world.geo, &world.behavior, world.clock, config.seed),
                EventGenerator::new(&world.topo, &world.catalog, world.anonymizer, config.events),
                IngestScratch::default(),
            )
        },
        |(trajgen, eventgen, scratch), _i, shard: Shard, ctx| {
            derive_shard_a(
                config, world, roster_ref, feb_ref, top_n, trajgen, eventgen, scratch, &shard,
                ctx,
            )
        },
        &mut acc,
        |acc, _i, (shard_days, out)| {
            acc.buf.push((shard_days, out));
            if acc.buf.len() == num_ranges {
                // The block is complete: apply day-major, range-minor,
                // subscriber ascending — the canonical order.
                let block_days = acc.buf[0].0.clone();
                for (local_day, &day) in block_days.iter().enumerate() {
                    for (_, shard_out) in &acc.buf {
                        for rec in &shard_out[local_day] {
                            let (anon, groups) = roster_ref.members[rec.sub_idx as usize]
                                .expect("derive only emits roster members");
                            for (a, b) in
                                acc.rat_minutes.iter_mut().zip(rec.metrics.rat_minutes)
                            {
                                *a += b;
                            }
                            acc.study.apply_derived(
                                anon,
                                day,
                                rec.metrics.entropy,
                                rec.metrics.gyration,
                                &rec.night_pairs,
                                &groups,
                            );
                            for (bin, g) in DayBin::ALL.iter().zip(rec.metrics.bin_gyration) {
                                if let Some(g) = g {
                                    acc.gyration_by_bin.add(*bin, day, g);
                                }
                            }
                            acc.masks.set(rec.sub_idx as usize, day as usize, rec.metrics.county_mask);
                        }
                    }
                    if acc.io_err.is_none() {
                        if let Err(e) = acc.masks.end_day() {
                            acc.io_err = Some(e);
                        }
                    }
                }
                acc.buf.clear();
            }
        },
    )?;

    if let Some(e) = acc.io_err {
        return Err(ShardError::Spill(e));
    }
    debug_assert!(acc.buf.is_empty(), "every day-block must have been folded");
    acc.study.finish();
    Ok(run::PhaseA {
        study: acc.study,
        gyration_by_bin: acc.gyration_by_bin,
        county_masks: acc.masks.finish(num_subs)?,
        rat_minutes: acc.rat_minutes,
    })
}

/// Derive one phase-A shard: walk the shard's subscriber range for each
/// of its days and compute every per-user-day metric. Pure with respect
/// to accumulators.
#[allow(clippy::too_many_arguments)]
fn derive_shard_a(
    config: &ScenarioConfig,
    world: &World,
    roster: &StudyRoster,
    feb_set: &[bool],
    top_n: usize,
    trajgen: &mut TrajectoryGenerator<'_>,
    eventgen: &mut EventGenerator<'_>,
    scratch: &mut IngestScratch,
    shard: &Shard,
    ctx: &mut TaskCtx,
) -> (Vec<u16>, ShardAOut) {
    let subs = world.population.subscribers();
    let mut out: ShardAOut = shard.days.iter().map(|_| Vec::new()).collect();
    for (local_day, &day) in shard.days.iter().enumerate() {
        let feb_night = feb_set[day as usize];
        for sub_idx in shard.lo..shard.hi {
            if roster.members[sub_idx].is_none() {
                continue;
            }
            let sub = &subs[sub_idx];
            trajgen.generate_into(sub, day, &mut scratch.traj);
            scratch.segments.clear();
            if config.use_event_reconstruction {
                eventgen.generate_into(sub, &scratch.traj, &mut scratch.events);
                if scratch.events.is_empty() {
                    continue; // device unreachable today
                }
                reconstruct_dwell_into(&scratch.events, &mut scratch.dwell_records);
                for rec in &scratch.dwell_records {
                    let cell = world.topo.cell(rec.cell);
                    scratch.segments.push(SiteDwell {
                        bin: rec.bin,
                        site: cell.site.0,
                        minutes: rec.minutes,
                        rat: cell.rat,
                    });
                }
            } else {
                if scratch.traj.visits.is_empty() {
                    continue;
                }
                scratch
                    .segments
                    .extend(scratch.traj.visits.iter().map(|v| SiteDwell {
                        bin: v.bin,
                        site: v.site.0,
                        minutes: v.minutes,
                        rat: Rat::G4,
                    }));
            }
            let metrics = derive_user_day(world, scratch, feb_night, top_n);
            out[local_day].push(DerivedA {
                sub_idx: sub_idx as u32,
                metrics,
                night_pairs: scratch.night_pairs.clone(),
            });
            ctx.add_items(1);
        }
    }
    ctx.count("days", shard.days.len() as u64);
    (shard.days.clone(), out)
}

// ---------------------------------------------------------------------
// Phase B, sharded.
// ---------------------------------------------------------------------

/// One day's packed trajectories for a subscriber range: flat visit
/// storage with per-subscriber spans, subscriber ascending.
#[derive(Default)]
struct PackedVisits {
    subs: Vec<u32>,
    /// Exclusive end offset into `visits` per entry of `subs`.
    ends: Vec<u32>,
    visits: Vec<BinVisit>,
}

impl PackedVisits {
    fn push(&mut self, sub: u32, visits: &[BinVisit]) {
        self.subs.push(sub);
        self.visits.extend_from_slice(visits);
        self.ends.push(self.visits.len() as u32);
    }

    fn iter(&self) -> impl Iterator<Item = (u32, &[BinVisit])> {
        self.subs.iter().zip(self.ends.iter()).scan(0u32, |start, (&sub, &end)| {
            let s = *start as usize;
            *start = end;
            Some((sub, &self.visits[s..end as usize]))
        })
    }
}

type ShardBOut = Vec<PackedVisits>;

/// One scheduler task of the second phase-B pipeline: run the radio
/// scheduler over cells `lo..hi` of one accumulated day grid.
struct KpiTask {
    grid_idx: usize,
    day: u16,
    lo: usize,
    hi: usize,
}

/// Phase B runs as **two pipelines per group of day-blocks** (one
/// block per worker thread):
///
/// 1. *accumulate* — (day-block × subscriber-range) shards pack their
///    ranges' visit lists in parallel; the fold applies them to the
///    group's per-day load grids in canonical (day ascending,
///    subscriber ascending) order and records each day's off-net voice
///    volume as its grid completes — bit-identical accumulation, same
///    as the in-memory runner;
/// 2. *schedule* — (day × cell-range) tasks run the radio scheduler
///    over disjoint cell ranges of the finished grids in parallel
///    (cells are independent post-accumulation); the fold appends each
///    task's `CellDayMetrics` in production order — day ascending,
///    cell-range ascending, cells ascending within a range — which is
///    exactly the unsharded runner's push order, so the KPI table is
///    bit-identical for any [`ShardPlan::cells_per_shard`].
///
/// Peak grid memory is `threads × days_per_shard` grids — the same
/// bound the in-memory runner's per-worker grids impose; everything
/// else stays bounded by the pipeline capacity.
fn phase_b_sharded(
    config: &ScenarioConfig,
    world: &World,
    exec: &mut Executor,
    plan: &ShardPlan,
    scale: f64,
) -> Result<(KpiTable, Vec<f64>), ShardError> {
    let days: Vec<u16> = world.clock.days().collect();
    let num_days = world.num_days();
    let num_subs = world.population.len();
    let num_cells = world.topo.cells().len();
    let capacity = fold_capacity(plan, exec);
    let loadgen = load_generator(config, scale);
    let scheduler = Scheduler::new(SchedulerConfig::default());
    let subs = world.population.subscribers();

    let cells_per = if plan.cells_per_shard == 0 {
        num_cells.max(1)
    } else {
        plan.cells_per_shard
    };
    let cell_ranges: Vec<(usize, usize)> = (0..num_cells)
        .step_by(cells_per)
        .map(|lo| (lo, (lo + cells_per).min(num_cells)))
        .collect();

    let mut kpi = KpiTable::new();
    let mut voice_daily = vec![0.0; num_days];
    let mut traj_buf = DayTrajectory::default();
    let mut grids: Vec<DayLoadGrid> = Vec::new();

    let days_per = plan.days_per_shard.max(1);
    let group_len = exec.threads().max(1);
    let blocks: Vec<&[u16]> = days.chunks(days_per).collect();

    let loadgen_ref = &loadgen;
    let scheduler_ref = &scheduler;

    for group in blocks.chunks(group_len) {
        let group_days: Vec<u16> =
            group.iter().flat_map(|b| b.iter().copied()).collect();
        while grids.len() < group_days.len() {
            grids.push(DayLoadGrid::new(num_cells));
        }
        // Re-chunking the group's flattened days reproduces its blocks:
        // every block is `days_per` long except possibly the study's
        // final one, which is also the final chunk here.
        let (tasks, num_ranges) = shards(&group_days, num_subs, plan);

        struct AccB<'g> {
            grids: &'g mut [DayLoadGrid],
            voice_daily: &'g mut [f64],
            traj_buf: &'g mut DayTrajectory,
            /// Buffered results of the current day-block, range asc.
            buf: Vec<(Vec<u16>, ShardBOut)>,
            /// (grid index, day) of every day folded this group, in
            /// canonical day order — the schedule pipeline's task list.
            done: Vec<(usize, u16)>,
        }

        let mut acc = AccB {
            grids: &mut grids,
            voice_daily: &mut voice_daily,
            traj_buf: &mut traj_buf,
            buf: Vec::with_capacity(num_ranges),
            done: Vec::with_capacity(group_days.len()),
        };

        let mut task_iter = tasks.into_iter();
        exec.run_pipeline_fold(
            "phase_b_shards",
            capacity,
            move || task_iter.next(),
            || {
                (
                    TrajectoryGenerator::new(&world.geo, &world.behavior, world.clock, config.seed),
                    DayTrajectory::default(),
                )
            },
            |(trajgen, traj), _i, shard: Shard, ctx| {
                let mut out: ShardBOut =
                    shard.days.iter().map(|_| PackedVisits::default()).collect();
                for (local_day, &day) in shard.days.iter().enumerate() {
                    for sub_idx in shard.lo..shard.hi {
                        trajgen.generate_into(&subs[sub_idx], day, traj);
                        // `LoadGenerator::accumulate` is a no-op on empty
                        // visit lists, so skipping them here is exact.
                        if !traj.visits.is_empty() {
                            out[local_day].push(sub_idx as u32, &traj.visits);
                            ctx.add_items(1);
                        }
                    }
                }
                ctx.count("days", shard.days.len() as u64);
                (shard.days.clone(), out)
            },
            &mut acc,
            |acc, _i, (shard_days, out)| {
                acc.buf.push((shard_days, out));
                if acc.buf.len() == num_ranges {
                    let block_days = acc.buf[0].0.clone();
                    for (local_day, &day) in block_days.iter().enumerate() {
                        let grid_idx = acc.done.len();
                        let grid = &mut acc.grids[grid_idx];
                        let date = world.clock.date(day);
                        let schedule = world.behavior.schedule();
                        let intensity = schedule.intensity(date);
                        // Ratchet: at-home WiFi settling does not unwind
                        // once confinement starts (mirrors
                        // `simulate_day_kpi`).
                        let confinement = schedule.confinement(date);
                        grid.clear();
                        for (_, shard_out) in &acc.buf {
                            for (sub_idx, visits) in shard_out[local_day].iter() {
                                let sub = &subs[sub_idx as usize];
                                acc.traj_buf.subscriber = sub.id;
                                acc.traj_buf.day = day;
                                acc.traj_buf.visits.clear();
                                acc.traj_buf.visits.extend_from_slice(visits);
                                loadgen_ref.accumulate(
                                    sub,
                                    acc.traj_buf,
                                    date,
                                    intensity,
                                    confinement,
                                    &world.topo,
                                    grid,
                                );
                            }
                        }
                        acc.voice_daily[day as usize] =
                            loadgen_ref.off_net_voice_mb(grid);
                        acc.done.push((grid_idx, day));
                    }
                    acc.buf.clear();
                }
            },
        )?;

        debug_assert!(acc.buf.is_empty(), "every day-block must have been folded");
        let done = std::mem::take(&mut acc.done);
        drop(acc);

        // The schedule pipeline: disjoint (day × cell-range) tasks over
        // the group's finished grids, folded in production order.
        let mut kpi_tasks = Vec::with_capacity(done.len() * cell_ranges.len());
        for &(grid_idx, day) in &done {
            for &(lo, hi) in &cell_ranges {
                kpi_tasks.push(KpiTask { grid_idx, day, lo, hi });
            }
        }
        if kpi_tasks.is_empty() {
            continue;
        }
        let grids_ref = &grids;
        let mut kpi_iter = kpi_tasks.into_iter();
        exec.run_pipeline_fold(
            "phase_b_kpi",
            capacity,
            move || kpi_iter.next(),
            || Vec::with_capacity(24),
            |hours_buf: &mut Vec<HourlyKpiSample>, _i, task: KpiTask, ctx| {
                let day = task.day;
                let mut out: Vec<CellDayMetrics> = Vec::new();
                run::day_kpi_from_grid_range(
                    world,
                    scheduler_ref,
                    &grids_ref[task.grid_idx],
                    day,
                    task.lo,
                    task.hi,
                    hours_buf,
                    |cell_id, hours| {
                        if let Some(rec) = CellDayMetrics::from_hourly(cell_id, day, hours) {
                            out.push(rec);
                        }
                    },
                );
                ctx.add_items(out.len() as u64);
                out
            },
            &mut kpi,
            |kpi, _i, recs| {
                for rec in recs {
                    kpi.push(rec);
                }
            },
        )?;
    }

    Ok((kpi, voice_daily))
}

// ---------------------------------------------------------------------
// The sharded runner.
// ---------------------------------------------------------------------

/// Run the full study sharded by (day-block × subscriber-range).
///
/// Bit-identical to [`run::run_study_with`] for any [`ShardPlan`] and
/// any thread count; peak memory is bounded by the shard geometry
/// rather than the population (with [`ShardPlan::spill_masks`], no
/// structure of size `population × days` is ever resident).
pub fn run_study_sharded(
    config: &ScenarioConfig,
    world: &World,
    exec: &mut Executor,
    plan: &ShardPlan,
) -> Result<StudyDataset, ShardError> {
    let phase_a = phase_a_sharded(config, world, exec, plan)?;
    let scale = exec.time_stage("calibrate", || run::calibrate_traffic_scale(config, world));
    let (kpi, voice_daily) = phase_b_sharded(config, world, exec, plan, scale)?;
    exec.time_stage("assemble", || {
        run::assemble(config, world, phase_a, kpi, voice_daily)
    })
    .map_err(ShardError::Spill)
}

/// [`run_study_sharded`] over a fresh world and executor.
pub fn run_sharded(
    config: &ScenarioConfig,
    plan: &ShardPlan,
) -> Result<StudyDataset, ShardError> {
    let world = World::build(config);
    let mut exec = Executor::new(config.threads);
    run_study_sharded(config, &world, &mut exec, plan)
}
