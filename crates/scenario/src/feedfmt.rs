//! Binary feed files: the KPI and voice segment codecs, file naming,
//! format detection, and the lossless JSONL⇄binary converter.
//!
//! The events codec lives in [`cellscope_signaling::columnar`] next to
//! the record type it serializes; this module adds the two scenario-
//! level feeds on the same column primitives and the directory-level
//! plumbing: a binary feed directory holds the *same* manifest and the
//! same per-day sharding as a JSONL one, with each `*.jsonl` file
//! replaced by a `*.csb` ("cellscope segment binary") segment.
//!
//! KPI payload layout (columns `records` long):
//!
//! ```text
//! cell     dictionary-coded u32
//! day      [u16; n]
//! hour     [u8;  n]
//! sample   10 × [f64-bits; n]   one column per HourlyKpiSample field
//! ```
//!
//! Voice payload layout:
//!
//! ```text
//! day              [u16; n]
//! off_net_voice_mb [f64-bits; n]
//! ```
//!
//! [`convert_feed_dir`] converts a whole feed directory in either
//! direction, sniffing the source format from the files themselves.
//! Conversion is lossless by construction — `f64`s travel as bit
//! patterns in binary and as shortest-round-trip decimal in JSONL, and
//! the JSONL writer is the same code the exporter uses — so
//! JSONL → binary → JSONL reproduces the original files *byte for
//! byte*, which is exactly what `tests/feedfmt_equivalence.rs` pins.

use crate::replay::{
    events_file_name, kpi_file_name, FeedManifest, KpiHourRecord, ReplayError,
    VoiceDayRecord, MANIFEST_FILE, VOICE_FILE,
};
use cellscope_core::kpi_stats::HourlyKpiSample;
use cellscope_signaling::columnar::{
    self, column,
    column::Cursor,
    format::{check_segment, seal_segment, split_segments, HEADER_LEN},
    DecodeScratch, SegmentError, SegmentHeader, SegmentKind, ALL_DAYS,
};
use cellscope_signaling::{EventReader, FeedError, SignalingEvent};
use std::fs;
use std::io::{self, Write};
use std::path::Path;

/// Binary events feed file name for a day.
pub fn events_bin_name(day: u16) -> String {
    format!("events_d{day:03}.csb")
}

/// Binary KPI feed file name for a day.
pub fn kpi_bin_name(day: u16) -> String {
    format!("kpi_d{day:03}.csb")
}

/// The binary daily voice feed.
pub const VOICE_BIN_FILE: &str = "voice_daily.csb";

/// On-disk representation of a feed directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedFormat {
    /// One JSON object per line (the interchange/debug format).
    Jsonl,
    /// Columnar binary segments (the replay-throughput format).
    Binary,
}

impl std::fmt::Display for FeedFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FeedFormat::Jsonl => "jsonl",
            FeedFormat::Binary => "binary",
        })
    }
}

/// Detect a feed directory's format from the voice feed (the one file
/// every feed set has exactly one of). A directory with both variants
/// is ambiguous — the binary one wins, matching the replay reader's
/// per-file preference.
pub fn detect_format(dir: &Path) -> io::Result<FeedFormat> {
    if dir.join(VOICE_BIN_FILE).exists() {
        Ok(FeedFormat::Binary)
    } else if dir.join(VOICE_FILE).exists() {
        Ok(FeedFormat::Jsonl)
    } else {
        Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("{}: neither {VOICE_BIN_FILE} nor {VOICE_FILE} present", dir.display()),
        ))
    }
}

// ---------------------------------------------------------------------
// KPI segment codec
// ---------------------------------------------------------------------

/// Records per segment the exporters target. Far below the `u32`
/// ceiling (a segment this size is tens of MB), so day feeds of any
/// population stay encodable, and the streaming replay reader's peak
/// buffer stays bounded by one segment.
pub const SEGMENT_TARGET_RECORDS: usize = 2_000_000;

/// Append one KPI segment to `out` (not cleared).
fn append_kpi_segment(
    day: u16,
    records: &[KpiHourRecord],
    out: &mut Vec<u8>,
) -> Result<(), SegmentError> {
    let start = out.len();
    out.resize(start + HEADER_LEN, 0);
    let n = records.len();
    column::encode_dict_u32(records.iter().map(|r| r.cell), n, out);
    for r in records {
        column::put_u16(out, r.day);
    }
    for r in records {
        out.push(r.hour);
    }
    // One column per sample field, in declaration order.
    macro_rules! f64_col {
        ($field:ident) => {
            for r in records {
                column::put_f64(out, r.sample.$field);
            }
        };
    }
    f64_col!(dl_volume_mb);
    f64_col!(ul_volume_mb);
    f64_col!(active_dl_users);
    f64_col!(connected_users);
    f64_col!(user_dl_throughput_mbps);
    f64_col!(tti_utilization);
    f64_col!(voice_volume_mb);
    f64_col!(voice_users);
    f64_col!(voice_ul_loss);
    f64_col!(voice_dl_loss);
    seal_segment(&mut out[start..], SegmentKind::Kpi, day, n)
}

/// Encode one day's KPI records into `out` (cleared first) as a single
/// segment; [`SegmentError::SegmentTooLarge`] past the `u32` ceiling.
pub fn encode_kpi_into(
    day: u16,
    records: &[KpiHourRecord],
    out: &mut Vec<u8>,
) -> Result<(), SegmentError> {
    out.clear();
    append_kpi_segment(day, records, out)
}

/// Encode one day's KPI records into `out` (cleared first) as
/// back-to-back segments of at most `max_records` each (at least one,
/// so an empty day still produces a well-formed file). Returns the
/// segment count.
pub fn encode_kpi_segmented(
    day: u16,
    records: &[KpiHourRecord],
    max_records: usize,
    out: &mut Vec<u8>,
) -> Result<usize, SegmentError> {
    assert!(max_records > 0, "segment capacity must be positive");
    out.clear();
    if records.is_empty() {
        append_kpi_segment(day, records, out)?;
        return Ok(1);
    }
    let mut segments = 0;
    for chunk in records.chunks(max_records) {
        append_kpi_segment(day, chunk, out)?;
        segments += 1;
    }
    Ok(segments)
}

/// Decode a KPI segment into `out` (cleared first); typed errors, zero
/// steady-state allocations once `out` and `scratch` are warm.
pub fn decode_kpi_into(
    bytes: &[u8],
    scratch: &mut DecodeScratch,
    out: &mut Vec<KpiHourRecord>,
) -> Result<SegmentHeader, SegmentError> {
    out.clear();
    let (header, payload) = check_segment(bytes, SegmentKind::Kpi)?;
    let n = header.records as usize;
    let mut cur = Cursor::new(payload);
    let cells = column::read_dict_u32(&mut cur, n, &mut scratch.dict, "cell")?;
    let day = cur.take(2 * n, "day")?;
    let hour = cur.take(n, "hour")?;
    let mut f64_cols = [&[] as &[u8]; 10];
    const SAMPLE_COLUMNS: [&str; 10] = [
        "dl_volume_mb",
        "ul_volume_mb",
        "active_dl_users",
        "connected_users",
        "user_dl_throughput_mbps",
        "tti_utilization",
        "voice_volume_mb",
        "voice_users",
        "voice_ul_loss",
        "voice_dl_loss",
    ];
    for (slot, name) in f64_cols.iter_mut().zip(SAMPLE_COLUMNS) {
        *slot = cur.take(8 * n, name)?;
    }
    cur.finish()?;

    out.reserve(n);
    for i in 0..n {
        let cell = match cells.get(&scratch.dict, i) {
            Ok(cell) => cell,
            Err(e) => {
                out.clear(); // never hand back a half-filled decode
                return Err(e);
            }
        };
        out.push(KpiHourRecord {
            cell,
            day: column::u16_at(day, i),
            hour: column::u8_at(hour, i),
            sample: HourlyKpiSample {
                dl_volume_mb: column::f64_at(f64_cols[0], i),
                ul_volume_mb: column::f64_at(f64_cols[1], i),
                active_dl_users: column::f64_at(f64_cols[2], i),
                connected_users: column::f64_at(f64_cols[3], i),
                user_dl_throughput_mbps: column::f64_at(f64_cols[4], i),
                tti_utilization: column::f64_at(f64_cols[5], i),
                voice_volume_mb: column::f64_at(f64_cols[6], i),
                voice_users: column::f64_at(f64_cols[7], i),
                voice_ul_loss: column::f64_at(f64_cols[8], i),
                voice_dl_loss: column::f64_at(f64_cols[9], i),
            },
        });
    }
    Ok(header)
}

// ---------------------------------------------------------------------
// Voice segment codec
// ---------------------------------------------------------------------

/// Encode the whole-study voice feed into `out` (cleared first).
pub fn encode_voice_into(
    records: &[VoiceDayRecord],
    out: &mut Vec<u8>,
) -> Result<(), SegmentError> {
    out.clear();
    out.resize(HEADER_LEN, 0);
    for r in records {
        column::put_u16(out, r.day);
    }
    for r in records {
        column::put_f64(out, r.off_net_voice_mb);
    }
    seal_segment(out, SegmentKind::Voice, ALL_DAYS, records.len())
}

/// Decode a voice segment into `out` (cleared first).
pub fn decode_voice_into(
    bytes: &[u8],
    out: &mut Vec<VoiceDayRecord>,
) -> Result<SegmentHeader, SegmentError> {
    out.clear();
    let (header, payload) = check_segment(bytes, SegmentKind::Voice)?;
    let n = header.records as usize;
    let mut cur = Cursor::new(payload);
    let day = cur.take(2 * n, "day")?;
    let volume = cur.take(8 * n, "off_net_voice_mb")?;
    cur.finish()?;
    out.reserve(n);
    for i in 0..n {
        out.push(VoiceDayRecord {
            day: column::u16_at(day, i),
            off_net_voice_mb: column::f64_at(volume, i),
        });
    }
    Ok(header)
}

// ---------------------------------------------------------------------
// Directory converter
// ---------------------------------------------------------------------

/// What [`convert_feed_dir`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvertSummary {
    /// Format the source directory was in.
    pub from: FeedFormat,
    /// Format the destination was written in (the other one).
    pub to: FeedFormat,
    /// Files converted (manifest excluded — it is copied verbatim).
    pub files: u64,
    /// Total bytes read from the source feed files.
    pub src_bytes: u64,
    /// Total bytes written to the destination feed files.
    pub dst_bytes: u64,
}

/// Parse one JSONL feed of `T` records, fail-fast with 1-based line
/// numbers — the converter refuses to launder a damaged feed into a
/// clean-looking binary one.
fn parse_jsonl_records<T: serde::Deserialize>(
    text: &str,
    file: &str,
) -> Result<Vec<T>, ReplayError> {
    let mut records = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let rec = serde_json::from_str::<T>(trimmed).map_err(|e| ReplayError::Feed {
            file: file.to_string(),
            source: FeedError::Malformed { line: idx as u64 + 1, reason: e.to_string() },
        })?;
        records.push(rec);
    }
    Ok(records)
}

/// Serialize records as JSONL with the exact writer the exporter uses,
/// so a binary→JSONL conversion reproduces exported files byte for
/// byte.
fn write_jsonl_records<T: serde::Serialize>(records: &[T]) -> io::Result<Vec<u8>> {
    let mut out = Vec::new();
    for rec in records {
        let line = serde_json::to_string(rec)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        out.write_all(line.as_bytes())?;
        out.write_all(b"\n")?;
    }
    Ok(out)
}

/// Convert one feed file; returns (src_len, dst_len).
fn convert_file<T, E, D>(
    src: &Path,
    src_name: &str,
    dst: &Path,
    from: FeedFormat,
    parse_text: impl FnOnce(&str) -> Result<Vec<T>, ReplayError>,
    encode: E,
    decode: D,
) -> Result<(u64, u64), ReplayError>
where
    T: serde::Serialize,
    E: FnOnce(&[T], &mut Vec<u8>) -> Result<(), SegmentError>,
    D: FnOnce(&[u8]) -> Result<Vec<T>, SegmentError>,
{
    let bytes = fs::read(src)?;
    let src_len = bytes.len() as u64;
    let out = match from {
        FeedFormat::Jsonl => {
            let text = String::from_utf8(bytes).map_err(|e| ReplayError::Feed {
                file: src_name.to_string(),
                source: FeedError::Malformed {
                    line: 0,
                    reason: format!("not UTF-8: {e}"),
                },
            })?;
            let records = parse_text(&text)?;
            let mut buf = Vec::new();
            encode(&records, &mut buf).map_err(|cause| ReplayError::Feed {
                file: src_name.to_string(),
                source: FeedError::Segment(cause),
            })?;
            buf
        }
        FeedFormat::Binary => {
            let records = decode(&bytes).map_err(|cause| ReplayError::Feed {
                file: src_name.to_string(),
                source: FeedError::Segment(cause),
            })?;
            write_jsonl_records(&records)?
        }
    };
    let dst_len = out.len() as u64;
    fs::write(dst, out)?;
    Ok((src_len, dst_len))
}

/// Convert a feed directory to the other format, writing a complete
/// feed set (manifest copied verbatim, every day's events and KPI
/// files, the voice feed) into `dst`. The source is read fail-fast: a
/// malformed line or a damaged segment aborts with its file and
/// position rather than producing a silently incomplete conversion.
pub fn convert_feed_dir(src: &Path, dst: &Path) -> Result<ConvertSummary, ReplayError> {
    let from = detect_format(src)?;
    let to = match from {
        FeedFormat::Jsonl => FeedFormat::Binary,
        FeedFormat::Binary => FeedFormat::Jsonl,
    };
    let manifest_text = fs::read_to_string(src.join(MANIFEST_FILE))?;
    let manifest: FeedManifest = serde_json::from_str(&manifest_text)
        .map_err(|e| ReplayError::Manifest(e.to_string()))?;
    fs::create_dir_all(dst)?;
    fs::write(dst.join(MANIFEST_FILE), &manifest_text)?;

    let mut summary = ConvertSummary { from, to, files: 0, src_bytes: 0, dst_bytes: 0 };
    let add = |r: (u64, u64), summary: &mut ConvertSummary| {
        summary.files += 1;
        summary.src_bytes += r.0;
        summary.dst_bytes += r.1;
    };

    for day in 0..manifest.num_days {
        // Events: EventReader gives the converter the same fail-fast
        // line accounting the replay engine uses.
        let (ev_src, ev_dst) = match from {
            FeedFormat::Jsonl => (events_file_name(day), events_bin_name(day)),
            FeedFormat::Binary => (events_bin_name(day), events_file_name(day)),
        };
        let r = convert_file::<SignalingEvent, _, _>(
            &src.join(&ev_src),
            &ev_src,
            &dst.join(&ev_dst),
            from,
            |text| {
                let mut events = Vec::new();
                for item in EventReader::new(text.as_bytes()) {
                    events.push(item.map_err(|source| ReplayError::Feed {
                        file: ev_src.clone(),
                        source,
                    })?);
                }
                Ok(events)
            },
            |events, out| columnar::encode_events_into(day, events, out),
            |bytes| {
                let mut events = Vec::new();
                let mut scratch = DecodeScratch::default();
                let mut seg_out = Vec::new();
                for seg in split_segments(bytes) {
                    columnar::decode_events_into(seg?, &mut scratch, &mut seg_out)?;
                    events.append(&mut seg_out);
                }
                Ok(events)
            },
        )?;
        add(r, &mut summary);

        let (kpi_src, kpi_dst) = match from {
            FeedFormat::Jsonl => (kpi_file_name(day), kpi_bin_name(day)),
            FeedFormat::Binary => (kpi_bin_name(day), kpi_file_name(day)),
        };
        let r = convert_file::<KpiHourRecord, _, _>(
            &src.join(&kpi_src),
            &kpi_src,
            &dst.join(&kpi_dst),
            from,
            |text| parse_jsonl_records(text, &kpi_src),
            |records, out| encode_kpi_into(day, records, out),
            |bytes| {
                let mut records = Vec::new();
                let mut scratch = DecodeScratch::default();
                let mut seg_out = Vec::new();
                for seg in split_segments(bytes) {
                    decode_kpi_into(seg?, &mut scratch, &mut seg_out)?;
                    records.append(&mut seg_out);
                }
                Ok(records)
            },
        )?;
        add(r, &mut summary);
    }

    let (voice_src, voice_dst) = match from {
        FeedFormat::Jsonl => (VOICE_FILE, VOICE_BIN_FILE),
        FeedFormat::Binary => (VOICE_BIN_FILE, VOICE_FILE),
    };
    let r = convert_file::<VoiceDayRecord, _, _>(
        &src.join(voice_src),
        voice_src,
        &dst.join(voice_dst),
        from,
        |text| parse_jsonl_records(text, voice_src),
        |records, out| encode_voice_into(records, out),
        |bytes| {
            let mut records = Vec::new();
            let mut seg_out = Vec::new();
            for seg in split_segments(bytes) {
                decode_voice_into(seg?, &mut seg_out)?;
                records.append(&mut seg_out);
            }
            Ok(records)
        },
    )?;
    add(r, &mut summary);
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kpi_records(n: usize) -> Vec<KpiHourRecord> {
        (0..n)
            .map(|i| KpiHourRecord {
                cell: (i as u32 / 24) * 3,
                day: 5,
                hour: (i % 24) as u8,
                sample: HourlyKpiSample {
                    dl_volume_mb: 0.1 + i as f64,
                    ul_volume_mb: 1.0 / (i as f64 + 3.0),
                    active_dl_users: i as f64 * 2.5e-3,
                    connected_users: 123.456 + i as f64,
                    user_dl_throughput_mbps: f64::MIN_POSITIVE * (i as f64 + 1.0),
                    tti_utilization: (i as f64 / n as f64).min(0.999999),
                    voice_volume_mb: 7.0,
                    voice_users: 0.0,
                    voice_ul_loss: 3.141592653589793,
                    voice_dl_loss: 1e300 / (i as f64 + 1.0),
                },
            })
            .collect()
    }

    #[test]
    fn kpi_segment_roundtrips_bit_exact() {
        let records = kpi_records(96);
        let mut bytes = Vec::new();
        encode_kpi_into(5, &records, &mut bytes).unwrap();
        let mut out = Vec::new();
        let header =
            decode_kpi_into(&bytes, &mut DecodeScratch::default(), &mut out).unwrap();
        assert_eq!(header.kind, SegmentKind::Kpi);
        assert_eq!(header.day, 5);
        assert_eq!(out, records);
    }

    #[test]
    fn voice_segment_roundtrips_bit_exact() {
        let records: Vec<VoiceDayRecord> = (0..77)
            .map(|d| VoiceDayRecord { day: d, off_net_voice_mb: 0.1 + 0.7 * d as f64 })
            .collect();
        let mut bytes = Vec::new();
        encode_voice_into(&records, &mut bytes).unwrap();
        let mut out = Vec::new();
        let header = decode_voice_into(&bytes, &mut out).unwrap();
        assert_eq!(header.day, ALL_DAYS);
        assert_eq!(out, records);
    }

    #[test]
    fn kpi_decoder_rejects_events_segments() {
        let bytes = columnar::encode_events(0, &[]);
        let err = decode_kpi_into(&bytes, &mut DecodeScratch::default(), &mut Vec::new())
            .unwrap_err();
        assert!(matches!(
            err,
            SegmentError::WrongKind { found: SegmentKind::Events, expected: SegmentKind::Kpi }
        ));
    }
}
