//! Bench-facing drivers for the subscriber-day hot path.
//!
//! The phase internals (`phase_a_block`, `phase_b_chunk`, the roster)
//! are crate-private by design — the public API of this crate is the
//! study, not its plumbing. The allocation-counting bench and the
//! `repro --bench-summary` baseline writer still need to run exactly
//! one phase-A day block and one phase-B day block outside the
//! executor, so they can time the block and diff a process-global
//! allocation counter around it. [`HotpathHarness`] is that minimal
//! surface: it drives the real phase functions unchanged (same RNG
//! streams, same ingest order) and reports the item count back from
//! the task context, nothing more.

use crate::config::ScenarioConfig;
use crate::run::{self, StudyRoster, PHASE_A_BLOCK_DAYS, PHASE_B_BLOCK_DAYS};
use crate::world::World;
use cellscope_exec::TaskCtx;

/// Drives single phase-A / phase-B day blocks for benchmarking.
pub struct HotpathHarness<'w> {
    config: &'w ScenarioConfig,
    world: &'w World,
    roster: StudyRoster,
}

impl<'w> HotpathHarness<'w> {
    /// Build the feed-side roster once; block runs reuse it, exactly
    /// like the executor's workers do.
    pub fn new(config: &'w ScenarioConfig, world: &'w World) -> HotpathHarness<'w> {
        HotpathHarness {
            config,
            world,
            roster: run::build_roster(config, world),
        }
    }

    /// The first phase-A day block of the study (the unit of work one
    /// executor task processes).
    pub fn phase_a_days(&self) -> Vec<u16> {
        self.world.clock.days().take(PHASE_A_BLOCK_DAYS).collect()
    }

    /// The first phase-B day block of the study.
    pub fn phase_b_days(&self) -> Vec<u16> {
        self.world.clock.days().take(PHASE_B_BLOCK_DAYS).collect()
    }

    /// Run one phase-A block over `days`; returns the user-days folded
    /// in (the stage's item count).
    pub fn run_phase_a_block(&self, days: &[u16]) -> u64 {
        let mut ctx = TaskCtx::default();
        let block = run::phase_a_block(self.config, self.world, &self.roster, days, &mut ctx);
        std::hint::black_box(&block);
        ctx.items()
    }

    /// Run one phase-B block over `days` at population scale 1.0 (the
    /// scale factor multiplies loads, it does not change the work);
    /// returns the cell-days produced.
    pub fn run_phase_b_block(&self, days: &[u16]) -> u64 {
        let mut ctx = TaskCtx::default();
        let out = run::phase_b_chunk(self.config, self.world, days, 1.0, &mut ctx);
        std::hint::black_box(&out);
        ctx.items()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_both_phases_and_counts_items() {
        let config = ScenarioConfig::tiny(7);
        let world = World::build(&config);
        let harness = HotpathHarness::new(&config, &world);
        let a = harness.run_phase_a_block(&harness.phase_a_days());
        let b = harness.run_phase_b_block(&harness.phase_b_days());
        assert!(a > 0, "phase A folded no user-days");
        assert!(b > 0, "phase B produced no cell-days");
    }
}
