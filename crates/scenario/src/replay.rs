//! Streaming feed-replay engine with fault tolerance.
//!
//! The paper's pipeline never sees ground truth: it consumes probe
//! *feeds* — signaling events and per-cell KPI counters. This module
//! closes that loop for the synthetic study: [`export_feeds`] writes a
//! run's feeds to disk (JSONL: one record per line, full `f64` text
//! precision so numbers round-trip bit-exactly), and [`replay_study`]
//! streams them back through the **identical analysis objects** the
//! in-memory runner drives ([`cellscope_core::study::MobilityStudy`],
//! [`cellscope_core::KpiTable`], home detection, the mobility matrix),
//! producing a [`StudyDataset`] that is bit-for-bit equal to the
//! in-memory one.
//!
//! # Pipeline
//!
//! Replay runs on [`cellscope_exec`]'s bounded-channel pipeline
//! ([`Executor::run_pipeline`]):
//!
//! * a **reader stage** (the pipeline's producer, on the calling
//!   thread) streams the per-day feed files in day order into a bounded
//!   channel — when workers fall behind, production blocks, so the
//!   reader can never balloon memory;
//! * **worker threads** parse each day's feeds (via the streaming
//!   [`EventReader`], honouring a [`MalformedPolicy`]) and fold them
//!   into per-day partials using the same ingestion helpers as the
//!   in-memory phase A;
//! * the execution layer hands the partials back **in day order** and
//!   the runner's assembly step is reused.
//!
//! Determinism follows from day ownership (see [`crate::run`]): each
//! accumulator bucket is produced by exactly one day's worker, so the
//! merged result does not depend on the number of workers or on which
//! worker processed which day.
//!
//! # Feed formats
//!
//! The reader stage accepts either on-disk representation per file:
//! JSONL (`*.jsonl`) or binary columnar segments (`*.csb`, see
//! [`cellscope_signaling::columnar`] and [`crate::feedfmt`]). For each
//! feed it prefers the `.csb` file when both exist, and sniffs the
//! *content* by magic — a binary segment stored under a `.jsonl` name
//! still decodes. A `.csb` file is *opened*, not slurped: the worker
//! pulls it through a bounded
//! [`cellscope_signaling::columnar::SegmentBlockReader`] one segment
//! at a time (files may hold several back-to-back segments — the
//! encoder splits oversize days), decoding into the same worker-owned
//! scratch arenas the JSONL path uses, so peak raw-feed memory per
//! worker is one segment and the steady-state loop allocates nothing
//! either way. The two paths produce bit-identical datasets (pinned by
//! `tests/feedfmt_equivalence.rs`); streamed volume is reported as
//! [`ReplayReport::bytes_streamed`].
//!
//! # Fault tolerance
//!
//! Every feed line lands in exactly one accounting bucket of
//! [`ReplayReport`] (`parsed + blank + malformed == lines_read`, per
//! feed; for binary segments the header's record count plays the role
//! of the line count). Under [`MalformedPolicy::FailFast`] the first
//! bad line aborts with its file and 1-based line number — a damaged
//! segment aborts with a typed [`SegmentError`] carried by
//! [`FeedError::Segment`] — and under
//! [`MalformedPolicy::SkipAndCount`] bad input is dropped and counted
//! while the analysis degrades gracefully, the way the paper's own
//! probes drop records; the first [`MAX_MALFORMED_LOCATIONS`] damage
//! positions are kept in [`ReplayReport::malformed_at`]. A worker
//! panic does not abort or hang the pipeline: the execution layer
//! captures it (draining the channel so the reader is never left
//! blocked) and [`replay_study`] returns [`ReplayError::Exec`] naming
//! the stage and day task.

use crate::config::ScenarioConfig;
use crate::dataset::StudyDataset;
use crate::feedfmt::{self, events_bin_name, kpi_bin_name, VOICE_BIN_FILE};
use crate::run::{self, IngestScratch, PhaseABlock, SiteDwell, StudyRoster};
use crate::world::World;
use cellscope_core::kpi_stats::{CellDayMetrics, HourlyKpiSample};
use cellscope_core::KpiTable;
use cellscope_exec::{ExecError, Executor};
use cellscope_mobility::{DayTrajectory, TrajectoryGenerator};
use cellscope_radio::{Scheduler, SchedulerConfig};
use cellscope_signaling::columnar::{
    self, DecodeScratch, SegmentError, SegmentStreamError, SegmentView,
};
use cellscope_signaling::{
    reconstruct_dwell_into, write_events_jsonl, EventGenerator, EventReader, FeedBounds,
    FeedError, FeedStats, MalformedPolicy, SignalingEvent,
};
use cellscope_traffic::DayLoadGrid;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::fs;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Arc;

/// Feed-set metadata, written next to the feeds as `manifest.json`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeedManifest {
    /// Scenario seed the feeds were generated from.
    pub seed: u64,
    /// Study days covered (one events + one KPI file each).
    pub num_days: u16,
    /// Cells in the topology (bounds-checks `event.cell`).
    pub num_cells: u32,
    /// Subscribers in the population.
    pub num_subscribers: u64,
    /// Calibrated traffic scale the KPI feed was simulated at.
    pub traffic_scale: f64,
}

/// One KPI feed line: a cell's post-scheduler sample for one hour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KpiHourRecord {
    /// Cell id.
    pub cell: u32,
    /// Study day.
    pub day: u16,
    /// Hour of day, 0–23.
    pub hour: u8,
    /// The hourly KPI sample.
    pub sample: HourlyKpiSample,
}

/// One voice feed line: the national off-net voice volume of one day.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VoiceDayRecord {
    /// Study day.
    pub day: u16,
    /// Off-net voice volume offered to the interconnect, MB.
    pub off_net_voice_mb: f64,
}

/// Events feed file name for a day.
pub fn events_file_name(day: u16) -> String {
    format!("events_d{day:03}.jsonl")
}

/// KPI feed file name for a day.
pub fn kpi_file_name(day: u16) -> String {
    format!("kpi_d{day:03}.jsonl")
}

/// The daily national voice feed.
pub const VOICE_FILE: &str = "voice_daily.jsonl";
/// The feed-set manifest.
pub const MANIFEST_FILE: &str = "manifest.json";

/// Serialize one feed record to its JSONL line, mapping a (pathological
/// but possible) serializer failure into `io::Error` so the export
/// write path returns instead of panicking mid-export.
fn to_json_line<T: Serialize>(record: &T) -> io::Result<String> {
    serde_json::to_string(record)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// Export a configuration's feeds: per-day signaling events (every
/// subscriber — probe-faithful; the study filter is the *consumer's*
/// job, decided from event fields), per-day hourly KPI samples for the
/// reporting cells, the daily voice feed, and the manifest.
pub fn export_feeds(config: &ScenarioConfig, dir: &Path) -> io::Result<FeedManifest> {
    let world = World::build(config);
    export_feeds_in(config, &world, dir)
}

/// [`export_feeds`] over a pre-built world.
pub fn export_feeds_in(
    config: &ScenarioConfig,
    world: &World,
    dir: &Path,
) -> io::Result<FeedManifest> {
    if !config.use_event_reconstruction {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "feed export requires use_event_reconstruction: the replay \
             path sees events, never trajectories",
        ));
    }
    fs::create_dir_all(dir)?;
    let mut trajgen =
        TrajectoryGenerator::new(&world.geo, &world.behavior, world.clock, config.seed);
    let mut eventgen = EventGenerator::new(
        &world.topo,
        &world.catalog,
        world.anonymizer,
        config.events,
    );
    let scale = run::calibrate_traffic_scale(config, world);
    let loadgen = run::load_generator(config, scale);
    let scheduler = Scheduler::new(SchedulerConfig::default());
    let mut grid = DayLoadGrid::new(world.topo.cells().len());
    let mut traj_buf = DayTrajectory::default();
    let mut events_buf: Vec<SignalingEvent> = Vec::new();
    let mut hours_buf: Vec<HourlyKpiSample> = Vec::with_capacity(24);
    let mut voice_out = BufWriter::new(fs::File::create(dir.join(VOICE_FILE))?);

    for day in world.clock.days() {
        // Signaling events, one contiguous run per subscriber, in
        // subscriber order — the order replay ingests in.
        let mut ev_out =
            BufWriter::new(fs::File::create(dir.join(events_file_name(day)))?);
        for sub in world.population.subscribers() {
            trajgen.generate_into(sub, day, &mut traj_buf);
            eventgen.generate_into(sub, &traj_buf, &mut events_buf);
            write_events_jsonl(&mut ev_out, &events_buf)?;
        }
        ev_out.flush()?;

        // Hourly KPI samples for the day's reporting cells (the same
        // set phase B keeps), 24 consecutive lines per cell.
        let mut kpi_out =
            BufWriter::new(fs::File::create(dir.join(kpi_file_name(day)))?);
        let mut write_err: Option<io::Error> = None;
        let voice = run::simulate_day_kpi(
            world,
            &mut trajgen,
            &loadgen,
            &scheduler,
            &mut grid,
            day,
            &mut traj_buf,
            &mut hours_buf,
            |cell, hours| {
                if write_err.is_some() {
                    return;
                }
                for (hour, sample) in hours.iter().enumerate() {
                    let rec = KpiHourRecord {
                        cell,
                        day,
                        hour: hour as u8,
                        sample: *sample,
                    };
                    let write = to_json_line(&rec).and_then(|line| {
                        kpi_out
                            .write_all(line.as_bytes())
                            .and_then(|()| kpi_out.write_all(b"\n"))
                    });
                    if let Err(e) = write {
                        write_err = Some(e);
                        return;
                    }
                }
            },
        );
        if let Some(e) = write_err {
            return Err(e);
        }
        kpi_out.flush()?;

        let vrec = VoiceDayRecord { day, off_net_voice_mb: voice };
        let line = to_json_line(&vrec)?;
        voice_out.write_all(line.as_bytes())?;
        voice_out.write_all(b"\n")?;
    }
    voice_out.flush()?;

    let manifest = FeedManifest {
        seed: config.seed,
        num_days: world.num_days() as u16,
        num_cells: world.topo.cells().len() as u32,
        num_subscribers: world.population.len() as u64,
        traffic_scale: scale,
    };
    let manifest_json = serde_json::to_string_pretty(&manifest)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    fs::write(dir.join(MANIFEST_FILE), manifest_json)?;
    Ok(manifest)
}

/// How the reader stage gets `.csb` feed bytes to the decoders.
///
/// * **Streamed** (the default): each file is pulled through a bounded
///   [`columnar::SegmentBlockReader`] — one segment resident per
///   worker, works on any readable file.
/// * **Mapped**: each file is `mmap`ed via
///   [`columnar::SegmentView`] and the decoders borrow column bytes
///   straight from the mapped pages — zero copies, CRC verified once
///   per segment, resident memory file-backed (the OS reclaims it
///   under pressure). Truncated or damaged files surface as the same
///   typed [`SegmentError`]s as the other paths; mapped volume is
///   reported as [`ReplayReport::bytes_mapped`].
///
/// Both paths produce bit-identical datasets and identical accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayOptions {
    /// Map `.csb` feed files instead of streaming them.
    pub mmap_segments: bool,
}

impl ReplayOptions {
    /// Zero-copy mapped segment reads.
    pub const fn mapped() -> ReplayOptions {
        ReplayOptions { mmap_segments: true }
    }

    /// Bounded streaming segment reads (the default).
    pub const fn streamed() -> ReplayOptions {
        ReplayOptions { mmap_segments: false }
    }
}

/// Knobs of the replay pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayConfig {
    /// Worker threads (0 = machine parallelism).
    pub threads: usize,
    /// Day tasks buffered between the reader and the workers
    /// (0 = 2 × threads). The reader blocks when the buffer is full —
    /// this is the pipeline's backpressure.
    pub channel_capacity: usize,
    /// What to do with feed lines that fail parsing or validation.
    pub policy: MalformedPolicy,
    /// How binary feed files reach the decoders (mmap vs streaming).
    pub options: ReplayOptions,
}

impl Default for ReplayConfig {
    fn default() -> ReplayConfig {
        ReplayConfig {
            threads: 0,
            channel_capacity: 0,
            policy: MalformedPolicy::FailFast,
            options: ReplayOptions::default(),
        }
    }
}

/// Per-worker totals.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WorkerStats {
    /// Day tasks this worker processed.
    pub days_processed: u64,
    /// Events this worker ingested.
    pub events_ingested: u64,
    /// Wall-clock seconds spent in day processing.
    pub seconds: f64,
    /// Ingested events per busy second.
    pub events_per_sec: f64,
}

/// Most malformed-input positions a [`ReplayReport`] records. The
/// malformed *counts* stay exact past the cap; the recorded positions
/// are the first witnesses, so a feed damaged in millions of places
/// cannot turn the report into an unbounded allocation.
pub const MAX_MALFORMED_LOCATIONS: usize = 64;

/// Where one malformed input unit sat: feed file plus 1-based line
/// number (JSONL) or 1-based record index (binary segments; `line == 0`
/// means the segment envelope itself — header or checksum — was bad).
///
/// The file name is interned (`Arc<str>`): a feed damaged in many
/// places records many positions but shares one name allocation,
/// instead of cloning the string per hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MalformedAt {
    /// Feed file, relative to the feed directory.
    pub file: Arc<str>,
    /// 1-based line/record position; 0 for a whole-segment failure.
    pub line: u64,
}

/// Per-stage counters of one replay run. Invariants (asserted by the
/// robustness tests): per feed, `parsed + blank + malformed ==
/// lines_read`; and `events.parsed == events_ingested + events_filtered
/// + events_unknown_user + events_out_of_order`.
#[derive(Debug, Clone, Default)]
pub struct ReplayReport {
    /// Feed files opened by the reader stage.
    pub files_read: u64,
    /// Raw bytes handed to the parse stage (file sizes: for streamed
    /// binary feeds this is the on-disk length, counted at open time).
    pub bytes_read: u64,
    /// Bytes decoded through the bounded segment streamer — binary
    /// feeds read block by block into worker arenas instead of being
    /// slurped whole. JSONL feeds do not contribute.
    pub bytes_streamed: u64,
    /// Bytes decoded zero-copy through mmap-backed [`columnar::SegmentView`]s
    /// (the [`ReplayOptions::mmap_segments`] path). Counted at map
    /// time: the whole file is mapped, the OS pages it in on demand.
    pub bytes_mapped: u64,
    /// Event-feed line accounting, merged over all days.
    pub events: FeedStats,
    /// KPI-feed line accounting, merged over all days.
    pub kpi: FeedStats,
    /// Voice-feed line accounting.
    pub voice: FeedStats,
    /// Parsed events dropped because their minute went backwards inside
    /// a subscriber run, their day disagreed with the feed file's day,
    /// or their subscriber reappeared after its run ended.
    pub events_out_of_order: u64,
    /// Parsed events whose anonymized id matches no subscriber.
    pub events_unknown_user: u64,
    /// Parsed events excluded by the study filter (non-smartphone TAC
    /// or non-native PLMN) — expected on probe-faithful feeds.
    pub events_filtered: u64,
    /// Events that drove the mobility pipeline.
    pub events_ingested: u64,
    /// (user, day) pairs ingested.
    pub user_days: u64,
    /// Cell-day KPI records rebuilt.
    pub cell_days: u64,
    /// Positions of the first [`MAX_MALFORMED_LOCATIONS`] malformed
    /// input units, in day order (voice last). Under skip-and-count
    /// these are the only trace of *where* the feeds were damaged.
    pub malformed_at: Vec<MalformedAt>,
    /// Per-worker throughput.
    pub workers: Vec<WorkerStats>,
}

impl ReplayReport {
    /// Record a malformed-input position, honouring the cap. The
    /// interned name is cloned (refcount bump), never re-allocated.
    fn note_malformed(&mut self, file: &Arc<str>, line: u64) {
        if self.malformed_at.len() < MAX_MALFORMED_LOCATIONS {
            self.malformed_at.push(MalformedAt { file: Arc::clone(file), line });
        }
    }
    /// Per-feed line accounting closes: every line read landed in
    /// exactly one of parsed/blank/malformed.
    pub fn lines_balance(&self) -> bool {
        let ok = |s: &FeedStats| s.parsed + s.blank + s.malformed == s.lines_read;
        ok(&self.events) && ok(&self.kpi) && ok(&self.voice)
    }

    /// Event ingest accounting closes: every parsed event landed in
    /// exactly one of ingested/filtered/unknown/out-of-order.
    pub fn events_balance(&self) -> bool {
        self.events.parsed
            == self.events_ingested
                + self.events_filtered
                + self.events_unknown_user
                + self.events_out_of_order
    }
}

impl fmt::Display for ReplayReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "files {} ({} bytes, {} streamed, {} mapped)",
            self.files_read, self.bytes_read, self.bytes_streamed, self.bytes_mapped
        )?;
        let feed = |name: &str, s: &FeedStats| {
            format!(
                "{name}: {} lines = {} parsed + {} blank + {} malformed",
                s.lines_read, s.parsed, s.blank, s.malformed
            )
        };
        writeln!(f, "{}", feed("events", &self.events))?;
        writeln!(f, "{}", feed("kpi   ", &self.kpi))?;
        writeln!(f, "{}", feed("voice ", &self.voice))?;
        if !self.malformed_at.is_empty() {
            write!(f, "malformed at:")?;
            for loc in self.malformed_at.iter().take(8) {
                write!(f, " {}:{}", loc.file, loc.line)?;
            }
            if self.malformed_at.len() > 8 {
                write!(f, " (+{} more)", self.malformed_at.len() - 8)?;
            }
            writeln!(f)?;
        }
        writeln!(
            f,
            "ingest: {} ingested + {} filtered + {} unknown-user + {} out-of-order; \
             {} user-days, {} cell-days",
            self.events_ingested,
            self.events_filtered,
            self.events_unknown_user,
            self.events_out_of_order,
            self.user_days,
            self.cell_days
        )?;
        for (i, w) in self.workers.iter().enumerate() {
            writeln!(
                f,
                "worker {i}: {} days, {} events, {:.1} ev/s",
                w.days_processed, w.events_ingested, w.events_per_sec
            )?;
        }
        Ok(())
    }
}

/// A replay failure.
#[derive(Debug)]
pub enum ReplayError {
    /// Underlying I/O failure (missing feed file, unreadable dir…).
    Io(io::Error),
    /// A feed file failed parsing or validation under fail-fast.
    Feed {
        /// Feed file (relative to the feed dir).
        file: String,
        /// The line-located failure.
        source: FeedError,
    },
    /// Manifest missing/invalid, or feeds incompatible with the
    /// configuration being replayed into.
    Manifest(String),
    /// A panic in a replay worker, captured by the execution layer;
    /// carries the stage and day-task index.
    Exec(ExecError),
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Io(e) => write!(f, "replay I/O error: {e}"),
            ReplayError::Feed { file, source } => write!(f, "{file}: {source}"),
            ReplayError::Manifest(msg) => write!(f, "feed manifest: {msg}"),
            ReplayError::Exec(e) => write!(f, "replay worker: {e}"),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<io::Error> for ReplayError {
    fn from(e: io::Error) -> ReplayError {
        ReplayError::Io(e)
    }
}

impl From<ExecError> for ReplayError {
    fn from(e: ExecError) -> ReplayError {
        ReplayError::Exec(e)
    }
}

/// One feed file's content, classified by the reader stage.
enum DayFeed {
    /// UTF-8 text, one JSON record per line.
    Jsonl(String),
    /// One or more binary columnar segments, fully in memory (a segment
    /// stored under a `.jsonl` name, recognised by magic).
    Binary(Vec<u8>),
    /// An opened `.csb` file plus its on-disk length: the worker
    /// decodes it segment by segment through a bounded
    /// [`columnar::SegmentBlockReader`] instead of slurping the file,
    /// so peak memory per feed is one segment, not the whole day.
    Stream(fs::File, u64),
    /// An mmap-backed `.csb` file ([`ReplayOptions::mmap_segments`]):
    /// the worker decodes segments as borrows of the mapped pages —
    /// zero copies, resident memory file-backed and reclaimable.
    Mapped(SegmentView),
}

impl DayFeed {
    fn len(&self) -> usize {
        match self {
            DayFeed::Jsonl(text) => text.len(),
            DayFeed::Binary(bytes) => bytes.len(),
            DayFeed::Stream(_, len) => *len as usize,
            DayFeed::Mapped(view) => view.len(),
        }
    }
}

/// Read one per-day feed, preferring the binary file when both exist
/// and sniffing the content by magic so a segment stored under the
/// JSONL name still decodes. The `.csb` path is *opened*, not read:
/// the worker streams its segments through a bounded reader, or —
/// under [`ReplayOptions::mmap_segments`] — borrows them from an
/// mmap-backed [`SegmentView`]. Invalid UTF-8 text is an I/O-level
/// error, exactly as it was when the reader used `read_to_string`.
fn read_day_feed(
    dir: &Path,
    bin_name: String,
    jsonl_name: String,
    options: ReplayOptions,
) -> io::Result<(String, DayFeed)> {
    let bin_path = dir.join(&bin_name);
    if bin_path.exists() {
        if options.mmap_segments {
            let view = SegmentView::open(&bin_path)?;
            return Ok((bin_name, DayFeed::Mapped(view)));
        }
        let file = fs::File::open(bin_path)?;
        let len = file.metadata()?.len();
        return Ok((bin_name, DayFeed::Stream(file, len)));
    }
    let bytes = fs::read(dir.join(&jsonl_name))?;
    if columnar::looks_like_segment(&bytes) {
        return Ok((jsonl_name, DayFeed::Binary(bytes)));
    }
    match String::from_utf8(bytes) {
        Ok(text) => Ok((jsonl_name, DayFeed::Jsonl(text))),
        Err(e) => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{jsonl_name}: not UTF-8 and not a binary segment: {e}"),
        )),
    }
}

/// One day's work unit, produced by the reader stage.
struct DayTask {
    day: u16,
    events_name: String,
    events_feed: DayFeed,
    kpi_name: String,
    kpi_feed: DayFeed,
}

/// One day's replay product.
struct DayOutput {
    block: PhaseABlock,
    kpi: KpiTable,
    stats: DayStats,
}

#[derive(Default)]
struct DayStats {
    events: FeedStats,
    kpi: FeedStats,
    malformed_at: Vec<MalformedAt>,
    out_of_order: u64,
    unknown_user: u64,
    filtered: u64,
    ingested: u64,
    user_days: u64,
    cell_days: u64,
    bytes_streamed: u64,
    bytes_mapped: u64,
}

impl DayStats {
    /// Record a malformed-input position (same cap as the report: the
    /// merge step re-caps across days, so per-day lists never need
    /// more entries than the report can keep). The file name is
    /// interned — each hit bumps a refcount instead of cloning.
    fn note_malformed(&mut self, file: &Arc<str>, line: u64) {
        if self.malformed_at.len() < MAX_MALFORMED_LOCATIONS {
            self.malformed_at.push(MalformedAt { file: Arc::clone(file), line });
        }
    }
}

fn add_stats(a: &mut FeedStats, b: FeedStats) {
    a.lines_read += b.lines_read;
    a.parsed += b.parsed;
    a.blank += b.blank;
    a.malformed += b.malformed;
}

/// Wrap a damaged-segment cause in the feed error chain.
fn segment_feed_error(file: String, cause: SegmentError) -> ReplayError {
    ReplayError::Feed { file, source: FeedError::Segment(cause) }
}

/// How many records a damaged segment claims — the amount its
/// `lines_read`/`malformed` accounting is charged under skip-and-count.
/// A segment too damaged to even peek a header counts as one bad unit,
/// as does one claiming zero records (the damage itself is the unit).
fn claimed_records(bytes: &[u8]) -> u64 {
    columnar::peek_records(bytes).map_or(1, |n| n.max(1)) as u64
}

/// Replay exported feeds into a [`StudyDataset`].
///
/// Builds the world for `config` (feeds carry no ground truth — the
/// subscriber reference table, cell geography and case curve come from
/// the same deterministic world build the exporter used), then streams
/// the feeds through the pipeline described at module level.
pub fn replay_study(
    config: &ScenarioConfig,
    dir: &Path,
    rcfg: &ReplayConfig,
) -> Result<(StudyDataset, ReplayReport), ReplayError> {
    let world = World::build(config);
    replay_study_in(config, &world, dir, rcfg)
}

/// [`replay_study`] over a pre-built world.
pub fn replay_study_in(
    config: &ScenarioConfig,
    world: &World,
    dir: &Path,
    rcfg: &ReplayConfig,
) -> Result<(StudyDataset, ReplayReport), ReplayError> {
    let mut exec = Executor::new(rcfg.threads);
    replay_study_with(config, world, dir, rcfg, &mut exec)
}

/// [`replay_study_in`] on a caller-supplied [`Executor`], so the
/// replay's stage metrics land in the caller's [`RunMetrics`] tree.
pub fn replay_study_with(
    config: &ScenarioConfig,
    world: &World,
    dir: &Path,
    rcfg: &ReplayConfig,
    exec: &mut Executor,
) -> Result<(StudyDataset, ReplayReport), ReplayError> {
    if !config.use_event_reconstruction {
        return Err(ReplayError::Manifest(
            "replay requires use_event_reconstruction".to_string(),
        ));
    }
    let manifest_text = fs::read_to_string(dir.join(MANIFEST_FILE))?;
    let manifest: FeedManifest = serde_json::from_str(&manifest_text)
        .map_err(|e| ReplayError::Manifest(e.to_string()))?;
    if manifest.seed != config.seed {
        return Err(ReplayError::Manifest(format!(
            "feed seed {} != scenario seed {}",
            manifest.seed, config.seed
        )));
    }
    if manifest.num_days as usize != world.num_days()
        || manifest.num_cells as usize != world.topo.cells().len()
        || manifest.num_subscribers as usize != world.population.len()
    {
        return Err(ReplayError::Manifest(format!(
            "feed universe ({} days, {} cells, {} subscribers) does not \
             match the scenario's ({}, {}, {})",
            manifest.num_days,
            manifest.num_cells,
            manifest.num_subscribers,
            world.num_days(),
            world.topo.cells().len(),
            world.population.len()
        )));
    }

    let capacity = if rcfg.channel_capacity == 0 {
        exec.threads() * 2
    } else {
        rcfg.channel_capacity
    };
    let bounds = FeedBounds {
        num_days: manifest.num_days,
        num_cells: manifest.num_cells,
    };
    let roster = run::build_roster(config, world);
    let mut anon_index: HashMap<u64, u32> =
        HashMap::with_capacity(world.population.len());
    for (idx, sub) in world.population.subscribers().iter().enumerate() {
        anon_index.insert(world.anonymizer.anon_id(sub.id.0), idx as u32);
    }
    let feb_set = run::february_set(world);
    let num_days = world.num_days();

    let mut report = ReplayReport::default();
    let mut read_err: Option<ReplayError> = None;

    // Reader stage: the pipeline's producer streams the per-day feed
    // files through the bounded channel in day order, so the pipeline's
    // task index *is* the day and its result order is day order.
    let mut days = world.clock.days();
    let policy = rcfg.policy;
    let options = rcfg.options;
    let roster_ref = &roster;
    let anon_ref = &anon_index;
    let feb_ref = &feb_set;
    let (outputs, worker_metrics) = exec.run_pipeline_with(
        "replay_days",
        capacity,
        || {
            if read_err.is_some() {
                return None;
            }
            let day = days.next()?;
            let (events_name, events_feed) = match read_day_feed(
                dir,
                events_bin_name(day),
                events_file_name(day),
                options,
            ) {
                Ok(v) => v,
                Err(e) => {
                    read_err = Some(ReplayError::Io(e));
                    return None;
                }
            };
            let (kpi_name, kpi_feed) =
                match read_day_feed(dir, kpi_bin_name(day), kpi_file_name(day), options) {
                    Ok(v) => v,
                    Err(e) => {
                        read_err = Some(ReplayError::Io(e));
                        return None;
                    }
                };
            report.files_read += 2;
            report.bytes_read += (events_feed.len() + kpi_feed.len()) as u64;
            Some(DayTask { day, events_name, events_feed, kpi_name, kpi_feed })
        },
        ReplayScratch::default,
        |scratch, _, task, ctx| {
            let r = replay_day(
                world, roster_ref, anon_ref, feb_ref, policy, bounds, task, scratch,
            );
            if let Ok(out) = &r {
                ctx.add_items(out.stats.ingested);
                ctx.count("bytes_streamed", out.stats.bytes_streamed);
                ctx.count("bytes_mapped", out.stats.bytes_mapped);
            }
            r
        },
    )?;

    if let Some(e) = read_err {
        return Err(e);
    }

    report.workers = worker_metrics
        .iter()
        .map(|w| WorkerStats {
            days_processed: w.tasks,
            events_ingested: w.items,
            seconds: w.seconds,
            events_per_sec: if w.seconds > 0.0 {
                w.items as f64 / w.seconds
            } else {
                0.0
            },
        })
        .collect();

    if outputs.len() != num_days {
        return Err(ReplayError::Manifest(format!(
            "replayed {} of {num_days} days",
            outputs.len()
        )));
    }

    // Merge in day order; the earliest day's failure wins, so the
    // reported error does not depend on worker scheduling.
    let mut blocks = Vec::with_capacity(num_days);
    let mut kpi = KpiTable::new();
    for out in outputs {
        let out = out?;
        add_stats(&mut report.events, out.stats.events);
        add_stats(&mut report.kpi, out.stats.kpi);
        for loc in out.stats.malformed_at {
            if report.malformed_at.len() >= MAX_MALFORMED_LOCATIONS {
                break;
            }
            report.malformed_at.push(loc);
        }
        report.bytes_streamed += out.stats.bytes_streamed;
        report.bytes_mapped += out.stats.bytes_mapped;
        report.events_out_of_order += out.stats.out_of_order;
        report.events_unknown_user += out.stats.unknown_user;
        report.events_filtered += out.stats.filtered;
        report.events_ingested += out.stats.ingested;
        report.user_days += out.stats.user_days;
        report.cell_days += out.stats.cell_days;
        blocks.push(out.block);
        kpi.merge(out.kpi);
    }
    let phase_a = run::merge_phase_a(num_days, world.population.len(), blocks);
    let voice_daily =
        read_voice_feed(dir, manifest.num_days, rcfg.policy, options, &mut report)?;

    let dataset = run::assemble(config, world, phase_a, kpi, voice_daily)
        .expect("in-memory mask store cannot fail");
    Ok((dataset, report))
}

/// Per-worker scratch of the replay pipeline: the shared ingest arena
/// plus the day-level buffers (event stream, duplicate-run set, per-cell
/// KPI hours). One instance lives on each worker thread for the whole
/// replay — day after day reuses the same high-water capacity, so the
/// steady-state loop allocates nothing.
#[derive(Default)]
struct ReplayScratch {
    ingest: IngestScratch,
    events: Vec<SignalingEvent>,
    seen: HashSet<u64>,
    hours: Vec<HourlyKpiSample>,
    /// Binary-decode scratch (cell-id dictionary), reused per segment.
    dict: DecodeScratch,
    /// Decoded KPI records of the segment being replayed (binary path).
    kpi_records: Vec<KpiHourRecord>,
    /// One segment's decoded events, appended into `events` — decoders
    /// clear their output, so multi-segment days stage through this.
    seg_events: Vec<SignalingEvent>,
}

/// Replay one day's feeds into a per-day phase-A partial and KPI table.
#[allow(clippy::too_many_arguments)]
fn replay_day(
    world: &World,
    roster: &StudyRoster,
    anon_index: &HashMap<u64, u32>,
    feb_set: &[bool],
    policy: MalformedPolicy,
    bounds: FeedBounds,
    task: DayTask,
    scratch: &mut ReplayScratch,
) -> Result<DayOutput, ReplayError> {
    let DayTask { day, events_name, events_feed, kpi_name, kpi_feed } = task;
    let events_name: Arc<str> = events_name.into();
    let kpi_name: Arc<str> = kpi_name.into();
    let mut stats = DayStats::default();
    let num_subs = roster.members.len();

    // --- Event feed → phase-A partial ----------------------------------
    // Binary feeds hold one or more back-to-back segments; each decodes
    // into the day arena in turn, then the same bounds check the JSONL
    // reader applies per line runs over the whole day: the decoder
    // validates the *encoding*, the bounds validate the *domain*. The
    // headers' record counts are the binary analogue of `lines_read`,
    // so the accounting invariant still closes.
    let mut binary_events = false;
    match events_feed {
        DayFeed::Jsonl(text) => {
            let mut reader = EventReader::new(text.as_bytes())
                .with_policy(policy)
                .with_bounds(bounds);
            scratch.events.clear();
            for item in &mut reader {
                match item {
                    Ok(ev) => scratch.events.push(ev),
                    Err(source) => {
                        return Err(ReplayError::Feed {
                            file: events_name.to_string(),
                            source,
                        })
                    }
                }
            }
            stats.events = reader.stats();
            for &line in reader.malformed_lines() {
                stats.note_malformed(&events_name, line);
            }
        }
        // In-memory bytes and mapped pages share one walk: a
        // `SegmentView` hands out the same `&[u8]` segments an owned
        // buffer does, just borrowed from the page cache.
        feed @ (DayFeed::Binary(_) | DayFeed::Mapped(_)) => {
            binary_events = true;
            let bytes: &[u8] = match &feed {
                DayFeed::Binary(bytes) => bytes,
                DayFeed::Mapped(view) => {
                    stats.bytes_mapped += view.len() as u64;
                    view.bytes()
                }
                _ => unreachable!("outer match is binary or mapped"),
            };
            scratch.events.clear();
            let mut consumed = 0usize;
            for seg in columnar::split_segments(bytes) {
                match seg {
                    Ok(seg) => {
                        consumed += seg.len();
                        match columnar::decode_events_into(
                            seg,
                            &mut scratch.dict,
                            &mut scratch.seg_events,
                        ) {
                            Ok(header) => {
                                stats.events.lines_read += header.records as u64;
                                scratch.events.extend_from_slice(&scratch.seg_events);
                            }
                            Err(cause) => {
                                let claimed = claimed_records(seg);
                                stats.events.lines_read += claimed;
                                stats.events.malformed += claimed;
                                stats.note_malformed(&events_name, 0);
                                if policy == MalformedPolicy::FailFast {
                                    return Err(segment_feed_error(
                                        events_name.to_string(),
                                        cause,
                                    ));
                                }
                            }
                        }
                    }
                    Err(cause) => {
                        // Damaged envelope: nothing past this point in
                        // the file can be framed, so the rest of the
                        // feed is charged as one claim and the walk
                        // stops (the splitter fuses anyway).
                        let claimed = claimed_records(&bytes[consumed..]);
                        stats.events.lines_read += claimed;
                        stats.events.malformed += claimed;
                        stats.note_malformed(&events_name, 0);
                        if policy == MalformedPolicy::FailFast {
                            return Err(segment_feed_error(
                                events_name.to_string(),
                                cause,
                            ));
                        }
                        break;
                    }
                }
            }
        }
        DayFeed::Stream(file, _) => {
            binary_events = true;
            scratch.events.clear();
            let mut reader = columnar::SegmentBlockReader::new(file);
            loop {
                match reader.next_segment() {
                    Ok(Some(seg)) => match columnar::decode_events_into(
                        seg,
                        &mut scratch.dict,
                        &mut scratch.seg_events,
                    ) {
                        Ok(header) => {
                            stats.events.lines_read += header.records as u64;
                            scratch.events.extend_from_slice(&scratch.seg_events);
                        }
                        Err(cause) => {
                            let claimed = claimed_records(seg);
                            stats.events.lines_read += claimed;
                            stats.events.malformed += claimed;
                            stats.note_malformed(&events_name, 0);
                            if policy == MalformedPolicy::FailFast {
                                return Err(segment_feed_error(
                                    events_name.to_string(),
                                    cause,
                                ));
                            }
                        }
                    },
                    Ok(None) => break,
                    Err(SegmentStreamError::Io(e)) => return Err(ReplayError::Io(e)),
                    Err(SegmentStreamError::Format(cause)) => {
                        // The streamer cannot frame the rest of the
                        // file; without the bytes in hand there is no
                        // header claim to charge, so the damage itself
                        // is one bad unit.
                        stats.events.lines_read += 1;
                        stats.events.malformed += 1;
                        stats.note_malformed(&events_name, 0);
                        if policy == MalformedPolicy::FailFast {
                            return Err(segment_feed_error(
                                events_name.to_string(),
                                cause,
                            ));
                        }
                        break;
                    }
                }
            }
            stats.bytes_streamed += reader.bytes_read();
        }
    }
    if binary_events {
        let mut kept = 0usize;
        for i in 0..scratch.events.len() {
            let ev = scratch.events[i];
            match bounds.check(&ev) {
                Ok(()) => {
                    scratch.events[kept] = ev;
                    kept += 1;
                    stats.events.parsed += 1;
                }
                Err(violation) => {
                    stats.events.malformed += 1;
                    stats.note_malformed(&events_name, i as u64 + 1);
                    if policy == MalformedPolicy::FailFast {
                        return Err(ReplayError::Feed {
                            file: events_name.to_string(),
                            source: FeedError::Malformed {
                                line: i as u64 + 1,
                                reason: violation.to_string(),
                            },
                        });
                    }
                }
            }
        }
        scratch.events.truncate(kept);
    }

    let mut block = PhaseABlock::new(world.num_days(), vec![day], num_subs);
    let feb_night = feb_set[day as usize];

    // Segment into per-subscriber runs (the exporter writes one
    // contiguous run per subscriber, in subscriber order) and drive the
    // identical ingestion the in-memory phase A uses.
    let events = &scratch.events;
    let seen = &mut scratch.seen;
    seen.clear();
    let mut i = 0usize;
    while i < events.len() {
        let anon = events[i].anon_id;
        let mut j = i + 1;
        while j < events.len() && events[j].anon_id == anon {
            j += 1;
        }
        let run_events = &events[i..j];
        i = j;

        if !seen.insert(anon) {
            // The subscriber's run already ended; ingesting a second
            // run would double-count the user-day.
            stats.out_of_order += run_events.len() as u64;
            continue;
        }
        // Drop events that contradict the stream invariants the dwell
        // reconstruction relies on (wrong day, minute regression).
        let mut is_clean = true;
        let mut prev_minute = 0u16;
        for (k, ev) in run_events.iter().enumerate() {
            if ev.day != day || (k > 0 && ev.minute < prev_minute) {
                is_clean = false;
                break;
            }
            prev_minute = ev.minute;
        }
        let cleaned: Vec<SignalingEvent>;
        let run_slice: &[SignalingEvent] = if is_clean {
            run_events
        } else {
            let mut v = Vec::with_capacity(run_events.len());
            let mut prev = 0u16;
            for ev in run_events {
                if ev.day != day || (!v.is_empty() && ev.minute < prev) {
                    stats.out_of_order += 1;
                    continue;
                }
                prev = ev.minute;
                v.push(*ev);
            }
            cleaned = v;
            &cleaned
        };
        if run_slice.is_empty() {
            continue;
        }
        let Some(&sub_idx) = anon_index.get(&anon) else {
            stats.unknown_user += run_slice.len() as u64;
            continue;
        };
        let sub_idx = sub_idx as usize;
        let Some((_, groups)) = roster.members[sub_idx] else {
            stats.filtered += run_slice.len() as u64;
            continue;
        };
        stats.ingested += run_slice.len() as u64;
        stats.user_days += 1;

        scratch.ingest.segments.clear();
        reconstruct_dwell_into(run_slice, &mut scratch.ingest.dwell_records);
        for rec in &scratch.ingest.dwell_records {
            let cell = world.topo.cell(rec.cell);
            scratch.ingest.segments.push(SiteDwell {
                bin: rec.bin,
                site: cell.site.0,
                minutes: rec.minutes,
                rat: cell.rat,
            });
        }
        run::ingest_user_day(
            world, &mut block, &mut scratch.ingest, sub_idx, num_subs, 0, day,
            feb_night, anon, &groups,
        );
    }

    // --- KPI feed → per-day KPI table ----------------------------------
    // One reused hours buffer tracks the current cell's samples (the
    // exporter writes each cell's 24 lines consecutively); rejection
    // causes stay unformatted unless FailFast surfaces them. Both
    // formats run the identical semantic checks and grouping — the
    // text path adds only JSON parsing in front.
    enum KpiReject {
        Parse(serde_json::Error),
        DayOutOfRange(u16),
        CellOutOfRange(u32),
        WrongFile(u16),
    }
    let check_kpi = |r: &KpiHourRecord| -> Result<(), KpiReject> {
        if r.day >= bounds.num_days {
            Err(KpiReject::DayOutOfRange(r.day))
        } else if r.cell >= bounds.num_cells {
            Err(KpiReject::CellOutOfRange(r.cell))
        } else if r.day != day {
            Err(KpiReject::WrongFile(r.day))
        } else {
            Ok(())
        }
    };
    let reject_reason = |reject: &KpiReject| -> String {
        match reject {
            KpiReject::Parse(e) => e.to_string(),
            KpiReject::DayOutOfRange(d) => {
                format!("day {d} out of range (study has {} days)", bounds.num_days)
            }
            KpiReject::CellOutOfRange(c) => {
                format!("cell {c} out of range (topology has {} cells)", bounds.num_cells)
            }
            KpiReject::WrongFile(d) => {
                format!("day {d} in the feed file of day {day}")
            }
        }
    };
    let mut kpi = KpiTable::new();
    let mut current_cell: Option<u32> = None;
    let hours = &mut scratch.hours;
    hours.clear();
    let flush = |current_cell: &mut Option<u32>,
                 hours: &mut Vec<HourlyKpiSample>,
                 kpi: &mut KpiTable| {
        if let Some(cell) = current_cell.take() {
            if let Some(rec) = CellDayMetrics::from_hourly(cell, day, hours) {
                kpi.push(rec);
            }
            hours.clear();
        }
    };
    let fold = |r: &KpiHourRecord,
                current_cell: &mut Option<u32>,
                hours: &mut Vec<HourlyKpiSample>,
                kpi: &mut KpiTable| {
        match *current_cell {
            Some(cell) if cell == r.cell => hours.push(r.sample),
            _ => {
                flush(current_cell, hours, kpi);
                *current_cell = Some(r.cell);
                hours.push(r.sample);
            }
        }
    };
    // One record counter runs across segments, so malformed positions
    // stay 1-based over the whole feed regardless of how the encoder
    // split it (a single-segment file numbers exactly as before).
    let mut rec_no = 0u64;
    macro_rules! fold_kpi_records {
        () => {
            for idx in 0..scratch.kpi_records.len() {
                let r = scratch.kpi_records[idx];
                rec_no += 1;
                match check_kpi(&r) {
                    Ok(()) => {
                        stats.kpi.parsed += 1;
                        fold(&r, &mut current_cell, &mut *hours, &mut kpi);
                    }
                    Err(reject) => {
                        stats.kpi.malformed += 1;
                        stats.note_malformed(&kpi_name, rec_no);
                        if policy == MalformedPolicy::FailFast {
                            return Err(ReplayError::Feed {
                                file: kpi_name.to_string(),
                                source: FeedError::Malformed {
                                    line: rec_no,
                                    reason: reject_reason(&reject),
                                },
                            });
                        }
                    }
                }
            }
        };
    }
    match kpi_feed {
        DayFeed::Jsonl(text) => {
            for (idx, line) in text.lines().enumerate() {
                stats.kpi.lines_read += 1;
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    stats.kpi.blank += 1;
                    continue;
                }
                let checked = serde_json::from_str::<KpiHourRecord>(trimmed)
                    .map_err(KpiReject::Parse)
                    .and_then(|r| match check_kpi(&r) {
                        Ok(()) => Ok(r),
                        Err(reject) => Err(reject),
                    });
                match checked {
                    Ok(r) => {
                        stats.kpi.parsed += 1;
                        fold(&r, &mut current_cell, &mut *hours, &mut kpi);
                    }
                    Err(reject) => {
                        stats.kpi.malformed += 1;
                        stats.note_malformed(&kpi_name, idx as u64 + 1);
                        if policy == MalformedPolicy::FailFast {
                            return Err(ReplayError::Feed {
                                file: kpi_name.to_string(),
                                source: FeedError::Malformed {
                                    line: idx as u64 + 1,
                                    reason: reject_reason(&reject),
                                },
                            });
                        }
                    }
                }
            }
        }
        feed @ (DayFeed::Binary(_) | DayFeed::Mapped(_)) => {
            let bytes: &[u8] = match &feed {
                DayFeed::Binary(bytes) => bytes,
                DayFeed::Mapped(view) => {
                    stats.bytes_mapped += view.len() as u64;
                    view.bytes()
                }
                _ => unreachable!("outer match is binary or mapped"),
            };
            let mut consumed = 0usize;
            for seg in columnar::split_segments(bytes) {
                match seg {
                    Ok(seg) => {
                        consumed += seg.len();
                        match feedfmt::decode_kpi_into(
                            seg,
                            &mut scratch.dict,
                            &mut scratch.kpi_records,
                        ) {
                            Ok(header) => {
                                stats.kpi.lines_read += header.records as u64;
                                fold_kpi_records!();
                            }
                            Err(cause) => {
                                let claimed = claimed_records(seg);
                                stats.kpi.lines_read += claimed;
                                stats.kpi.malformed += claimed;
                                stats.note_malformed(&kpi_name, 0);
                                if policy == MalformedPolicy::FailFast {
                                    return Err(segment_feed_error(
                                        kpi_name.to_string(),
                                        cause,
                                    ));
                                }
                            }
                        }
                    }
                    Err(cause) => {
                        let claimed = claimed_records(&bytes[consumed..]);
                        stats.kpi.lines_read += claimed;
                        stats.kpi.malformed += claimed;
                        stats.note_malformed(&kpi_name, 0);
                        if policy == MalformedPolicy::FailFast {
                            return Err(segment_feed_error(kpi_name.to_string(), cause));
                        }
                        break;
                    }
                }
            }
        }
        DayFeed::Stream(file, _) => {
            let mut reader = columnar::SegmentBlockReader::new(file);
            loop {
                match reader.next_segment() {
                    Ok(Some(seg)) => match feedfmt::decode_kpi_into(
                        seg,
                        &mut scratch.dict,
                        &mut scratch.kpi_records,
                    ) {
                        Ok(header) => {
                            stats.kpi.lines_read += header.records as u64;
                            fold_kpi_records!();
                        }
                        Err(cause) => {
                            let claimed = claimed_records(seg);
                            stats.kpi.lines_read += claimed;
                            stats.kpi.malformed += claimed;
                            stats.note_malformed(&kpi_name, 0);
                            if policy == MalformedPolicy::FailFast {
                                return Err(segment_feed_error(
                                    kpi_name.to_string(),
                                    cause,
                                ));
                            }
                        }
                    },
                    Ok(None) => break,
                    Err(SegmentStreamError::Io(e)) => return Err(ReplayError::Io(e)),
                    Err(SegmentStreamError::Format(cause)) => {
                        stats.kpi.lines_read += 1;
                        stats.kpi.malformed += 1;
                        stats.note_malformed(&kpi_name, 0);
                        if policy == MalformedPolicy::FailFast {
                            return Err(segment_feed_error(kpi_name.to_string(), cause));
                        }
                        break;
                    }
                }
            }
            stats.bytes_streamed += reader.bytes_read();
        }
    }
    flush(&mut current_cell, &mut *hours, &mut kpi);
    stats.cell_days = kpi.len() as u64;

    Ok(DayOutput { block, kpi, stats })
}

/// Read the daily voice feed; every study day must be present after
/// policy handling.
fn read_voice_feed(
    dir: &Path,
    num_days: u16,
    policy: MalformedPolicy,
    options: ReplayOptions,
    report: &mut ReplayReport,
) -> Result<Vec<f64>, ReplayError> {
    let bin_path = dir.join(VOICE_BIN_FILE);
    let mut voice: Vec<Option<f64>> = vec![None; num_days as usize];

    // Shared record fold: bounds-check one decoded segment's records
    // under the policy, with a feed-wide running record number.
    let mut rec_no = 0u64;
    macro_rules! fold_voice_records {
        ($records:expr, $file_name:expr) => {
            for r in $records.iter() {
                rec_no += 1;
                if r.day >= num_days {
                    report.voice.malformed += 1;
                    report.note_malformed($file_name, rec_no);
                    if policy == MalformedPolicy::FailFast {
                        return Err(ReplayError::Feed {
                            file: $file_name.to_string(),
                            source: FeedError::Malformed {
                                line: rec_no,
                                reason: format!(
                                    "day {} out of range (study has {num_days} days)",
                                    r.day
                                ),
                            },
                        });
                    }
                    continue;
                }
                report.voice.parsed += 1;
                voice[r.day as usize] = Some(r.off_net_voice_mb);
            }
        };
    }

    // One in-memory segment walk serves both mapped views and binary
    // bytes sniffed under the JSONL name: frame, decode, and account
    // damage under the policy.
    macro_rules! walk_voice_segments {
        ($bytes:expr, $file_name:expr) => {{
            let bytes: &[u8] = $bytes;
            let mut records = Vec::new();
            let mut consumed = 0usize;
            for seg in columnar::split_segments(bytes) {
                match seg {
                    Ok(seg) => {
                        consumed += seg.len();
                        match feedfmt::decode_voice_into(seg, &mut records) {
                            Ok(header) => {
                                report.voice.lines_read += header.records as u64;
                                fold_voice_records!(records, $file_name);
                            }
                            Err(cause) => {
                                let claimed = claimed_records(seg);
                                report.voice.lines_read += claimed;
                                report.voice.malformed += claimed;
                                report.note_malformed($file_name, 0);
                                if policy == MalformedPolicy::FailFast {
                                    return Err(segment_feed_error(
                                        $file_name.to_string(),
                                        cause,
                                    ));
                                }
                            }
                        }
                    }
                    Err(cause) => {
                        let claimed = claimed_records(&bytes[consumed..]);
                        report.voice.lines_read += claimed;
                        report.voice.malformed += claimed;
                        report.note_malformed($file_name, 0);
                        if policy == MalformedPolicy::FailFast {
                            return Err(segment_feed_error(
                                $file_name.to_string(),
                                cause,
                            ));
                        }
                        break;
                    }
                }
            }
        }};
    }

    if bin_path.exists() && options.mmap_segments {
        // Zero-copy path: map the file and walk the mapped pages.
        let file_name: Arc<str> = Arc::from(VOICE_BIN_FILE);
        let view = SegmentView::open(&bin_path)?;
        report.files_read += 1;
        report.bytes_read += view.len() as u64;
        report.bytes_mapped += view.len() as u64;
        walk_voice_segments!(view.bytes(), &file_name);
        return finish_voice(voice);
    }

    if bin_path.exists() {
        // Stream the binary feed segment by segment, never holding the
        // whole file.
        let file_name: Arc<str> = Arc::from(VOICE_BIN_FILE);
        let file = fs::File::open(&bin_path)?;
        report.files_read += 1;
        report.bytes_read += file.metadata()?.len();
        let mut records = Vec::new();
        let mut reader = columnar::SegmentBlockReader::new(file);
        loop {
            match reader.next_segment() {
                Ok(Some(seg)) => match feedfmt::decode_voice_into(seg, &mut records) {
                    Ok(header) => {
                        report.voice.lines_read += header.records as u64;
                        fold_voice_records!(records, &file_name);
                    }
                    Err(cause) => {
                        let claimed = claimed_records(seg);
                        report.voice.lines_read += claimed;
                        report.voice.malformed += claimed;
                        report.note_malformed(&file_name, 0);
                        if policy == MalformedPolicy::FailFast {
                            return Err(segment_feed_error(file_name.to_string(), cause));
                        }
                    }
                },
                Ok(None) => break,
                Err(SegmentStreamError::Io(e)) => return Err(ReplayError::Io(e)),
                Err(SegmentStreamError::Format(cause)) => {
                    report.voice.lines_read += 1;
                    report.voice.malformed += 1;
                    report.note_malformed(&file_name, 0);
                    if policy == MalformedPolicy::FailFast {
                        return Err(segment_feed_error(file_name.to_string(), cause));
                    }
                    break;
                }
            }
        }
        report.bytes_streamed += reader.bytes_read();
        return finish_voice(voice);
    }

    let file_name: Arc<str> = Arc::from(VOICE_FILE);
    let bytes = fs::read(dir.join(VOICE_FILE))?;
    report.files_read += 1;
    report.bytes_read += bytes.len() as u64;

    if columnar::looks_like_segment(&bytes) {
        // A binary feed stored under the JSONL name: walk its segments
        // in memory.
        walk_voice_segments!(&bytes, &file_name);
        return finish_voice(voice);
    }

    let text = String::from_utf8(bytes).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{file_name}: not UTF-8 and not a binary segment: {e}"),
        )
    })?;
    for (idx, line) in text.lines().enumerate() {
        report.voice.lines_read += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            report.voice.blank += 1;
            continue;
        }
        // Rejection causes stay unformatted; only FailFast renders them.
        enum VoiceReject {
            Parse(serde_json::Error),
            DayOutOfRange(u16),
        }
        let checked = serde_json::from_str::<VoiceDayRecord>(trimmed)
            .map_err(VoiceReject::Parse)
            .and_then(|r| {
                if r.day >= num_days {
                    Err(VoiceReject::DayOutOfRange(r.day))
                } else {
                    Ok(r)
                }
            });
        match checked {
            Ok(r) => {
                report.voice.parsed += 1;
                voice[r.day as usize] = Some(r.off_net_voice_mb);
            }
            Err(reject) => {
                report.voice.malformed += 1;
                report.note_malformed(&file_name, idx as u64 + 1);
                if policy == MalformedPolicy::FailFast {
                    let reason = match reject {
                        VoiceReject::Parse(e) => e.to_string(),
                        VoiceReject::DayOutOfRange(d) => {
                            format!("day {d} out of range (study has {num_days} days)")
                        }
                    };
                    return Err(ReplayError::Feed {
                        file: VOICE_FILE.to_string(),
                        source: FeedError::Malformed {
                            line: idx as u64 + 1,
                            reason,
                        },
                    });
                }
            }
        }
    }
    finish_voice(voice)
}

/// Every study day must be present after policy handling.
fn finish_voice(voice: Vec<Option<f64>>) -> Result<Vec<f64>, ReplayError> {
    voice
        .into_iter()
        .enumerate()
        .map(|(d, v)| {
            v.ok_or_else(|| {
                ReplayError::Manifest(format!("voice feed missing day {d}"))
            })
        })
        .collect()
}

/// Compare two datasets field by field; `Some(field)` names the first
/// divergence, `None` means bit-for-bit equal.
pub fn dataset_divergence(a: &StudyDataset, b: &StudyDataset) -> Option<&'static str> {
    macro_rules! check {
        ($field:ident) => {
            if a.$field != b.$field {
                return Some(stringify!($field));
            }
        };
    }
    check!(clock);
    check!(users);
    check!(gyration);
    check!(entropy);
    check!(gyration_dist);
    check!(gyration_by_bin);
    check!(kpi);
    check!(cell_geo);
    check!(matrix);
    check!(home_validation);
    check!(interconnect_daily);
    check!(national_voice_daily);
    check!(cases);
    check!(rat_dwell_share);
    check!(study_population);
    check!(homes_detected);
    check!(declaration);
    check!(full_restriction);
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kpi_record_roundtrips_exact_f64() {
        let rec = KpiHourRecord {
            cell: 812,
            day: 37,
            hour: 23,
            sample: HourlyKpiSample {
                dl_volume_mb: 0.1 + 0.2, // classic non-representable sum
                ul_volume_mb: 1.0 / 3.0,
                active_dl_users: 2.5e-17,
                connected_users: 123456.789,
                user_dl_throughput_mbps: f64::MIN_POSITIVE,
                tti_utilization: 0.999999999999999,
                voice_volume_mb: 7.0,
                voice_users: 0.0,
                voice_ul_loss: 3.141592653589793,
                voice_dl_loss: 1e300,
            },
        };
        let line = serde_json::to_string(&rec).unwrap();
        let back: KpiHourRecord = serde_json::from_str(&line).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn voice_record_roundtrips_exact_f64() {
        let rec = VoiceDayRecord { day: 99, off_net_voice_mb: 0.1 + 0.7 };
        let line = serde_json::to_string(&rec).unwrap();
        let back: VoiceDayRecord = serde_json::from_str(&line).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn report_balances_hold_for_defaults() {
        let report = ReplayReport::default();
        assert!(report.lines_balance());
        assert!(report.events_balance());
        // Display never panics.
        let _ = report.to_string();
    }

    #[test]
    fn feed_file_names_are_zero_padded() {
        assert_eq!(events_file_name(3), "events_d003.jsonl");
        assert_eq!(kpi_file_name(99), "kpi_d099.jsonl");
    }
}
