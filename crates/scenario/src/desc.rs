//! Declarative scenario descriptions.
//!
//! A scenario file is a TOML document (read by [`crate::tomlite`])
//! that names a scenario, declares its [`PhaseSchedule`] — phases,
//! news windows, voice-surge segments, regional windows, weekend
//! boosts, relocation waves, throttling — and optionally a sparse
//! [`ScenarioDelta`] of config overrides. [`ScenarioDoc::apply`] turns
//! a base [`ScenarioConfig`] (which fixes seeds and scale) into the
//! scenario's runnable configuration.
//!
//! Parsing denies unknown fields: a typo'd key is a typed
//! [`ScenarioError::UnknownField`] naming the table and the key, not a
//! silently ignored setting. Validation goes through
//! [`PhaseSchedule::validate`], so overlapping phases, out-of-window
//! dates and out-of-range values fail with the schedule's own typed
//! errors.

use crate::config::ScenarioConfig;
use crate::tomlite::{self, Table, TomlValue};
use crate::variants::ScenarioDelta;
use cellscope_epidemic::{
    IntensityProfile, NewsWindow, Phase, PhaseSchedule, RegionalGroup, RegionalWindow,
    RelocationWave, ScheduleError, SurgeSegment, SurgeShape, WeekendBoost,
    LONDON_DESTINATION_WEIGHTS,
};
use cellscope_geo::County;
use cellscope_time::{Date, STUDY_END, STUDY_START};
use std::fmt;
use std::path::{Path, PathBuf};

/// Days before the study window a scheduled date may legitimately sit
/// (lead-in context such as the first-cases phase); anything earlier is
/// rejected as a typo'd date.
const LEAD_IN_DAYS: i64 = 90;

/// What can go wrong loading a scenario file.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The TOML text itself failed to parse.
    Toml {
        /// 1-based source line.
        line: usize,
        /// Reader message.
        msg: String,
    },
    /// A table carries a key the schema does not know — almost always
    /// a typo'd field name.
    UnknownField {
        /// The table the key appeared in.
        table: String,
        /// The offending key.
        key: String,
    },
    /// A required key is absent.
    MissingField {
        /// The table the key was expected in.
        table: String,
        /// The missing key.
        key: String,
    },
    /// A key holds a value of the wrong shape.
    BadType {
        /// The table the key appeared in.
        table: String,
        /// The key.
        key: String,
        /// What the schema wanted there.
        expected: String,
    },
    /// A county name no county matches.
    UnknownCounty {
        /// The unmatched name.
        value: String,
    },
    /// Mutually exclusive keys appeared together (or neither did).
    ConflictingFields {
        /// The table.
        table: String,
        /// Description of the exclusive set.
        detail: String,
    },
    /// The assembled schedule failed [`PhaseSchedule::validate`].
    Schedule(ScheduleError),
    /// Reading the file failed.
    Io(String),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Toml { line, msg } => write!(f, "toml line {line}: {msg}"),
            ScenarioError::UnknownField { table, key } => {
                write!(f, "unknown field `{key}` in `{table}`")
            }
            ScenarioError::MissingField { table, key } => {
                write!(f, "missing field `{key}` in `{table}`")
            }
            ScenarioError::BadType { table, key, expected } => {
                write!(f, "field `{key}` in `{table}` must be {expected}")
            }
            ScenarioError::UnknownCounty { value } => {
                write!(f, "unknown county `{value}`")
            }
            ScenarioError::ConflictingFields { table, detail } => {
                write!(f, "conflicting fields in `{table}`: {detail}")
            }
            ScenarioError::Schedule(e) => write!(f, "invalid schedule: {e}"),
            ScenarioError::Io(e) => write!(f, "reading scenario file: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<ScheduleError> for ScenarioError {
    fn from(e: ScheduleError) -> ScenarioError {
        ScenarioError::Schedule(e)
    }
}

/// A parsed scenario file.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioDoc {
    /// Scenario name (used for output directories and `--scenario`).
    pub name: String,
    /// One-line human description.
    pub description: String,
    /// Study-window start override.
    pub study_start: Option<Date>,
    /// Study-window end override.
    pub study_end: Option<Date>,
    /// The declared phase schedule.
    pub schedule: PhaseSchedule,
    /// Sparse config overrides from the `[overrides]` table (the
    /// `schedule` slot stays `None` here; [`ScenarioDoc::delta`] fills
    /// it from the declared schedule).
    pub overrides: ScenarioDelta,
}

impl ScenarioDoc {
    /// Parse a scenario document from TOML text.
    pub fn parse(text: &str) -> Result<ScenarioDoc, ScenarioError> {
        let root = tomlite::parse(text)
            .map_err(|e| ScenarioError::Toml { line: e.line, msg: e.msg })?;
        let scope = Fields::new("scenario", &root);
        scope.deny_unknown(&[
            "name",
            "description",
            "study-start",
            "study-end",
            "phase",
            "news",
            "voice-surge",
            "regional",
            "weekend-boost",
            "relocation",
            "traffic",
            "overrides",
        ])?;

        let mut schedule = PhaseSchedule {
            phases: Vec::new(),
            news_windows: Vec::new(),
            voice_segments: Vec::new(),
            regional_windows: Vec::new(),
            weekend_boosts: Vec::new(),
            relocation_waves: Vec::new(),
            throttle_from: None,
        };
        for (i, t) in scope.tables("phase")? {
            schedule.phases.push(parse_phase(&Fields::new(&format!("phase[{i}]"), t))?);
        }
        for (i, t) in scope.tables("news")? {
            schedule
                .news_windows
                .push(parse_news(&Fields::new(&format!("news[{i}]"), t))?);
        }
        for (i, t) in scope.tables("voice-surge")? {
            schedule
                .voice_segments
                .push(parse_surge(&Fields::new(&format!("voice-surge[{i}]"), t))?);
        }
        for (i, t) in scope.tables("regional")? {
            schedule
                .regional_windows
                .push(parse_regional(&Fields::new(&format!("regional[{i}]"), t))?);
        }
        for (i, t) in scope.tables("weekend-boost")? {
            schedule
                .weekend_boosts
                .push(parse_weekend_boost(&Fields::new(&format!("weekend-boost[{i}]"), t))?);
        }
        for (i, t) in scope.tables("relocation")? {
            schedule
                .relocation_waves
                .push(parse_relocation(&Fields::new(&format!("relocation[{i}]"), t))?);
        }
        if let Some(t) = scope.opt_table("traffic")? {
            let traffic = Fields::new("traffic", t);
            traffic.deny_unknown(&["throttle-from"])?;
            schedule.throttle_from = traffic.opt_date("throttle-from")?;
        }
        let overrides = match scope.opt_table("overrides")? {
            Some(t) => parse_overrides(&Fields::new("overrides", t))?,
            None => ScenarioDelta::default(),
        };

        Ok(ScenarioDoc {
            name: scope.req_str("name")?,
            description: scope.req_str("description")?,
            study_start: scope.opt_date("study-start")?,
            study_end: scope.opt_date("study-end")?,
            schedule,
            overrides,
        })
    }

    /// Read and parse a scenario file.
    pub fn load(path: &Path) -> Result<ScenarioDoc, ScenarioError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ScenarioError::Io(format!("{}: {e}", path.display())))?;
        ScenarioDoc::parse(&text)
    }

    /// The study window the scenario runs over (file override, else
    /// the paper's window).
    pub fn window(&self) -> (Date, Date) {
        (
            self.study_start.unwrap_or(STUDY_START),
            self.study_end.unwrap_or(STUDY_END),
        )
    }

    /// Validate the declared schedule against the scenario's study
    /// window (with a [`LEAD_IN_DAYS`] grace before it: the UK arc
    /// anchors its first phase on the Jan 31 first cases, a month
    /// before the Feb 1 window).
    pub fn validate(&self) -> Result<(), ScenarioError> {
        let (start, end) = self.window();
        if end < start {
            return Err(ScenarioError::Schedule(ScheduleError::EmptyRange {
                what: "study window".into(),
            }));
        }
        self.schedule.validate(start.add_days(-LEAD_IN_DAYS), end)?;
        Ok(())
    }

    /// The scenario as a [`ScenarioDelta`]: the declared schedule plus
    /// the `[overrides]` knobs — the same delta shape the canonical
    /// ablation arms in [`crate::variants`] use.
    pub fn delta(&self) -> ScenarioDelta {
        ScenarioDelta {
            schedule: Some(self.schedule.clone()),
            ..self.overrides.clone()
        }
    }

    /// Apply the scenario to a base configuration (which fixes seeds
    /// and scale): delta overrides plus the study window.
    pub fn apply(&self, base: &ScenarioConfig) -> ScenarioConfig {
        let mut cfg = self.delta().apply(base);
        if let Some(start) = self.study_start {
            cfg.study_start = start;
        }
        if let Some(end) = self.study_end {
            cfg.study_end = end;
        }
        cfg
    }
}

/// List the `.toml` scenario files of a directory, sorted by file name.
pub fn scenario_files(dir: &Path) -> Result<Vec<PathBuf>, ScenarioError> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| ScenarioError::Io(format!("{}: {e}", dir.display())))?;
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "toml"))
        .collect();
    files.sort();
    Ok(files)
}

// ---------------------------------------------------------------------
// Field access with deny-unknown-fields
// ---------------------------------------------------------------------

/// A view over one table with typed, error-reporting accessors.
struct Fields<'a> {
    name: String,
    table: &'a Table,
}

impl<'a> Fields<'a> {
    fn new(name: &str, table: &'a Table) -> Fields<'a> {
        Fields { name: name.to_string(), table }
    }

    fn get(&self, key: &str) -> Option<&'a TomlValue> {
        self.table.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn deny_unknown(&self, allowed: &[&str]) -> Result<(), ScenarioError> {
        for (k, _) in self.table {
            if !allowed.contains(&k.as_str()) {
                return Err(ScenarioError::UnknownField {
                    table: self.name.clone(),
                    key: k.clone(),
                });
            }
        }
        Ok(())
    }

    fn missing(&self, key: &str) -> ScenarioError {
        ScenarioError::MissingField { table: self.name.clone(), key: key.to_string() }
    }

    fn bad(&self, key: &str, expected: &str) -> ScenarioError {
        ScenarioError::BadType {
            table: self.name.clone(),
            key: key.to_string(),
            expected: expected.to_string(),
        }
    }

    fn req_str(&self, key: &str) -> Result<String, ScenarioError> {
        match self.get(key) {
            Some(TomlValue::Str(s)) => Ok(s.clone()),
            Some(_) => Err(self.bad(key, "a string")),
            None => Err(self.missing(key)),
        }
    }

    fn req_date(&self, key: &str) -> Result<Date, ScenarioError> {
        self.opt_date(key)?.ok_or_else(|| self.missing(key))
    }

    fn opt_date(&self, key: &str) -> Result<Option<Date>, ScenarioError> {
        match self.get(key) {
            Some(TomlValue::Date(d)) => Ok(Some(*d)),
            Some(_) => Err(self.bad(key, "a YYYY-MM-DD date")),
            None => Ok(None),
        }
    }

    fn req_f64(&self, key: &str) -> Result<f64, ScenarioError> {
        self.opt_f64(key)?.ok_or_else(|| self.missing(key))
    }

    fn opt_f64(&self, key: &str) -> Result<Option<f64>, ScenarioError> {
        match self.get(key) {
            Some(TomlValue::Float(f)) => Ok(Some(*f)),
            Some(TomlValue::Int(i)) => Ok(Some(*i as f64)),
            Some(_) => Err(self.bad(key, "a number")),
            None => Ok(None),
        }
    }

    fn req_i64(&self, key: &str) -> Result<i64, ScenarioError> {
        match self.get(key) {
            Some(TomlValue::Int(i)) => Ok(*i),
            Some(_) => Err(self.bad(key, "an integer")),
            None => Err(self.missing(key)),
        }
    }

    fn opt_i64(&self, key: &str) -> Result<Option<i64>, ScenarioError> {
        match self.get(key) {
            Some(TomlValue::Int(i)) => Ok(Some(*i)),
            Some(_) => Err(self.bad(key, "an integer")),
            None => Ok(None),
        }
    }

    fn opt_bool(&self, key: &str) -> Result<Option<bool>, ScenarioError> {
        match self.get(key) {
            Some(TomlValue::Bool(b)) => Ok(Some(*b)),
            Some(_) => Err(self.bad(key, "a boolean")),
            None => Ok(None),
        }
    }

    fn req_county(&self, key: &str) -> Result<County, ScenarioError> {
        match self.get(key) {
            Some(TomlValue::Str(s)) => county_from_name(s),
            Some(_) => Err(self.bad(key, "a county name")),
            None => Err(self.missing(key)),
        }
    }

    fn req_counties(&self, key: &str) -> Result<Vec<County>, ScenarioError> {
        match self.get(key) {
            Some(TomlValue::Array(items)) => items
                .iter()
                .map(|v| match v {
                    TomlValue::Str(s) => county_from_name(s),
                    _ => Err(self.bad(key, "an array of county names")),
                })
                .collect(),
            Some(_) => Err(self.bad(key, "an array of county names")),
            None => Err(self.missing(key)),
        }
    }

    /// A `[a, b, ...]` array of exactly `n` numbers.
    fn opt_f64_tuple(&self, key: &str, n: usize) -> Result<Option<Vec<f64>>, ScenarioError> {
        let Some(v) = self.get(key) else { return Ok(None) };
        let expected = format!("an array of {n} numbers");
        let TomlValue::Array(items) = v else {
            return Err(self.bad(key, &expected));
        };
        if items.len() != n {
            return Err(self.bad(key, &expected));
        }
        items
            .iter()
            .map(|v| match v {
                TomlValue::Float(f) => Ok(*f),
                TomlValue::Int(i) => Ok(*i as f64),
                _ => Err(self.bad(key, &expected)),
            })
            .collect::<Result<Vec<f64>, _>>()
            .map(Some)
    }

    /// An array-of-tables key (absent = empty).
    fn tables(&self, key: &str) -> Result<Vec<(usize, &'a Table)>, ScenarioError> {
        match self.get(key) {
            None => Ok(Vec::new()),
            Some(TomlValue::Array(items)) => items
                .iter()
                .enumerate()
                .map(|(i, v)| match v {
                    TomlValue::Table(t) => Ok((i, t)),
                    _ => Err(self.bad(key, "an array of tables (`[[...]]`)")),
                })
                .collect(),
            Some(_) => Err(self.bad(key, "an array of tables (`[[...]]`)")),
        }
    }

    fn opt_table(&self, key: &str) -> Result<Option<&'a Table>, ScenarioError> {
        match self.get(key) {
            None => Ok(None),
            Some(TomlValue::Table(t)) => Ok(Some(t)),
            Some(_) => Err(self.bad(key, "a table (`[...]`)")),
        }
    }
}

/// Match a kebab-case county name (`"east-sussex"`); display names
/// (`"East Sussex"`) are accepted too.
fn county_from_name(s: &str) -> Result<County, ScenarioError> {
    County::ALL
        .iter()
        .copied()
        .find(|c| county_key(*c) == s || c.name() == s)
        .ok_or_else(|| ScenarioError::UnknownCounty { value: s.to_string() })
}

/// The kebab-case form scenario files use.
pub fn county_key(c: County) -> String {
    c.name().to_lowercase().replace(' ', "-")
}

// ---------------------------------------------------------------------
// Section parsers
// ---------------------------------------------------------------------

fn parse_phase(f: &Fields<'_>) -> Result<Phase, ScenarioError> {
    f.deny_unknown(&[
        "name",
        "start",
        "intensity",
        "ramp",
        "decay",
        "schools-closed",
        "confinement-floor",
    ])?;
    let shapes = [
        f.get("intensity").is_some(),
        f.get("ramp").is_some(),
        f.get("decay").is_some(),
    ];
    if shapes.iter().filter(|&&p| p).count() != 1 {
        return Err(ScenarioError::ConflictingFields {
            table: f.name.clone(),
            detail: "exactly one of `intensity`, `ramp`, `decay` is required".into(),
        });
    }
    let intensity = if f.get("intensity").is_some() {
        IntensityProfile::Level(f.req_f64("intensity")?)
    } else if let Some(pair) = f.opt_f64_tuple("ramp", 2)? {
        IntensityProfile::Ramp { base: pair[0], delta: pair[1] }
    } else {
        let triple = f.opt_f64_tuple("decay", 3)?.expect("checked present");
        IntensityProfile::Decay { from: triple[0], step: triple[1], floor: triple[2] }
    };
    Ok(Phase {
        name: f.req_str("name")?,
        start: f.req_date("start")?,
        intensity,
        schools_closed: f.opt_bool("schools-closed")?.unwrap_or(false),
        confinement_floor: f.opt_f64("confinement-floor")?.unwrap_or(0.0),
    })
}

fn parse_news(f: &Fields<'_>) -> Result<NewsWindow, ScenarioError> {
    f.deny_unknown(&["start", "end", "multiplier"])?;
    Ok(NewsWindow {
        start: f.req_date("start")?,
        end: f.req_date("end")?,
        multiplier: f.req_f64("multiplier")?,
    })
}

fn parse_surge(f: &Fields<'_>) -> Result<SurgeSegment, ScenarioError> {
    f.deny_unknown(&["start", "end", "level", "weekday-ramp", "weekly-decay", "offset-weeks"])?;
    let shapes = [
        f.get("level").is_some(),
        f.get("weekday-ramp").is_some(),
        f.get("weekly-decay").is_some(),
    ];
    if shapes.iter().filter(|&&p| p).count() != 1 {
        return Err(ScenarioError::ConflictingFields {
            table: f.name.clone(),
            detail: "exactly one of `level`, `weekday-ramp`, `weekly-decay` is required"
                .into(),
        });
    }
    if f.get("offset-weeks").is_some() && f.get("weekly-decay").is_none() {
        return Err(ScenarioError::ConflictingFields {
            table: f.name.clone(),
            detail: "`offset-weeks` only applies to `weekly-decay`".into(),
        });
    }
    let shape = if f.get("level").is_some() {
        SurgeShape::Level(f.req_f64("level")?)
    } else if let Some(pair) = f.opt_f64_tuple("weekday-ramp", 2)? {
        SurgeShape::WeekdayRamp { base: pair[0], delta: pair[1] }
    } else {
        let triple = f.opt_f64_tuple("weekly-decay", 3)?.expect("checked present");
        SurgeShape::WeeklyDecay {
            anchor: triple[0],
            step: triple[1],
            offset_weeks: f.opt_i64("offset-weeks")?.unwrap_or(0),
            floor: triple[2],
        }
    };
    Ok(SurgeSegment { start: f.req_date("start")?, end: f.opt_date("end")?, shape })
}

fn parse_regional(f: &Fields<'_>) -> Result<RegionalWindow, ScenarioError> {
    f.deny_unknown(&["start", "end", "default-factor", "group"])?;
    let mut groups = Vec::new();
    for (i, t) in f.tables("group")? {
        let g = Fields::new(&format!("{}.group[{i}]", f.name), t);
        g.deny_unknown(&["counties", "factor"])?;
        groups.push(RegionalGroup {
            counties: g.req_counties("counties")?,
            factor: g.req_f64("factor")?,
        });
    }
    Ok(RegionalWindow {
        start: f.req_date("start")?,
        end: f.req_date("end")?,
        default_factor: f.req_f64("default-factor")?,
        groups,
    })
}

fn parse_weekend_boost(f: &Fields<'_>) -> Result<WeekendBoost, ScenarioError> {
    f.deny_unknown(&["county", "start", "end", "factor", "weekends-only"])?;
    Ok(WeekendBoost {
        county: f.req_county("county")?,
        start: f.req_date("start")?,
        end: f.req_date("end")?,
        factor: f.req_f64("factor")?,
        weekends_only: f.opt_bool("weekends-only")?.unwrap_or(true),
    })
}

fn parse_relocation(f: &Fields<'_>) -> Result<RelocationWave, ScenarioError> {
    f.deny_unknown(&[
        "from",
        "start",
        "days",
        "stay-away-prob",
        "return-after-days",
        "destinations",
    ])?;
    let returns = f
        .opt_f64_tuple("return-after-days", 2)?
        .ok_or_else(|| f.missing("return-after-days"))?;
    let destinations = match f.get("destinations") {
        None => LONDON_DESTINATION_WEIGHTS.to_vec(),
        Some(TomlValue::Array(items)) => {
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                let TomlValue::Array(pair) = item else {
                    return Err(f.bad("destinations", "an array of [county, weight] pairs"));
                };
                let [TomlValue::Str(name), weight] = pair.as_slice() else {
                    return Err(f.bad("destinations", "an array of [county, weight] pairs"));
                };
                let w = match weight {
                    TomlValue::Float(v) => *v,
                    TomlValue::Int(v) => *v as f64,
                    _ => {
                        return Err(
                            f.bad("destinations", "an array of [county, weight] pairs")
                        )
                    }
                };
                out.push((county_from_name(name)?, w));
            }
            out
        }
        Some(_) => return Err(f.bad("destinations", "an array of [county, weight] pairs")),
    };
    Ok(RelocationWave {
        from_county: f.req_county("from")?,
        start: f.req_date("start")?,
        days: f.req_i64("days")?,
        stay_away_prob: f.req_f64("stay-away-prob")?,
        return_min_days: returns[0] as u16,
        return_max_days: returns[1] as u16,
        destinations,
    })
}

fn parse_overrides(f: &Fields<'_>) -> Result<ScenarioDelta, ScenarioError> {
    f.deny_unknown(&[
        "relocation-uptake",
        "response-delay-days",
        "content-throttling",
        "interconnect-headroom",
    ])?;
    Ok(ScenarioDelta {
        schedule: None,
        relocation_uptake: f.opt_f64("relocation-uptake")?,
        response_delay_days: f.opt_i64("response-delay-days")?.map(|d| d as u16),
        content_throttling: f.opt_bool("content-throttling")?,
        interconnect_headroom: f.opt_f64("interconnect-headroom")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = "\
name = \"minimal\"
description = \"one quiet phase\"

[[phase]]
name = \"calm\"
start = 2020-02-03
intensity = 0.0
";

    #[test]
    fn minimal_scenario_parses_and_validates() {
        let doc = ScenarioDoc::parse(MINIMAL).unwrap();
        assert_eq!(doc.name, "minimal");
        assert_eq!(doc.schedule.phases.len(), 1);
        assert!(doc.overrides.is_empty());
        doc.validate().unwrap();
        assert_eq!(doc.window(), (STUDY_START, STUDY_END));
    }

    #[test]
    fn typod_field_is_a_typed_error() {
        let text = MINIMAL.replace("intensity", "intensty");
        match ScenarioDoc::parse(&text) {
            Err(ScenarioError::UnknownField { table, key }) => {
                assert_eq!(table, "phase[0]");
                assert_eq!(key, "intensty");
            }
            other => panic!("expected UnknownField, got {other:?}"),
        }
    }

    #[test]
    fn top_level_typo_names_the_scenario_table() {
        // Top-level keys must precede the first section header.
        let text = MINIMAL.replace("\n[[phase]]", "study-stat = 2020-02-01\n\n[[phase]]");
        match ScenarioDoc::parse(&text) {
            Err(ScenarioError::UnknownField { table, key }) => {
                assert_eq!(table, "scenario");
                assert_eq!(key, "study-stat");
            }
            other => panic!("expected UnknownField, got {other:?}"),
        }
    }

    #[test]
    fn phase_needs_exactly_one_shape() {
        let text = format!("{MINIMAL}ramp = [0.0, 0.5]\n");
        assert!(matches!(
            ScenarioDoc::parse(&text),
            Err(ScenarioError::ConflictingFields { .. })
        ));
        let text = MINIMAL.replace("intensity = 0.0\n", "");
        assert!(matches!(
            ScenarioDoc::parse(&text),
            Err(ScenarioError::ConflictingFields { .. })
        ));
    }

    #[test]
    fn unknown_county_is_reported_by_name() {
        let text = format!(
            "{MINIMAL}\n[[weekend-boost]]\ncounty = \"atlantis\"\n\
             start = 2020-03-21\nend = 2020-03-22\nfactor = 2.0\n"
        );
        match ScenarioDoc::parse(&text) {
            Err(ScenarioError::UnknownCounty { value }) => assert_eq!(value, "atlantis"),
            other => panic!("expected UnknownCounty, got {other:?}"),
        }
    }

    #[test]
    fn county_names_accept_kebab_and_display_forms() {
        assert_eq!(county_from_name("east-sussex").unwrap(), County::EastSussex);
        assert_eq!(county_from_name("East Sussex").unwrap(), County::EastSussex);
        assert_eq!(county_key(County::GreaterManchester), "greater-manchester");
    }

    #[test]
    fn overrides_flow_into_the_delta() {
        let text = format!(
            "{MINIMAL}\n[overrides]\nrelocation-uptake = 0.0\ninterconnect-headroom = 4.0\n"
        );
        let doc = ScenarioDoc::parse(&text).unwrap();
        let delta = doc.delta();
        assert_eq!(delta.relocation_uptake, Some(0.0));
        assert_eq!(delta.interconnect_headroom, Some(4.0));
        assert!(delta.schedule.is_some());
        let base = ScenarioConfig::tiny(5);
        let cfg = doc.apply(&base);
        assert_eq!(cfg.population.relocation_uptake, 0.0);
        assert_eq!(cfg.interconnect_headroom, 4.0);
        assert_eq!(cfg.schedule, doc.schedule);
        assert_eq!(cfg.seed, base.seed);
    }

    #[test]
    fn study_window_overrides_apply() {
        let text = MINIMAL.replace(
            "\n[[phase]]",
            "study-start = 2020-02-03\nstudy-end = 2020-03-29\n\n[[phase]]",
        );
        let doc = ScenarioDoc::parse(&text).unwrap();
        let cfg = doc.apply(&ScenarioConfig::tiny(5));
        assert_eq!(cfg.study_start, Date::ymd(2020, 2, 3));
        assert_eq!(cfg.study_end, Date::ymd(2020, 3, 29));
        doc.validate().unwrap();
    }

    #[test]
    fn out_of_window_phase_is_a_schedule_error() {
        let text = MINIMAL.replace("2020-02-03", "2021-02-03");
        let doc = ScenarioDoc::parse(&text).unwrap();
        match doc.validate() {
            Err(ScenarioError::Schedule(ScheduleError::DateOutsideWindow { .. })) => {}
            other => panic!("expected DateOutsideWindow, got {other:?}"),
        }
    }

    #[test]
    fn toml_syntax_errors_carry_lines() {
        match ScenarioDoc::parse("name = \"x\"\noops\n") {
            Err(ScenarioError::Toml { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected Toml error, got {other:?}"),
        }
    }
}
