//! Simulation clock: contiguous day indices over the study window, plus
//! the paper's six disjoint 4-hour bins of the day.

use crate::date::{Date, IsoWeek, Weekday};
use serde::{Deserialize, Serialize};

/// First simulated day: 2020-02-01.
///
/// The study's analysis window starts at week 9 (Feb 24), but home
/// detection (Section 2.3) requires at least 14 nights of February data,
/// so the simulation starts at the beginning of February.
pub const STUDY_START: Date = Date::from_days_since_epoch(18293);

/// Last simulated day (inclusive): 2020-05-10, the Sunday ending week 19.
pub const STUDY_END: Date = Date::from_days_since_epoch(18392);

/// A simulation-day index: day 0 is [`STUDY_START`].
pub type SimDay = u16;

/// The six disjoint 4-hour bins of the day used for mobility statistics
/// (Section 2.3: "six disjoint 4-hour bins of the day, e.g. 04:00–08:00").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DayBin {
    /// 00:00 – 04:00
    Night,
    /// 04:00 – 08:00
    EarlyMorning,
    /// 08:00 – 12:00
    Morning,
    /// 12:00 – 16:00
    Afternoon,
    /// 16:00 – 20:00
    Evening,
    /// 20:00 – 24:00
    LateEvening,
}

impl DayBin {
    /// All six bins in chronological order.
    pub const ALL: [DayBin; 6] = [
        DayBin::Night,
        DayBin::EarlyMorning,
        DayBin::Morning,
        DayBin::Afternoon,
        DayBin::Evening,
        DayBin::LateEvening,
    ];

    /// The bin containing the given hour (0–23).
    pub fn of_hour(hour: u8) -> DayBin {
        DayBin::ALL[(hour as usize % 24) / 4]
    }

    /// First hour of the bin (inclusive).
    pub fn start_hour(self) -> u8 {
        self as u8 * 4
    }

    /// Hours covered by the bin, as `start..end`.
    pub fn hours(self) -> std::ops::Range<u8> {
        let s = self.start_hour();
        s..s + 4
    }

    /// Whether the bin falls in the paper's home-detection night window
    /// (midnight through 8 AM).
    pub fn is_night_window(self) -> bool {
        matches!(self, DayBin::Night | DayBin::EarlyMorning)
    }

    /// Bin index 0–5.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Maps simulation-day indices to calendar dates and back.
///
/// All feeds timestamp records with a [`SimDay`]; analysis code converts
/// to ISO weeks through this clock. The default clock covers the paper's
/// study window; custom windows are supported for tests and what-if
/// scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimClock {
    start: Date,
    end: Date,
}

impl SimClock {
    /// Clock over the paper's study window (2020-02-01 … 2020-05-10).
    pub fn study() -> SimClock {
        SimClock {
            start: STUDY_START,
            end: STUDY_END,
        }
    }

    /// Clock over an arbitrary inclusive date range.
    ///
    /// # Panics
    /// Panics if `end < start`.
    pub fn new(start: Date, end: Date) -> SimClock {
        assert!(end >= start, "SimClock end must not precede start");
        SimClock { start, end }
    }

    /// First simulated date.
    pub fn start(&self) -> Date {
        self.start
    }

    /// Last simulated date (inclusive).
    pub fn end(&self) -> Date {
        self.end
    }

    /// Number of simulated days.
    pub fn num_days(&self) -> usize {
        self.end.days_since(self.start) as usize + 1
    }

    /// The calendar date of a simulation day.
    ///
    /// # Panics
    /// Panics if `day` is outside the clock range.
    pub fn date(&self, day: SimDay) -> Date {
        assert!(
            (day as usize) < self.num_days(),
            "sim day {day} outside clock range"
        );
        self.start.add_days(day as i64)
    }

    /// The simulation day of a calendar date, if within range.
    pub fn day_of(&self, date: Date) -> Option<SimDay> {
        let delta = date.days_since(self.start);
        if delta < 0 || delta as usize >= self.num_days() {
            None
        } else {
            Some(delta as SimDay)
        }
    }

    /// Iterate all simulation days.
    pub fn days(&self) -> impl Iterator<Item = SimDay> {
        0..self.num_days() as SimDay
    }

    /// Iterate the simulation days that fall inside the given ISO week.
    pub fn days_in_week(&self, week: IsoWeek) -> impl Iterator<Item = SimDay> + '_ {
        self.days().filter(move |&d| self.date(d).iso_week() == week)
    }

    /// ISO week of a simulation day.
    pub fn week(&self, day: SimDay) -> IsoWeek {
        self.date(day).iso_week()
    }

    /// Weekday of a simulation day.
    pub fn weekday(&self, day: SimDay) -> Weekday {
        self.date(day).weekday()
    }

    /// The distinct ISO weeks covered by the clock, in order.
    pub fn weeks(&self) -> Vec<IsoWeek> {
        let mut weeks = Vec::new();
        for d in self.days() {
            let w = self.week(d);
            if weeks.last() != Some(&w) {
                weeks.push(w);
            }
        }
        weeks
    }

    /// Simulation days of February 2020 within range — the home-detection
    /// observation window.
    pub fn february_days(&self) -> Vec<SimDay> {
        self.days()
            .filter(|&d| {
                let date = self.date(d);
                date.year() == 2020 && date.month().number() == 2
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::date::Month;

    #[test]
    fn study_constants_are_correct_dates() {
        assert_eq!(STUDY_START, Date::ymd(2020, 2, 1));
        assert_eq!(STUDY_END, Date::ymd(2020, 5, 10));
    }

    #[test]
    fn study_clock_spans_100_days() {
        let c = SimClock::study();
        assert_eq!(c.num_days(), 100);
        assert_eq!(c.date(0), Date::ymd(2020, 2, 1));
        assert_eq!(c.date(99), Date::ymd(2020, 5, 10));
    }

    #[test]
    fn day_of_roundtrip_and_bounds() {
        let c = SimClock::study();
        for d in c.days() {
            assert_eq!(c.day_of(c.date(d)), Some(d));
        }
        assert_eq!(c.day_of(Date::ymd(2020, 1, 31)), None);
        assert_eq!(c.day_of(Date::ymd(2020, 5, 11)), None);
    }

    #[test]
    fn weeks_cover_5_through_19() {
        let c = SimClock::study();
        let weeks = c.weeks();
        assert_eq!(weeks.first().unwrap().week, 5);
        assert_eq!(weeks.last().unwrap().week, 19);
        // Weeks are distinct and increasing.
        for pair in weeks.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn days_in_week_13_are_lockdown_week() {
        let c = SimClock::study();
        let days: Vec<_> = c
            .days_in_week(IsoWeek { year: 2020, week: 13 })
            .collect();
        assert_eq!(days.len(), 7);
        assert_eq!(c.date(days[0]), Date::ymd(2020, 3, 23));
        assert_eq!(c.date(days[6]), Date::ymd(2020, 3, 29));
    }

    #[test]
    fn february_window_has_29_days_in_2020() {
        let c = SimClock::study();
        let feb = c.february_days();
        assert_eq!(feb.len(), 29);
        assert!(feb.iter().all(|&d| c.date(d).month() == Month::February));
    }

    #[test]
    fn bins_tile_the_day() {
        let mut covered = [false; 24];
        for bin in DayBin::ALL {
            for h in bin.hours() {
                assert!(!covered[h as usize], "hour {h} covered twice");
                covered[h as usize] = true;
                assert_eq!(DayBin::of_hour(h), bin);
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn night_window_matches_paper() {
        // Section 2.3: nighttime hours are 12:00 PM (midnight) through 8 AM.
        for h in 0..8 {
            assert!(DayBin::of_hour(h).is_night_window(), "hour {h}");
        }
        for h in 8..24 {
            assert!(!DayBin::of_hour(h).is_night_window(), "hour {h}");
        }
    }

    #[test]
    #[should_panic(expected = "outside clock range")]
    fn date_out_of_range_panics() {
        SimClock::study().date(100);
    }
}
