//! Proleptic Gregorian dates with ISO-8601 week numbering.
//!
//! The implementation is deliberately tiny: the study spans a few months
//! of 2020, but the arithmetic is exact for the whole Gregorian range the
//! `i32` day count can express, and is property-tested against round-trip
//! invariants.

use serde::{Deserialize, Serialize};

/// Day of the week, ISO order (Monday first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Weekday {
    Monday,
    Tuesday,
    Wednesday,
    Thursday,
    Friday,
    Saturday,
    Sunday,
}

impl Weekday {
    /// All weekdays in ISO order.
    pub const ALL: [Weekday; 7] = [
        Weekday::Monday,
        Weekday::Tuesday,
        Weekday::Wednesday,
        Weekday::Thursday,
        Weekday::Friday,
        Weekday::Saturday,
        Weekday::Sunday,
    ];

    /// ISO weekday number: Monday = 1 … Sunday = 7.
    pub fn iso_number(self) -> u8 {
        self as u8 + 1
    }

    /// Saturday or Sunday. The paper's figures shade weekends and several
    /// effects (e.g. weekend escapes from London) are weekend-specific.
    pub fn is_weekend(self) -> bool {
        matches!(self, Weekday::Saturday | Weekday::Sunday)
    }

    fn from_index(idx: i64) -> Weekday {
        Weekday::ALL[idx.rem_euclid(7) as usize]
    }
}

/// Month of the year.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Month {
    January = 1,
    February,
    March,
    April,
    May,
    June,
    July,
    August,
    September,
    October,
    November,
    December,
}

impl Month {
    /// Month number, 1-based.
    pub fn number(self) -> u8 {
        self as u8
    }

    /// Construct from a 1-based month number.
    pub fn from_number(n: u8) -> Option<Month> {
        use Month::*;
        Some(match n {
            1 => January,
            2 => February,
            3 => March,
            4 => April,
            5 => May,
            6 => June,
            7 => July,
            8 => August,
            9 => September,
            10 => October,
            11 => November,
            12 => December,
            _ => return None,
        })
    }
}

/// An ISO-8601 week: year plus week number (1–53).
///
/// The paper refers to dates almost exclusively as "week N of 2020"
/// (lockdown = week 13, baseline = week 9), so this is the primary key of
/// most aggregated series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct IsoWeek {
    pub year: i32,
    pub week: u8,
}

impl IsoWeek {
    /// The Monday this ISO week starts on.
    pub fn monday(self) -> Date {
        // Jan 4 is always in ISO week 1 of its year.
        let jan4 = Date::new(self.year, Month::January, 4).expect("Jan 4 valid");
        let week1_monday = jan4.previous_or_same(Weekday::Monday);
        week1_monday.add_days(7 * (self.week as i64 - 1))
    }
}

impl std::fmt::Display for IsoWeek {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}-W{:02}", self.year, self.week)
    }
}

/// A calendar date in the proleptic Gregorian calendar.
///
/// Internally a signed day count with epoch 1970-01-01 = 0, so ordering,
/// differences and offsets are trivially correct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Date {
    days_since_epoch: i32,
}

/// Errors constructing a [`Date`] from components.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DateError {
    /// The day-of-month is outside the month's length (or zero).
    InvalidDay,
}

impl std::fmt::Display for DateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DateError::InvalidDay => write!(f, "day of month out of range"),
        }
    }
}

impl std::error::Error for DateError {}

fn is_leap(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

fn days_in_month(year: i32, month: Month) -> u8 {
    match month {
        Month::January
        | Month::March
        | Month::May
        | Month::July
        | Month::August
        | Month::October
        | Month::December => 31,
        Month::April | Month::June | Month::September | Month::November => 30,
        Month::February => {
            if is_leap(year) {
                29
            } else {
                28
            }
        }
    }
}

/// Days from 1970-01-01 to `year`-01-01 (may be negative).
fn days_to_year(year: i32) -> i64 {
    let y = year as i64 - 1970;
    // Count leap years in [1970, year) — or (year, 1970] when negative —
    // using the closed form over year - 1 relative to epoch.
    let leaps = |y: i64| -> i64 { y / 4 - y / 100 + y / 400 };
    y * 365 + leaps(year as i64 - 1) - leaps(1969)
}

impl Date {
    /// Construct a date; returns `Err` if the day is invalid for the month.
    pub fn new(year: i32, month: Month, day: u8) -> Result<Date, DateError> {
        if day == 0 || day > days_in_month(year, month) {
            return Err(DateError::InvalidDay);
        }
        let mut days = days_to_year(year);
        for m in 1..month.number() {
            days += days_in_month(year, Month::from_number(m).unwrap()) as i64;
        }
        days += day as i64 - 1;
        Ok(Date {
            days_since_epoch: days as i32,
        })
    }

    /// Convenience constructor with a numeric month; panics on invalid
    /// input (intended for literals in scenario definitions).
    pub fn ymd(year: i32, month: u8, day: u8) -> Date {
        Date::new(year, Month::from_number(month).expect("valid month"), day)
            .expect("valid calendar date")
    }

    /// Signed day count since 1970-01-01.
    pub fn days_since_epoch(self) -> i32 {
        self.days_since_epoch
    }

    /// Inverse of [`Date::days_since_epoch`].
    pub const fn from_days_since_epoch(days: i32) -> Date {
        Date {
            days_since_epoch: days,
        }
    }

    /// Break the date into (year, month, day).
    pub fn components(self) -> (i32, Month, u8) {
        let mut days = self.days_since_epoch as i64;
        // Estimate the year, then correct.
        let mut year = 1970 + (days / 365) as i32;
        loop {
            let start = days_to_year(year);
            if days < start {
                year -= 1;
            } else if days >= start + if is_leap(year) { 366 } else { 365 } {
                year += 1;
            } else {
                days -= start;
                break;
            }
        }
        let mut month = Month::January;
        loop {
            let len = days_in_month(year, month) as i64;
            if days < len {
                return (year, month, days as u8 + 1);
            }
            days -= len;
            month = Month::from_number(month.number() + 1).expect("month overflow impossible");
        }
    }

    /// Calendar year.
    pub fn year(self) -> i32 {
        self.components().0
    }

    /// Calendar month.
    pub fn month(self) -> Month {
        self.components().1
    }

    /// Day of month, 1-based.
    pub fn day(self) -> u8 {
        self.components().2
    }

    /// Day of the week (1970-01-01 was a Thursday).
    pub fn weekday(self) -> Weekday {
        Weekday::from_index(self.days_since_epoch as i64 + 3)
    }

    /// `self + days` (may be negative).
    pub fn add_days(self, days: i64) -> Date {
        Date {
            days_since_epoch: (self.days_since_epoch as i64 + days) as i32,
        }
    }

    /// Signed number of days from `other` to `self`.
    pub fn days_since(self, other: Date) -> i64 {
        self.days_since_epoch as i64 - other.days_since_epoch as i64
    }

    /// The latest date `<= self` that falls on `weekday`.
    pub fn previous_or_same(self, weekday: Weekday) -> Date {
        let delta =
            (self.weekday().iso_number() as i64 - weekday.iso_number() as i64).rem_euclid(7);
        self.add_days(-delta)
    }

    /// ISO-8601 week (year + week number).
    pub fn iso_week(self) -> IsoWeek {
        // The ISO week-year of a date is the calendar year of the Thursday
        // of its week.
        let thursday = self.previous_or_same(Weekday::Monday).add_days(3);
        let year = thursday.year();
        let jan4 = Date::new(year, Month::January, 4).expect("Jan 4 valid");
        let week1_monday = jan4.previous_or_same(Weekday::Monday);
        let week = (thursday.days_since(week1_monday) / 7) as u8 + 1;
        IsoWeek { year, week }
    }

    /// True on Saturdays and Sundays.
    pub fn is_weekend(self) -> bool {
        self.weekday().is_weekend()
    }
}

impl std::fmt::Display for Date {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (y, m, d) = self.components();
        write!(f, "{:04}-{:02}-{:02}", y, m.number(), d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_thursday() {
        let d = Date::ymd(1970, 1, 1);
        assert_eq!(d.weekday(), Weekday::Thursday);
        assert_eq!(d.days_since_epoch(), 0);
    }

    #[test]
    fn known_2020_dates() {
        // Anchors taken straight from the paper's narrative.
        let pandemic = Date::ymd(2020, 3, 11);
        assert_eq!(pandemic.weekday(), Weekday::Wednesday);
        assert_eq!(pandemic.iso_week(), IsoWeek { year: 2020, week: 11 });

        let wfh = Date::ymd(2020, 3, 16);
        assert_eq!(wfh.weekday(), Weekday::Monday);
        assert_eq!(wfh.iso_week().week, 12);

        let lockdown = Date::ymd(2020, 3, 23);
        assert_eq!(lockdown.weekday(), Weekday::Monday);
        assert_eq!(lockdown.iso_week().week, 13);

        // Week 9 = the paper's baseline week.
        let baseline_monday = Date::ymd(2020, 2, 24);
        assert_eq!(baseline_monday.iso_week().week, 9);
        assert_eq!(baseline_monday.weekday(), Weekday::Monday);

        // End of the analysis window.
        let end = Date::ymd(2020, 5, 10);
        assert_eq!(end.iso_week().week, 19);
        assert_eq!(end.weekday(), Weekday::Sunday);
    }

    #[test]
    fn leap_year_2020_february() {
        assert!(is_leap(2020));
        assert!(Date::new(2020, Month::February, 29).is_ok());
        assert!(Date::new(2021, Month::February, 29).is_err());
        assert!(Date::new(1900, Month::February, 29).is_err()); // century rule
        assert!(Date::new(2000, Month::February, 29).is_ok()); // 400 rule
    }

    #[test]
    fn invalid_days_rejected() {
        assert_eq!(
            Date::new(2020, Month::April, 31).unwrap_err(),
            DateError::InvalidDay
        );
        assert_eq!(
            Date::new(2020, Month::January, 0).unwrap_err(),
            DateError::InvalidDay
        );
    }

    #[test]
    fn iso_week_edges() {
        // 2019-12-30 (Mon) belongs to 2020-W01.
        assert_eq!(
            Date::ymd(2019, 12, 30).iso_week(),
            IsoWeek { year: 2020, week: 1 }
        );
        // 2021-01-03 (Sun) still belongs to 2020-W53.
        assert_eq!(
            Date::ymd(2021, 1, 3).iso_week(),
            IsoWeek { year: 2020, week: 53 }
        );
        // 2021-01-04 (Mon) starts 2021-W01.
        assert_eq!(
            Date::ymd(2021, 1, 4).iso_week(),
            IsoWeek { year: 2021, week: 1 }
        );
    }

    #[test]
    fn iso_week_monday_roundtrip() {
        let w = IsoWeek { year: 2020, week: 13 };
        assert_eq!(w.monday(), Date::ymd(2020, 3, 23));
        assert_eq!(w.monday().iso_week(), w);
    }

    #[test]
    fn previous_or_same_is_stable() {
        let d = Date::ymd(2020, 3, 23); // Monday
        assert_eq!(d.previous_or_same(Weekday::Monday), d);
        assert_eq!(
            d.previous_or_same(Weekday::Sunday),
            Date::ymd(2020, 3, 22)
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(Date::ymd(2020, 2, 1).to_string(), "2020-02-01");
        assert_eq!(
            Date::ymd(2020, 3, 23).iso_week().to_string(),
            "2020-W13"
        );
    }
}
