//! Minimal calendar and simulation-clock support for the study period.
//!
//! The paper analyzes **weeks 9–19 of 2020** (2020-02-24 through
//! 2020-05-10) and additionally needs February 2020 for home detection
//! (the home cell is the one a user camps on most during night hours for
//! at least 14 February days). This crate provides exactly the temporal
//! vocabulary the paper uses, with no external dependencies:
//!
//! * [`Date`] — proleptic Gregorian dates with day-of-week and ISO week
//!   arithmetic (the paper indexes everything by ISO week number);
//! * [`SimClock`] — maps a contiguous simulation-day index to dates;
//! * [`DayBin`] — the six disjoint 4-hour bins of Section 2.3;
//! * [`Weekday`] — with the weekend distinction used throughout the
//!   figures (shaded bars in Fig. 3).

pub mod date;
pub mod sim;

pub use date::{Date, IsoWeek, Month, Weekday};
pub use sim::{DayBin, SimClock, SimDay, STUDY_END, STUDY_START};
