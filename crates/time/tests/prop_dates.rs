//! Property tests for calendar arithmetic.

use cellscope_time::{Date, DayBin, SimClock};
use proptest::prelude::*;

proptest! {
    /// days_since_epoch / from_days_since_epoch are inverse bijections.
    #[test]
    fn epoch_roundtrip(days in -200_000i32..200_000) {
        let d = Date::from_days_since_epoch(days);
        prop_assert_eq!(d.days_since_epoch(), days);
    }

    /// (y, m, d) -> Date -> (y, m, d) round-trips.
    #[test]
    fn component_roundtrip(days in -200_000i32..200_000) {
        let d = Date::from_days_since_epoch(days);
        let (y, m, day) = d.components();
        let rebuilt = Date::new(y, m, day).unwrap();
        prop_assert_eq!(rebuilt, d);
    }

    /// add_days is additive and invertible.
    #[test]
    fn add_days_additive(days in -100_000i32..100_000, a in -5_000i64..5_000, b in -5_000i64..5_000) {
        let d = Date::from_days_since_epoch(days);
        prop_assert_eq!(d.add_days(a).add_days(b), d.add_days(a + b));
        prop_assert_eq!(d.add_days(a).add_days(-a), d);
    }

    /// Consecutive days advance the weekday cyclically.
    #[test]
    fn weekday_cycles(days in -100_000i32..100_000) {
        let d = Date::from_days_since_epoch(days);
        let next = d.add_days(1);
        prop_assert_eq!(
            (d.weekday().iso_number() % 7) + 1,
            next.weekday().iso_number()
        );
    }

    /// Every date's ISO week contains that date's week-Monday, and the
    /// Monday of the reported ISO week is at most 6 days before the date.
    #[test]
    fn iso_week_contains_date(days in -100_000i32..100_000) {
        let d = Date::from_days_since_epoch(days);
        let week = d.iso_week();
        let monday = week.monday();
        let delta = d.days_since(monday);
        prop_assert!((0..7).contains(&delta), "date {d} not within its ISO week starting {monday}");
        prop_assert!(week.week >= 1 && week.week <= 53);
    }

    /// DayBin::of_hour is total and consistent with hours().
    #[test]
    fn day_bin_consistent(hour in 0u8..24) {
        let bin = DayBin::of_hour(hour);
        prop_assert!(bin.hours().contains(&hour));
    }

    /// SimClock::date and day_of are inverses over arbitrary windows.
    #[test]
    fn clock_roundtrip(start in -50_000i32..50_000, len in 1usize..500) {
        let s = Date::from_days_since_epoch(start);
        let clock = SimClock::new(s, s.add_days(len as i64 - 1));
        prop_assert_eq!(clock.num_days(), len);
        for day in clock.days() {
            prop_assert_eq!(clock.day_of(clock.date(day)), Some(day));
        }
    }
}
