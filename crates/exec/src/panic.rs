//! Panic capture: turning a task's unwind payload into a typed error.

use std::any::Any;
use std::fmt;

/// A task of a stage panicked. The panic was caught at the task
/// boundary (`catch_unwind`), so the process did not abort, sibling
/// workers were not poisoned, and the payload is preserved as text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError {
    /// The stage the task belonged to (e.g. `"phase_a"`).
    pub stage: String,
    /// The index of the panicking task within its stage.
    pub task: usize,
    /// The panic payload, rendered to text (`panic!` message, or the
    /// payload's type when it was not a string).
    pub payload: String,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stage `{}` task {} panicked: {}",
            self.stage, self.task, self.payload
        )
    }
}

impl std::error::Error for ExecError {}

impl ExecError {
    /// Build an error from a caught unwind payload.
    pub fn from_payload(
        stage: &str,
        task: usize,
        payload: Box<dyn Any + Send + 'static>,
    ) -> ExecError {
        ExecError {
            stage: stage.to_string(),
            task,
            payload: payload_to_string(payload.as_ref()),
        }
    }
}

/// Render a panic payload the way the default hook does: `&str` and
/// `String` payloads verbatim, anything else as an opaque marker.
pub(crate) fn payload_to_string(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn str_and_string_payloads_render_verbatim() {
        let e = ExecError::from_payload("s", 3, Box::new("boom"));
        assert_eq!(e.payload, "boom");
        let e = ExecError::from_payload("s", 3, Box::new("boom".to_string()));
        assert_eq!(e.payload, "boom");
        let e = ExecError::from_payload("s", 3, Box::new(42u32));
        assert_eq!(e.payload, "non-string panic payload");
    }

    #[test]
    fn display_names_stage_and_task() {
        let e = ExecError {
            stage: "phase_a".into(),
            task: 7,
            payload: "oops".into(),
        };
        assert_eq!(e.to_string(), "stage `phase_a` task 7 panicked: oops");
    }
}
